// Quickstart: parse a constraint query language program, push its
// constraint selections (procedure Constraint_rewrite), specialize it to a
// query with constraint magic, and evaluate bottom-up.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "ast/printer.h"
#include "core/optimizer.h"
#include "eval/provenance.h"

using cqlopt::Database;
using cqlopt::Fact;
using cqlopt::Optimizer;
using cqlopt::Rational;

int main() {
  // A CQL program: find short-or-cheap connections over single-leg flights
  // (the paper's Example 1.1). Rules are Datalog plus linear arithmetic
  // constraints; `?- ...` is the query.
  auto optimizer = Optimizer::FromText(R"(
    r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
    r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
    r3: flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, T > 0.
    r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                              T = T1 + T2 + 30, C = C1 + C2.
    ?- cheaporshort(msn, sea, Time, Cost).
  )");
  if (!optimizer.ok()) {
    std::fprintf(stderr, "parse: %s\n", optimizer.status().ToString().c_str());
    return 1;
  }
  Optimizer& opt = *optimizer;
  const cqlopt::Query& query = opt.queries()[0];

  // The optimal rewriting order (Theorem 7.10): predicate constraints, then
  // QRP constraints, then constraint magic.
  auto rewritten = opt.Rewrite(query, "pred,qrp,mg");
  if (!rewritten.ok()) {
    std::fprintf(stderr, "rewrite: %s\n",
                 rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("--- rewritten program ---\n%s\n",
              cqlopt::RenderProgram(rewritten->program).c_str());

  // A tiny extensional database.
  Database db;
  auto leg = [&](const char* s, const char* d, int t, int c) {
    (void)db.AddGroundFact(opt.symbols(), "singleleg",
                           {Database::Value::Symbol(s),
                            Database::Value::Symbol(d),
                            Database::Value::Number(Rational(t)),
                            Database::Value::Number(Rational(c))});
  };
  leg("msn", "ord", 50, 80);
  leg("ord", "sea", 150, 90);   // msn -> sea: 230 min, 170 usd (short!)
  leg("msn", "den", 120, 60);
  leg("den", "sea", 160, 70);   // msn -> sea: 310 min, 130 usd (cheap!)
  leg("ord", "jfk", 140, 500);  // pruned: never short-or-cheap from msn

  // Bottom-up evaluation and answer extraction.
  auto run = opt.Run(rewritten->program, db);
  if (!run.ok()) {
    std::fprintf(stderr, "eval: %s\n", run.status().ToString().c_str());
    return 1;
  }
  auto answers = cqlopt::QueryAnswers(*run, rewritten->query);
  if (!answers.ok()) return 1;
  std::printf("--- answers (%zu) ---\n", answers->size());
  for (const Fact& f : *answers) {
    std::printf("  %s\n", f.ToString(*opt.program().symbols).c_str());
  }
  std::printf("--- stats: %s ---\n",
              run->stats.ToString(*opt.program().symbols).c_str());

  // Every derived fact carries its derivation tree (Definition 2.2):
  // explain how the first answer was produced.
  const cqlopt::Relation* rel =
      run->db.Find(rewritten->query.literal.pred);
  if (rel != nullptr && !rel->empty()) {
    auto tree = cqlopt::RenderDerivationTree(
        run->db, cqlopt::Relation::FactRef{rewritten->query.literal.pred, 0},
        *opt.program().symbols);
    if (tree.ok()) {
      std::printf("--- derivation tree of the first answer ---\n%s",
                  tree->c_str());
    }
  }
  return 0;
}
