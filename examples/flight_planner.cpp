// Flight planner: the workload the paper's introduction motivates, at a
// realistic scale. Builds a synthetic network of single-leg flights,
// plans short-or-cheap connections between two airports, and shows how much
// computation each rewriting level avoids.
//
// Usage:
//   ./build/examples/flight_planner [airports] [legs] [seed]

#include <cstdio>
#include <cstdlib>

#include "ast/printer.h"
#include "core/optimizer.h"
#include "core/workload.h"

using cqlopt::Database;
using cqlopt::EvalOptions;
using cqlopt::Fact;
using cqlopt::FlightNetworkSpec;
using cqlopt::Optimizer;

int main(int argc, char** argv) {
  FlightNetworkSpec spec;
  spec.airports = argc > 1 ? std::atoi(argv[1]) : 12;
  spec.legs = argc > 2 ? std::atoi(argv[2]) : 48;
  spec.seed = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 42;

  auto optimizer = Optimizer::FromText(R"(
    r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
    r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.
    r3: flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, T > 0.
    r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
                              T = T1 + T2 + 30, C = C1 + C2.
  )");
  if (!optimizer.ok()) {
    std::fprintf(stderr, "parse: %s\n", optimizer.status().ToString().c_str());
    return 1;
  }
  Optimizer& opt = *optimizer;

  Database db;
  if (!AddFlightNetwork(opt.symbols(), spec, &db).ok()) return 1;
  std::printf("network: %d airports, %zu legs (seed %llu)\n", spec.airports,
              db.TotalFacts(), (unsigned long long)spec.seed);

  // Plan all short-or-cheap connections out of airport a0.
  auto query = opt.ParseQuery("?- cheaporshort(a0, Dest, Time, Cost).");
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    return 1;
  }

  EvalOptions eval;
  eval.max_iterations = 64;
  struct Row {
    const char* name;
    const char* spec;
  };
  size_t answer_count = 0;
  for (const Row& row : {Row{"naive evaluation", ""},
                         Row{"constraint pushing (pred,qrp)", "pred,qrp"},
                         Row{"+ constraint magic", "pred,qrp,mg"}}) {
    auto rewritten = opt.Rewrite(*query, row.spec);
    if (!rewritten.ok()) {
      std::fprintf(stderr, "rewrite %s: %s\n", row.spec,
                   rewritten.status().ToString().c_str());
      return 1;
    }
    auto run = opt.Run(rewritten->program, db, eval);
    if (!run.ok()) {
      std::fprintf(stderr, "eval: %s\n", run.status().ToString().c_str());
      return 1;
    }
    auto answers = cqlopt::QueryAnswers(*run, rewritten->query);
    if (!answers.ok()) return 1;
    answer_count = answers->size();
    std::printf("%-32s facts=%-6zu derivations=%-7ld answers=%zu\n",
                row.name, run->db.TotalFacts() - db.TotalFacts(),
                run->stats.derivations, answers->size());
    if (row.spec[0] != '\0' && std::string(row.spec) == "pred,qrp,mg") {
      for (const Fact& f : *answers) {
        std::printf("    %s\n", f.ToString(*opt.program().symbols).c_str());
      }
    }
  }
  if (answer_count == 0) {
    std::printf("(no short-or-cheap connection out of a0 under this seed — "
                "try another seed)\n");
  }
  return 0;
}
