// Program optimizer CLI: reads a CQL program (with an inline ?- query)
// from a file or stdin, applies a transformation sequence, and prints the
// rewritten program plus the inferred constraints — the library as a
// command-line tool.
//
// Usage:
//   ./build/examples/program_optimizer <file|-> [sequence] [edb-file]
// where sequence is a comma list over {pred, qrp, mg, balbin}
// (default "pred,qrp"); when an EDB file of facts is given, the rewritten
// program is also evaluated bottom-up and the query answers printed.
//
// Examples:
//   ./build/examples/program_optimizer programs/example41.cql qrp
//   ./build/examples/program_optimizer programs/flights.cql pred,qrp,mg
//       programs/flights_edb.cql

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ast/printer.h"
#include "core/optimizer.h"
#include "eval/loader.h"

using cqlopt::Optimizer;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file|-> [sequence]\n"
                 "  sequence: comma list over pred,qrp,mg,balbin "
                 "(default pred,qrp)\n",
                 argv[0]);
    return 2;
  }
  std::string text;
  if (std::string(argv[1]) == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  }
  std::string sequence = argc > 2 ? argv[2] : "pred,qrp";

  auto optimizer = Optimizer::FromText(text);
  if (!optimizer.ok()) {
    std::fprintf(stderr, "parse: %s\n", optimizer.status().ToString().c_str());
    return 1;
  }
  Optimizer& opt = *optimizer;
  if (opt.queries().empty()) {
    std::fprintf(stderr, "the program must contain a ?- query\n");
    return 1;
  }
  const cqlopt::Query& query = opt.queries()[0];

  std::printf("--- input program ---\n%s",
              cqlopt::RenderProgram(opt.program()).c_str());
  std::printf("--- query ---\n%s\n",
              cqlopt::RenderQuery(query, *opt.program().symbols).c_str());

  // Report the constraint analysis behind the rewrite. A separate parse
  // keeps the analysis' scratch predicates out of the rewrite's name space.
  auto analysis_optimizer = Optimizer::FromText(text);
  if (analysis_optimizer.ok()) {
    Optimizer& aopt = *analysis_optimizer;
    auto analysis =
        aopt.RewriteForPredicate(aopt.queries()[0].literal.pred, {});
    if (analysis.ok()) {
      std::printf("--- minimum predicate constraints ---\n");
      for (const auto& [pred, set] : analysis->predicate_constraints) {
        std::printf("  %s: %s\n",
                    aopt.program().symbols->PredicateName(pred).c_str(),
                    RenderConstraintSet(set, *aopt.program().symbols,
                                        cqlopt::DollarNames())
                        .c_str());
      }
      std::printf("--- QRP constraints (after pred propagation) ---\n");
      for (const auto& [pred, set] : analysis->qrp_constraints) {
        std::printf("  %s: %s\n",
                    aopt.program().symbols->PredicateName(pred).c_str(),
                    RenderConstraintSet(set, *aopt.program().symbols,
                                        cqlopt::DollarNames())
                        .c_str());
      }
    }
  }

  auto rewritten = opt.Rewrite(query, sequence);
  if (!rewritten.ok()) {
    std::fprintf(stderr, "rewrite: %s\n",
                 rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("--- rewritten program (%s) ---\n%s",
              sequence.c_str(),
              cqlopt::RenderProgram(rewritten->program).c_str());

  // Optional: load an EDB and evaluate.
  if (argc > 3) {
    std::ifstream edb_file(argv[3]);
    if (!edb_file) {
      std::fprintf(stderr, "cannot open %s\n", argv[3]);
      return 2;
    }
    std::ostringstream edb_buffer;
    edb_buffer << edb_file.rdbuf();
    cqlopt::Database db;
    auto loaded = cqlopt::LoadDatabaseText(edb_buffer.str(),
                                           opt.program().symbols, &db);
    if (!loaded.ok()) {
      std::fprintf(stderr, "edb: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    auto run = opt.Run(rewritten->program, db);
    if (!run.ok()) {
      std::fprintf(stderr, "eval: %s\n", run.status().ToString().c_str());
      return 1;
    }
    auto answers = cqlopt::QueryAnswers(*run, rewritten->query);
    if (!answers.ok()) return 1;
    std::printf("--- evaluation (%d EDB facts) ---\n", *loaded);
    std::printf("%s\n", run->stats.ToString(*opt.program().symbols).c_str());
    std::printf("--- answers (%zu) ---\n", answers->size());
    for (const cqlopt::Fact& f : *answers) {
      std::printf("  %s\n", f.ToString(*opt.program().symbols).c_str());
    }
  }
  return 0;
}
