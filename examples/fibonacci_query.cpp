// Backward Fibonacci (the paper's Examples 1.2 and 4.4): given a value V,
// find the N with fib(N) = V — a query that runs *backwards* through a
// recursive arithmetic program.
//
// The plain Magic Templates rewriting of this program never terminates
// (Table 1). Propagating the predicate constraint fib: $2 >= 1 first makes
// the same evaluation terminate (Table 2) — including answering "no" for
// values that are not Fibonacci numbers.
//
// Usage:
//   ./build/examples/fibonacci_query [value]     (default 5)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/optimizer.h"
#include "transform/magic.h"
#include "transform/predicate_constraints.h"

using cqlopt::ConstraintSet;
using cqlopt::Conjunction;
using cqlopt::Database;
using cqlopt::EvalOptions;
using cqlopt::Fact;
using cqlopt::LinearConstraint;
using cqlopt::LinearExpr;
using cqlopt::MagicOptions;
using cqlopt::Optimizer;
using cqlopt::Rational;
using cqlopt::SipStrategy;

int main(int argc, char** argv) {
  long value = argc > 1 ? std::atol(argv[1]) : 5;

  auto optimizer = Optimizer::FromText(R"(
    r1: fib(0, 1).
    r2: fib(1, 1).
    r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
  )");
  if (!optimizer.ok()) {
    std::fprintf(stderr, "parse: %s\n", optimizer.status().ToString().c_str());
    return 1;
  }
  Optimizer& opt = *optimizer;

  // The predicate constraint of Example 4.4: every Fibonacci value is >= 1.
  // (The *minimum* predicate constraint of fib has no finite representation
  // — Theorem 3.1 — so this sound, hand-supplied one is what makes
  // termination possible.)
  Conjunction at_least_one;
  LinearExpr e = LinearExpr::Constant(Rational(1)) - LinearExpr::Var(2);
  (void)at_least_one.AddLinear(LinearConstraint(e, cqlopt::CmpOp::kLe));
  std::map<cqlopt::PredId, ConstraintSet> given;
  given[opt.symbols()->LookupPredicate("fib")] =
      ConstraintSet::Of(at_least_one);
  auto pfib1 = PropagateGivenConstraints(opt.program(), given);
  if (!pfib1.ok()) return 1;

  auto query =
      opt.ParseQuery("?- fib(N, " + std::to_string(value) + ").");
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    return 1;
  }

  MagicOptions magic_options;
  magic_options.sips = SipStrategy::kFullLeftToRight;
  auto magic = MagicTemplates(*pfib1, *query, magic_options);
  if (!magic.ok()) return 1;

  EvalOptions eval;
  eval.max_iterations = 512;
  auto run = opt.Run(magic->program, Database(), eval);
  if (!run.ok()) {
    std::fprintf(stderr, "eval: %s\n", run.status().ToString().c_str());
    return 1;
  }
  if (!run->stats.reached_fixpoint) {
    std::printf("evaluation hit the iteration cap (value too large?)\n");
    return 1;
  }
  auto answers = cqlopt::QueryAnswers(*run, magic->query);
  if (!answers.ok()) return 1;
  if (answers->empty()) {
    std::printf("no: %ld is not a Fibonacci number "
                "(and the evaluation proved it in %d iterations)\n",
                value, run->stats.iterations);
  } else {
    for (const Fact& f : *answers) {
      std::printf("yes: %s\n", f.ToString(*opt.program().symbols).c_str());
    }
  }
  std::printf("stats: %s\n", run->stats.ToString(*opt.program().symbols).c_str());
  return 0;
}
