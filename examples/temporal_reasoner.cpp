// Temporal reasoning over *constraint facts* — the second CQL capability
// the paper emphasizes (its Section 1 cites temporal deductive databases as
// a driving application): facts whose arguments are constrained intervals
// rather than points.
//
// A traveller leaves the start city at any time in a departure window
// (a genuine constraint fact) and rides fixed-duration connections; the
// question is during which window each city can be reached before a
// deadline. Bottom-up evaluation propagates the windows symbolically;
// Constraint_rewrite pushes the deadline into the recursion so unreachable
// branches are never explored.
//
// Usage:
//   ./build/examples/temporal_reasoner [deadline]   (default 50)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ast/printer.h"
#include "core/optimizer.h"
#include "eval/loader.h"

using cqlopt::Database;
using cqlopt::EvalOptions;
using cqlopt::Fact;
using cqlopt::Optimizer;
using cqlopt::Relation;

int main(int argc, char** argv) {
  long deadline = argc > 1 ? std::atol(argv[1]) : 50;

  // reach(City, T): the traveller can be in City at time T.
  // The deadline is a program-level selection (the Example 1.1 pattern);
  // QRP propagation is query-independent, so a selection must live in a
  // rule to be pushed — the query below then just picks the city.
  auto optimizer = Optimizer::FromText(
      "r0: arrive(C, T) :- reach(C, T), T <= " + std::to_string(deadline) +
      ".\n"
      "r1: reach(C, T) :- depart(C, T).\n"
      "r2: reach(C2, T2) :- reach(C1, T1), link(C1, C2, D), T2 = T1 + D.\n");
  if (!optimizer.ok()) {
    std::fprintf(stderr, "parse: %s\n", optimizer.status().ToString().c_str());
    return 1;
  }
  Optimizer& opt = *optimizer;

  Database db;
  // The departure window is a constraint fact: any time in [0, 10].
  auto loaded = cqlopt::LoadDatabaseText(R"(
    depart(paris, T) :- T >= 0, T <= 10.
    link(paris, lyon, 8).
    link(lyon, milan, 14).
    link(milan, rome, 20).
    link(paris, geneva, 12).
    link(geneva, milan, 9).
    link(milan, venice, 11).
    link(venice, vienna, 25).
    link(vienna, prague, 16).
  )",
                                         opt.program().symbols, &db);
  if (!loaded.ok()) {
    std::fprintf(stderr, "edb: %s\n", loaded.status().ToString().c_str());
    return 1;
  }

  auto query = opt.ParseQuery("?- arrive(rome, T).");
  if (!query.ok()) {
    std::fprintf(stderr, "query: %s\n", query.status().ToString().c_str());
    return 1;
  }

  // Push the deadline into the recursion. The paper's procedures take the
  // minimum predicate constraints of the database predicates as input; here
  // that is "every connection takes positive time" (link: $3 > 0) — without
  // it the projection of T2 <= deadline over T2 = T1 + D says nothing about
  // T1, and nothing can be pushed.
  cqlopt::PipelineOptions options;
  {
    cqlopt::Conjunction positive_duration;
    (void)positive_duration.AddLinear(cqlopt::LinearConstraint(
        -cqlopt::LinearExpr::Var(3), cqlopt::CmpOp::kLt));
    options.edb_constraints[opt.symbols()->LookupPredicate("link")] =
        cqlopt::ConstraintSet::Of(positive_duration);
  }
  auto rewritten = opt.Rewrite(*query, "pred,qrp", options);
  if (!rewritten.ok()) {
    std::fprintf(stderr, "rewrite: %s\n",
                 rewritten.status().ToString().c_str());
    return 1;
  }
  std::printf("--- rewritten program (deadline %ld pushed) ---\n%s\n",
              deadline, cqlopt::RenderProgram(rewritten->program).c_str());

  EvalOptions eval;
  eval.max_iterations = 64;
  auto run = opt.Run(rewritten->program, db, eval);
  if (!run.ok()) {
    std::fprintf(stderr, "eval: %s\n", run.status().ToString().c_str());
    return 1;
  }
  // Print every reachable window (they are constraint facts).
  std::printf("--- reachability windows ---\n");
  for (const auto& [pred, rel] : run->db.relations()) {
    const std::string& name = opt.program().symbols->PredicateName(pred);
    if (name.rfind("reach", 0) != 0) continue;
    for (size_t i = 0; i < rel.size(); ++i) {
      std::printf("  %s\n",
                  rel.fact(i).ToString(*opt.program().symbols).c_str());
    }
  }
  auto answers = cqlopt::QueryAnswers(*run, rewritten->query);
  if (!answers.ok()) return 1;
  std::printf("--- can rome be reached by t=%ld? %s ---\n", deadline,
              answers->empty() ? "no" : "yes");
  for (const Fact& f : *answers) {
    std::printf("  %s\n", f.ToString(*opt.program().symbols).c_str());
  }
  std::printf("stats: %s\n",
              run->stats.ToString(*opt.program().symbols).c_str());
  return 0;
}
