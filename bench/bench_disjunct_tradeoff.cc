// Experiment E7 (DESIGN.md): Section 4.6 — overlapping disjuncts in the
// propagated QRP constraint reduce the number of FACTS but can increase the
// number of DERIVATIONS (a fact in the overlap is derived once per
// disjunct-rule; the paper's singleleg(madison, chicago, 50, 100) example).
// The disjoint-disjunct rewriting of [13] restores the derivation count at
// the price of more rules.
//
// Three arms on the flights program:
//   overlapping   flight's minimum QRP constraint as-is (2 disjuncts);
//   disjoint      MakeDisjoint'ed representation (3 disjuncts);
//   single        the 1-disjunct weakening ($3>0 & $4>0): no duplicate
//                 derivations but also no pruning (paper's 2nd remedy).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "constraint/disjoint.h"
#include "transform/propagate.h"
#include "transform/constraint_rewrite.h"

namespace cqlopt {
namespace bench {
namespace {

/// Builds the three rewritten programs from the same QRP inference.
struct Arms {
  Program overlapping;
  Program disjoint;
  Program single;
  PredId query_pred;
};

Arms BuildArms() {
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  PredId cheap = in.program.symbols->LookupPredicate("cheaporshort");
  ConstraintRewriteOptions options;
  auto rewritten =
      ValueOrDie(ConstraintRewrite(in.program, cheap, options), "rewrite");

  // Propagate three different representations of flight's QRP constraint
  // over the same predicate-propagated base program, so the arms differ
  // ONLY in the representation (the paper's Section 4.6 setup).
  PredId flight = in.program.symbols->LookupPredicate("flight");
  std::map<PredId, ConstraintSet> qrp = rewritten.qrp_constraints;
  auto pred_propagated = ValueOrDie(
      PropagatePredicateConstraints(in.program, {}, {}, nullptr), "pred");

  Arms arms;
  arms.query_pred = cheap;
  arms.overlapping = ValueOrDie(
      PropagateQrpConstraints(pred_propagated, cheap, qrp, {}),
      "propagate overlapping");

  // Disjoint representation (the [13] rewriting).
  {
    std::map<PredId, ConstraintSet> patched = qrp;
    patched[flight] = ValueOrDie(MakeDisjoint(qrp.at(flight)), "disjoint");
    arms.disjoint = ValueOrDie(
        PropagateQrpConstraints(pred_propagated, cheap, patched, {}),
        "propagate disjoint");
  }

  // Single-disjunct weakening: project the disjunction to its common
  // implicate ($3 > 0 & $4 > 0).
  {
    std::map<PredId, ConstraintSet> patched = qrp;
    Conjunction weak;
    LinearExpr t = -LinearExpr::Var(3);
    LinearExpr c = -LinearExpr::Var(4);
    (void)weak.AddLinear(LinearConstraint(t, CmpOp::kLt));
    (void)weak.AddLinear(LinearConstraint(c, CmpOp::kLt));
    patched[flight] = ConstraintSet::Of(weak);
    arms.single = ValueOrDie(
        PropagateQrpConstraints(pred_propagated, cheap, patched, {}),
        "propagate single");
  }
  return arms;
}

void PrintReproduction() {
  std::printf("=== Section 4.6: overlapping vs disjoint vs single-disjunct "
              "QRP representation ===\n");
  Arms arms = BuildArms();
  std::printf("rules: overlapping=%zu disjoint=%zu single=%zu "
              "(paper: disjoint representation may blow up rule count)\n",
              arms.overlapping.rules.size(), arms.disjoint.rules.size(),
              arms.single.rules.size());
  std::printf("%8s | %22s | %22s | %22s\n", "|legs|", "overlapping f/d",
              "disjoint f/d", "single f/d");
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  for (int legs : {24, 48}) {
    FlightNetworkSpec spec;
    spec.airports = 12;
    spec.legs = legs;
    // Cheap-and-short legs overlap both disjuncts frequently.
    spec.time_max = 300;
    spec.cost_max = 200;
    Database db;
    (void)AddFlightNetwork(in.program.symbols.get(), spec, &db);
    EvalOptions eval;
    eval.max_iterations = 64;
    auto report = [&](const Program& program) {
      auto run = ValueOrDie(Evaluate(program, db, eval), "eval");
      return std::make_pair(run.db.TotalFacts() - db.TotalFacts(),
                            run.stats.derivations);
    };
    auto [fo, do_] = report(arms.overlapping);
    auto [fd, dd] = report(arms.disjoint);
    auto [fs, ds] = report(arms.single);
    std::printf("%8d | %12zu / %7ld | %12zu / %7ld | %12zu / %7ld\n", legs,
                fo, do_, fd, dd, fs, ds);
  }
  std::printf("(paper: overlap => duplicate derivations of facts in the "
              "intersection; disjoint or single-disjunct avoid them)\n\n");
}

void BM_MakeDisjointFlightQrp(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  PredId cheap = in.program.symbols->LookupPredicate("cheaporshort");
  auto rewritten =
      ValueOrDie(ConstraintRewrite(in.program, cheap, {}), "rewrite");
  PredId flight = in.program.symbols->LookupPredicate("flight");
  const ConstraintSet& qrp = rewritten.qrp_constraints.at(flight);
  for (auto _ : state) {
    auto out = MakeDisjoint(qrp);
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_MakeDisjointFlightQrp);

void BM_EvalArm(benchmark::State& state, int which) {
  Arms arms = BuildArms();
  const Program& program = which == 0   ? arms.overlapping
                           : which == 1 ? arms.disjoint
                                        : arms.single;
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  FlightNetworkSpec spec;
  spec.airports = 12;
  spec.legs = 48;
  Database db;
  (void)AddFlightNetwork(in.program.symbols.get(), spec, &db);
  EvalOptions eval;
  eval.max_iterations = 64;
  for (auto _ : state) {
    auto run = Evaluate(program, db, eval);
    benchmark::DoNotOptimize(run.ok());
  }
}
void BM_EvalOverlapping(benchmark::State& state) { BM_EvalArm(state, 0); }
void BM_EvalDisjoint(benchmark::State& state) { BM_EvalArm(state, 1); }
void BM_EvalSingle(benchmark::State& state) { BM_EvalArm(state, 2); }
BENCHMARK(BM_EvalOverlapping);
BENCHMARK(BM_EvalDisjoint);
BENCHMARK(BM_EvalSingle);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  cqlopt::bench::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
