// Experiment E4 (DESIGN.md): Example 6.1 — the GMT grounding step as a
// fold/unfold sequence (procedure Ground_Fold_Unfold, Section 6.2).
//
// Paper claims reproduced:
//   - the bcf adornment gives p^cf and q^ccf;
//   - P^{ad,mg} has non-range-restricted magic rules (computes constraint
//     facts);
//   - Ground_Fold_Unfold produces the paper's 9-rule range-restricted
//     program {r41, r43, r51, r53, r61, r62, r11, r21, r31} with three
//     supplementary predicates, equivalent on the query (Theorem 6.2).

#include <random>

#include <benchmark/benchmark.h>

#include "ast/normalize.h"
#include "bench_util.h"
#include "transform/gmt.h"

namespace cqlopt {
namespace bench {
namespace {

const char* kExample61 =
    "r1: p(X, Y) :- U > 10, q(X, U, V), W > V, p(W, Y).\n"
    "r2: p(X, Y) :- u(X, Y).\n"
    "r3: q(X, Y, Z) :- q1(X, U), q2(W, Y), q3(U, W, Z).\n"
    "?- X > 10, p(X, Y).\n";

Database MakeEdb(SymbolTable* symbols, int n, uint64_t seed) {
  Database db;
  (void)AddBinaryRelation(symbols, "u", n, 40, seed, &db);
  (void)AddBinaryRelation(symbols, "q1", n, 40, seed + 1, &db);
  (void)AddBinaryRelation(symbols, "q2", n, 40, seed + 2, &db);
  // q3 is ternary.
  std::mt19937_64 rng(seed + 3);
  for (int i = 0; i < n; ++i) {
    (void)db.AddGroundFact(
        symbols, "q3",
        {Database::Value::Number(Rational(static_cast<int64_t>(rng() % 40))),
         Database::Value::Number(Rational(static_cast<int64_t>(rng() % 40))),
         Database::Value::Number(
             Rational(static_cast<int64_t>(rng() % 40)))});
  }
  return db;
}

void PrintReproduction() {
  ParsedInput in = ParseWithQueryOrDie(kExample61);
  auto gmt = ValueOrDie(GmtTransform(in.program, in.query), "gmt");
  std::printf("=== Example 6.1: GMT grounding via fold/unfold ===\n");
  std::printf("--- P^{ad,mg} (range-restricted: %s; paper: no) ---\n%s",
              IsRangeRestricted(gmt.magic) ? "yes (MISMATCH)" : "no",
              RenderProgram(gmt.magic).c_str());
  std::printf("--- P^{ad,mg,gr} (range-restricted: %s; paper: yes) ---\n%s",
              IsRangeRestricted(gmt.grounded) ? "yes" : "NO (MISMATCH)",
              RenderProgram(gmt.grounded).c_str());
  std::printf("rules: %zu (paper: 9)   supplementary predicates: %zu "
              "(paper: 3)\n",
              gmt.grounded.rules.size(), gmt.supplementary.size());

  // Query equivalence and ground-facts property on a synthetic EDB.
  Database db = MakeEdb(in.program.symbols.get(), 40, 17);
  EvalOptions eval;
  eval.max_iterations = 64;
  auto original = ValueOrDie(Evaluate(in.program, db, eval), "orig");
  auto grounded = ValueOrDie(Evaluate(gmt.grounded, db, eval), "grounded");
  auto a1 = ValueOrDie(QueryAnswers(original, in.query), "answers1");
  auto a2 = ValueOrDie(QueryAnswers(grounded, gmt.query), "answers2");
  std::printf("answers original=%zu grounded=%zu equal=%s "
              "(Theorem 6.2: query equivalent)\n",
              a1.size(), a2.size(), SameAnswers(a1, a2) ? "yes" : "NO");
  std::printf("grounded evaluation all-ground: %s   facts original=%zu "
              "grounded=%zu\n\n",
              grounded.stats.all_ground ? "yes" : "NO (MISMATCH)",
              original.db.TotalFacts() - db.TotalFacts(),
              grounded.db.TotalFacts() - db.TotalFacts());
}

void BM_GmtTransform(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(kExample61);
  for (auto _ : state) {
    auto gmt = GmtTransform(in.program, in.query);
    benchmark::DoNotOptimize(gmt.ok());
  }
}
BENCHMARK(BM_GmtTransform);

void BM_EvalGrounded(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(kExample61);
  auto gmt = ValueOrDie(GmtTransform(in.program, in.query), "gmt");
  Database db = MakeEdb(in.program.symbols.get(),
                        static_cast<int>(state.range(0)), 17);
  EvalOptions eval;
  eval.max_iterations = 64;
  for (auto _ : state) {
    auto run = Evaluate(gmt.grounded, db, eval);
    benchmark::DoNotOptimize(run.ok());
  }
}
BENCHMARK(BM_EvalGrounded)->Arg(20)->Arg(40);

void BM_EvalOriginalAllAnswers(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(kExample61);
  Database db = MakeEdb(in.program.symbols.get(),
                        static_cast<int>(state.range(0)), 17);
  EvalOptions eval;
  eval.max_iterations = 64;
  for (auto _ : state) {
    auto run = Evaluate(in.program, db, eval);
    benchmark::DoNotOptimize(run.ok());
  }
}
BENCHMARK(BM_EvalOriginalAllAnswers)->Arg(20)->Arg(40);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  cqlopt::bench::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
