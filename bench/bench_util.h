#ifndef CQLOPT_BENCH_BENCH_UTIL_H_
#define CQLOPT_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark harnesses. Each bench binary first
// prints the paper artifact it regenerates (table rows / fact counts /
// derivation traces), then runs google-benchmark timings of the underlying
// computation. EXPERIMENTS.md records paper-vs-measured for each binary.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "ast/parser.h"
#include "ast/printer.h"
#include "core/equivalence.h"
#include "core/workload.h"
#include "eval/seminaive.h"
#include "transform/pipeline.h"

namespace cqlopt {
namespace bench {

struct ParsedInput {
  Program program;
  Query query;
};

inline ParsedInput ParseWithQueryOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    std::abort();
  }
  if (parsed->queries.size() != 1) {
    std::fprintf(stderr, "expected exactly one query\n");
    std::abort();
  }
  return ParsedInput{parsed->program, parsed->queries[0]};
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// The paper's Example 1.1 / 4.3 flights program.
inline const char* FlightsProgram() {
  return "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n"
         "r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n"
         "r3: flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, T > 0.\n"
         "r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), "
         "flight(D1, D, T2, C2), T = T1 + T2 + 30, C = C1 + C2.\n"
         "?- cheaporshort(a5, a9, Time, Cost).\n";
}

/// The paper's Example 1.2 backward-Fibonacci program.
inline const char* FibProgram() {
  return "r1: fib(0, 1).\n"
         "r2: fib(1, 1).\n"
         "r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n"
         "?- fib(N, 5).\n";
}

/// Runs a rewritten pipeline on a database and returns the evaluation.
inline EvalResult RunPipeline(const ParsedInput& in, const Database& db,
                              const char* spec,
                              const PipelineOptions& options = {},
                              int max_iterations = 256) {
  auto steps = ValueOrDie(ParseSteps(spec), "steps");
  auto rewritten =
      ValueOrDie(ApplyPipeline(in.program, in.query, steps, options), spec);
  EvalOptions eval;
  eval.max_iterations = max_iterations;
  return ValueOrDie(Evaluate(rewritten.program, db, eval), spec);
}

}  // namespace bench
}  // namespace cqlopt

#endif  // CQLOPT_BENCH_BENCH_UTIL_H_
