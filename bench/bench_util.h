#ifndef CQLOPT_BENCH_BENCH_UTIL_H_
#define CQLOPT_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark harnesses. Each bench binary first
// prints the paper artifact it regenerates (table rows / fact counts /
// derivation traces), then runs google-benchmark timings of the underlying
// computation. EXPERIMENTS.md records paper-vs-measured for each binary.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "ast/printer.h"
#include "constraint/decision_cache.h"
#include "core/equivalence.h"
#include "core/workload.h"
#include "eval/seminaive.h"
#include "transform/pipeline.h"

namespace cqlopt {
namespace bench {

struct ParsedInput {
  Program program;
  Query query;
};

inline ParsedInput ParseWithQueryOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    std::abort();
  }
  if (parsed->queries.size() != 1) {
    std::fprintf(stderr, "expected exactly one query\n");
    std::abort();
  }
  return ParsedInput{parsed->program, parsed->queries[0]};
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// The paper's Example 1.1 / 4.3 flights program.
inline const char* FlightsProgram() {
  return "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n"
         "r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n"
         "r3: flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, T > 0.\n"
         "r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), "
         "flight(D1, D, T2, C2), T = T1 + T2 + 30, C = C1 + C2.\n"
         "?- cheaporshort(a5, a9, Time, Cost).\n";
}

/// The paper's Example 1.2 backward-Fibonacci program.
inline const char* FibProgram() {
  return "r1: fib(0, 1).\n"
         "r2: fib(1, 1).\n"
         "r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n"
         "?- fib(N, 5).\n";
}

/// Runs a rewritten pipeline on a database and returns the evaluation.
inline EvalResult RunPipeline(const ParsedInput& in, const Database& db,
                              const char* spec,
                              const PipelineOptions& options = {},
                              int max_iterations = 256) {
  auto steps = ValueOrDie(ParseSteps(spec), "steps");
  auto rewritten =
      ValueOrDie(ApplyPipeline(in.program, in.query, steps, options), spec);
  EvalOptions eval;
  eval.max_iterations = max_iterations;
  return ValueOrDie(Evaluate(rewritten.program, db, eval), spec);
}

/// Tentpole comparison: evaluates `program` under the global semi-naive
/// oracle and under EvalStrategy::kStratified, verifies both compute the
/// same final fact sets, and prints the join access-path counters. The
/// "scan-equivalent" column is what the linear scans replaced by index
/// probes would have enumerated, so indexed vs scan-equivalent is the
/// candidate-enumeration saving of the hash indexes on this workload.
inline void PrintStratifiedComparison(const Program& program,
                                      const Database& edb, const char* label,
                                      int max_iterations = 64) {
  EvalOptions oracle_opts;
  oracle_opts.max_iterations = max_iterations;
  EvalResult oracle = ValueOrDie(Evaluate(program, edb, oracle_opts), label);
  EvalOptions strat_opts;
  strat_opts.max_iterations = max_iterations;
  strat_opts.strategy = EvalStrategy::kStratified;
  EvalResult strat = ValueOrDie(Evaluate(program, edb, strat_opts), label);

  // Per-predicate canonical key sets; on mismatch fall back to the semantic
  // check (reconciliation may keep different but equivalent representatives).
  bool same = oracle.stats.reached_fixpoint == strat.stats.reached_fixpoint;
  std::set<PredId> preds;
  for (const auto& [pred, rel] : oracle.db.relations()) preds.insert(pred);
  for (const auto& [pred, rel] : strat.db.relations()) preds.insert(pred);
  for (PredId pred : preds) {
    std::set<std::string> a;
    std::set<std::string> b;
    std::vector<Fact> fa;
    std::vector<Fact> fb;
    if (const Relation* rel = oracle.db.Find(pred)) {
      for (const Relation::Entry& e : rel->entries()) {
        a.insert(e.fact.Key());
        fa.push_back(e.fact);
      }
    }
    if (const Relation* rel = strat.db.Find(pred)) {
      for (const Relation::Entry& e : rel->entries()) {
        b.insert(e.fact.Key());
        fb.push_back(e.fact);
      }
    }
    if (a == b) continue;
    if (fa.empty() != fb.empty() || !SameAnswers(fa, fb)) same = false;
  }

  const EvalStats& s = strat.stats;
  std::printf("--- SCC-stratified vs global semi-naive oracle (%s) ---\n",
              label);
  std::printf("same final facts: %s   sccs=%zu   iterations: oracle=%d "
              "stratified=%d\n",
              same ? "yes" : "NO (MISMATCH)", s.scc_iterations.size(),
              oracle.stats.iterations, s.iterations);
  double ratio = s.index_candidates > 0
                     ? static_cast<double>(s.indexed_scan_equivalent) /
                           static_cast<double>(s.index_candidates)
                     : 0.0;
  std::printf("join candidates at indexed probes: enumerated=%ld "
              "scan-equivalent=%ld (%.1fx fewer); scan-path probes=%ld "
              "candidates=%ld\n",
              s.index_candidates, s.indexed_scan_equivalent, ratio,
              s.scan_probes, s.scan_candidates);
  long lookups = s.cache_hits + s.cache_misses;
  if (lookups > 0) {
    std::printf("decision cache: hits=%ld misses=%ld hit-rate=%.1f%%",
                s.cache_hits, s.cache_misses,
                100.0 * static_cast<double>(s.cache_hits) /
                    static_cast<double>(lookups));
    if (s.cache_evictions > 0) {
      std::printf(" evictions=%ld", s.cache_evictions);
    }
    std::printf("\n");
  }
}

/// Removes `--json` from argv (so google-benchmark never sees it) and
/// reports whether it was present. Call before benchmark::Initialize.
inline bool StripJsonFlag(int* argc, char** argv) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      found = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return found;
}

/// One measured arm of a WriteBenchJson report.
struct JsonArm {
  std::string label;
  EvalStrategy strategy = EvalStrategy::kStratified;
  int threads = 1;
  bool cache = true;
};

/// `--json` mode: evaluates `program` once per arm — the serial oracle, the
/// stratified engine at 1/2/8 worker threads, and a stratified cache-off
/// ablation — and writes BENCH_<name>.json with the wall-clock and the
/// derivation/probe/cache counters of each arm. The decision cache is
/// cleared before every arm so each measures a cold start (hits within an
/// arm are real re-decisions saved, not leftovers of the previous arm).
inline void WriteBenchJson(const char* name, const Program& program,
                           const Database& edb, int max_iterations = 64) {
  const JsonArm arms[] = {
      {"seminaive-oracle", EvalStrategy::kSemiNaive, 1, true},
      {"stratified-t1", EvalStrategy::kStratified, 1, true},
      {"stratified-t2", EvalStrategy::kStratified, 2, true},
      {"stratified-t8", EvalStrategy::kStratified, 8, true},
      {"stratified-t1-nocache", EvalStrategy::kStratified, 1, false},
  };
  std::string json = "{\n  \"bench\": \"" + std::string(name) +
                     "\",\n  \"arms\": [\n";
  bool first = true;
  for (const JsonArm& arm : arms) {
    std::optional<DecisionCacheDisabler> cache_off;
    if (!arm.cache) cache_off.emplace();
    DecisionCache::Instance().Clear();
    EvalOptions opts;
    opts.max_iterations = max_iterations;
    opts.strategy = arm.strategy;
    opts.threads = arm.threads;
    auto start = std::chrono::steady_clock::now();
    EvalResult run = ValueOrDie(Evaluate(program, edb, opts),
                                arm.label.c_str());
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    const EvalStats& s = run.stats;
    char row[768];
    std::snprintf(
        row, sizeof(row),
        "    {\"label\": \"%s\", \"threads\": %d, \"cache\": %s, "
        "\"wall_ms\": %.3f, \"derivations\": %ld, \"inserted\": %ld, "
        "\"subsumed\": %ld, \"duplicates\": %ld, \"iterations\": %d, "
        "\"index_probes\": %ld, \"scan_probes\": %ld, \"cache_hits\": %ld, "
        "\"cache_misses\": %ld, \"cache_evictions\": %ld}",
        arm.label.c_str(), arm.threads, arm.cache ? "true" : "false", wall_ms,
        s.derivations, s.inserted, s.subsumed, s.duplicates, s.iterations,
        s.index_probes, s.scan_probes, s.cache_hits, s.cache_misses,
        s.cache_evictions);
    if (!first) json += ",\n";
    json += row;
    first = false;
  }
  json += "\n  ]\n}\n";
  std::string path = "BENCH_" + std::string(name) + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace bench
}  // namespace cqlopt

#endif  // CQLOPT_BENCH_BENCH_UTIL_H_
