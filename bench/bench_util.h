#ifndef CQLOPT_BENCH_BENCH_UTIL_H_
#define CQLOPT_BENCH_BENCH_UTIL_H_

// Shared helpers for the benchmark harnesses. Each bench binary first
// prints the paper artifact it regenerates (table rows / fact counts /
// derivation traces), then runs google-benchmark timings of the underlying
// computation. EXPERIMENTS.md records paper-vs-measured for each binary.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "ast/printer.h"
#include "constraint/decision_cache.h"
#include "constraint/interval.h"
#include "core/equivalence.h"
#include "core/workload.h"
#include "eval/seminaive.h"
#include "transform/pipeline.h"

namespace cqlopt {
namespace bench {

struct ParsedInput {
  Program program;
  Query query;
};

inline ParsedInput ParseWithQueryOrDie(const std::string& text) {
  auto parsed = ParseProgram(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    std::abort();
  }
  if (parsed->queries.size() != 1) {
    std::fprintf(stderr, "expected exactly one query\n");
    std::abort();
  }
  return ParsedInput{parsed->program, parsed->queries[0]};
}

template <typename T>
T ValueOrDie(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// The paper's Example 1.1 / 4.3 flights program.
inline const char* FlightsProgram() {
  return "r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.\n"
         "r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.\n"
         "r3: flight(S, D, T, C) :- singleleg(S, D, T, C), C > 0, T > 0.\n"
         "r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), "
         "flight(D1, D, T2, C2), T = T1 + T2 + 30, C = C1 + C2.\n"
         "?- cheaporshort(a5, a9, Time, Cost).\n";
}

/// The paper's Example 1.2 backward-Fibonacci program.
inline const char* FibProgram() {
  return "r1: fib(0, 1).\n"
         "r2: fib(1, 1).\n"
         "r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).\n"
         "?- fib(N, 5).\n";
}

/// Runs a rewritten pipeline on a database and returns the evaluation.
inline EvalResult RunPipeline(const ParsedInput& in, const Database& db,
                              const char* spec,
                              const PipelineOptions& options = {},
                              int max_iterations = 256) {
  auto steps = ValueOrDie(ParseSteps(spec), "steps");
  auto rewritten =
      ValueOrDie(ApplyPipeline(in.program, in.query, steps, options), spec);
  EvalOptions eval;
  eval.max_iterations = max_iterations;
  return ValueOrDie(Evaluate(rewritten.program, db, eval), spec);
}

/// Tentpole comparison: evaluates `program` under the global semi-naive
/// oracle and under EvalStrategy::kStratified, verifies both compute the
/// same final fact sets, and prints the join access-path counters. The
/// "scan-equivalent" column is what the linear scans replaced by index
/// probes would have enumerated, so indexed vs scan-equivalent is the
/// candidate-enumeration saving of the hash indexes on this workload.
inline void PrintStratifiedComparison(const Program& program,
                                      const Database& edb, const char* label,
                                      int max_iterations = 64) {
  EvalOptions oracle_opts;
  oracle_opts.max_iterations = max_iterations;
  EvalResult oracle = ValueOrDie(Evaluate(program, edb, oracle_opts), label);
  EvalOptions strat_opts;
  strat_opts.max_iterations = max_iterations;
  strat_opts.strategy = EvalStrategy::kStratified;
  EvalResult strat = ValueOrDie(Evaluate(program, edb, strat_opts), label);

  // Per-predicate canonical key sets; on mismatch fall back to the semantic
  // check (reconciliation may keep different but equivalent representatives).
  bool same = oracle.stats.reached_fixpoint == strat.stats.reached_fixpoint;
  std::set<PredId> preds;
  for (const auto& [pred, rel] : oracle.db.relations()) preds.insert(pred);
  for (const auto& [pred, rel] : strat.db.relations()) preds.insert(pred);
  for (PredId pred : preds) {
    std::set<std::string> a;
    std::set<std::string> b;
    std::vector<Fact> fa;
    std::vector<Fact> fb;
    if (const Relation* rel = oracle.db.Find(pred)) {
      for (size_t i = 0; i < rel->size(); ++i) {
        a.insert(rel->fact(i).Key());
        fa.push_back(rel->fact(i));
      }
    }
    if (const Relation* rel = strat.db.Find(pred)) {
      for (size_t i = 0; i < rel->size(); ++i) {
        b.insert(rel->fact(i).Key());
        fb.push_back(rel->fact(i));
      }
    }
    if (a == b) continue;
    if (fa.empty() != fb.empty() || !SameAnswers(fa, fb)) same = false;
  }

  const EvalStats& s = strat.stats;
  std::printf("--- SCC-stratified vs global semi-naive oracle (%s) ---\n",
              label);
  std::printf("same final facts: %s   sccs=%zu   iterations: oracle=%d "
              "stratified=%d\n",
              same ? "yes" : "NO (MISMATCH)", s.scc_iterations.size(),
              oracle.stats.iterations, s.iterations);
  double ratio = s.index_candidates > 0
                     ? static_cast<double>(s.indexed_scan_equivalent) /
                           static_cast<double>(s.index_candidates)
                     : 0.0;
  std::printf("join candidates at indexed probes: enumerated=%ld "
              "scan-equivalent=%ld (%.1fx fewer); scan-path probes=%ld "
              "candidates=%ld\n",
              s.index_candidates, s.indexed_scan_equivalent, ratio,
              s.scan_probes, s.scan_candidates);
  long lookups = s.cache_hits + s.cache_misses;
  if (lookups > 0) {
    std::printf("decision cache: hits=%ld misses=%ld hit-rate=%.1f%%",
                s.cache_hits, s.cache_misses,
                100.0 * static_cast<double>(s.cache_hits) /
                    static_cast<double>(lookups));
    if (s.cache_evictions > 0) {
      std::printf(" evictions=%ld", s.cache_evictions);
    }
    std::printf("\n");
  }
}

/// Removes `--json` from argv (so google-benchmark never sees it) and
/// reports whether it was present. Call before benchmark::Initialize.
inline bool StripJsonFlag(int* argc, char** argv) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      found = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  return found;
}

/// One measured arm of a WriteBenchJson report.
struct JsonArm {
  std::string label;
  EvalStrategy strategy = EvalStrategy::kStratified;
  int threads = 1;
  bool cache = true;
  bool prepass = true;
  bool interval = true;
};

/// `--json` mode: evaluates `program` once per arm — the serial oracle, the
/// stratified engine at 1/2/8 worker threads, and stratified cache-off /
/// prepass-off / interval-index-off ablations — and writes
/// BENCH_<name>.json with the wall-clock and the
/// derivation/probe/cache/prepass/interval counters of each arm, plus the
/// columnar-storage footprint (approximate resident bytes and bytes per
/// stored fact of the final database). The decision cache is cleared before
/// every arm so each measures a cold start (hits within an arm are real
/// re-decisions saved, not leftovers of the previous arm). `extra_sections`,
/// when nonempty, is spliced into the report as additional top-level JSON
/// members (no leading comma) — bench_flights uses it for the
/// constrained-join interval ablation.
inline void WriteBenchJson(const char* name, const Program& program,
                           const Database& edb, int max_iterations = 64,
                           const std::string& extra_sections = "") {
  const JsonArm arms[] = {
      {"seminaive-oracle", EvalStrategy::kSemiNaive, 1, true, true, true},
      {"stratified-t1", EvalStrategy::kStratified, 1, true, true, true},
      {"stratified-t2", EvalStrategy::kStratified, 2, true, true, true},
      {"stratified-t8", EvalStrategy::kStratified, 8, true, true, true},
      {"stratified-t1-nocache", EvalStrategy::kStratified, 1, false, true,
       true},
      {"stratified-t1-noprepass", EvalStrategy::kStratified, 1, true, false,
       true},
      {"stratified-t1-nointerval", EvalStrategy::kStratified, 1, true, true,
       false},
  };
  std::string json = "{\n  \"bench\": \"" + std::string(name) +
                     "\",\n  \"arms\": [\n";
  bool first = true;
  for (const JsonArm& arm : arms) {
    std::optional<DecisionCacheDisabler> cache_off;
    if (!arm.cache) cache_off.emplace();
    DecisionCache::Instance().Clear();
    prepass::ClearMemo();
    EvalOptions opts;
    opts.max_iterations = max_iterations;
    opts.strategy = arm.strategy;
    opts.threads = arm.threads;
    opts.prepass = arm.prepass;
    opts.interval_index = arm.interval;
    auto start = std::chrono::steady_clock::now();
    EvalResult run = ValueOrDie(Evaluate(program, edb, opts),
                                arm.label.c_str());
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    const EvalStats& s = run.stats;
    size_t resident = run.db.ApproxBytes();
    size_t facts = run.db.TotalFacts();
    double bytes_per_fact =
        facts > 0 ? static_cast<double>(resident) / facts : 0.0;
    char row[1280];
    std::snprintf(
        row, sizeof(row),
        "    {\"label\": \"%s\", \"threads\": %d, \"cache\": %s, "
        "\"prepass\": %s, \"interval\": %s, \"wall_ms\": %.3f, "
        "\"derivations\": %ld, "
        "\"inserted\": %ld, \"subsumed\": %ld, \"duplicates\": %ld, "
        "\"iterations\": %d, \"index_probes\": %ld, \"scan_probes\": %ld, "
        "\"interval_probes\": %ld, \"interval_candidates\": %ld, "
        "\"interval_scan_equivalent\": %ld, \"interval_runs_pruned\": %ld, "
        "\"interval_build_ms\": %.3f, "
        "\"resident_bytes\": %zu, \"bytes_per_fact\": %.1f, "
        "\"cache_hits\": %ld, \"cache_misses\": %ld, "
        "\"cache_evictions\": %ld, \"prepass_conclusive\": %ld, "
        "\"prepass_fallback\": %ld}",
        arm.label.c_str(), arm.threads, arm.cache ? "true" : "false",
        arm.prepass ? "true" : "false", arm.interval ? "true" : "false",
        wall_ms, s.derivations, s.inserted,
        s.subsumed, s.duplicates, s.iterations, s.index_probes, s.scan_probes,
        s.interval_probes, s.interval_candidates, s.interval_scan_equivalent,
        s.interval_runs_pruned, s.interval_index_build_ns / 1e6,
        resident, bytes_per_fact,
        s.cache_hits, s.cache_misses, s.cache_evictions, s.prepass_conclusive,
        s.prepass_fallback);
    if (!first) json += ",\n";
    json += row;
    first = false;
  }
  json += "\n  ]";
  if (!extra_sections.empty()) json += ",\n  " + extra_sections;
  json += "\n}\n";
  std::string path = "BENCH_" + std::string(name) + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// Measures the interval-index ablation on one workload — stratified
/// single-thread, interval pruning on vs off, cold decision cache, median
/// of `reps` runs — and returns it as a one-line JSON member
/// `"constrained_join": {...}` for WriteBenchJson's extra_sections. The
/// headline numbers: `speedup` (wall off / wall on) and `candidate_cut`
/// (scan-equivalent candidates / candidates actually enumerated at interval
/// probes), i.e. how many join candidates the sorted-run binary searches
/// skipped without touching them.
inline std::string MeasureIntervalAblation(const char* label,
                                           const Program& program,
                                           const Database& edb,
                                           int max_iterations = 64,
                                           int reps = 5) {
  double wall[2] = {0, 0};  // [0] = interval on, [1] = off.
  EvalStats stats[2];
  for (int arm = 0; arm < 2; ++arm) {
    std::vector<double> walls;
    for (int rep = 0; rep < reps; ++rep) {
      DecisionCache::Instance().Clear();
      prepass::ClearMemo();
      EvalOptions opts;
      opts.max_iterations = max_iterations;
      opts.strategy = EvalStrategy::kStratified;
      opts.interval_index = arm == 0;
      auto start = std::chrono::steady_clock::now();
      EvalResult run = ValueOrDie(Evaluate(program, edb, opts), label);
      walls.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
      stats[arm] = run.stats;
    }
    std::sort(walls.begin(), walls.end());
    wall[arm] = walls[walls.size() / 2];
  }
  const EvalStats& on = stats[0];
  double speedup = wall[0] > 0 ? wall[1] / wall[0] : 0.0;
  double cut = on.interval_candidates > 0
                   ? static_cast<double>(on.interval_scan_equivalent) /
                         static_cast<double>(on.interval_candidates)
                   : 0.0;
  char row[768];
  std::snprintf(
      row, sizeof(row),
      "\"constrained_join\": {\"label\": \"%s\", \"reps\": %d, "
      "\"speedup\": %.2f, \"candidate_cut\": %.1f, "
      "\"wall_ms_interval_on\": %.3f, \"wall_ms_interval_off\": %.3f, "
      "\"interval_probes\": %ld, \"interval_candidates\": %ld, "
      "\"interval_scan_equivalent\": %ld, \"interval_runs_pruned\": %ld, "
      "\"interval_build_ms\": %.3f}",
      label, reps, speedup, cut, wall[0], wall[1], on.interval_probes,
      on.interval_candidates, on.interval_scan_equivalent,
      on.interval_runs_pruned, on.interval_index_build_ns / 1e6);
  std::printf("interval ablation (%s): on=%.3fms off=%.3fms speedup=%.2fx "
              "candidates=%ld scan-equivalent=%ld cut=%.1fx runs-pruned=%ld\n",
              label, wall[0], wall[1], speedup, on.interval_candidates,
              on.interval_scan_equivalent, cut, on.interval_runs_pruned);
  return row;
}

/// Merges one workload row into BENCH_prepass.json. The file keeps every
/// workload entry on its own line inside the "workloads" array, so each
/// bench binary can contribute its row independently: the writer reads the
/// existing file, keeps the rows of other workloads, and replaces (or
/// appends) the row for `workload`. `row_json` must be a complete one-line
/// JSON object starting with {"workload": "<name>", ...}.
inline void MergePrepassWorkload(const std::string& workload,
                                 const std::string& row_json) {
  const char* path = "BENCH_prepass.json";
  std::vector<std::string> rows;
  if (FILE* f = std::fopen(path, "r")) {
    std::string contents;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      contents.append(buf, n);
    }
    std::fclose(f);
    const std::string marker = "{\"workload\": \"";
    size_t pos = 0;
    while ((pos = contents.find(marker, pos)) != std::string::npos) {
      size_t name_start = pos + marker.size();
      size_t name_end = contents.find('"', name_start);
      size_t line_end = contents.find('\n', pos);
      if (name_end == std::string::npos) break;
      if (line_end == std::string::npos) line_end = contents.size();
      std::string name = contents.substr(name_start, name_end - name_start);
      if (name != workload) {
        std::string row = contents.substr(pos, line_end - pos);
        while (!row.empty() && (row.back() == ',' || row.back() == '\r')) {
          row.pop_back();
        }
        rows.push_back(row);
      }
      pos = line_end;
    }
  }
  rows.push_back(row_json);
  std::string out = "{\n  \"bench\": \"prepass\",\n  \"workloads\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    out += "    " + rows[i];
    if (i + 1 < rows.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    std::abort();
  }
  std::fputs(out.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s (workload %s)\n", path, workload.c_str());
}

/// Measures the interval-prepass ablation on one evaluation workload and
/// records it in BENCH_prepass.json: stratified single-thread runs with the
/// prepass on vs off, the decision cache cleared before every run (cold
/// start — the prepass win must not hide behind warm cache hits), median
/// wall-clock of `reps` runs per arm, plus the conclusive/fallback split of
/// the approximate tier. The arms run under full set-implication
/// subsumption — the engine's decision-heaviest configuration (the paper's
/// Section 2 semantic check), where constraint decisions rather than join
/// machinery dominate and the two-tier split is what's actually being
/// measured; both arms stay byte-identical in every mode (the differential
/// matrices in tests/ pin that).
inline void WritePrepassJson(const char* workload, const Program& program,
                             const Database& edb, int max_iterations = 64,
                             int reps = 5) {
  struct ArmOut {
    double wall_ms = 0;
    EvalStats stats;
  };
  ArmOut out[2];  // [0] = prepass on, [1] = prepass off.
  for (int arm = 0; arm < 2; ++arm) {
    std::optional<prepass::PrepassDisabler> prepass_off;
    if (arm == 1) prepass_off.emplace();
    std::vector<double> walls;
    for (int rep = 0; rep < reps; ++rep) {
      DecisionCache::Instance().Clear();
      prepass::ClearMemo();
      EvalOptions opts;
      opts.max_iterations = max_iterations;
      opts.strategy = EvalStrategy::kStratified;
      opts.subsumption = SubsumptionMode::kSetImplication;
      auto start = std::chrono::steady_clock::now();
      EvalResult run = ValueOrDie(Evaluate(program, edb, opts), workload);
      walls.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count());
      out[arm].stats = run.stats;
    }
    std::sort(walls.begin(), walls.end());
    out[arm].wall_ms = walls[walls.size() / 2];
  }
  const EvalStats& on = out[0].stats;
  const EvalStats& off = out[1].stats;
  long decisions = on.prepass_conclusive + on.prepass_fallback;
  double conclusive_rate =
      decisions > 0
          ? static_cast<double>(on.prepass_conclusive) / decisions
          : 0.0;
  double delta_pct =
      out[1].wall_ms > 0
          ? 100.0 * (out[1].wall_ms - out[0].wall_ms) / out[1].wall_ms
          : 0.0;
  char row[1024];
  std::snprintf(
      row, sizeof(row),
      "{\"workload\": \"%s\", \"reps\": %d, \"delta_pct\": %.1f, "
      "\"conclusive_rate\": %.4f, \"arms\": ["
      "{\"label\": \"prepass-on\", \"wall_ms\": %.3f, "
      "\"prepass_conclusive\": %ld, \"prepass_fallback\": %ld, "
      "\"cache_hits\": %ld, \"cache_misses\": %ld}, "
      "{\"label\": \"prepass-off\", \"wall_ms\": %.3f, "
      "\"prepass_conclusive\": %ld, \"prepass_fallback\": %ld, "
      "\"cache_hits\": %ld, \"cache_misses\": %ld}]}",
      workload, reps, delta_pct, conclusive_rate, out[0].wall_ms,
      on.prepass_conclusive, on.prepass_fallback, on.cache_hits,
      on.cache_misses, out[1].wall_ms, off.prepass_conclusive,
      off.prepass_fallback, off.cache_hits, off.cache_misses);
  std::printf("prepass ablation (%s): on=%.3fms off=%.3fms delta=%.1f%% "
              "conclusive=%ld fallback=%ld (rate %.1f%%)\n",
              workload, out[0].wall_ms, out[1].wall_ms, delta_pct,
              on.prepass_conclusive, on.prepass_fallback,
              100.0 * conclusive_rate);
  MergePrepassWorkload(workload, row);
}

}  // namespace bench
}  // namespace cqlopt

#endif  // CQLOPT_BENCH_BENCH_UTIL_H_
