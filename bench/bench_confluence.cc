// Experiment E5 (DESIGN.md): Examples 7.1/D.1 and 7.2/D.2 — procedure
// Gen_Prop_QRP_constraints and constraint magic rewriting are NOT
// confluent: the order matters, and each order wins on one example.
//
// Paper claims reproduced:
//   - Example 7.1 (selection above the recursion): P^{qrp,mg} computes a
//     subset of the facts of P^{mg,qrp} — the magic rule mr2 of P^{qrp,mg}
//     carries X <= 4, the one of P^{mg,qrp} does not (Example D.1);
//   - Example 7.2 (selection below the query binding): P^{mg,qrp} computes
//     a subset of the facts of P^{qrp,mg} (Example D.2).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cqlopt {
namespace bench {
namespace {

const char* kExample71 =
    "r1: q(X, Y) :- a1(X, Y), X <= 4.\n"
    "r2: a1(X, Y) :- b1(X, Z), a2(Z, Y).\n"
    "r3: a2(X, Y) :- b2(X, Y).\n"
    "r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).\n"
    "?- q(X, Y).\n";

const char* kExample72 =
    "r1: q(X, Y) :- a1(X, Y).\n"
    "r2: a1(X, Y) :- b1(X, Z), X <= 4, a2(Z, Y).\n"
    "r3: a2(X, Y) :- b2(X, Y).\n"
    "r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).\n"
    "?- q(9, Y).\n";  // 9 violates X <= 4: the mg,qrp arm prunes m_a1

Database MakeEdb(SymbolTable* symbols, int n, uint64_t seed) {
  Database db;
  (void)AddBinaryRelation(symbols, "b1", n, 16, seed, &db);
  (void)AddBinaryRelation(symbols, "b2", n, 16, seed + 1, &db);
  return db;
}

void PrintOne(const char* title, const char* source, uint64_t seed) {
  std::printf("--- %s ---\n", title);
  std::printf("%8s %14s %14s %14s\n", "|EDB|", "qrp,mg", "mg,qrp",
              "pred,qrp,mg");
  for (int n : {20, 40, 80}) {
    ParsedInput in = ParseWithQueryOrDie(source);
    Database db = MakeEdb(in.program.symbols.get(), n, seed);
    EvalResult qrp_mg = RunPipeline(in, db, "qrp,mg", {}, 64);
    EvalResult mg_qrp = RunPipeline(in, db, "mg,qrp", {}, 64);
    EvalResult best = RunPipeline(in, db, "pred,qrp,mg", {}, 64);
    std::printf("%8d %14zu %14zu %14zu\n", n,
                qrp_mg.db.TotalFacts() - db.TotalFacts(),
                mg_qrp.db.TotalFacts() - db.TotalFacts(),
                best.db.TotalFacts() - db.TotalFacts());
  }
}

void PrintReproduction() {
  std::printf("=== Examples 7.1 / 7.2: the rewritings are not confluent "
              "===\n");
  PrintOne("Example 7.1 (paper: qrp,mg <= mg,qrp)", kExample71, 31);
  PrintOne("Example 7.2 (paper: mg,qrp <= qrp,mg)", kExample72, 37);
  std::printf("\n");
}

void BM_Pipeline(benchmark::State& state, const char* source,
                 const char* spec) {
  ParsedInput in = ParseWithQueryOrDie(source);
  Database db = MakeEdb(in.program.symbols.get(), 40, 31);
  auto steps = ValueOrDie(ParseSteps(spec), "steps");
  auto rewritten =
      ValueOrDie(ApplyPipeline(in.program, in.query, steps, {}), spec);
  EvalOptions eval;
  eval.max_iterations = 64;
  for (auto _ : state) {
    auto run = Evaluate(rewritten.program, db, eval);
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetLabel(spec);
}
void BM_Ex71QrpMg(benchmark::State& state) {
  BM_Pipeline(state, kExample71, "qrp,mg");
}
void BM_Ex71MgQrp(benchmark::State& state) {
  BM_Pipeline(state, kExample71, "mg,qrp");
}
void BM_Ex72QrpMg(benchmark::State& state) {
  BM_Pipeline(state, kExample72, "qrp,mg");
}
void BM_Ex72MgQrp(benchmark::State& state) {
  BM_Pipeline(state, kExample72, "mg,qrp");
}
BENCHMARK(BM_Ex71QrpMg);
BENCHMARK(BM_Ex71MgQrp);
BENCHMARK(BM_Ex72QrpMg);
BENCHMARK(BM_Ex72MgQrp);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  cqlopt::bench::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
