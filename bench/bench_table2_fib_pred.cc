// Experiment T2 (DESIGN.md): reproduces **Table 2** — derivations in a
// bottom-up evaluation of P_fib,1^mg: the backward Fibonacci program with
// the predicate constraint $2 >= 1 propagated into rule bodies
// (Example 4.4), then Magic-Templates-rewritten.
//
// The paper hand-picks $2 >= 1 ("though not the minimum" — fib's minimum
// predicate constraint has no finite representation, Theorem 3.1), so this
// bench supplies it via PropagateGivenConstraints.
//
// Paper claims reproduced:
//   - iteration 1 computes m_fib(N1, V1; N1 > 0, V1 >= 1, V1 <= 4);
//   - the answer fib(4, 5) is computed in iteration 7;
//   - the evaluation terminates after iteration 8;
//   - ?- fib(N, 6) terminates answering "no" (Example 4.4).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "transform/magic.h"
#include "transform/predicate_constraints.h"
#include "transform/widening.h"

namespace cqlopt {
namespace bench {
namespace {

ConstraintSet SecondArgAtLeastOne() {
  Conjunction c;
  LinearExpr e = LinearExpr::Constant(Rational(1)) - LinearExpr::Var(2);
  (void)c.AddLinear(LinearConstraint(e, CmpOp::kLe));
  return ConstraintSet::Of(c);
}

Program Pfib1(const ParsedInput& in) {
  std::map<PredId, ConstraintSet> given;
  given[in.program.symbols->LookupPredicate("fib")] = SecondArgAtLeastOne();
  return ValueOrDie(PropagateGivenConstraints(in.program, given),
                    "propagate $2 >= 1");
}

void PrintReproduction() {
  ParsedInput in = ParseWithQueryOrDie(FibProgram());
  Program pfib1 = Pfib1(in);
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = ValueOrDie(MagicTemplates(pfib1, in.query, options), "magic");
  std::printf("=== Table 2: derivations in a bottom-up evaluation of "
              "P_fib,1^mg ===\n");
  std::printf("--- program P_fib,1^mg ---\n%s",
              RenderProgram(magic.program).c_str());
  EvalOptions eval;
  eval.max_iterations = 40;
  eval.record_trace = true;
  auto run = ValueOrDie(Evaluate(magic.program, Database(), eval), "eval");
  std::printf("--- derivations ---\n%s", RenderTrace(run.trace).c_str());
  std::printf("fixpoint reached: %s after %d iterations "
              "(paper: terminates after iteration 8)\n",
              run.stats.reached_fixpoint ? "yes" : "NO (MISMATCH)",
              run.stats.iterations - 1);
  auto answers = ValueOrDie(QueryAnswers(run, magic.query), "answers");
  for (const Fact& f : answers) {
    std::printf("answer: %s\n", f.ToString(*in.program.symbols).c_str());
  }

  // Example 4.4's second claim: ?- fib(N, 6) terminates with "no".
  Program program = in.program;
  auto query6 = ValueOrDie(ParseQueryText("?- fib(N, 6).", &program),
                           "query fib(N, 6)");
  auto magic6 = ValueOrDie(MagicTemplates(pfib1, query6, options), "magic6");
  EvalOptions eval6;
  eval6.max_iterations = 64;
  auto run6 = ValueOrDie(Evaluate(magic6.program, Database(), eval6), "eval6");
  auto answers6 = ValueOrDie(QueryAnswers(run6, magic6.query), "answers6");
  std::printf("?- fib(N, 6): fixpoint=%s answers=%zu "
              "(paper: terminates, answers no)\n",
              run6.stats.reached_fixpoint ? "yes" : "NO (MISMATCH)",
              answers6.size());

  // Extension beyond the paper: derive the predicate constraint
  // automatically with widening instead of hand-picking $2 >= 1.
  auto widened = ValueOrDie(
      GenPredicateConstraintsWithWidening(in.program, {}, {}), "widening");
  PredId fib = in.program.symbols->LookupPredicate("fib");
  std::printf("\n--- extension: widening-derived predicate constraint ---\n");
  std::printf("fib: %s (paper hand-picks $2 >= 1; converged=%s)\n",
              RenderConstraintSet(widened.constraints.at(fib),
                                  *in.program.symbols, DollarNames())
                  .c_str(),
              widened.converged ? "yes" : "NO");
  auto auto_propagated = ValueOrDie(
      PropagateGivenConstraints(in.program, widened.constraints), "propagate");
  auto auto_magic =
      ValueOrDie(MagicTemplates(auto_propagated, in.query, options), "magic");
  EvalOptions auto_eval;
  auto_eval.max_iterations = 64;
  auto auto_run =
      ValueOrDie(Evaluate(auto_magic.program, Database(), auto_eval), "eval");
  auto auto_answers =
      ValueOrDie(QueryAnswers(auto_run, auto_magic.query), "answers");
  std::printf("fully automatic Table 2: fixpoint=%s answers=%zu\n\n",
              auto_run.stats.reached_fixpoint ? "yes" : "NO (MISMATCH)",
              auto_answers.size());

  // Tentpole comparison on the terminating program: both strategies reach
  // the same fixpoint; the index resolves the constant-bound magic
  // literals.
  PrintStratifiedComparison(magic.program, Database(), "P_fib,1^mg", 40);
  std::printf("\n");
}

void BM_PropagateGivenConstraint(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(FibProgram());
  std::map<PredId, ConstraintSet> given;
  given[in.program.symbols->LookupPredicate("fib")] = SecondArgAtLeastOne();
  for (auto _ : state) {
    auto out = PropagateGivenConstraints(in.program, given);
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_PropagateGivenConstraint);

void BM_EvaluateFib1MagicToFixpoint(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(FibProgram());
  Program pfib1 = Pfib1(in);
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  auto magic = ValueOrDie(MagicTemplates(pfib1, in.query, options), "magic");
  EvalOptions eval;
  eval.max_iterations = 64;
  for (auto _ : state) {
    auto run = Evaluate(magic.program, Database(), eval);
    benchmark::DoNotOptimize(run.ok());
  }
}
BENCHMARK(BM_EvaluateFib1MagicToFixpoint);

void BM_WideningDerivesConstraint(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(FibProgram());
  for (auto _ : state) {
    auto widened = GenPredicateConstraintsWithWidening(in.program, {}, {});
    benchmark::DoNotOptimize(widened.ok());
  }
}
BENCHMARK(BM_WideningDerivesConstraint);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  bool json = cqlopt::bench::StripJsonFlag(&argc, argv);
  cqlopt::bench::PrintReproduction();
  if (json) {
    cqlopt::bench::ParsedInput in =
        cqlopt::bench::ParseWithQueryOrDie(cqlopt::bench::FibProgram());
    cqlopt::Program pfib1 = cqlopt::bench::Pfib1(in);
    cqlopt::MagicOptions options;
    options.sips = cqlopt::SipStrategy::kFullLeftToRight;
    auto magic = cqlopt::bench::ValueOrDie(
        cqlopt::MagicTemplates(pfib1, in.query, options), "magic");
    cqlopt::bench::WriteBenchJson("table2_fib_pred", magic.program,
                                  cqlopt::Database());
    cqlopt::bench::WritePrepassJson("table2_fib_pred", magic.program,
                                    cqlopt::Database());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
