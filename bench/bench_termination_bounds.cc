// Experiment E8 (DESIGN.md): Section 5 / Theorem 5.1 — for constraint query
// languages restricted to order constraints (X op Y, X op c), the
// QRP-generation fixpoint always terminates: with predicates of arity k
// there are at most 2k^2 + 4k "simple" constraints, hence at most
// 2^(2k^2+4k) disjuncts per predicate, bounding the iteration count.
//
// We regenerate the observation of Example 5.1 — the procedure terminates
// in a couple of iterations, wildly below the combinatorial bound — across
// generated order-constraint programs of growing arity and recursion depth.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "transform/qrp_constraints.h"

namespace cqlopt {
namespace bench {
namespace {

/// Generates an order-constraint chain program of `depth` derived
/// predicates of arity `k`: each p_i calls p_{i+1} with one more order
/// constraint between adjacent arguments, the last calls the EDB.
std::string OrderConstraintProgram(int k, int depth) {
  auto args = [&](int arity) {
    std::string out;
    for (int i = 0; i < arity; ++i) {
      if (i > 0) out += ", ";
      out += "X" + std::to_string(i);
    }
    return out;
  };
  std::string text = "q(" + args(k) + ") :- p0(" + args(k) + "), X0 <= 10.\n";
  for (int d = 0; d < depth; ++d) {
    std::string head = "p" + std::to_string(d);
    std::string callee =
        d + 1 < depth ? "p" + std::to_string(d + 1) : "base";
    text += head + "(" + args(k) + ") :- " + callee + "(" + args(k) + ")";
    // One order constraint per level, cycling over adjacent argument pairs.
    if (k >= 2) {
      int i = d % (k - 1);
      text += ", X" + std::to_string(i) + " <= X" + std::to_string(i + 1);
    }
    text += ".\n";
  }
  // A recursive tail to make the fixpoint non-trivial.
  text += "p0(" + args(k) + ") :- p0(" + args(k) + "), X0 <= 10.\n";
  text += "?- q(" + args(k) + ").\n";
  return text;
}

long TheoremBound(int n_preds, int k) {
  // n * 2^(2k^2 + 4k), saturated to avoid overflow in the printout.
  long exponent = 2L * k * k + 4L * k;
  if (exponent > 40) return -1;  // effectively astronomic
  return n_preds * (1L << exponent);
}

void PrintReproduction() {
  std::printf("=== Section 5: termination on the order-constraint class "
              "===\n");
  std::printf("%6s %6s %12s %16s %10s\n", "arity", "depth", "iterations",
              "bound n*2^(2k²+4k)", "converged");
  for (int k : {1, 2, 3}) {
    for (int depth : {2, 4, 8}) {
      ParsedInput in = ParseWithQueryOrDie(OrderConstraintProgram(k, depth));
      PredId q = in.program.symbols->LookupPredicate("q");
      InferenceOptions options;
      options.max_iterations = 512;
      options.max_disjuncts = 512;
      auto qrp = ValueOrDie(GenQrpConstraints(in.program, q, options), "qrp");
      long bound = TheoremBound(depth + 1, k);
      std::string bound_str = bound < 0 ? ">>10^12" : std::to_string(bound);
      std::printf("%6d %6d %12d %16s %10s\n", k, depth, qrp.iterations,
                  bound_str.c_str(),
                  qrp.converged ? "yes" : "NO (MISMATCH)");
    }
  }
  // Example 5.1 itself.
  {
    ParsedInput in = ParseWithQueryOrDie(
        "r1: q(X, Y) :- a(X, Y), X <= 10, Y <= X.\n"
        "r2: a(X, Y) :- p(X, Y), Y <= X.\n"
        "r3: a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.\n"
        "?- q(X, Y).\n");
    PredId q = in.program.symbols->LookupPredicate("q");
    auto qrp = ValueOrDie(GenQrpConstraints(in.program, q, {}), "qrp");
    std::printf("Example 5.1: iterations=%d converged=%s "
                "(paper: terminates in 2; bound 256)\n\n",
                qrp.iterations, qrp.converged ? "yes" : "NO");
  }
}

void BM_GenQrpOrderClass(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  int depth = static_cast<int>(state.range(1));
  ParsedInput in = ParseWithQueryOrDie(OrderConstraintProgram(k, depth));
  PredId q = in.program.symbols->LookupPredicate("q");
  InferenceOptions options;
  options.max_iterations = 512;
  options.max_disjuncts = 512;
  for (auto _ : state) {
    auto qrp = GenQrpConstraints(in.program, q, options);
    benchmark::DoNotOptimize(qrp.ok());
  }
}
BENCHMARK(BM_GenQrpOrderClass)
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({3, 4})
    ->Args({3, 8});

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  cqlopt::bench::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
