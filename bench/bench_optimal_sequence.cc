// Experiment E6 (DESIGN.md): Theorem 7.10 — among all sequences of
// Gen_Prop_predicate_constraints, Gen_Prop_QRP_constraints and constraint
// magic rewriting (magic applied exactly once), P^{pred,qrp,mg} is optimal:
// it computes a subset of the facts of every other sequence, on every EDB.
//
// The redundancy theorems (7.4, 7.5, 7.9) collapse longer sequences, so the
// distinct arms are the ones listed below. We regenerate the fact-count
// table on the flights program and the Example 7.1 program over several
// seeded EDBs and flag any arm that beats the optimum (there must be none).

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cqlopt {
namespace bench {
namespace {

const char* kExample71 =
    "r1: q(X, Y) :- a1(X, Y), X <= 4.\n"
    "r2: a1(X, Y) :- b1(X, Z), a2(Z, Y).\n"
    "r3: a2(X, Y) :- b2(X, Y).\n"
    "r4: a2(X, Y) :- b2(X, Z), a2(Z, Y).\n"
    "?- q(X, Y).\n";

const char* kArms[] = {"mg",          "pred,mg",      "qrp,mg",
                       "mg,qrp",      "mg,pred,qrp",  "pred,qrp,mg",
                       "qrp,pred,mg", "pred,qrp"};

void PrintFlights() {
  std::printf("--- flights program (12 airports) ---\n");
  std::printf("%-16s", "arm \\ legs");
  for (int legs : {24, 48}) std::printf(" %10d", legs);
  std::printf("\n");
  for (const char* arm : kArms) {
    std::printf("%-16s", arm);
    for (int legs : {24, 48}) {
      ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
      FlightNetworkSpec spec;
      spec.airports = 12;
      spec.legs = legs;
      Database db;
      (void)AddFlightNetwork(in.program.symbols.get(), spec, &db);
      EvalResult run = RunPipeline(in, db, arm, {}, 64);
      std::printf(" %10zu", run.db.TotalFacts() - db.TotalFacts());
    }
    std::printf("\n");
  }
}

void PrintExample71() {
  std::printf("--- Example 7.1 program ---\n");
  std::printf("%-16s", "arm \\ seed");
  for (uint64_t seed : {3u, 5u, 9u}) std::printf(" %10llu",
                                                 (unsigned long long)seed);
  std::printf("\n");
  size_t optimum[3] = {0, 0, 0};
  for (const char* arm : kArms) {
    std::printf("%-16s", arm);
    int column = 0;
    for (uint64_t seed : {3u, 5u, 9u}) {
      ParsedInput in = ParseWithQueryOrDie(kExample71);
      Database db;
      (void)AddBinaryRelation(in.program.symbols.get(), "b1", 30, 14, seed,
                              &db);
      (void)AddBinaryRelation(in.program.symbols.get(), "b2", 30, 14,
                              seed + 1, &db);
      EvalResult run = RunPipeline(in, db, arm, {}, 64);
      size_t facts = run.db.TotalFacts() - db.TotalFacts();
      if (std::string(arm) == "pred,qrp,mg") optimum[column] = facts;
      std::printf(" %10zu", facts);
      ++column;
    }
    std::printf("\n");
  }
  std::printf("(Theorem 7.10: the pred,qrp,mg row must be the column-wise "
              "minimum among magic-once arms; optimum = %zu/%zu/%zu)\n",
              optimum[0], optimum[1], optimum[2]);
}

void PrintReproduction() {
  std::printf("=== Theorem 7.10: optimal transformation sequence ===\n");
  PrintFlights();
  PrintExample71();
  std::printf("\n");
}

void BM_Arm(benchmark::State& state, const char* spec) {
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  FlightNetworkSpec spec_net;
  spec_net.airports = 12;
  spec_net.legs = 48;
  Database db;
  (void)AddFlightNetwork(in.program.symbols.get(), spec_net, &db);
  auto steps = ValueOrDie(ParseSteps(spec), "steps");
  auto rewritten =
      ValueOrDie(ApplyPipeline(in.program, in.query, steps, {}), spec);
  EvalOptions eval;
  eval.max_iterations = 64;
  for (auto _ : state) {
    auto run = Evaluate(rewritten.program, db, eval);
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetLabel(spec);
}
void BM_MagicOnly(benchmark::State& state) { BM_Arm(state, "mg"); }
void BM_MagicThenQrp(benchmark::State& state) { BM_Arm(state, "mg,qrp"); }
void BM_Optimal(benchmark::State& state) { BM_Arm(state, "pred,qrp,mg"); }
BENCHMARK(BM_MagicOnly);
BENCHMARK(BM_MagicThenQrp);
BENCHMARK(BM_Optimal);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  cqlopt::bench::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
