// Experiment E1 (DESIGN.md): the Example 1.1 / 4.3 flights workload on
// synthetic networks. Regenerates the paper's central comparison — the
// bottom-up fact counts of:
//   original          P
//   pred              Gen_Prop_predicate_constraints(P)
//   pred,qrp          Constraint_rewrite(P)   (Example 4.3's P')
//   pred,qrp,mg       + constraint magic      (Theorem 7.10's optimum)
//   mg                constraint magic alone
// plus two ablations: plain magic (no constraints in magic rules — the
// paper's mrl' option) and evaluation without subsumption.
//
// Shape claims: pred,qrp computes no flight fact with Time > 240 and
// Cost > 150; every arm computes only ground facts; pred,qrp,mg computes
// the fewest facts; all arms return the same answers.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cqlopt {
namespace bench {
namespace {

Database MakeNetwork(SymbolTable* symbols, int airports, int legs,
                     uint64_t seed) {
  FlightNetworkSpec spec;
  spec.airports = airports;
  spec.legs = legs;
  spec.seed = seed;
  Database db;
  (void)AddFlightNetwork(symbols, spec, &db);
  return db;
}

struct ArmResult {
  size_t derived_facts;
  long derivations;
  bool all_ground;
  size_t answers;
};

ArmResult RunArm(const ParsedInput& in, const Database& db, const char* spec,
                 bool constraint_magic = true) {
  PipelineOptions options;
  options.magic.constraint_magic = constraint_magic;
  auto steps = ValueOrDie(ParseSteps(spec), "steps");
  auto rewritten =
      ValueOrDie(ApplyPipeline(in.program, in.query, steps, options), spec);
  EvalOptions eval;
  eval.max_iterations = 64;
  auto run = ValueOrDie(Evaluate(rewritten.program, db, eval), spec);
  auto answers = ValueOrDie(QueryAnswers(run, rewritten.query), spec);
  return ArmResult{run.db.TotalFacts() - db.TotalFacts(),
                   run.stats.derivations, run.stats.all_ground,
                   answers.size()};
}

void PrintReproduction() {
  std::printf("=== Example 1.1 / 4.3: flights — facts computed per "
              "rewriting arm ===\n");
  std::printf("%-28s %12s %12s %10s %8s\n", "arm", "facts", "derivations",
              "ground", "answers");
  for (int legs : {16, 24, 48}) {
    ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
    Database db = MakeNetwork(in.program.symbols.get(), 12, legs, 42);
    std::printf("--- network: 12 airports, %d legs ---\n", legs);
    struct Arm {
      const char* name;
      const char* spec;
      bool constraint_magic;
    };
    for (const Arm& arm : {Arm{"original", "", true},
                           Arm{"pred", "pred", true},
                           Arm{"pred,qrp (Example 4.3 P')", "pred,qrp", true},
                           Arm{"mg (constraint magic)", "mg", true},
                           Arm{"mg (plain magic, mrl')", "mg", false},
                           Arm{"pred,qrp,mg (optimal)", "pred,qrp,mg", true}}) {
      ArmResult r = RunArm(in, db, arm.spec, arm.constraint_magic);
      std::printf("%-28s %12zu %12ld %10s %8zu\n", arm.name, r.derived_facts,
                  r.derivations, r.all_ground ? "yes" : "NO", r.answers);
    }
  }

  // The headline pruning claim: pred,qrp computes no flight fact with
  // Time > 240 & Cost > 150, while the original program computes many.
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  Database db = MakeNetwork(in.program.symbols.get(), 12, 48, 42);
  auto steps = ValueOrDie(ParseSteps("pred,qrp"), "steps");
  auto rewritten =
      ValueOrDie(ApplyPipeline(in.program, in.query, steps, {}), "pred,qrp");
  EvalOptions eval;
  eval.max_iterations = 64;
  auto original_run = ValueOrDie(Evaluate(in.program, db, eval), "orig");
  auto rewritten_run = ValueOrDie(Evaluate(rewritten.program, db, eval), "rw");
  auto count_irrelevant = [&](const EvalResult& run, const char* pred) {
    PredId id = in.program.symbols->LookupPredicate(pred);
    const Relation* rel = run.db.Find(id);
    if (rel == nullptr) return 0;
    int n = 0;
    for (size_t i = 0; i < rel->size(); ++i) {
      Conjunction bad = rel->fact(i).constraint;
      LinearExpr t = LinearExpr::Constant(Rational(240)) - LinearExpr::Var(3);
      LinearExpr c = LinearExpr::Constant(Rational(150)) - LinearExpr::Var(4);
      (void)bad.AddLinear(LinearConstraint(t, CmpOp::kLt));
      (void)bad.AddLinear(LinearConstraint(c, CmpOp::kLt));
      if (bad.IsSatisfiable()) ++n;
    }
    return n;
  };
  std::printf("\nflight facts with Time > 240 & Cost > 150:\n");
  std::printf("  original: %d   pred,qrp: %d (paper: zero)\n",
              count_irrelevant(original_run, "flight"),
              count_irrelevant(rewritten_run, "flight'"));

  // Ablation: subsumption modes (the Section 2 duplicate check). On this
  // ground workload all three modes store the same facts — the check
  // matters for constraint facts (Tables 1/2); this shows it costs nothing
  // in the ground case.
  std::printf("\nsubsumption-mode ablation (pred,qrp at 48 legs):\n");
  for (auto [name, mode] :
       {std::pair<const char*, SubsumptionMode>{"none",
                                                SubsumptionMode::kNone},
        {"single-fact", SubsumptionMode::kSingleFact},
        {"set-implication", SubsumptionMode::kSetImplication}}) {
    EvalOptions ablation;
    ablation.max_iterations = 64;
    ablation.subsumption = mode;
    auto run = ValueOrDie(Evaluate(rewritten.program, db, ablation), name);
    std::printf("  %-16s facts=%zu derivations=%ld\n", name,
                run.db.TotalFacts() - db.TotalFacts(), run.stats.derivations);
  }

  // Tentpole comparison: SCC-stratified evaluation with hash-indexed joins
  // vs the global semi-naive oracle. The recursive flight rule joins on the
  // connecting airport symbol, so the index prunes most leg candidates.
  std::printf("\n");
  PrintStratifiedComparison(in.program, db, "original, 12 airports/48 legs");
  PrintStratifiedComparison(rewritten.program, db,
                            "pred,qrp, 12 airports/48 legs");
  std::printf("\n");
}

void BM_FlightsArm(benchmark::State& state, const char* spec,
                   EvalStrategy strategy = EvalStrategy::kSemiNaive) {
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  Database db = MakeNetwork(in.program.symbols.get(), 12,
                            static_cast<int>(state.range(0)), 42);
  PipelineOptions options;
  auto steps = ValueOrDie(ParseSteps(spec), "steps");
  auto rewritten =
      ValueOrDie(ApplyPipeline(in.program, in.query, steps, options), spec);
  EvalOptions eval;
  eval.max_iterations = 64;
  eval.strategy = strategy;
  for (auto _ : state) {
    auto run = Evaluate(rewritten.program, db, eval);
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetLabel(spec);
}

void BM_FlightsOriginal(benchmark::State& state) {
  BM_FlightsArm(state, "");
}
void BM_FlightsPredQrp(benchmark::State& state) {
  BM_FlightsArm(state, "pred,qrp");
}
void BM_FlightsOptimal(benchmark::State& state) {
  BM_FlightsArm(state, "pred,qrp,mg");
}
void BM_FlightsOriginalStratified(benchmark::State& state) {
  BM_FlightsArm(state, "", EvalStrategy::kStratified);
}
void BM_FlightsPredQrpStratified(benchmark::State& state) {
  BM_FlightsArm(state, "pred,qrp", EvalStrategy::kStratified);
}
BENCHMARK(BM_FlightsOriginal)->Arg(24)->Arg(48);
BENCHMARK(BM_FlightsPredQrp)->Arg(24)->Arg(48);
BENCHMARK(BM_FlightsOptimal)->Arg(24)->Arg(48);
BENCHMARK(BM_FlightsOriginalStratified)->Arg(24)->Arg(48);
BENCHMARK(BM_FlightsPredQrpStratified)->Arg(24)->Arg(48);

// Constrained-join ablation (DESIGN.md §12): time-budgeted leg selection
// over a large leg relation. Each budget fact binds B to a point, so the
// singleleg literal is reached with only the range constraint T <= B — no
// position is uniquely bound, every leg survives the hash index's
// pre-filter, and before the interval index the engine enumerated all
// 20000 legs per budget and rejected ~95% of them one satisfiability check
// at a time. The interval index answers each probe from the sorted bound
// runs instead: binary search admits only the legs whose time can lie
// under the budget.
std::string ConstrainedJoinSection() {
  ParsedInput in = ParseWithQueryOrDie(
      "s1: withinbudget(S, D, T, C) :- budget(B), singleleg(S, D, T, C), "
      "T <= B.\n"
      "?- withinbudget(S, D, T, C).\n");
  FlightNetworkSpec spec;
  spec.airports = 200;
  spec.legs = 20000;
  spec.seed = 42;
  Database db;
  (void)AddFlightNetwork(in.program.symbols.get(), spec, &db);
  for (int budget : {35, 40, 45, 50, 55}) {
    (void)db.AddGroundFact(in.program.symbols.get(), "budget",
                           {Database::Value::Number(Rational(budget))});
  }
  return MeasureIntervalAblation("flights-constrained-join", in.program, db);
}

void BM_ConstraintRewriteFlights(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  auto steps = ValueOrDie(ParseSteps("pred,qrp"), "steps");
  for (auto _ : state) {
    auto rewritten = ApplyPipeline(in.program, in.query, steps, {});
    benchmark::DoNotOptimize(rewritten.ok());
  }
}
BENCHMARK(BM_ConstraintRewriteFlights);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  bool json = cqlopt::bench::StripJsonFlag(&argc, argv);
  cqlopt::bench::PrintReproduction();
  if (json) {
    cqlopt::bench::ParsedInput in =
        cqlopt::bench::ParseWithQueryOrDie(cqlopt::bench::FlightsProgram());
    cqlopt::Database db =
        cqlopt::bench::MakeNetwork(in.program.symbols.get(), 12, 48, 42);
    cqlopt::bench::WriteBenchJson("flights", in.program, db, 64,
                                  cqlopt::bench::ConstrainedJoinSection());
    cqlopt::bench::WritePrepassJson("flights", in.program, db);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
