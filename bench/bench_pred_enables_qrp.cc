// Experiment E3 (DESIGN.md): Examples 4.2 / 5.1 — predicate constraints
// enable the QRP fixpoint.
//
// Paper claims reproduced:
//   - on P (Example 4.2), Gen_QRP_constraints alone infers nothing for `a`
//     (widens to true): the recursive rule r3 has no explicit constraint;
//   - Gen_predicate_constraints infers $2 <= $1 for `a`; after propagating
//     it (program P1 of Example 5.1), the QRP fixpoint reaches the minimum
//     ($1 <= 10 & $2 <= $1) — and in 2-3 iterations, far below the
//     combinatorial bound n * 2^(2k^2+4k) of Theorem 5.1;
//   - the pred,qrp evaluation computes fewer `a` facts than qrp alone.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "transform/qrp_constraints.h"

namespace cqlopt {
namespace bench {
namespace {

const char* kExample42 =
    "r1: q(X, Y) :- a(X, Y), X <= 10.\n"
    "r2: a(X, Y) :- p(X, Y), Y <= X.\n"
    "r3: a(X, Y) :- a(X, Z), a(Z, Y).\n"
    "?- q(X, Y).\n";

void PrintReproduction() {
  std::printf("=== Examples 4.2 / 5.1: predicate constraints enable QRP "
              "===\n");
  {
    ParsedInput in = ParseWithQueryOrDie(kExample42);
    PredId q = in.program.symbols->LookupPredicate("q");
    PredId a = in.program.symbols->LookupPredicate("a");
    auto qrp_only = ValueOrDie(GenQrpConstraints(in.program, q, {}), "qrp");
    std::printf("QRP[a] without pred step: %s (paper: unconstrained)\n",
                RenderConstraintSet(qrp_only.constraints.at(a),
                                    *in.program.symbols, DollarNames())
                    .c_str());
    ConstraintRewriteOptions options;
    auto full = ValueOrDie(ConstraintRewrite(in.program, q, options),
                           "constraint_rewrite");
    std::printf("QRP[a] with pred step:    %s (paper: $1<=10 & $2<=$1)\n",
                RenderConstraintSet(full.qrp_constraints.at(a),
                                    *in.program.symbols, DollarNames())
                    .c_str());
  }
  // Iteration counts vs the Theorem 5.1 bound (Example 5.1: at most 256
  // disjuncts for arity 2 and one constant; observed: 2-3 iterations).
  {
    ParsedInput in = ParseWithQueryOrDie(
        "r1: q(X, Y) :- a(X, Y), X <= 10, Y <= X.\n"
        "r2: a(X, Y) :- p(X, Y), Y <= X.\n"
        "r3: a(X, Y) :- a(X, Z), Z <= X, a(Z, Y), Y <= Z.\n"
        "?- q(X, Y).\n");
    PredId q = in.program.symbols->LookupPredicate("q");
    auto qrp = ValueOrDie(GenQrpConstraints(in.program, q, {}), "qrp P1");
    std::printf("Gen_QRP iterations on P1: %d (Example 5.1: terminates in 2; "
                "bound 256)\n",
                qrp.iterations);
  }
  // Fact counts: pred,qrp prunes a/p facts that qrp alone cannot.
  std::printf("\n%8s %18s %18s\n", "|p|", "qrp facts", "pred,qrp facts");
  for (int n : {16, 32, 64}) {
    ParsedInput in = ParseWithQueryOrDie(kExample42);
    Database db;
    (void)AddBinaryRelation(in.program.symbols.get(), "p", n, 30, 5, &db);
    EvalResult qrp = RunPipeline(in, db, "qrp", {}, 32);
    EvalResult both = RunPipeline(in, db, "pred,qrp", {}, 32);
    std::printf("%8d %18zu %18zu\n", n, qrp.db.TotalFacts() - db.TotalFacts(),
                both.db.TotalFacts() - db.TotalFacts());
  }
  std::printf("\n");
}

void BM_GenQrpWithoutPred(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(kExample42);
  PredId q = in.program.symbols->LookupPredicate("q");
  for (auto _ : state) {
    auto out = GenQrpConstraints(in.program, q, {});
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_GenQrpWithoutPred);

void BM_ConstraintRewriteFull(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(kExample42);
  PredId q = in.program.symbols->LookupPredicate("q");
  for (auto _ : state) {
    auto out = ConstraintRewrite(in.program, q, {});
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_ConstraintRewriteFull);

void BM_EvalPredQrp(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(kExample42);
  Database db;
  (void)AddBinaryRelation(in.program.symbols.get(), "p",
                          static_cast<int>(state.range(0)), 30, 5, &db);
  auto steps = ValueOrDie(ParseSteps("pred,qrp"), "steps");
  auto rewritten =
      ValueOrDie(ApplyPipeline(in.program, in.query, steps, {}), "pred,qrp");
  EvalOptions eval;
  eval.max_iterations = 32;
  for (auto _ : state) {
    auto run = Evaluate(rewritten.program, db, eval);
    benchmark::DoNotOptimize(run.ok());
  }
}
BENCHMARK(BM_EvalPredQrp)->Arg(32)->Arg(64);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  cqlopt::bench::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
