// Experiment E2 (DESIGN.md): Example 4.1 — semantic constraint propagation
// (Gen_QRP_constraints) vs Balbin et al.'s syntactic C transformation
// (Section 6.1).
//
// Paper claim: the C transformation pushes (X+Y<=6 & X>=2) into p1 but
// nothing into p2 (no explicit constraining literal on Y alone), while the
// semantic procedure derives Y <= 4 and prunes p2/b2 facts. We regenerate
// the fact-count series over growing b1/b2 EDBs: the semantic arm's p2
// facts stay bounded by the selectivity of Y <= 4, the syntactic arm
// computes every b2 tuple.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace cqlopt {
namespace bench {
namespace {

const char* kExample41 =
    "r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.\n"
    "r2: p1(X, Y) :- b1(X, Y).\n"
    "r3: p2(X) :- b2(X).\n"
    "?- q(X).\n";

Database MakeEdb(SymbolTable* symbols, int n, int domain, uint64_t seed) {
  Database db;
  (void)AddBinaryRelation(symbols, "b1", n, domain, seed, &db);
  (void)AddUnaryRelation(symbols, "b2", n, domain, seed + 1, &db);
  return db;
}

size_t FactsFor(const EvalResult& run, SymbolTable* symbols,
                const char* name) {
  PredId id = symbols->LookupPredicate(name);
  return id == SymbolTable::kNoPred ? 0 : run.db.FactsFor(id);
}

void PrintReproduction() {
  std::printf("=== Example 4.1: semantic (qrp) vs syntactic (balbin) "
              "propagation ===\n");
  std::printf("%8s %14s %14s %14s %14s\n", "|EDB|", "qrp p2-facts",
              "balbin p2-facts", "qrp total", "balbin total");
  for (int n : {16, 32, 64, 128}) {
    ParsedInput in = ParseWithQueryOrDie(kExample41);
    Database db = MakeEdb(in.program.symbols.get(), n, 40, 11);
    EvalResult qrp = RunPipeline(in, db, "qrp");
    EvalResult balbin = RunPipeline(in, db, "balbin");
    size_t qrp_p2 = FactsFor(qrp, in.program.symbols.get(), "p2'") +
                    FactsFor(qrp, in.program.symbols.get(), "p2");
    size_t balbin_p2 = FactsFor(balbin, in.program.symbols.get(), "p2'") +
                       FactsFor(balbin, in.program.symbols.get(), "p2");
    std::printf("%8d %14zu %14zu %14zu %14zu\n", n, qrp_p2, balbin_p2,
                qrp.db.TotalFacts() - db.TotalFacts(),
                balbin.db.TotalFacts() - db.TotalFacts());
  }
  std::printf("(paper: the C transformation cannot restrict p2; the "
              "semantic rewrite keeps only Y <= 4)\n\n");
}

void BM_SemanticRewrite(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(kExample41);
  auto steps = ValueOrDie(ParseSteps("qrp"), "steps");
  for (auto _ : state) {
    auto out = ApplyPipeline(in.program, in.query, steps, {});
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_SemanticRewrite);

void BM_SyntacticRewrite(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(kExample41);
  auto steps = ValueOrDie(ParseSteps("balbin"), "steps");
  for (auto _ : state) {
    auto out = ApplyPipeline(in.program, in.query, steps, {});
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_SyntacticRewrite);

void BM_EvalArm(benchmark::State& state, const char* spec) {
  ParsedInput in = ParseWithQueryOrDie(kExample41);
  Database db = MakeEdb(in.program.symbols.get(),
                        static_cast<int>(state.range(0)), 40, 11);
  auto steps = ValueOrDie(ParseSteps(spec), "steps");
  auto rewritten =
      ValueOrDie(ApplyPipeline(in.program, in.query, steps, {}), spec);
  for (auto _ : state) {
    auto run = Evaluate(rewritten.program, db, {});
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetLabel(spec);
}
void BM_EvalSemantic(benchmark::State& state) { BM_EvalArm(state, "qrp"); }
void BM_EvalSyntactic(benchmark::State& state) { BM_EvalArm(state, "balbin"); }
BENCHMARK(BM_EvalSemantic)->Arg(64)->Arg(128);
BENCHMARK(BM_EvalSyntactic)->Arg(64)->Arg(128);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  cqlopt::bench::PrintReproduction();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
