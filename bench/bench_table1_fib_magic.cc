// Experiment T1 (DESIGN.md): reproduces **Table 1** — the per-iteration
// derivations of the semi-naive bottom-up evaluation of P_fib^mg, the Magic
// Templates rewriting (complete left-to-right sips) of the backward
// Fibonacci program queried with ?- fib(N, 5).
//
// Paper claims reproduced:
//   - iteration 0 derives the seed m_fib(N1, 5);
//   - iteration 1 derives the constraint fact m_fib(N1, V1; N1 > 0);
//   - the answer fib(4, 5) appears in iteration 7;
//   - subsumed facts (the paper's boldface; our *...*) are discarded;
//   - the evaluation computes constraint facts and NEVER terminates —
//     shown here by running to an iteration cap without a fixpoint.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "transform/magic.h"

namespace cqlopt {
namespace bench {
namespace {

MagicResult RewriteFib() {
  ParsedInput in = ParseWithQueryOrDie(FibProgram());
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  return ValueOrDie(MagicTemplates(in.program, in.query, options), "magic");
}

void PrintReproduction() {
  ParsedInput in = ParseWithQueryOrDie(FibProgram());
  MagicResult magic = RewriteFib();
  std::printf("=== Table 1: derivations in a bottom-up evaluation of "
              "P_fib^mg ===\n");
  std::printf("--- program P_fib^mg ---\n%s",
              RenderProgram(magic.program).c_str());
  EvalOptions eval;
  eval.max_iterations = 9;  // the table shows iterations 0..8
  eval.record_trace = true;
  auto run = ValueOrDie(Evaluate(magic.program, Database(), eval), "eval");
  std::printf("--- derivations (paper's boldface rendered as *fact*) ---\n%s",
              RenderTrace(run.trace).c_str());
  std::printf("fixpoint reached: %s (paper: evaluation does not terminate)\n",
              run.stats.reached_fixpoint ? "YES (MISMATCH)" : "no");
  std::printf("ground facts only: %s (paper: constraint facts for m_fib)\n",
              run.stats.all_ground ? "YES (MISMATCH)" : "no");
  auto answers = ValueOrDie(QueryAnswers(run, magic.query), "answers");
  for (const Fact& f : answers) {
    std::printf("answer: %s (paper: fib(4,5) in iteration 7)\n",
                f.ToString(*in.program.symbols).c_str());
  }
  std::printf("\n");

  // Tentpole comparison at the same iteration cap: m_fib and fib form one
  // SCC, so the stratified run coincides with the oracle's trace; the win
  // is the hash index resolving the constant-bound m_fib/fib literals of
  // r1, r2 and the second magic rule without scanning every fact.
  PrintStratifiedComparison(magic.program, Database(),
                            "P_fib^mg, capped at 9 iterations", 9);
  std::printf("\n");
}

void BM_MagicRewriteFib(benchmark::State& state) {
  ParsedInput in = ParseWithQueryOrDie(FibProgram());
  MagicOptions options;
  options.sips = SipStrategy::kFullLeftToRight;
  for (auto _ : state) {
    auto magic = MagicTemplates(in.program, in.query, options);
    benchmark::DoNotOptimize(magic.ok());
  }
}
BENCHMARK(BM_MagicRewriteFib);

void BM_EvaluateFibMagicCapped(benchmark::State& state) {
  MagicResult magic = RewriteFib();
  EvalOptions eval;
  eval.max_iterations = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto run = Evaluate(magic.program, Database(), eval);
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetLabel("iterations=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EvaluateFibMagicCapped)->Arg(9)->Arg(16)->Arg(24);

void BM_EvaluateFibMagicCappedStratified(benchmark::State& state) {
  MagicResult magic = RewriteFib();
  EvalOptions eval;
  eval.max_iterations = static_cast<int>(state.range(0));
  eval.strategy = EvalStrategy::kStratified;
  for (auto _ : state) {
    auto run = Evaluate(magic.program, Database(), eval);
    benchmark::DoNotOptimize(run.ok());
  }
  state.SetLabel("iterations=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_EvaluateFibMagicCappedStratified)->Arg(9)->Arg(16)->Arg(24);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  bool json = cqlopt::bench::StripJsonFlag(&argc, argv);
  cqlopt::bench::PrintReproduction();
  if (json) {
    cqlopt::MagicResult magic = cqlopt::bench::RewriteFib();
    // The evaluation never terminates (the point of Table 1); measure the
    // same capped prefix google-benchmark times below.
    cqlopt::bench::WriteBenchJson("table1_fib_magic", magic.program,
                                  cqlopt::Database(), /*max_iterations=*/24);
    // The prepass ablation runs deeper than the timing arms: the diverging
    // evaluation grows its constraint chains with every iteration, and the
    // deeper prefix is where exact FM's superlinear elimination cost
    // separates from the prepass's linear bound propagation.
    cqlopt::bench::WritePrepassJson("table1_fib_magic", magic.program,
                                    cqlopt::Database(),
                                    /*max_iterations=*/40);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
