// Serving-path benchmark for the cqld subsystem (src/service): the same
// flights query served three ways —
//   cold         fresh service: parse + pipeline + stratified evaluation
//   epoch-hit    repeated query at an unchanged epoch: answers come from
//                the entry's materialized evaluation
//   incremental  re-query after ingesting ~1% of the EDB: the materialized
//                fixpoint is resumed with the delta instead of recomputed
// The headline number is the speedup of each warm path over cold; the
// prepared+incremental path is the subsystem's reason to exist.
//
// A second section measures the robustness features' overhead on the same
// workload: ingestion with the write-ahead log on vs off (the fsync tax a
// durable deployment pays per batch) and the cold query with governance
// armed vs off (deadline + derived-fact budget checks that never trigger —
// the acceptance bar is < 2% on this workload).
//
// A third section drives the epoll serve loop open-loop: Poisson arrivals
// at a sweep of fractions of the calibrated service capacity, fanned over
// pipelined unix-socket connections against a small worker pool. Per rate
// point it reports p50/p99/p999 latency (scheduled arrival → response) and
// the shed rate — the scheduler's contract is that overload turns into
// typed RESOURCE_EXHAUSTED sheds, never into accepted-but-unanswered
// requests, so `unanswered` must be zero at every point.

#include <benchmark/benchmark.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <random>
#include <thread>

#include "bench_util.h"
#include "service/protocol.h"
#include "service/replica.h"
#include "service/query_service.h"
#include "service/server.h"

namespace cqlopt {
namespace bench {
namespace {

constexpr int kAirports = 24;
constexpr int kLegs = 800;
constexpr const char* kSteps = "pred,qrp,mg";

std::string ServiceQuery() {
  return "?- cheaporshort(a5, a9, Time, Cost).";
}

std::unique_ptr<QueryService> MakeService(const ServiceOptions& options = {}) {
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  FlightNetworkSpec spec;
  spec.airports = kAirports;
  spec.legs = kLegs;
  spec.seed = 42;
  Database db;
  (void)AddFlightNetwork(in.program.symbols.get(), spec, &db);
  return ValueOrDie(
      QueryService::FromParts(std::move(in.program), std::move(db), options),
      "service");
}

/// Scratch directory for the WAL-on ingestion arm, removed on destruction.
struct TempWalDir {
  std::string path;
  TempWalDir() {
    const char* base = std::getenv("TMPDIR");
    path = std::string(base != nullptr ? base : "/tmp") +
           "/cqlopt-bench-XXXXXX";
    if (mkdtemp(path.data()) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed for %s\n", path.c_str());
      std::abort();
    }
  }
  ~TempWalDir() {
    (void)unlink((path + "/wal.log").c_str());
    (void)unlink((path + "/snapshot.cql").c_str());
    (void)unlink((path + "/snapshot.tmp").c_str());
    (void)rmdir(path.c_str());
  }
};

/// Governance armed with limits the flights workload never reaches, so the
/// measured cost is purely the cooperative checks, not an abort.
ServiceOptions GovernedOptions() {
  ServiceOptions options;
  options.eval.deadline_ms = 60000;
  options.eval.max_derived_facts = 100000000;
  options.eval.cancel = CancelToken::Cancellable();
  return options;
}

/// A batch of kLegs/100 fresh legs drawn from the same time/cost
/// distribution as the base network (a typical feed update, not a swarm of
/// outlier cheap legs that would recompute most of the closure). `round`
/// seeds the generator so successive batches are distinct; legs go low →
/// high airport, preserving the network's acyclicity.
std::string IngestBatch(int round) {
  std::string text;
  std::mt19937_64 rng(9000 + static_cast<uint64_t>(round));
  for (int i = 0; i < kLegs / 100; ++i) {
    int from = static_cast<int>(rng() % (kAirports - 1));
    int to = from + 1 +
             static_cast<int>(rng() % static_cast<uint64_t>(kAirports - 1 -
                                                            from));
    int time = 30 + static_cast<int>(rng() % 570);
    int cost = 20 + static_cast<int>(rng() % 380);
    text += "singleleg(a" + std::to_string(from) + ", a" +
            std::to_string(to) + ", " + std::to_string(time) + ", " +
            std::to_string(cost) + ").\n";
  }
  return text;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct ArmSample {
  double wall_ms = 0;
  ServePath path = ServePath::kCold;
  size_t answers = 0;
  int iterations_run = 0;
};

ArmSample MeasureCold(QueryService& service) {
  auto start = std::chrono::steady_clock::now();
  QueryOutcome outcome =
      ValueOrDie(service.Execute(ServiceQuery(), kSteps), "cold");
  return ArmSample{MillisSince(start), outcome.path, outcome.answers.size(),
                   outcome.iterations_run};
}

ArmSample MeasureEpochHit(QueryService& service) {
  auto start = std::chrono::steady_clock::now();
  QueryOutcome outcome =
      ValueOrDie(service.Execute(ServiceQuery(), kSteps), "epoch-hit");
  return ArmSample{MillisSince(start), outcome.path, outcome.answers.size(),
                   outcome.iterations_run};
}

/// Ingest outside the clock — the measured cost is the re-query.
ArmSample MeasureIncremental(QueryService& service, int round) {
  (void)ValueOrDie(service.Ingest(IngestBatch(round)), "ingest");
  auto start = std::chrono::steady_clock::now();
  QueryOutcome outcome =
      ValueOrDie(service.Execute(ServiceQuery(), kSteps), "incremental");
  return ArmSample{MillisSince(start), outcome.path, outcome.answers.size(),
                   outcome.iterations_run};
}

struct ArmSummary {
  double wall_ms = 0;  // best of the repetitions
  ArmSample last;
};

constexpr int kIngestBatches = 20;

/// Total wall of kIngestBatches Ingest calls — the per-batch commit cost,
/// which with a WAL includes the append + fsync before the epoch flips.
double MeasureIngestTotal(QueryService& service) {
  auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < kIngestBatches; ++round) {
    (void)ValueOrDie(service.Ingest(IngestBatch(100 + round)), "ingest");
  }
  return MillisSince(start);
}

// ---------------------------------------------------------------------------
// Retraction arm: incremental shrink vs re-evaluation from scratch.

struct RetractArmResult {
  double incremental_ms = 1e18;
  double scratch_ms = 1e18;
  size_t incremental_answers = 0;
  size_t scratch_answers = 0;
  int removed = 0;
  int missing = 0;
  long retract_resumes = 0;
};

/// Ingests one batch, materializes, retracts ONE leg of it (the typical
/// feed correction), and measures the catch-up query (the retract-delta
/// resume of DESIGN.md §14) against a cold evaluation of the identical
/// surviving database — a fresh service that applies the same
/// ingest+retract before its first query, so the two EDBs are
/// byte-identical even if the random batch collided with a base leg. The
/// batch is fixed across repetitions so the answer sets are directly
/// comparable.
RetractArmResult MeasureRetractArm() {
  RetractArmResult out;
  constexpr int kReps = 5;
  const std::string batch = IngestBatch(500);
  const std::string victim = batch.substr(0, batch.find('\n') + 1);
  for (int rep = 0; rep < kReps; ++rep) {
    auto warm = MakeService();
    (void)ValueOrDie(warm->Ingest(batch), "retract-arm ingest");
    (void)ValueOrDie(warm->Execute(ServiceQuery(), kSteps),
                     "retract-arm warm query");
    RetractOutcome removed = ValueOrDie(warm->Retract(victim), "retract");
    auto start = std::chrono::steady_clock::now();
    QueryOutcome incremental =
        ValueOrDie(warm->Execute(ServiceQuery(), kSteps),
                   "retract-arm re-query");
    double inc_ms = MillisSince(start);
    if (inc_ms < out.incremental_ms) {
      out.incremental_ms = inc_ms;
      out.incremental_answers = incremental.answers.size();
      out.removed = removed.removed;
      out.missing = removed.missing;
      out.retract_resumes = warm->Stats().retract_resumes;
    }

    auto scratch = MakeService();
    (void)ValueOrDie(scratch->Ingest(batch), "retract-arm scratch ingest");
    (void)ValueOrDie(scratch->Retract(victim),
                     "retract-arm scratch retract");
    start = std::chrono::steady_clock::now();
    QueryOutcome cold = ValueOrDie(scratch->Execute(ServiceQuery(), kSteps),
                                   "retract-arm scratch query");
    double scr_ms = MillisSince(start);
    if (scr_ms < out.scratch_ms) {
      out.scratch_ms = scr_ms;
      out.scratch_answers = cold.answers.size();
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Replication arm: a WAL-shipping primary with an in-process follower
// (DESIGN.md §15) — bootstrap catch-up cost, follower read throughput
// against the primary's, the worst lag while tailing a write burst, and
// the structural gates of bench/baselines/service_replication.json
// (answers_match, zero divergences, failover write survival).

struct ReplicationArmResult {
  double bootstrap_ms = 0;         // snapshot install, level with history
  double tail_drain_ms = 0;        // draining the write burst to lag 0
  long records_applied = 0;
  long snapshots_installed = 0;
  long max_lag_records = 0;        // worst lag observed mid-burst
  double primary_reads_per_s = 0;
  double follower_reads_per_s = 0;
  size_t primary_answers = 0;
  size_t follower_answers = 0;
  bool answers_match = false;
  long divergences = 0;
  bool failover_write_survived = false;
};

ReplicationArmResult MeasureReplicationArm() {
  ReplicationArmResult out;
  TempWalDir p_dir;
  TempWalDir f_dir;
  ServiceOptions p_opts;
  p_opts.wal_dir = p_dir.path;
  auto primary = MakeService(p_opts);
  constexpr int kHistoryBatches = 10;
  for (int i = 0; i < kHistoryBatches; ++i) {
    (void)ValueOrDie(primary->Ingest(IngestBatch(i)), "replication history");
  }

  // The follower: same program, empty EDB, its own WAL — everything it
  // knows must arrive over the feed.
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  ServiceOptions f_opts;
  f_opts.wal_dir = f_dir.path;
  auto follower = ValueOrDie(
      QueryService::FromParts(std::move(in.program), Database(), f_opts),
      "follower service");
  // Small fetch batches so the burst below can genuinely outrun the
  // follower and the lag counter measures something real.
  ReplicatorOptions rep_opts;
  rep_opts.max_records = 2;
  Replicator replicator(
      follower.get(),
      std::make_unique<LocalReplicationSource>(primary.get()), rep_opts);
  replicator.AttachHooks();
  auto drain = [&replicator] {
    for (;;) {
      if (ValueOrDie(replicator.Step(), "replication step") == 0) return;
    }
  };

  // Bootstrap: the first fetch renegotiates a full snapshot cut at the
  // primary's head (the follower holds no generation yet).
  auto start = std::chrono::steady_clock::now();
  drain();
  out.bootstrap_ms = MillisSince(start);

  // Tail a write burst, stepping once per two commits so real lag builds
  // up, then drain level. The lag numbers come from the replicator's own
  // progress counters — the same ones HEALTH reports.
  constexpr int kBurstBatches = 10;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kBurstBatches; ++i) {
    (void)ValueOrDie(primary->Ingest(IngestBatch(kHistoryBatches + i)),
                     "burst ingest");
    if (i % 3 == 2) {
      (void)ValueOrDie(replicator.Step(), "burst step");
      ReplicatorProgress progress = replicator.Progress();
      if (progress.lag_records > out.max_lag_records) {
        out.max_lag_records = progress.lag_records;
      }
    }
  }
  drain();
  out.tail_drain_ms = MillisSince(start);
  {
    ReplicatorProgress progress = replicator.Progress();
    out.records_applied = progress.records_applied;
    out.snapshots_installed = progress.snapshots_installed;
  }

  // Read throughput at the same epoch, warm on both sides. The answers
  // must be byte-identical — the property the whole subsystem sells.
  QueryOutcome p_warm =
      ValueOrDie(primary->Execute(ServiceQuery(), kSteps), "primary warm");
  QueryOutcome f_warm =
      ValueOrDie(follower->Execute(ServiceQuery(), kSteps), "follower warm");
  out.primary_answers = p_warm.answers.size();
  out.follower_answers = f_warm.answers.size();
  out.answers_match = p_warm.answers == f_warm.answers &&
                      primary->epoch() == follower->epoch();
  constexpr int kReads = 200;
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReads; ++i) {
    (void)ValueOrDie(primary->Execute(ServiceQuery(), kSteps),
                     "primary read");
  }
  double primary_ms = MillisSince(start);
  start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReads; ++i) {
    (void)ValueOrDie(follower->Execute(ServiceQuery(), kSteps),
                     "follower read");
  }
  double follower_ms = MillisSince(start);
  out.primary_reads_per_s = primary_ms > 0 ? 1000.0 * kReads / primary_ms : 0;
  out.follower_reads_per_s =
      follower_ms > 0 ? 1000.0 * kReads / follower_ms : 0;

  // Failover: one acknowledged write the follower never pulls, kill the
  // primary, PROMOTE with its WAL directory. The drain must leave the
  // promoted node byte-identical to the dead primary's final state.
  (void)ValueOrDie(primary->Ingest(IngestBatch(kHistoryBatches + kBurstBatches)),
                   "failover write");
  std::string dead_state = primary->RenderStateText();
  primary.reset();
  Status promoted = follower->Promote(p_dir.path);
  if (!promoted.ok()) {
    std::fprintf(stderr, "replication arm: promote failed: %s\n",
                 promoted.ToString().c_str());
    std::abort();
  }
  out.failover_write_survived = follower->RenderStateText() == dead_state;
  out.divergences = replicator.Progress().quarantined ? 1 : 0;
  return out;
}

// ---------------------------------------------------------------------------
// Open-loop load generation against the epoll serve loop.

constexpr int kLoadConnections = 8;
constexpr int kLoadWorkers = 2;
constexpr int kLoadQueueDepth = 16;
constexpr double kLoadMultipliers[] = {0.25, 0.5, 1.0, 4.0};
constexpr double kLoadSeconds = 1.2;  // send window per rate point

/// The serving mix: one INGEST (a single fresh leg, forcing the next query
/// onto the resumed path) per nine QUERYs.
std::string LoadRequest(long i) {
  if (i % 10 == 9) {
    long from = i % (kAirports - 1);
    long to = from + 1 + (i / 10) % (kAirports - 1 - from);
    return "INGEST singleleg(a" + std::to_string(from) + ", a" +
           std::to_string(to) + ", " + std::to_string(30 + i % 570) + ", " +
           std::to_string(20 + i % 380) + ").";
  }
  return std::string("QUERY ") + kSteps + " " + ServiceQuery();
}

/// Mean per-request service time of the mix, measured serially on a warm
/// service — the capacity estimate the sweep's rate points scale from.
double CalibrateMeanServiceMs() {
  auto service = MakeService();
  (void)ValueOrDie(service->Execute(ServiceQuery(), kSteps), "warm");
  constexpr long kCalibration = 60;
  std::vector<std::string> out;
  auto start = std::chrono::steady_clock::now();
  for (long i = 0; i < kCalibration; ++i) {
    out.clear();
    HandleLine(*service, LoadRequest(i), &out);
  }
  return MillisSince(start) / kCalibration;
}

bool LoadSendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one END-framed response; empty on EOF / receive timeout.
std::vector<std::string> LoadReadResponse(int fd, std::string* buffer) {
  std::vector<std::string> lines;
  char chunk[4096];
  for (;;) {
    size_t newline = buffer->find('\n');
    if (newline == std::string::npos) {
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return {};
      buffer->append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer->substr(0, newline);
    buffer->erase(0, newline + 1);
    if (line == "END") return lines;
    lines.push_back(line);
  }
}

int LoadConnect(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout{15, 0};  // a stalled response shows up as `unanswered`
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

struct LoadPoint {
  double multiplier = 0;
  double rate_per_s = 0;
  long sent = 0;
  long ok = 0;
  long shed = 0;
  long errors = 0;
  long unanswered = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(q * static_cast<double>(sorted.size()));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

/// One rate point: a fresh warmed service behind a fresh serve loop
/// (kLoadWorkers workers, admission bound kLoadQueueDepth), Poisson
/// arrivals fanned round-robin over kLoadConnections pipelined
/// connections. Open loop: senders pace by the schedule, never by
/// responses, so queueing delay is visible instead of self-throttled.
/// Latency is response time minus *scheduled* arrival.
LoadPoint RunLoadPoint(double multiplier, double rate_per_s) {
  LoadPoint point;
  point.multiplier = multiplier;
  point.rate_per_s = rate_per_s;
  point.sent = std::max<long>(
      60, std::min<long>(1200, std::lround(rate_per_s * kLoadSeconds)));

  TempWalDir scratch;
  const std::string socket_path = scratch.path + "/load.sock";
  auto service = MakeService();
  (void)ValueOrDie(service->Execute(ServiceQuery(), kSteps), "warm");
  ServerOptions options;
  options.socket_path = socket_path;
  options.scheduler.workers = kLoadWorkers;
  options.scheduler.queue_depth = kLoadQueueDepth;
  std::promise<void> ready;
  options.on_ready = [&ready](const ServerEndpoints&) { ready.set_value(); };
  Status server_status = Status::OK();
  std::thread server([&] { server_status = ServeLoop(*service, options); });
  ready.get_future().wait();

  // The deterministic arrival schedule, split round-robin per connection.
  std::mt19937_64 rng(777 + static_cast<uint64_t>(multiplier * 100));
  std::exponential_distribution<double> inter_arrival(rate_per_s);
  std::vector<std::vector<double>> arrivals_ms(kLoadConnections);
  std::vector<std::vector<std::string>> requests(kLoadConnections);
  double t_s = 0;
  for (long i = 0; i < point.sent; ++i) {
    t_s += inter_arrival(rng);
    arrivals_ms[i % kLoadConnections].push_back(t_s * 1000.0);
    requests[i % kLoadConnections].push_back(LoadRequest(i) + "\n");
  }

  std::vector<int> fds(kLoadConnections);
  for (int c = 0; c < kLoadConnections; ++c) {
    fds[c] = LoadConnect(socket_path);
    if (fds[c] < 0) {
      std::fprintf(stderr, "load: connect failed\n");
      std::abort();
    }
  }

  std::mutex merge_mutex;
  std::vector<double> ok_latencies;
  const auto base = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < kLoadConnections; ++c) {
    threads.emplace_back([&, c] {  // sender
      for (size_t j = 0; j < requests[c].size(); ++j) {
        auto due = base + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double, std::milli>(
                                  arrivals_ms[c][j]));
        std::this_thread::sleep_until(due);
        if (!LoadSendAll(fds[c], requests[c][j])) return;
      }
    });
    threads.emplace_back([&, c] {  // reader
      std::string buffer;
      std::vector<double> latencies;
      long shed = 0, ok = 0, errors = 0;
      for (size_t j = 0; j < requests[c].size(); ++j) {
        std::vector<std::string> response = LoadReadResponse(fds[c], &buffer);
        if (response.empty()) break;  // timeout/EOF: the rest is unanswered
        double latency = MillisSince(base) - arrivals_ms[c][j];
        if (response.front().rfind("OK", 0) == 0) {
          ++ok;
          latencies.push_back(latency);
        } else if (response.front().rfind("ERR RESOURCE_EXHAUSTED", 0) == 0) {
          ++shed;
        } else {
          ++errors;
        }
      }
      std::lock_guard<std::mutex> hold(merge_mutex);
      point.ok += ok;
      point.shed += shed;
      point.errors += errors;
      ok_latencies.insert(ok_latencies.end(), latencies.begin(),
                          latencies.end());
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int fd : fds) ::close(fd);
  point.unanswered = point.sent - point.ok - point.shed - point.errors;

  int control = LoadConnect(socket_path);
  if (control >= 0) {
    std::string buffer;
    (void)LoadSendAll(control, "SHUTDOWN\n");
    (void)LoadReadResponse(control, &buffer);
    ::close(control);
  }
  server.join();
  if (!server_status.ok()) {
    std::fprintf(stderr, "load: serve loop failed: %s\n",
                 server_status.ToString().c_str());
    std::abort();
  }

  std::sort(ok_latencies.begin(), ok_latencies.end());
  point.p50_ms = Percentile(ok_latencies, 0.50);
  point.p99_ms = Percentile(ok_latencies, 0.99);
  point.p999_ms = Percentile(ok_latencies, 0.999);
  return point;
}

/// Runs the sweep, prints the table, and appends the "load" JSON section.
void RunLoadSweep(std::string* json_out) {
  double mean_service_ms = CalibrateMeanServiceMs();
  double capacity_per_s = kLoadWorkers * 1000.0 / mean_service_ms;
  std::printf("=== open-loop load: %d workers, queue %d, %d connections, "
              "mean service %.3f ms -> capacity %.0f req/s ===\n",
              kLoadWorkers, kLoadQueueDepth, kLoadConnections,
              mean_service_ms, capacity_per_s);
  std::printf("%-6s %10s %6s %6s %6s %6s %8s %10s %10s %10s\n", "xcap",
              "rate/s", "sent", "ok", "shed", "unans", "errors", "p50_ms",
              "p99_ms", "p999_ms");
  std::string section = "  \"load\": {\n";
  char head[256];
  std::snprintf(head, sizeof(head),
                "    \"workers\": %d, \"queue_depth\": %d, "
                "\"connections\": %d,\n    \"mean_service_ms\": %.3f, "
                "\"capacity_per_s\": %.1f,\n    \"points\": [\n",
                kLoadWorkers, kLoadQueueDepth, kLoadConnections,
                mean_service_ms, capacity_per_s);
  section += head;
  bool first = true;
  for (double multiplier : kLoadMultipliers) {
    LoadPoint point = RunLoadPoint(multiplier, multiplier * capacity_per_s);
    std::printf("%-6.2f %10.1f %6ld %6ld %6ld %6ld %8ld %10.3f %10.3f "
                "%10.3f\n",
                point.multiplier, point.rate_per_s, point.sent, point.ok,
                point.shed, point.unanswered, point.errors, point.p50_ms,
                point.p99_ms, point.p999_ms);
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "      {\"rate_multiplier\": %.2f, \"rate_per_s\": %.1f, "
                  "\"sent\": %ld, \"ok\": %ld, \"shed\": %ld, "
                  "\"unanswered\": %ld, \"errors\": %ld, "
                  "\"shed_rate\": %.4f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"p999_ms\": %.3f}",
                  point.multiplier, point.rate_per_s, point.sent, point.ok,
                  point.shed, point.unanswered, point.errors,
                  point.sent > 0 ? static_cast<double>(point.shed) /
                                       static_cast<double>(point.sent)
                                 : 0.0,
                  point.p50_ms, point.p99_ms, point.p999_ms);
    if (!first) section += ",\n";
    section += buf;
    first = false;
  }
  section += "\n    ]\n  }\n";
  std::printf("\n");
  *json_out = section;
}

void PrintAndMaybeWriteJson(bool json) {
  constexpr int kReps = 5;
  ArmSummary cold;
  ArmSummary hit;
  ArmSummary incremental;
  cold.wall_ms = hit.wall_ms = incremental.wall_ms = 1e18;

  for (int rep = 0; rep < kReps; ++rep) {
    // Cold: a fresh service every repetition, nothing warm.
    auto fresh = MakeService();
    ArmSample c = MeasureCold(*fresh);
    if (c.wall_ms < cold.wall_ms) cold.wall_ms = c.wall_ms;
    cold.last = c;
  }
  auto service = MakeService();
  (void)MeasureCold(*service);  // warm the prepared entry + materialization
  for (int rep = 0; rep < kReps; ++rep) {
    ArmSample h = MeasureEpochHit(*service);
    if (h.wall_ms < hit.wall_ms) hit.wall_ms = h.wall_ms;
    hit.last = h;
  }
  ServiceStats inc_stats;
  for (int rep = 0; rep < kReps; ++rep) {
    // A fresh warmed service per repetition keeps the database the same
    // size as the cold arm's (one 1% batch ahead), so the speedup is
    // incremental-vs-recompute, not small-database-vs-large.
    auto warm = MakeService();
    (void)MeasureCold(*warm);
    ArmSample i = MeasureIncremental(*warm, rep);
    if (i.wall_ms < incremental.wall_ms) incremental.wall_ms = i.wall_ms;
    incremental.last = i;
    inc_stats = warm->Stats();
  }

  auto speedup = [&](double ms) {
    return ms > 0 ? cold.wall_ms / ms : 0.0;
  };
  std::printf("=== cqld serving paths: flights, %d airports / %d legs, "
              "%s ===\n",
              kAirports, kLegs, kSteps);
  std::printf("%-14s %10s %12s %9s %11s %10s\n", "arm", "wall_ms", "path",
              "answers", "iterations", "vs cold");
  struct Row {
    const char* name;
    const ArmSummary* summary;
  };
  for (const Row& row : {Row{"cold", &cold}, Row{"epoch-hit", &hit},
                         Row{"incremental", &incremental}}) {
    std::printf("%-14s %10.3f %12s %9zu %11d %9.1fx\n", row.name,
                row.summary->wall_ms, ServePathName(row.summary->last.path),
                row.summary->last.answers, row.summary->last.iterations_run,
                speedup(row.summary->wall_ms));
  }
  std::printf("incremental service: queries=%ld resumes=%ld "
              "resumed_iterations=%ld epoch=%lld prepared_entries=%zu\n\n",
              inc_stats.queries, inc_stats.resumes,
              inc_stats.resumed_iterations,
              static_cast<long long>(inc_stats.epoch),
              inc_stats.prepared_entries);

  // Robustness overheads on the same workload: the WAL's per-batch fsync
  // tax, and governance checks that never trigger on the cold path.
  double ingest_off_ms = 1e18;
  double ingest_on_ms = 1e18;
  ServiceStats wal_stats;
  for (int rep = 0; rep < kReps; ++rep) {
    auto plain = MakeService();
    double off = MeasureIngestTotal(*plain);
    if (off < ingest_off_ms) ingest_off_ms = off;
    TempWalDir dir;
    ServiceOptions durable;
    durable.wal_dir = dir.path;
    auto walled = MakeService(durable);
    double on = MeasureIngestTotal(*walled);
    if (on < ingest_on_ms) ingest_on_ms = on;
    wal_stats = walled->Stats();
  }
  // Interleave governed and ungoverned cold runs so both see the same
  // process state (global decision cache, allocator, machine load) — the
  // cold arm above ran much earlier and is not a fair baseline here.
  double governed_ms = 1e18;
  double ungoverned_ms = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    auto plain = MakeService();
    ArmSample u = MeasureCold(*plain);
    if (u.wall_ms < ungoverned_ms) ungoverned_ms = u.wall_ms;
    auto governed = MakeService(GovernedOptions());
    ArmSample g = MeasureCold(*governed);
    if (g.wall_ms < governed_ms) governed_ms = g.wall_ms;
  }
  auto pct = [](double base, double with) {
    return base > 0 ? 100.0 * (with - base) / base : 0.0;
  };
  double wal_pct = pct(ingest_off_ms, ingest_on_ms);
  double gov_pct = pct(ungoverned_ms, governed_ms);
  std::printf("=== robustness overheads (same workload) ===\n");
  std::printf("ingest x%d batches: wal-off %.3f ms, wal-on %.3f ms "
              "(%+.1f%%; appends=%ld bytes=%ld)\n",
              kIngestBatches, ingest_off_ms, ingest_on_ms, wal_pct,
              wal_stats.wal_appends, wal_stats.wal_bytes);
  std::printf("cold query: ungoverned %.3f ms, governed %.3f ms "
              "(%+.1f%%, target < 2%%)\n\n",
              ungoverned_ms, governed_ms, gov_pct);

  RetractArmResult retract = MeasureRetractArm();
  std::printf("=== retraction: incremental shrink vs scratch re-eval ===\n");
  std::printf("retract %d fact(s): incremental %.3f ms, scratch %.3f ms "
              "(%.1fx); answers %zu vs %zu (%s), retract_resumes=%ld\n\n",
              retract.removed, retract.incremental_ms, retract.scratch_ms,
              retract.incremental_ms > 0
                  ? retract.scratch_ms / retract.incremental_ms
                  : 0.0,
              retract.incremental_answers, retract.scratch_answers,
              retract.incremental_answers == retract.scratch_answers
                  ? "match"
                  : "MISMATCH",
              retract.retract_resumes);

  ReplicationArmResult rep = MeasureReplicationArm();
  std::printf("=== replication: WAL-shipped follower vs primary ===\n");
  std::printf("bootstrap %.3f ms (snapshots=%ld), tail drain %.3f ms "
              "(records=%ld, max lag %ld)\n",
              rep.bootstrap_ms, rep.snapshots_installed, rep.tail_drain_ms,
              rep.records_applied, rep.max_lag_records);
  std::printf("reads/s: primary %.0f, follower %.0f (%.2fx); answers %zu "
              "vs %zu (%s); divergences=%ld; failover write %s\n\n",
              rep.primary_reads_per_s, rep.follower_reads_per_s,
              rep.primary_reads_per_s > 0
                  ? rep.follower_reads_per_s / rep.primary_reads_per_s
                  : 0.0,
              rep.primary_answers, rep.follower_answers,
              rep.answers_match ? "match" : "MISMATCH", rep.divergences,
              rep.failover_write_survived ? "survived" : "LOST");

  std::string load_section;
  RunLoadSweep(&load_section);

  if (!json) return;
  std::string out = "{\n  \"bench\": \"service\",\n  \"arms\": [\n";
  bool first = true;
  for (const Row& row : {Row{"cold", &cold}, Row{"epoch-hit", &hit},
                         Row{"incremental", &incremental}}) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"label\": \"%s\", \"wall_ms\": %.3f, "
                  "\"path\": \"%s\", \"answers\": %zu, "
                  "\"iterations_run\": %d, \"speedup_vs_cold\": %.2f}",
                  row.name, row.summary->wall_ms,
                  ServePathName(row.summary->last.path),
                  row.summary->last.answers, row.summary->last.iterations_run,
                  speedup(row.summary->wall_ms));
    if (!first) out += ",\n";
    out += buf;
    first = false;
  }
  out += "\n  ],\n";
  char overheads[512];
  std::snprintf(
      overheads, sizeof(overheads),
      "  \"overheads\": {\"ingest_batches\": %d, "
      "\"ingest_wal_off_ms\": %.3f, \"ingest_wal_on_ms\": %.3f, "
      "\"wal_overhead_pct\": %.2f, \"wal_appends\": %ld, "
      "\"wal_bytes\": %ld, \"cold_ungoverned_ms\": %.3f, "
      "\"cold_governed_ms\": %.3f, "
      "\"governance_overhead_pct\": %.2f},\n",
      kIngestBatches, ingest_off_ms, ingest_on_ms, wal_pct,
      wal_stats.wal_appends, wal_stats.wal_bytes, ungoverned_ms,
      governed_ms, gov_pct);
  out += overheads;
  char retract_json[512];
  std::snprintf(
      retract_json, sizeof(retract_json),
      "  \"retract\": {\"removed\": %d, \"missing\": %d, "
      "\"incremental_ms\": %.3f, \"scratch_ms\": %.3f, "
      "\"speedup_vs_scratch\": %.2f, \"incremental_answers\": %zu, "
      "\"scratch_answers\": %zu, \"answers_match\": %s, "
      "\"retract_resumes\": %ld},\n",
      retract.removed, retract.missing, retract.incremental_ms,
      retract.scratch_ms,
      retract.incremental_ms > 0
          ? retract.scratch_ms / retract.incremental_ms
          : 0.0,
      retract.incremental_answers, retract.scratch_answers,
      retract.incremental_answers == retract.scratch_answers ? "true"
                                                             : "false",
      retract.retract_resumes);
  out += retract_json;
  char replication_json[768];
  std::snprintf(
      replication_json, sizeof(replication_json),
      "  \"replication\": {\"bootstrap_ms\": %.3f, "
      "\"tail_drain_ms\": %.3f, \"records_applied\": %ld, "
      "\"snapshots_installed\": %ld, \"max_lag_records\": %ld, "
      "\"primary_reads_per_s\": %.1f, \"follower_reads_per_s\": %.1f, "
      "\"primary_answers\": %zu, \"follower_answers\": %zu, "
      "\"answers_match\": %s, \"divergences\": %ld, "
      "\"failover_write_survived\": %s},\n",
      rep.bootstrap_ms, rep.tail_drain_ms, rep.records_applied,
      rep.snapshots_installed, rep.max_lag_records, rep.primary_reads_per_s,
      rep.follower_reads_per_s, rep.primary_answers, rep.follower_answers,
      rep.answers_match ? "true" : "false", rep.divergences,
      rep.failover_write_survived ? "true" : "false");
  out += replication_json;
  out += load_section;
  out += "}\n";
  FILE* f = std::fopen("BENCH_service.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    std::abort();
  }
  std::fputs(out.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_service.json\n");
}

void BM_ServiceCold(benchmark::State& state) {
  for (auto _ : state) {
    auto service = MakeService();
    auto outcome = service->Execute(ServiceQuery(), kSteps);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceCold);

void BM_ServiceEpochHit(benchmark::State& state) {
  auto service = MakeService();
  (void)ValueOrDie(service->Execute(ServiceQuery(), kSteps), "warm");
  for (auto _ : state) {
    auto outcome = service->Execute(ServiceQuery(), kSteps);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceEpochHit);

void BM_ServiceIncremental(benchmark::State& state) {
  auto service = MakeService();
  (void)ValueOrDie(service->Execute(ServiceQuery(), kSteps), "warm");
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    (void)ValueOrDie(service->Ingest(IngestBatch(round++)), "ingest");
    state.ResumeTiming();
    auto outcome = service->Execute(ServiceQuery(), kSteps);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceIncremental);

void BM_ServiceIngestNoWal(benchmark::State& state) {
  auto service = MakeService();
  int round = 0;
  for (auto _ : state) {
    auto outcome = service->Ingest(IngestBatch(round++));
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceIngestNoWal);

void BM_ServiceIngestWal(benchmark::State& state) {
  TempWalDir dir;
  ServiceOptions durable;
  durable.wal_dir = dir.path;
  auto service = MakeService(durable);
  int round = 0;
  for (auto _ : state) {
    auto outcome = service->Ingest(IngestBatch(round++));
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceIngestWal);

void BM_ServiceColdGoverned(benchmark::State& state) {
  for (auto _ : state) {
    auto service = MakeService(GovernedOptions());
    auto outcome = service->Execute(ServiceQuery(), kSteps);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceColdGoverned);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  bool json = cqlopt::bench::StripJsonFlag(&argc, argv);
  cqlopt::bench::PrintAndMaybeWriteJson(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
