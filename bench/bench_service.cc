// Serving-path benchmark for the cqld subsystem (src/service): the same
// flights query served three ways —
//   cold         fresh service: parse + pipeline + stratified evaluation
//   epoch-hit    repeated query at an unchanged epoch: answers come from
//                the entry's materialized evaluation
//   incremental  re-query after ingesting ~1% of the EDB: the materialized
//                fixpoint is resumed with the delta instead of recomputed
// The headline number is the speedup of each warm path over cold; the
// prepared+incremental path is the subsystem's reason to exist.
//
// A second section measures the robustness features' overhead on the same
// workload: ingestion with the write-ahead log on vs off (the fsync tax a
// durable deployment pays per batch) and the cold query with governance
// armed vs off (deadline + derived-fact budget checks that never trigger —
// the acceptance bar is < 2% on this workload).

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdlib>
#include <random>

#include "bench_util.h"
#include "service/query_service.h"

namespace cqlopt {
namespace bench {
namespace {

constexpr int kAirports = 24;
constexpr int kLegs = 800;
constexpr const char* kSteps = "pred,qrp,mg";

std::string ServiceQuery() {
  return "?- cheaporshort(a5, a9, Time, Cost).";
}

std::unique_ptr<QueryService> MakeService(const ServiceOptions& options = {}) {
  ParsedInput in = ParseWithQueryOrDie(FlightsProgram());
  FlightNetworkSpec spec;
  spec.airports = kAirports;
  spec.legs = kLegs;
  spec.seed = 42;
  Database db;
  (void)AddFlightNetwork(in.program.symbols.get(), spec, &db);
  return ValueOrDie(
      QueryService::FromParts(std::move(in.program), std::move(db), options),
      "service");
}

/// Scratch directory for the WAL-on ingestion arm, removed on destruction.
struct TempWalDir {
  std::string path;
  TempWalDir() {
    const char* base = std::getenv("TMPDIR");
    path = std::string(base != nullptr ? base : "/tmp") +
           "/cqlopt-bench-XXXXXX";
    if (mkdtemp(path.data()) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed for %s\n", path.c_str());
      std::abort();
    }
  }
  ~TempWalDir() {
    (void)unlink((path + "/wal.log").c_str());
    (void)unlink((path + "/snapshot.cql").c_str());
    (void)unlink((path + "/snapshot.tmp").c_str());
    (void)rmdir(path.c_str());
  }
};

/// Governance armed with limits the flights workload never reaches, so the
/// measured cost is purely the cooperative checks, not an abort.
ServiceOptions GovernedOptions() {
  ServiceOptions options;
  options.eval.deadline_ms = 60000;
  options.eval.max_derived_facts = 100000000;
  options.eval.cancel = CancelToken::Cancellable();
  return options;
}

/// A batch of kLegs/100 fresh legs drawn from the same time/cost
/// distribution as the base network (a typical feed update, not a swarm of
/// outlier cheap legs that would recompute most of the closure). `round`
/// seeds the generator so successive batches are distinct; legs go low →
/// high airport, preserving the network's acyclicity.
std::string IngestBatch(int round) {
  std::string text;
  std::mt19937_64 rng(9000 + static_cast<uint64_t>(round));
  for (int i = 0; i < kLegs / 100; ++i) {
    int from = static_cast<int>(rng() % (kAirports - 1));
    int to = from + 1 +
             static_cast<int>(rng() % static_cast<uint64_t>(kAirports - 1 -
                                                            from));
    int time = 30 + static_cast<int>(rng() % 570);
    int cost = 20 + static_cast<int>(rng() % 380);
    text += "singleleg(a" + std::to_string(from) + ", a" +
            std::to_string(to) + ", " + std::to_string(time) + ", " +
            std::to_string(cost) + ").\n";
  }
  return text;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct ArmSample {
  double wall_ms = 0;
  ServePath path = ServePath::kCold;
  size_t answers = 0;
  int iterations_run = 0;
};

ArmSample MeasureCold(QueryService& service) {
  auto start = std::chrono::steady_clock::now();
  QueryOutcome outcome =
      ValueOrDie(service.Execute(ServiceQuery(), kSteps), "cold");
  return ArmSample{MillisSince(start), outcome.path, outcome.answers.size(),
                   outcome.iterations_run};
}

ArmSample MeasureEpochHit(QueryService& service) {
  auto start = std::chrono::steady_clock::now();
  QueryOutcome outcome =
      ValueOrDie(service.Execute(ServiceQuery(), kSteps), "epoch-hit");
  return ArmSample{MillisSince(start), outcome.path, outcome.answers.size(),
                   outcome.iterations_run};
}

/// Ingest outside the clock — the measured cost is the re-query.
ArmSample MeasureIncremental(QueryService& service, int round) {
  (void)ValueOrDie(service.Ingest(IngestBatch(round)), "ingest");
  auto start = std::chrono::steady_clock::now();
  QueryOutcome outcome =
      ValueOrDie(service.Execute(ServiceQuery(), kSteps), "incremental");
  return ArmSample{MillisSince(start), outcome.path, outcome.answers.size(),
                   outcome.iterations_run};
}

struct ArmSummary {
  double wall_ms = 0;  // best of the repetitions
  ArmSample last;
};

constexpr int kIngestBatches = 20;

/// Total wall of kIngestBatches Ingest calls — the per-batch commit cost,
/// which with a WAL includes the append + fsync before the epoch flips.
double MeasureIngestTotal(QueryService& service) {
  auto start = std::chrono::steady_clock::now();
  for (int round = 0; round < kIngestBatches; ++round) {
    (void)ValueOrDie(service.Ingest(IngestBatch(100 + round)), "ingest");
  }
  return MillisSince(start);
}

void PrintAndMaybeWriteJson(bool json) {
  constexpr int kReps = 5;
  ArmSummary cold;
  ArmSummary hit;
  ArmSummary incremental;
  cold.wall_ms = hit.wall_ms = incremental.wall_ms = 1e18;

  for (int rep = 0; rep < kReps; ++rep) {
    // Cold: a fresh service every repetition, nothing warm.
    auto fresh = MakeService();
    ArmSample c = MeasureCold(*fresh);
    if (c.wall_ms < cold.wall_ms) cold.wall_ms = c.wall_ms;
    cold.last = c;
  }
  auto service = MakeService();
  (void)MeasureCold(*service);  // warm the prepared entry + materialization
  for (int rep = 0; rep < kReps; ++rep) {
    ArmSample h = MeasureEpochHit(*service);
    if (h.wall_ms < hit.wall_ms) hit.wall_ms = h.wall_ms;
    hit.last = h;
  }
  ServiceStats inc_stats;
  for (int rep = 0; rep < kReps; ++rep) {
    // A fresh warmed service per repetition keeps the database the same
    // size as the cold arm's (one 1% batch ahead), so the speedup is
    // incremental-vs-recompute, not small-database-vs-large.
    auto warm = MakeService();
    (void)MeasureCold(*warm);
    ArmSample i = MeasureIncremental(*warm, rep);
    if (i.wall_ms < incremental.wall_ms) incremental.wall_ms = i.wall_ms;
    incremental.last = i;
    inc_stats = warm->Stats();
  }

  auto speedup = [&](double ms) {
    return ms > 0 ? cold.wall_ms / ms : 0.0;
  };
  std::printf("=== cqld serving paths: flights, %d airports / %d legs, "
              "%s ===\n",
              kAirports, kLegs, kSteps);
  std::printf("%-14s %10s %12s %9s %11s %10s\n", "arm", "wall_ms", "path",
              "answers", "iterations", "vs cold");
  struct Row {
    const char* name;
    const ArmSummary* summary;
  };
  for (const Row& row : {Row{"cold", &cold}, Row{"epoch-hit", &hit},
                         Row{"incremental", &incremental}}) {
    std::printf("%-14s %10.3f %12s %9zu %11d %9.1fx\n", row.name,
                row.summary->wall_ms, ServePathName(row.summary->last.path),
                row.summary->last.answers, row.summary->last.iterations_run,
                speedup(row.summary->wall_ms));
  }
  std::printf("incremental service: queries=%ld resumes=%ld "
              "resumed_iterations=%ld epoch=%lld prepared_entries=%zu\n\n",
              inc_stats.queries, inc_stats.resumes,
              inc_stats.resumed_iterations,
              static_cast<long long>(inc_stats.epoch),
              inc_stats.prepared_entries);

  // Robustness overheads on the same workload: the WAL's per-batch fsync
  // tax, and governance checks that never trigger on the cold path.
  double ingest_off_ms = 1e18;
  double ingest_on_ms = 1e18;
  ServiceStats wal_stats;
  for (int rep = 0; rep < kReps; ++rep) {
    auto plain = MakeService();
    double off = MeasureIngestTotal(*plain);
    if (off < ingest_off_ms) ingest_off_ms = off;
    TempWalDir dir;
    ServiceOptions durable;
    durable.wal_dir = dir.path;
    auto walled = MakeService(durable);
    double on = MeasureIngestTotal(*walled);
    if (on < ingest_on_ms) ingest_on_ms = on;
    wal_stats = walled->Stats();
  }
  // Interleave governed and ungoverned cold runs so both see the same
  // process state (global decision cache, allocator, machine load) — the
  // cold arm above ran much earlier and is not a fair baseline here.
  double governed_ms = 1e18;
  double ungoverned_ms = 1e18;
  for (int rep = 0; rep < kReps; ++rep) {
    auto plain = MakeService();
    ArmSample u = MeasureCold(*plain);
    if (u.wall_ms < ungoverned_ms) ungoverned_ms = u.wall_ms;
    auto governed = MakeService(GovernedOptions());
    ArmSample g = MeasureCold(*governed);
    if (g.wall_ms < governed_ms) governed_ms = g.wall_ms;
  }
  auto pct = [](double base, double with) {
    return base > 0 ? 100.0 * (with - base) / base : 0.0;
  };
  double wal_pct = pct(ingest_off_ms, ingest_on_ms);
  double gov_pct = pct(ungoverned_ms, governed_ms);
  std::printf("=== robustness overheads (same workload) ===\n");
  std::printf("ingest x%d batches: wal-off %.3f ms, wal-on %.3f ms "
              "(%+.1f%%; appends=%ld bytes=%ld)\n",
              kIngestBatches, ingest_off_ms, ingest_on_ms, wal_pct,
              wal_stats.wal_appends, wal_stats.wal_bytes);
  std::printf("cold query: ungoverned %.3f ms, governed %.3f ms "
              "(%+.1f%%, target < 2%%)\n\n",
              ungoverned_ms, governed_ms, gov_pct);

  if (!json) return;
  std::string out = "{\n  \"bench\": \"service\",\n  \"arms\": [\n";
  bool first = true;
  for (const Row& row : {Row{"cold", &cold}, Row{"epoch-hit", &hit},
                         Row{"incremental", &incremental}}) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"label\": \"%s\", \"wall_ms\": %.3f, "
                  "\"path\": \"%s\", \"answers\": %zu, "
                  "\"iterations_run\": %d, \"speedup_vs_cold\": %.2f}",
                  row.name, row.summary->wall_ms,
                  ServePathName(row.summary->last.path),
                  row.summary->last.answers, row.summary->last.iterations_run,
                  speedup(row.summary->wall_ms));
    if (!first) out += ",\n";
    out += buf;
    first = false;
  }
  out += "\n  ],\n";
  char overheads[512];
  std::snprintf(
      overheads, sizeof(overheads),
      "  \"overheads\": {\"ingest_batches\": %d, "
      "\"ingest_wal_off_ms\": %.3f, \"ingest_wal_on_ms\": %.3f, "
      "\"wal_overhead_pct\": %.2f, \"wal_appends\": %ld, "
      "\"wal_bytes\": %ld, \"cold_ungoverned_ms\": %.3f, "
      "\"cold_governed_ms\": %.3f, "
      "\"governance_overhead_pct\": %.2f}\n}\n",
      kIngestBatches, ingest_off_ms, ingest_on_ms, wal_pct,
      wal_stats.wal_appends, wal_stats.wal_bytes, ungoverned_ms,
      governed_ms, gov_pct);
  out += overheads;
  FILE* f = std::fopen("BENCH_service.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_service.json\n");
    std::abort();
  }
  std::fputs(out.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_service.json\n");
}

void BM_ServiceCold(benchmark::State& state) {
  for (auto _ : state) {
    auto service = MakeService();
    auto outcome = service->Execute(ServiceQuery(), kSteps);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceCold);

void BM_ServiceEpochHit(benchmark::State& state) {
  auto service = MakeService();
  (void)ValueOrDie(service->Execute(ServiceQuery(), kSteps), "warm");
  for (auto _ : state) {
    auto outcome = service->Execute(ServiceQuery(), kSteps);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceEpochHit);

void BM_ServiceIncremental(benchmark::State& state) {
  auto service = MakeService();
  (void)ValueOrDie(service->Execute(ServiceQuery(), kSteps), "warm");
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    (void)ValueOrDie(service->Ingest(IngestBatch(round++)), "ingest");
    state.ResumeTiming();
    auto outcome = service->Execute(ServiceQuery(), kSteps);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceIncremental);

void BM_ServiceIngestNoWal(benchmark::State& state) {
  auto service = MakeService();
  int round = 0;
  for (auto _ : state) {
    auto outcome = service->Ingest(IngestBatch(round++));
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceIngestNoWal);

void BM_ServiceIngestWal(benchmark::State& state) {
  TempWalDir dir;
  ServiceOptions durable;
  durable.wal_dir = dir.path;
  auto service = MakeService(durable);
  int round = 0;
  for (auto _ : state) {
    auto outcome = service->Ingest(IngestBatch(round++));
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceIngestWal);

void BM_ServiceColdGoverned(benchmark::State& state) {
  for (auto _ : state) {
    auto service = MakeService(GovernedOptions());
    auto outcome = service->Execute(ServiceQuery(), kSteps);
    benchmark::DoNotOptimize(outcome.ok());
  }
}
BENCHMARK(BM_ServiceColdGoverned);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  bool json = cqlopt::bench::StripJsonFlag(&argc, argv);
  cqlopt::bench::PrintAndMaybeWriteJson(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
