// Fuzzing-harness throughput: how many random cases the generator can
// produce per second, and how many metamorphic property checks per second
// each registered property sustains on generated cases. These numbers size
// the CI smoke budget (200 iterations) and the nightly random-seed run
// (10k iterations): nightly-iters ~= wall-budget * checks/sec.
//
//   bench_fuzz_throughput [--json]   # --json also writes BENCH_fuzz.json

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "constraint/interval.h"
#include "testing/generator.h"
#include "testing/properties.h"

namespace cqlopt {
namespace bench {
namespace {

using cqlopt::testing::AllProperties;
using cqlopt::testing::FuzzCase;
using cqlopt::testing::FuzzOptions;
using cqlopt::testing::GenerateCase;
using cqlopt::testing::PropertyInfo;
using cqlopt::testing::Rng;

constexpr uint64_t kSeed = 42;
constexpr int kGenCases = 2000;
constexpr int kCheckCases = 16;

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct PropertyRate {
  std::string name;
  double checks_per_sec = 0;
  int checked = 0;
  int skipped = 0;
};

void PrintAndMaybeWriteJson(bool json) {
  // Generator throughput.
  auto gen_start = std::chrono::steady_clock::now();
  size_t total_rules = 0;
  for (int i = 0; i < kGenCases; ++i) {
    FuzzCase c = GenerateCase(Rng::DeriveSeed(kSeed, i), {});
    total_rules += c.program.rules.size();
  }
  double gen_secs = Seconds(gen_start);
  double gen_per_sec = static_cast<double>(kGenCases) / gen_secs;

  // Per-property check throughput over a shared case set.
  std::vector<FuzzCase> cases;
  for (int i = 0; i < kCheckCases; ++i) {
    cases.push_back(GenerateCase(Rng::DeriveSeed(kSeed, i), {}));
  }
  FuzzOptions fuzz;
  std::vector<PropertyRate> rates;
  double total_checks_per_sec = 0;
  for (const PropertyInfo& info : AllProperties()) {
    PropertyRate rate;
    rate.name = info.name;
    auto start = std::chrono::steady_clock::now();
    for (const FuzzCase& c : cases) {
      auto outcome = info.fn(c, fuzz);
      if (!outcome.ok) {
        std::fprintf(stderr, "property %s FAILED during bench: %s\n",
                     info.name, outcome.message.c_str());
        std::abort();
      }
      outcome.skipped ? ++rate.skipped : ++rate.checked;
    }
    double secs = Seconds(start);
    rate.checks_per_sec =
        secs > 0 ? static_cast<double>(kCheckCases) / secs : 0;
    total_checks_per_sec += rate.checks_per_sec;
    rates.push_back(rate);
  }

  std::printf("=== fuzz harness throughput (seed %llu) ===\n",
              static_cast<unsigned long long>(kSeed));
  std::printf("generator: %.0f programs/sec (%d cases, avg %.1f rules)\n",
              gen_per_sec, kGenCases,
              static_cast<double>(total_rules) / kGenCases);
  std::printf("%-22s %14s %8s %8s\n", "property", "checks/sec", "checked",
              "skipped");
  for (const PropertyRate& rate : rates) {
    std::printf("%-22s %14.1f %8d %8d\n", rate.name.c_str(),
                rate.checks_per_sec, rate.checked, rate.skipped);
  }
  std::printf("all-properties pipeline: %.2f cases/sec\n\n",
              1.0 / [&] {
                double total = 0;
                for (const PropertyRate& r : rates) {
                  if (r.checks_per_sec > 0) total += 1.0 / r.checks_per_sec;
                }
                return total > 0 ? total : 1.0;
              }());

  // Interval-prepass ablation on the heaviest differential property: runs
  // oracle_equiv over the shared case set with the prepass on vs off and
  // reports the constraint-decision split of the fast tier.
  const PropertyInfo* oracle = cqlopt::testing::FindProperty("oracle_equiv");
  double arm_ms[2] = {0, 0};
  cqlopt::prepass::Counters split[2];
  for (int arm = 0; arm < 2; ++arm) {
    std::optional<cqlopt::prepass::PrepassDisabler> prepass_off;
    if (arm == 1) prepass_off.emplace();
    cqlopt::prepass::Counters before = cqlopt::prepass::Snapshot();
    auto start = std::chrono::steady_clock::now();
    for (const FuzzCase& c : cases) {
      auto outcome = oracle->fn(c, fuzz);
      if (!outcome.ok) {
        std::fprintf(stderr, "oracle_equiv FAILED during prepass bench: %s\n",
                     outcome.message.c_str());
        std::abort();
      }
    }
    arm_ms[arm] = 1000.0 * Seconds(start);
    cqlopt::prepass::Counters after = cqlopt::prepass::Snapshot();
    split[arm].sat = after.sat - before.sat;
    split[arm].unsat = after.unsat - before.unsat;
    split[arm].implied = after.implied - before.implied;
    split[arm].not_implied = after.not_implied - before.not_implied;
    split[arm].fallback = after.fallback - before.fallback;
  }
  double fuzz_delta_pct =
      arm_ms[1] > 0 ? 100.0 * (arm_ms[1] - arm_ms[0]) / arm_ms[1] : 0.0;
  long fuzz_decisions = split[0].conclusive() + split[0].fallback;
  double fuzz_rate =
      fuzz_decisions > 0
          ? static_cast<double>(split[0].conclusive()) / fuzz_decisions
          : 0.0;
  std::printf("prepass ablation (oracle_equiv x %d cases): on=%.1fms "
              "off=%.1fms delta=%.1f%% conclusive=%ld fallback=%ld\n\n",
              kCheckCases, arm_ms[0], arm_ms[1], fuzz_delta_pct,
              split[0].conclusive(), split[0].fallback);

  if (!json) return;
  {
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "{\"workload\": \"fuzz_oracle_equiv\", \"reps\": 1, "
        "\"delta_pct\": %.1f, \"conclusive_rate\": %.4f, \"arms\": ["
        "{\"label\": \"prepass-on\", \"wall_ms\": %.3f, "
        "\"prepass_conclusive\": %ld, \"prepass_fallback\": %ld}, "
        "{\"label\": \"prepass-off\", \"wall_ms\": %.3f, "
        "\"prepass_conclusive\": %ld, \"prepass_fallback\": %ld}]}",
        fuzz_delta_pct, fuzz_rate, arm_ms[0], split[0].conclusive(),
        split[0].fallback, arm_ms[1], split[1].conclusive(),
        split[1].fallback);
    MergePrepassWorkload("fuzz_oracle_equiv", row);
  }
  std::string out = "{\n  \"bench\": \"fuzz\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"generated_programs_per_sec\": %.1f,\n", gen_per_sec);
  out += buf;
  out += "  \"property_checks_per_sec\": [\n";
  bool first = true;
  for (const PropertyRate& rate : rates) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"property\": \"%s\", \"checks_per_sec\": %.1f, "
                  "\"checked\": %d, \"skipped\": %d}",
                  rate.name.c_str(), rate.checks_per_sec, rate.checked,
                  rate.skipped);
    if (!first) out += ",\n";
    out += buf;
    first = false;
  }
  out += "\n  ]\n}\n";
  FILE* f = std::fopen("BENCH_fuzz.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_fuzz.json\n");
    std::abort();
  }
  std::fputs(out.c_str(), f);
  std::fclose(f);
  std::printf("wrote BENCH_fuzz.json\n");
}

void BM_GenerateCase(benchmark::State& state) {
  uint64_t i = 0;
  for (auto _ : state) {
    FuzzCase c = GenerateCase(Rng::DeriveSeed(kSeed, i++), {});
    benchmark::DoNotOptimize(c.program.rules.size());
  }
}
BENCHMARK(BM_GenerateCase);

void BM_OracleEquivCheck(benchmark::State& state) {
  FuzzCase c = GenerateCase(Rng::DeriveSeed(kSeed, 0), {});
  const PropertyInfo* oracle = cqlopt::testing::FindProperty("oracle_equiv");
  FuzzOptions fuzz;
  for (auto _ : state) {
    auto outcome = oracle->fn(c, fuzz);
    benchmark::DoNotOptimize(outcome.ok);
  }
}
BENCHMARK(BM_OracleEquivCheck);

}  // namespace
}  // namespace bench
}  // namespace cqlopt

int main(int argc, char** argv) {
  bool json = cqlopt::bench::StripJsonFlag(&argc, argv);
  cqlopt::bench::PrintAndMaybeWriteJson(json);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
