# Empty compiler generated dependencies file for flight_planner.
# This may be replaced when dependencies are built.
