file(REMOVE_RECURSE
  "CMakeFiles/flight_planner.dir/flight_planner.cpp.o"
  "CMakeFiles/flight_planner.dir/flight_planner.cpp.o.d"
  "flight_planner"
  "flight_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flight_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
