file(REMOVE_RECURSE
  "CMakeFiles/program_optimizer.dir/program_optimizer.cpp.o"
  "CMakeFiles/program_optimizer.dir/program_optimizer.cpp.o.d"
  "program_optimizer"
  "program_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
