# Empty dependencies file for program_optimizer.
# This may be replaced when dependencies are built.
