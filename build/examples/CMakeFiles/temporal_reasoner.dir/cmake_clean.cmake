file(REMOVE_RECURSE
  "CMakeFiles/temporal_reasoner.dir/temporal_reasoner.cpp.o"
  "CMakeFiles/temporal_reasoner.dir/temporal_reasoner.cpp.o.d"
  "temporal_reasoner"
  "temporal_reasoner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_reasoner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
