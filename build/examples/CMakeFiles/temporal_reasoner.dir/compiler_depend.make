# Empty compiler generated dependencies file for temporal_reasoner.
# This may be replaced when dependencies are built.
