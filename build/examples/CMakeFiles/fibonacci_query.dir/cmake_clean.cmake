file(REMOVE_RECURSE
  "CMakeFiles/fibonacci_query.dir/fibonacci_query.cpp.o"
  "CMakeFiles/fibonacci_query.dir/fibonacci_query.cpp.o.d"
  "fibonacci_query"
  "fibonacci_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fibonacci_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
