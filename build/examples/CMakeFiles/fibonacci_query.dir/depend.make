# Empty dependencies file for fibonacci_query.
# This may be replaced when dependencies are built.
