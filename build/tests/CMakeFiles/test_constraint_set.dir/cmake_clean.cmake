file(REMOVE_RECURSE
  "CMakeFiles/test_constraint_set.dir/test_constraint_set.cc.o"
  "CMakeFiles/test_constraint_set.dir/test_constraint_set.cc.o.d"
  "test_constraint_set"
  "test_constraint_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constraint_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
