# Empty dependencies file for test_constraint_set.
# This may be replaced when dependencies are built.
