# Empty compiler generated dependencies file for test_widening.
# This may be replaced when dependencies are built.
