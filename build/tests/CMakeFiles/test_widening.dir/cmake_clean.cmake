file(REMOVE_RECURSE
  "CMakeFiles/test_widening.dir/test_widening.cc.o"
  "CMakeFiles/test_widening.dir/test_widening.cc.o.d"
  "test_widening"
  "test_widening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_widening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
