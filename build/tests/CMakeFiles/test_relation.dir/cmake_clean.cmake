file(REMOVE_RECURSE
  "CMakeFiles/test_relation.dir/test_relation.cc.o"
  "CMakeFiles/test_relation.dir/test_relation.cc.o.d"
  "test_relation"
  "test_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
