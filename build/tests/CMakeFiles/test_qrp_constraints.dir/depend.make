# Empty dependencies file for test_qrp_constraints.
# This may be replaced when dependencies are built.
