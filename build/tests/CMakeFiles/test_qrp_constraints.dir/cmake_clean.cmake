file(REMOVE_RECURSE
  "CMakeFiles/test_qrp_constraints.dir/test_qrp_constraints.cc.o"
  "CMakeFiles/test_qrp_constraints.dir/test_qrp_constraints.cc.o.d"
  "test_qrp_constraints"
  "test_qrp_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qrp_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
