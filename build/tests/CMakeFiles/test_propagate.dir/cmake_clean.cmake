file(REMOVE_RECURSE
  "CMakeFiles/test_propagate.dir/test_propagate.cc.o"
  "CMakeFiles/test_propagate.dir/test_propagate.cc.o.d"
  "test_propagate"
  "test_propagate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_propagate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
