# Empty dependencies file for test_propagate.
# This may be replaced when dependencies are built.
