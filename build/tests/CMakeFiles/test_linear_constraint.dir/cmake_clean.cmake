file(REMOVE_RECURSE
  "CMakeFiles/test_linear_constraint.dir/test_linear_constraint.cc.o"
  "CMakeFiles/test_linear_constraint.dir/test_linear_constraint.cc.o.d"
  "test_linear_constraint"
  "test_linear_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
