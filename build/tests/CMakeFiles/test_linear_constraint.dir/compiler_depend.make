# Empty compiler generated dependencies file for test_linear_constraint.
# This may be replaced when dependencies are built.
