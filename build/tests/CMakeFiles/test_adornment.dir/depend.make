# Empty dependencies file for test_adornment.
# This may be replaced when dependencies are built.
