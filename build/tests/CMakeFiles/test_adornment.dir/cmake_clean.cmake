file(REMOVE_RECURSE
  "CMakeFiles/test_adornment.dir/test_adornment.cc.o"
  "CMakeFiles/test_adornment.dir/test_adornment.cc.o.d"
  "test_adornment"
  "test_adornment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_adornment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
