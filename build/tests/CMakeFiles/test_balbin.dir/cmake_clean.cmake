file(REMOVE_RECURSE
  "CMakeFiles/test_balbin.dir/test_balbin.cc.o"
  "CMakeFiles/test_balbin.dir/test_balbin.cc.o.d"
  "test_balbin"
  "test_balbin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_balbin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
