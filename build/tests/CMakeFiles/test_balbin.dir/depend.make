# Empty dependencies file for test_balbin.
# This may be replaced when dependencies are built.
