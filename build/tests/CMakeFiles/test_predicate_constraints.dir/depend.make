# Empty dependencies file for test_predicate_constraints.
# This may be replaced when dependencies are built.
