file(REMOVE_RECURSE
  "CMakeFiles/test_predicate_constraints.dir/test_predicate_constraints.cc.o"
  "CMakeFiles/test_predicate_constraints.dir/test_predicate_constraints.cc.o.d"
  "test_predicate_constraints"
  "test_predicate_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predicate_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
