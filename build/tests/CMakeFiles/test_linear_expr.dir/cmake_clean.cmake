file(REMOVE_RECURSE
  "CMakeFiles/test_linear_expr.dir/test_linear_expr.cc.o"
  "CMakeFiles/test_linear_expr.dir/test_linear_expr.cc.o.d"
  "test_linear_expr"
  "test_linear_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linear_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
