file(REMOVE_RECURSE
  "CMakeFiles/test_fold_unfold.dir/test_fold_unfold.cc.o"
  "CMakeFiles/test_fold_unfold.dir/test_fold_unfold.cc.o.d"
  "test_fold_unfold"
  "test_fold_unfold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fold_unfold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
