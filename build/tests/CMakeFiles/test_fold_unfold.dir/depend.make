# Empty dependencies file for test_fold_unfold.
# This may be replaced when dependencies are built.
