file(REMOVE_RECURSE
  "CMakeFiles/test_variable.dir/test_variable.cc.o"
  "CMakeFiles/test_variable.dir/test_variable.cc.o.d"
  "test_variable"
  "test_variable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_variable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
