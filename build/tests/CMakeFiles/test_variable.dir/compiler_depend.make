# Empty compiler generated dependencies file for test_variable.
# This may be replaced when dependencies are built.
