# Empty dependencies file for test_gmt.
# This may be replaced when dependencies are built.
