file(REMOVE_RECURSE
  "CMakeFiles/test_gmt.dir/test_gmt.cc.o"
  "CMakeFiles/test_gmt.dir/test_gmt.cc.o.d"
  "test_gmt"
  "test_gmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
