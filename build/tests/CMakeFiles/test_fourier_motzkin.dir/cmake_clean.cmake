file(REMOVE_RECURSE
  "CMakeFiles/test_fourier_motzkin.dir/test_fourier_motzkin.cc.o"
  "CMakeFiles/test_fourier_motzkin.dir/test_fourier_motzkin.cc.o.d"
  "test_fourier_motzkin"
  "test_fourier_motzkin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fourier_motzkin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
