# Empty compiler generated dependencies file for test_fourier_motzkin.
# This may be replaced when dependencies are built.
