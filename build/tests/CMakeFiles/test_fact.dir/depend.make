# Empty dependencies file for test_fact.
# This may be replaced when dependencies are built.
