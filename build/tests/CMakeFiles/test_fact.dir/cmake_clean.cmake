file(REMOVE_RECURSE
  "CMakeFiles/test_fact.dir/test_fact.cc.o"
  "CMakeFiles/test_fact.dir/test_fact.cc.o.d"
  "test_fact"
  "test_fact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
