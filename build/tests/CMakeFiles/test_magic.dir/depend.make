# Empty dependencies file for test_magic.
# This may be replaced when dependencies are built.
