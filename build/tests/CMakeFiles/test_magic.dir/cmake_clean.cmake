file(REMOVE_RECURSE
  "CMakeFiles/test_magic.dir/test_magic.cc.o"
  "CMakeFiles/test_magic.dir/test_magic.cc.o.d"
  "test_magic"
  "test_magic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_magic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
