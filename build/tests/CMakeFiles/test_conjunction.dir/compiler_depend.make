# Empty compiler generated dependencies file for test_conjunction.
# This may be replaced when dependencies are built.
