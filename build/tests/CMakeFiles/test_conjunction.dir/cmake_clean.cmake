file(REMOVE_RECURSE
  "CMakeFiles/test_conjunction.dir/test_conjunction.cc.o"
  "CMakeFiles/test_conjunction.dir/test_conjunction.cc.o.d"
  "test_conjunction"
  "test_conjunction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_conjunction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
