file(REMOVE_RECURSE
  "CMakeFiles/test_arg_map.dir/test_arg_map.cc.o"
  "CMakeFiles/test_arg_map.dir/test_arg_map.cc.o.d"
  "test_arg_map"
  "test_arg_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arg_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
