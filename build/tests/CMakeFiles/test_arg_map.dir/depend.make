# Empty dependencies file for test_arg_map.
# This may be replaced when dependencies are built.
