file(REMOVE_RECURSE
  "CMakeFiles/test_constraint_rewrite.dir/test_constraint_rewrite.cc.o"
  "CMakeFiles/test_constraint_rewrite.dir/test_constraint_rewrite.cc.o.d"
  "test_constraint_rewrite"
  "test_constraint_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_constraint_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
