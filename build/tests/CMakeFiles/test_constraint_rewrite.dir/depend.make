# Empty dependencies file for test_constraint_rewrite.
# This may be replaced when dependencies are built.
