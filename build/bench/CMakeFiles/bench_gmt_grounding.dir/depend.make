# Empty dependencies file for bench_gmt_grounding.
# This may be replaced when dependencies are built.
