file(REMOVE_RECURSE
  "CMakeFiles/bench_gmt_grounding.dir/bench_gmt_grounding.cc.o"
  "CMakeFiles/bench_gmt_grounding.dir/bench_gmt_grounding.cc.o.d"
  "bench_gmt_grounding"
  "bench_gmt_grounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmt_grounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
