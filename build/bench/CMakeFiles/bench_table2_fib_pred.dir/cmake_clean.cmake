file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_fib_pred.dir/bench_table2_fib_pred.cc.o"
  "CMakeFiles/bench_table2_fib_pred.dir/bench_table2_fib_pred.cc.o.d"
  "bench_table2_fib_pred"
  "bench_table2_fib_pred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_fib_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
