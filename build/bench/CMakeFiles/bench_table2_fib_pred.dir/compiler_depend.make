# Empty compiler generated dependencies file for bench_table2_fib_pred.
# This may be replaced when dependencies are built.
