file(REMOVE_RECURSE
  "CMakeFiles/bench_semantic_vs_syntactic.dir/bench_semantic_vs_syntactic.cc.o"
  "CMakeFiles/bench_semantic_vs_syntactic.dir/bench_semantic_vs_syntactic.cc.o.d"
  "bench_semantic_vs_syntactic"
  "bench_semantic_vs_syntactic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semantic_vs_syntactic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
