# Empty compiler generated dependencies file for bench_semantic_vs_syntactic.
# This may be replaced when dependencies are built.
