# Empty compiler generated dependencies file for bench_confluence.
# This may be replaced when dependencies are built.
