file(REMOVE_RECURSE
  "CMakeFiles/bench_disjunct_tradeoff.dir/bench_disjunct_tradeoff.cc.o"
  "CMakeFiles/bench_disjunct_tradeoff.dir/bench_disjunct_tradeoff.cc.o.d"
  "bench_disjunct_tradeoff"
  "bench_disjunct_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disjunct_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
