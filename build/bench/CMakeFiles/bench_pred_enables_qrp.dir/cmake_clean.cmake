file(REMOVE_RECURSE
  "CMakeFiles/bench_pred_enables_qrp.dir/bench_pred_enables_qrp.cc.o"
  "CMakeFiles/bench_pred_enables_qrp.dir/bench_pred_enables_qrp.cc.o.d"
  "bench_pred_enables_qrp"
  "bench_pred_enables_qrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pred_enables_qrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
