# Empty compiler generated dependencies file for bench_pred_enables_qrp.
# This may be replaced when dependencies are built.
