# Empty dependencies file for bench_flights.
# This may be replaced when dependencies are built.
