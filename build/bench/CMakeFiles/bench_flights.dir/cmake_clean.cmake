file(REMOVE_RECURSE
  "CMakeFiles/bench_flights.dir/bench_flights.cc.o"
  "CMakeFiles/bench_flights.dir/bench_flights.cc.o.d"
  "bench_flights"
  "bench_flights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
