file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fib_magic.dir/bench_table1_fib_magic.cc.o"
  "CMakeFiles/bench_table1_fib_magic.dir/bench_table1_fib_magic.cc.o.d"
  "bench_table1_fib_magic"
  "bench_table1_fib_magic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fib_magic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
