# Empty dependencies file for bench_table1_fib_magic.
# This may be replaced when dependencies are built.
