file(REMOVE_RECURSE
  "CMakeFiles/bench_termination_bounds.dir/bench_termination_bounds.cc.o"
  "CMakeFiles/bench_termination_bounds.dir/bench_termination_bounds.cc.o.d"
  "bench_termination_bounds"
  "bench_termination_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_termination_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
