# Empty dependencies file for bench_termination_bounds.
# This may be replaced when dependencies are built.
