# Empty compiler generated dependencies file for bench_optimal_sequence.
# This may be replaced when dependencies are built.
