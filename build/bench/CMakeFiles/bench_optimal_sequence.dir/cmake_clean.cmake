file(REMOVE_RECURSE
  "CMakeFiles/bench_optimal_sequence.dir/bench_optimal_sequence.cc.o"
  "CMakeFiles/bench_optimal_sequence.dir/bench_optimal_sequence.cc.o.d"
  "bench_optimal_sequence"
  "bench_optimal_sequence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimal_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
