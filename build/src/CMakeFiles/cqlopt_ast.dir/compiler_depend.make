# Empty compiler generated dependencies file for cqlopt_ast.
# This may be replaced when dependencies are built.
