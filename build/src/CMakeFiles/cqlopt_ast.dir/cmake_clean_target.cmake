file(REMOVE_RECURSE
  "libcqlopt_ast.a"
)
