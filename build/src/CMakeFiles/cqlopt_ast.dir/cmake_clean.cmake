file(REMOVE_RECURSE
  "CMakeFiles/cqlopt_ast.dir/ast/arg_map.cc.o"
  "CMakeFiles/cqlopt_ast.dir/ast/arg_map.cc.o.d"
  "CMakeFiles/cqlopt_ast.dir/ast/lexer.cc.o"
  "CMakeFiles/cqlopt_ast.dir/ast/lexer.cc.o.d"
  "CMakeFiles/cqlopt_ast.dir/ast/literal.cc.o"
  "CMakeFiles/cqlopt_ast.dir/ast/literal.cc.o.d"
  "CMakeFiles/cqlopt_ast.dir/ast/normalize.cc.o"
  "CMakeFiles/cqlopt_ast.dir/ast/normalize.cc.o.d"
  "CMakeFiles/cqlopt_ast.dir/ast/parser.cc.o"
  "CMakeFiles/cqlopt_ast.dir/ast/parser.cc.o.d"
  "CMakeFiles/cqlopt_ast.dir/ast/printer.cc.o"
  "CMakeFiles/cqlopt_ast.dir/ast/printer.cc.o.d"
  "CMakeFiles/cqlopt_ast.dir/ast/program.cc.o"
  "CMakeFiles/cqlopt_ast.dir/ast/program.cc.o.d"
  "CMakeFiles/cqlopt_ast.dir/ast/rule.cc.o"
  "CMakeFiles/cqlopt_ast.dir/ast/rule.cc.o.d"
  "CMakeFiles/cqlopt_ast.dir/ast/symbol_table.cc.o"
  "CMakeFiles/cqlopt_ast.dir/ast/symbol_table.cc.o.d"
  "CMakeFiles/cqlopt_ast.dir/ast/term.cc.o"
  "CMakeFiles/cqlopt_ast.dir/ast/term.cc.o.d"
  "libcqlopt_ast.a"
  "libcqlopt_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqlopt_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
