
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/arg_map.cc" "src/CMakeFiles/cqlopt_ast.dir/ast/arg_map.cc.o" "gcc" "src/CMakeFiles/cqlopt_ast.dir/ast/arg_map.cc.o.d"
  "/root/repo/src/ast/lexer.cc" "src/CMakeFiles/cqlopt_ast.dir/ast/lexer.cc.o" "gcc" "src/CMakeFiles/cqlopt_ast.dir/ast/lexer.cc.o.d"
  "/root/repo/src/ast/literal.cc" "src/CMakeFiles/cqlopt_ast.dir/ast/literal.cc.o" "gcc" "src/CMakeFiles/cqlopt_ast.dir/ast/literal.cc.o.d"
  "/root/repo/src/ast/normalize.cc" "src/CMakeFiles/cqlopt_ast.dir/ast/normalize.cc.o" "gcc" "src/CMakeFiles/cqlopt_ast.dir/ast/normalize.cc.o.d"
  "/root/repo/src/ast/parser.cc" "src/CMakeFiles/cqlopt_ast.dir/ast/parser.cc.o" "gcc" "src/CMakeFiles/cqlopt_ast.dir/ast/parser.cc.o.d"
  "/root/repo/src/ast/printer.cc" "src/CMakeFiles/cqlopt_ast.dir/ast/printer.cc.o" "gcc" "src/CMakeFiles/cqlopt_ast.dir/ast/printer.cc.o.d"
  "/root/repo/src/ast/program.cc" "src/CMakeFiles/cqlopt_ast.dir/ast/program.cc.o" "gcc" "src/CMakeFiles/cqlopt_ast.dir/ast/program.cc.o.d"
  "/root/repo/src/ast/rule.cc" "src/CMakeFiles/cqlopt_ast.dir/ast/rule.cc.o" "gcc" "src/CMakeFiles/cqlopt_ast.dir/ast/rule.cc.o.d"
  "/root/repo/src/ast/symbol_table.cc" "src/CMakeFiles/cqlopt_ast.dir/ast/symbol_table.cc.o" "gcc" "src/CMakeFiles/cqlopt_ast.dir/ast/symbol_table.cc.o.d"
  "/root/repo/src/ast/term.cc" "src/CMakeFiles/cqlopt_ast.dir/ast/term.cc.o" "gcc" "src/CMakeFiles/cqlopt_ast.dir/ast/term.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqlopt_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqlopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
