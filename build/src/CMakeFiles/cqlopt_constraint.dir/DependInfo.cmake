
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraint/conjunction.cc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/conjunction.cc.o" "gcc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/conjunction.cc.o.d"
  "/root/repo/src/constraint/constraint_set.cc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/constraint_set.cc.o" "gcc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/constraint_set.cc.o.d"
  "/root/repo/src/constraint/disjoint.cc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/disjoint.cc.o" "gcc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/disjoint.cc.o.d"
  "/root/repo/src/constraint/fourier_motzkin.cc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/fourier_motzkin.cc.o" "gcc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/fourier_motzkin.cc.o.d"
  "/root/repo/src/constraint/implication.cc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/implication.cc.o" "gcc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/implication.cc.o.d"
  "/root/repo/src/constraint/linear_constraint.cc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/linear_constraint.cc.o" "gcc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/linear_constraint.cc.o.d"
  "/root/repo/src/constraint/linear_expr.cc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/linear_expr.cc.o" "gcc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/linear_expr.cc.o.d"
  "/root/repo/src/constraint/variable.cc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/variable.cc.o" "gcc" "src/CMakeFiles/cqlopt_constraint.dir/constraint/variable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqlopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
