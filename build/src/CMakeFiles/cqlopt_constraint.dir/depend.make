# Empty dependencies file for cqlopt_constraint.
# This may be replaced when dependencies are built.
