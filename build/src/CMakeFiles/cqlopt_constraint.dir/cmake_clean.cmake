file(REMOVE_RECURSE
  "CMakeFiles/cqlopt_constraint.dir/constraint/conjunction.cc.o"
  "CMakeFiles/cqlopt_constraint.dir/constraint/conjunction.cc.o.d"
  "CMakeFiles/cqlopt_constraint.dir/constraint/constraint_set.cc.o"
  "CMakeFiles/cqlopt_constraint.dir/constraint/constraint_set.cc.o.d"
  "CMakeFiles/cqlopt_constraint.dir/constraint/disjoint.cc.o"
  "CMakeFiles/cqlopt_constraint.dir/constraint/disjoint.cc.o.d"
  "CMakeFiles/cqlopt_constraint.dir/constraint/fourier_motzkin.cc.o"
  "CMakeFiles/cqlopt_constraint.dir/constraint/fourier_motzkin.cc.o.d"
  "CMakeFiles/cqlopt_constraint.dir/constraint/implication.cc.o"
  "CMakeFiles/cqlopt_constraint.dir/constraint/implication.cc.o.d"
  "CMakeFiles/cqlopt_constraint.dir/constraint/linear_constraint.cc.o"
  "CMakeFiles/cqlopt_constraint.dir/constraint/linear_constraint.cc.o.d"
  "CMakeFiles/cqlopt_constraint.dir/constraint/linear_expr.cc.o"
  "CMakeFiles/cqlopt_constraint.dir/constraint/linear_expr.cc.o.d"
  "CMakeFiles/cqlopt_constraint.dir/constraint/variable.cc.o"
  "CMakeFiles/cqlopt_constraint.dir/constraint/variable.cc.o.d"
  "libcqlopt_constraint.a"
  "libcqlopt_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqlopt_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
