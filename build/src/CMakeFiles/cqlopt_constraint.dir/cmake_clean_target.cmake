file(REMOVE_RECURSE
  "libcqlopt_constraint.a"
)
