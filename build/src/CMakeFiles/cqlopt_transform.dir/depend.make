# Empty dependencies file for cqlopt_transform.
# This may be replaced when dependencies are built.
