
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/adornment.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/adornment.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/adornment.cc.o.d"
  "/root/repo/src/transform/balbin_c.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/balbin_c.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/balbin_c.cc.o.d"
  "/root/repo/src/transform/constraint_rewrite.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/constraint_rewrite.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/constraint_rewrite.cc.o.d"
  "/root/repo/src/transform/fold_unfold.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/fold_unfold.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/fold_unfold.cc.o.d"
  "/root/repo/src/transform/gmt.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/gmt.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/gmt.cc.o.d"
  "/root/repo/src/transform/magic.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/magic.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/magic.cc.o.d"
  "/root/repo/src/transform/pipeline.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/pipeline.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/pipeline.cc.o.d"
  "/root/repo/src/transform/predicate_constraints.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/predicate_constraints.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/predicate_constraints.cc.o.d"
  "/root/repo/src/transform/propagate.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/propagate.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/propagate.cc.o.d"
  "/root/repo/src/transform/qrp_constraints.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/qrp_constraints.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/qrp_constraints.cc.o.d"
  "/root/repo/src/transform/widening.cc" "src/CMakeFiles/cqlopt_transform.dir/transform/widening.cc.o" "gcc" "src/CMakeFiles/cqlopt_transform.dir/transform/widening.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqlopt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqlopt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqlopt_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqlopt_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqlopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
