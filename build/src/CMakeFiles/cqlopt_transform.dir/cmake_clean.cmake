file(REMOVE_RECURSE
  "CMakeFiles/cqlopt_transform.dir/transform/adornment.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/adornment.cc.o.d"
  "CMakeFiles/cqlopt_transform.dir/transform/balbin_c.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/balbin_c.cc.o.d"
  "CMakeFiles/cqlopt_transform.dir/transform/constraint_rewrite.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/constraint_rewrite.cc.o.d"
  "CMakeFiles/cqlopt_transform.dir/transform/fold_unfold.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/fold_unfold.cc.o.d"
  "CMakeFiles/cqlopt_transform.dir/transform/gmt.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/gmt.cc.o.d"
  "CMakeFiles/cqlopt_transform.dir/transform/magic.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/magic.cc.o.d"
  "CMakeFiles/cqlopt_transform.dir/transform/pipeline.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/pipeline.cc.o.d"
  "CMakeFiles/cqlopt_transform.dir/transform/predicate_constraints.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/predicate_constraints.cc.o.d"
  "CMakeFiles/cqlopt_transform.dir/transform/propagate.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/propagate.cc.o.d"
  "CMakeFiles/cqlopt_transform.dir/transform/qrp_constraints.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/qrp_constraints.cc.o.d"
  "CMakeFiles/cqlopt_transform.dir/transform/widening.cc.o"
  "CMakeFiles/cqlopt_transform.dir/transform/widening.cc.o.d"
  "libcqlopt_transform.a"
  "libcqlopt_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqlopt_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
