file(REMOVE_RECURSE
  "libcqlopt_transform.a"
)
