file(REMOVE_RECURSE
  "CMakeFiles/cqlopt_graph.dir/graph/dependency_graph.cc.o"
  "CMakeFiles/cqlopt_graph.dir/graph/dependency_graph.cc.o.d"
  "CMakeFiles/cqlopt_graph.dir/graph/scc.cc.o"
  "CMakeFiles/cqlopt_graph.dir/graph/scc.cc.o.d"
  "libcqlopt_graph.a"
  "libcqlopt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqlopt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
