file(REMOVE_RECURSE
  "libcqlopt_graph.a"
)
