# Empty compiler generated dependencies file for cqlopt_graph.
# This may be replaced when dependencies are built.
