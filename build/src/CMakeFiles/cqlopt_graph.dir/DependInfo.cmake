
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dependency_graph.cc" "src/CMakeFiles/cqlopt_graph.dir/graph/dependency_graph.cc.o" "gcc" "src/CMakeFiles/cqlopt_graph.dir/graph/dependency_graph.cc.o.d"
  "/root/repo/src/graph/scc.cc" "src/CMakeFiles/cqlopt_graph.dir/graph/scc.cc.o" "gcc" "src/CMakeFiles/cqlopt_graph.dir/graph/scc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqlopt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqlopt_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqlopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
