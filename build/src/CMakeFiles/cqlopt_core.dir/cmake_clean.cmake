file(REMOVE_RECURSE
  "CMakeFiles/cqlopt_core.dir/core/equivalence.cc.o"
  "CMakeFiles/cqlopt_core.dir/core/equivalence.cc.o.d"
  "CMakeFiles/cqlopt_core.dir/core/optimizer.cc.o"
  "CMakeFiles/cqlopt_core.dir/core/optimizer.cc.o.d"
  "CMakeFiles/cqlopt_core.dir/core/workload.cc.o"
  "CMakeFiles/cqlopt_core.dir/core/workload.cc.o.d"
  "libcqlopt_core.a"
  "libcqlopt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqlopt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
