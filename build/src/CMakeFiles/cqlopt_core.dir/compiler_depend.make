# Empty compiler generated dependencies file for cqlopt_core.
# This may be replaced when dependencies are built.
