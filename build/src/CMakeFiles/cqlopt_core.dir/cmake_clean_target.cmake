file(REMOVE_RECURSE
  "libcqlopt_core.a"
)
