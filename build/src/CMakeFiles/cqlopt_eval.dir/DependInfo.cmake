
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/database.cc" "src/CMakeFiles/cqlopt_eval.dir/eval/database.cc.o" "gcc" "src/CMakeFiles/cqlopt_eval.dir/eval/database.cc.o.d"
  "/root/repo/src/eval/fact.cc" "src/CMakeFiles/cqlopt_eval.dir/eval/fact.cc.o" "gcc" "src/CMakeFiles/cqlopt_eval.dir/eval/fact.cc.o.d"
  "/root/repo/src/eval/loader.cc" "src/CMakeFiles/cqlopt_eval.dir/eval/loader.cc.o" "gcc" "src/CMakeFiles/cqlopt_eval.dir/eval/loader.cc.o.d"
  "/root/repo/src/eval/provenance.cc" "src/CMakeFiles/cqlopt_eval.dir/eval/provenance.cc.o" "gcc" "src/CMakeFiles/cqlopt_eval.dir/eval/provenance.cc.o.d"
  "/root/repo/src/eval/relation.cc" "src/CMakeFiles/cqlopt_eval.dir/eval/relation.cc.o" "gcc" "src/CMakeFiles/cqlopt_eval.dir/eval/relation.cc.o.d"
  "/root/repo/src/eval/rule_application.cc" "src/CMakeFiles/cqlopt_eval.dir/eval/rule_application.cc.o" "gcc" "src/CMakeFiles/cqlopt_eval.dir/eval/rule_application.cc.o.d"
  "/root/repo/src/eval/seminaive.cc" "src/CMakeFiles/cqlopt_eval.dir/eval/seminaive.cc.o" "gcc" "src/CMakeFiles/cqlopt_eval.dir/eval/seminaive.cc.o.d"
  "/root/repo/src/eval/stats.cc" "src/CMakeFiles/cqlopt_eval.dir/eval/stats.cc.o" "gcc" "src/CMakeFiles/cqlopt_eval.dir/eval/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cqlopt_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqlopt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqlopt_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cqlopt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
