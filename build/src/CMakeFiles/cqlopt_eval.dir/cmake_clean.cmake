file(REMOVE_RECURSE
  "CMakeFiles/cqlopt_eval.dir/eval/database.cc.o"
  "CMakeFiles/cqlopt_eval.dir/eval/database.cc.o.d"
  "CMakeFiles/cqlopt_eval.dir/eval/fact.cc.o"
  "CMakeFiles/cqlopt_eval.dir/eval/fact.cc.o.d"
  "CMakeFiles/cqlopt_eval.dir/eval/loader.cc.o"
  "CMakeFiles/cqlopt_eval.dir/eval/loader.cc.o.d"
  "CMakeFiles/cqlopt_eval.dir/eval/provenance.cc.o"
  "CMakeFiles/cqlopt_eval.dir/eval/provenance.cc.o.d"
  "CMakeFiles/cqlopt_eval.dir/eval/relation.cc.o"
  "CMakeFiles/cqlopt_eval.dir/eval/relation.cc.o.d"
  "CMakeFiles/cqlopt_eval.dir/eval/rule_application.cc.o"
  "CMakeFiles/cqlopt_eval.dir/eval/rule_application.cc.o.d"
  "CMakeFiles/cqlopt_eval.dir/eval/seminaive.cc.o"
  "CMakeFiles/cqlopt_eval.dir/eval/seminaive.cc.o.d"
  "CMakeFiles/cqlopt_eval.dir/eval/stats.cc.o"
  "CMakeFiles/cqlopt_eval.dir/eval/stats.cc.o.d"
  "libcqlopt_eval.a"
  "libcqlopt_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqlopt_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
