file(REMOVE_RECURSE
  "libcqlopt_eval.a"
)
