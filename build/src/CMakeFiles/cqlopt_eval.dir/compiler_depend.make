# Empty compiler generated dependencies file for cqlopt_eval.
# This may be replaced when dependencies are built.
