file(REMOVE_RECURSE
  "libcqlopt_util.a"
)
