file(REMOVE_RECURSE
  "CMakeFiles/cqlopt_util.dir/util/bigint.cc.o"
  "CMakeFiles/cqlopt_util.dir/util/bigint.cc.o.d"
  "CMakeFiles/cqlopt_util.dir/util/rational.cc.o"
  "CMakeFiles/cqlopt_util.dir/util/rational.cc.o.d"
  "CMakeFiles/cqlopt_util.dir/util/status.cc.o"
  "CMakeFiles/cqlopt_util.dir/util/status.cc.o.d"
  "libcqlopt_util.a"
  "libcqlopt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqlopt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
