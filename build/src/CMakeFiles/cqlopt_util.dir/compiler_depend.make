# Empty compiler generated dependencies file for cqlopt_util.
# This may be replaced when dependencies are built.
