#include "eval/stats.h"

namespace cqlopt {

std::string EvalStats::ToString(const SymbolTable& symbols) const {
  std::string out = "derivations=" + std::to_string(derivations) +
                    " inserted=" + std::to_string(inserted) +
                    " subsumed=" + std::to_string(subsumed) +
                    " duplicates=" + std::to_string(duplicates) +
                    " iterations=" + std::to_string(iterations) +
                    (reached_fixpoint ? " fixpoint" : " CAPPED") +
                    (all_ground ? " all-ground" : " CONSTRAINT-FACTS");
  for (const auto& [pred, count] : facts_per_pred) {
    out += " " + symbols.PredicateName(pred) + "=" + std::to_string(count);
  }
  return out;
}

}  // namespace cqlopt
