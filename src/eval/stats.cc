#include "eval/stats.h"

namespace cqlopt {

void EvalStats::MergeWorkerCounters(const EvalStats& worker) {
  derivations += worker.derivations;
  index_probes += worker.index_probes;
  scan_probes += worker.scan_probes;
  index_candidates += worker.index_candidates;
  scan_candidates += worker.scan_candidates;
  indexed_scan_equivalent += worker.indexed_scan_equivalent;
  interval_probes += worker.interval_probes;
  interval_candidates += worker.interval_candidates;
  interval_scan_equivalent += worker.interval_scan_equivalent;
  interval_runs_pruned += worker.interval_runs_pruned;
  for (const auto& [rule, count] : worker.derivations_per_rule) {
    derivations_per_rule[rule] += count;
  }
}

std::string EvalStats::ToString(const SymbolTable& symbols) const {
  std::string out = "derivations=" + std::to_string(derivations) +
                    " inserted=" + std::to_string(inserted) +
                    " subsumed=" + std::to_string(subsumed) +
                    " duplicates=" + std::to_string(duplicates) +
                    " iterations=" + std::to_string(iterations) +
                    (reached_fixpoint ? " fixpoint"
                                      : (aborted ? " ABORTED" : " CAPPED")) +
                    (all_ground ? " all-ground" : " CONSTRAINT-FACTS");
  if (!scc_iterations.empty()) {
    out += " scc-iterations=[";
    for (size_t i = 0; i < scc_iterations.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(scc_iterations[i]);
    }
    out += "]";
  }
  if (cache_hits > 0 || cache_misses > 0) {
    long lookups = cache_hits + cache_misses;
    out += " cache-hits=" + std::to_string(cache_hits) +
           " cache-misses=" + std::to_string(cache_misses) +
           " cache-hit-rate=" +
           std::to_string(lookups > 0 ? 100 * cache_hits / lookups : 0) + "%";
    if (cache_evictions > 0) {
      out += " cache-evictions=" + std::to_string(cache_evictions);
    }
  }
  if (prepass_conclusive > 0 || prepass_fallback > 0) {
    long probes = prepass_conclusive + prepass_fallback;
    out += " prepass-conclusive=" + std::to_string(prepass_conclusive) +
           " prepass-fallback=" + std::to_string(prepass_fallback) +
           " prepass-hit-rate=" +
           std::to_string(probes > 0 ? 100 * prepass_conclusive / probes : 0) +
           "%";
  }
  if (index_probes > 0 || scan_probes > 0) {
    out += " index-probes=" + std::to_string(index_probes) +
           " scan-probes=" + std::to_string(scan_probes) +
           " index-candidates=" + std::to_string(index_candidates) +
           " scan-candidates=" + std::to_string(scan_candidates) +
           " indexed-scan-equivalent=" +
           std::to_string(indexed_scan_equivalent);
  }
  if (interval_probes > 0) {
    out += " interval-probes=" + std::to_string(interval_probes) +
           " interval-candidates=" + std::to_string(interval_candidates) +
           " interval-scan-equivalent=" +
           std::to_string(interval_scan_equivalent) +
           " interval-runs-pruned=" + std::to_string(interval_runs_pruned);
  }
  if (aborted && !abort_point.empty()) {
    out += " abort-point=\"" + abort_point + "\"";
  }
  for (const auto& [pred, count] : facts_per_pred) {
    out += " " + symbols.PredicateName(pred) + "=" + std::to_string(count);
  }
  return out;
}

}  // namespace cqlopt
