#include "eval/fixpoint.h"

#include <limits>
#include <set>

#include "constraint/implication.h"
#include "eval/rule_application.h"

namespace cqlopt {
namespace eval_internal {

namespace {

constexpr size_t kNoRow = std::numeric_limits<size_t>::max();

/// A derivation buffered during one iteration, reconciled at iteration end.
struct Pending {
  std::string rule_label;
  Fact fact;
  std::vector<Relation::FactRef> parents;
  std::string key;
  bool ground = false;
  InsertOutcome outcome = InsertOutcome::kInserted;
  /// Counting attribution for kSubsumed (single-fact mode): the stored row
  /// that subsumed this derivation, or the pending index that did — the
  /// commit loop resolves the latter to a row once the subsumer commits.
  size_t subsumer_row = kNoRow;
  size_t subsumer_pending = kNoRow;
};

/// End-of-iteration reconciliation: the derivations of one iteration are
/// treated as a *set* (the paper's tables discard a fact as subsumed even
/// when the subsuming fact was derived later in the same iteration, e.g.
/// Table 1 iteration 3 discards m_fib(0,4) in favour of m_fib(0,V2)).
void Reconcile(std::vector<Pending>* pending, const Database& db,
               SubsumptionMode mode) {
  // Pass 1: structural duplicates, against the database and earlier pending.
  std::set<std::string> seen;
  for (Pending& p : *pending) {
    p.key = p.fact.Key();
    p.ground = p.fact.IsGround();
    const Relation* rel = db.Find(p.fact.pred);
    bool in_db = rel != nullptr && rel->ContainsKey(p.key);
    if (in_db || !seen.insert(p.key).second) {
      p.outcome = InsertOutcome::kDuplicate;
    }
  }
  if (mode == SubsumptionMode::kNone) return;
  if (mode == SubsumptionMode::kSetImplication) {
    // Disjunction-based subsumption: a derivation is discarded when the
    // union of the database facts and the other surviving derivations
    // already covers it. Processed in derivation order, so of two
    // equivalent covers the earlier one survives. No single cover fact
    // exists, so these events stay unattributed (opaque) for counting.
    for (size_t i = 0; i < pending->size(); ++i) {
      Pending& p = (*pending)[i];
      if (p.outcome != InsertOutcome::kInserted) continue;
      std::vector<Conjunction> others;
      const Relation* rel = db.Find(p.fact.pred);
      if (rel != nullptr) {
        for (size_t e = 0; e < rel->size(); ++e) {
          others.push_back(rel->fact(e).constraint);
        }
      }
      for (size_t j = 0; j < pending->size(); ++j) {
        if (j == i) continue;
        const Pending& q = (*pending)[j];
        if (q.outcome != InsertOutcome::kInserted) continue;
        if (q.fact.pred != p.fact.pred || q.fact.arity != p.fact.arity) {
          continue;
        }
        others.push_back(q.fact.constraint);
      }
      if (!others.empty() && ImpliesDisjunction(p.fact.constraint, others)) {
        p.outcome = InsertOutcome::kSubsumed;
      }
    }
    return;
  }
  // Pass 2: subsumption against existing database facts. Ground-vs-ground
  // pairs are skipped: a ground fact can only subsume a structurally
  // identical one (see Relation::Insert).
  for (Pending& p : *pending) {
    if (p.outcome != InsertOutcome::kInserted) continue;
    const Relation* rel = db.Find(p.fact.pred);
    if (rel == nullptr) continue;
    for (size_t e = 0; e < rel->size(); ++e) {
      if (p.ground && rel->ground(e)) continue;
      if (Implies(p.fact.constraint, rel->fact(e).constraint)) {
        p.outcome = InsertOutcome::kSubsumed;
        p.subsumer_row = e;
        break;
      }
    }
  }
  // Pass 3: mutual subsumption within the iteration. Equivalent facts keep
  // the earliest derivation.
  for (size_t i = 0; i < pending->size(); ++i) {
    Pending& p = (*pending)[i];
    if (p.outcome != InsertOutcome::kInserted) continue;
    for (size_t j = 0; j < pending->size(); ++j) {
      if (j == i) continue;
      const Pending& q = (*pending)[j];
      if (q.outcome != InsertOutcome::kInserted) continue;
      if (q.fact.pred != p.fact.pred || q.fact.arity != p.fact.arity) continue;
      if (p.ground && q.ground) continue;
      if (!Implies(p.fact.constraint, q.fact.constraint)) continue;
      if (j > i && Implies(q.fact.constraint, p.fact.constraint)) {
        continue;  // Equivalent and p came first: p wins.
      }
      p.outcome = InsertOutcome::kSubsumed;
      p.subsumer_pending = j;
      break;
    }
  }
}

/// Applies one rule against the frozen pre-iteration database, buffering
/// derivations into `pending` and counting into `stats`. The workhorse of
/// both the serial and the parallel iteration: in the parallel case each
/// worker gets its own `pending`/`stats`, so the only shared state is the
/// const database snapshot.
Status ApplyOneRule(const Program& program, size_t rule_index,
                    const Database& db, int iteration, bool require_delta,
                    bool use_index, bool delta_rotate, bool interval_index,
                    Governor* governor, std::vector<Pending>* pending,
                    EvalStats* stats) {
  // Rule-batch boundary check: keeps long serial rule sequences (and pool
  // tasks dequeued after a sibling tripped) responsive even when individual
  // rules derive nothing.
  CQLOPT_RETURN_IF_ERROR(governor->RuleBoundary());
  const Rule& rule = program.rules[rule_index];
  const std::string rule_key =
      rule.label.empty() ? "rule#" + std::to_string(rule_index) : rule.label;
  auto emit = [&](Fact fact,
                  const std::vector<Relation::FactRef>& parents) -> Status {
    CQLOPT_RETURN_IF_ERROR(governor->Fine());
    ++stats->derivations;
    ++stats->derivations_per_rule[rule_key];
    pending->push_back(Pending{rule.label, std::move(fact), parents, "",
                               false, InsertOutcome::kInserted, kNoRow,
                               kNoRow});
    return Status::OK();
  };
  return ApplyRule(rule, db, /*max_birth=*/iteration - 1, require_delta, emit,
                   use_index, stats, delta_rotate, interval_index);
}

}  // namespace

Result<long> RunIteration(const Program& program,
                          const std::vector<size_t>& rule_indexes,
                          int iteration, bool fire_constraint_facts,
                          bool require_delta, bool use_index,
                          bool delta_rotate, bool interval_index,
                          const EvalOptions& options, Governor* governor,
                          ThreadPool* pool, EvalResult* result) {
  std::vector<size_t> active;
  active.reserve(rule_indexes.size());
  for (size_t rule_index : rule_indexes) {
    if (program.rules[rule_index].IsConstraintFact() && !fire_constraint_facts)
      continue;
    active.push_back(rule_index);
  }
  std::vector<Pending> pending;
  if (pool != nullptr && active.size() > 1) {
    struct WorkerOutput {
      std::vector<Pending> pending;
      EvalStats stats;
      Status status = Status::OK();
    };
    std::vector<WorkerOutput> outputs(active.size());
    for (size_t t = 0; t < active.size(); ++t) {
      WorkerOutput* out = &outputs[t];
      size_t rule_index = active[t];
      pool->Submit([&program, rule_index, iteration, require_delta, use_index,
                    delta_rotate, interval_index, governor, out,
                    db = &result->db] {
        out->status = ApplyOneRule(program, rule_index, *db, iteration,
                                   require_delta, use_index, delta_rotate,
                                   interval_index, governor, &out->pending,
                                   &out->stats);
      });
    }
    pool->Wait();
    // Merge counters before surfacing any error, mirroring the serial
    // path's partially-incremented stats on failure. The partial Pending
    // buffers of tripped workers are merged too, then discarded with the
    // whole iteration when the error returns below — nothing half-commits.
    Status failed = Status::OK();
    for (WorkerOutput& out : outputs) {
      result->stats.MergeWorkerCounters(out.stats);
      for (Pending& p : out.pending) pending.push_back(std::move(p));
      if (failed.ok() && !out.status.ok()) failed = out.status;
    }
    CQLOPT_RETURN_IF_ERROR(failed);
  } else {
    for (size_t rule_index : active) {
      CQLOPT_RETURN_IF_ERROR(ApplyOneRule(program, rule_index, result->db,
                                          iteration, require_delta, use_index,
                                          delta_rotate, interval_index,
                                          governor, &pending, &result->stats));
    }
  }
  Reconcile(&pending, result->db, options.subsumption);
  long inserted = 0;
  if (options.record_trace) result->trace.emplace_back();
  // Row each pending committed into (kNoRow when discarded), so deferred
  // blocked() attribution can point at subsumers that committed later in
  // this same loop.
  std::vector<size_t> committed_row(pending.size(), kNoRow);
  for (size_t i = 0; i < pending.size(); ++i) {
    Pending& p = pending[i];
    if (options.record_trace) {
      result->trace.back().push_back(Derivation{
          p.rule_label, p.fact.ToString(*program.symbols), p.outcome});
    }
    switch (p.outcome) {
      case InsertOutcome::kInserted: {
        ++result->stats.inserted;
        ++inserted;
        if (!p.fact.IsGround()) result->stats.all_ground = false;
        PredId pred = p.fact.pred;
        result->db.AddFact(std::move(p.fact), iteration,
                           SubsumptionMode::kNone, p.rule_label,
                           std::move(p.parents));
        committed_row[i] = result->db.Find(pred)->size() - 1;
        break;
      }
      case InsertOutcome::kSubsumed:
        ++result->stats.subsumed;
        break;
      case InsertOutcome::kDuplicate: {
        ++result->stats.duplicates;
        // Counting maintenance: the duplicate event supports the stored
        // row (which may have committed earlier in this very loop). A
        // representative that was itself discarded stores no row — the
        // event then has no stored effect and is not counted.
        Relation* rel = result->db.FindMutable(p.fact.pred);
        if (auto row = rel->RowOf(p.key)) rel->BumpSupport(*row);
        break;
      }
    }
  }
  // Deferred subsumption attribution: by now every pending that commits has
  // its row. An unresolvable subsumer (set-implication cover, or a pending
  // subsumer that was itself discarded) is charged to the relation as an
  // opaque event, which disables row-level counting there for retractions.
  for (Pending& p : pending) {
    if (p.outcome != InsertOutcome::kSubsumed) continue;
    Relation* rel = result->db.FindMutable(p.fact.pred);
    size_t row = p.subsumer_row;
    if (row == kNoRow && p.subsumer_pending != kNoRow) {
      row = committed_row[p.subsumer_pending];
    }
    if (row != kNoRow) {
      rel->BumpBlocked(row);
    } else {
      rel->NoteOpaqueSubsumption();
    }
  }
  return inserted;
}

Status GovernedAbort(const Status& cause, const std::string& position,
                     const EvalOptions& options, EvalResult* result) {
  result->stats.aborted = true;
  result->stats.abort_point = position;
  for (const auto& [pred, rel] : result->db.relations()) {
    result->stats.facts_per_pred[pred] = static_cast<long>(rel.size());
  }
  result->stats.interval_index_build_ns = result->db.IntervalBuildNs();
  if (options.abort_stats != nullptr) *options.abort_stats = result->stats;
  return Status(cause.code(), cause.message() + " at " + position);
}

std::string FactsSoFar(const EvalResult& result) {
  return std::to_string(result.db.TotalFacts()) + " facts stored (" +
         std::to_string(result.stats.derivations) + " derivations made)";
}

StratifiedPlan PlanStratified(const Program& program) {
  DependencyGraph graph(program);
  StratifiedPlan plan{SccDecomposition(graph), {}, {}};
  const auto& components = plan.sccs.components();
  plan.rules_of.resize(components.size());
  plan.recursive.assign(components.size(), 0);
  for (size_t rule_index = 0; rule_index < program.rules.size();
       ++rule_index) {
    int component = plan.sccs.ComponentOf(program.rules[rule_index].head.pred);
    plan.rules_of[static_cast<size_t>(component)].push_back(rule_index);
  }
  // A stratum is recursive iff some rule's body mentions a predicate of the
  // same component; non-recursive strata converge in one pass, so the empty
  // fixpoint-confirmation iteration is skipped.
  for (size_t c = 0; c < components.size(); ++c) {
    for (size_t rule_index : plan.rules_of[c]) {
      for (const Literal& lit : program.rules[rule_index].body) {
        if (plan.sccs.ComponentOf(lit.pred) == static_cast<int>(c)) {
          plan.recursive[c] = 1;
        }
      }
    }
  }
  return plan;
}

Status RunStrata(const Program& program, const StratifiedPlan& plan,
                 size_t first_component, int start_iteration,
                 const EvalOptions& options, Governor* governor,
                 ThreadPool* pool, EvalResult* result) {
  const size_t component_count = plan.component_count();
  int global_iteration = start_iteration;
  bool capped = false;
  for (size_t c = first_component; c < component_count && !capped; ++c) {
    if (plan.rules_of[c].empty()) continue;  // pure-EDB component
    bool recursive = plan.recursive[c] != 0;
    long stratum_iterations = 0;
    for (int local = 0;; ++local) {
      if (global_iteration >= options.max_iterations) {
        capped = true;
        break;
      }
      const int this_iteration = global_iteration;
      auto position = [&] {
        return "stratum " + std::to_string(c + 1) + "/" +
               std::to_string(component_count) + " (local iteration " +
               std::to_string(local) + "), global iteration " +
               std::to_string(this_iteration) + ", " + FactsSoFar(*result);
      };
      Result<long> ran = RunIteration(
          program, plan.rules_of[c], global_iteration,
          /*fire_constraint_facts=*/local == 0,
          /*require_delta=*/local > 0, /*use_index=*/true,
          /*delta_rotate=*/false, options.interval_index, options, governor,
          pool, result);
      if (!ran.ok()) {
        if (Governor::IsAbortCode(ran.status().code())) {
          return GovernedAbort(ran.status(), position(), options, result);
        }
        return ran.status();
      }
      long inserted = *ran;
      ++global_iteration;
      ++stratum_iterations;
      result->stats.iterations = global_iteration;
      Status boundary = governor->IterationBoundary(result->stats.inserted);
      if (!boundary.ok()) {
        return GovernedAbort(boundary, position(), options, result);
      }
      if (inserted == 0 || !recursive) break;
    }
    result->stats.scc_iterations.push_back(stratum_iterations);
  }
  result->stats.reached_fixpoint = !capped;

  for (const auto& [pred, rel] : result->db.relations()) {
    result->stats.facts_per_pred[pred] = static_cast<long>(rel.size());
  }
  result->stats.interval_index_build_ns = result->db.IntervalBuildNs();
  return Status::OK();
}

Status CheckEvalOptions(const EvalOptions& options) {
  if (options.max_iterations < 0) {
    return Status::InvalidArgument(
        "EvalOptions::max_iterations must be >= 0, got " +
        std::to_string(options.max_iterations));
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("EvalOptions::threads must be >= 0, got " +
                                   std::to_string(options.threads));
  }
  if (options.deadline_ms < 0) {
    return Status::InvalidArgument(
        "EvalOptions::deadline_ms must be >= 0 (0 = no deadline), got " +
        std::to_string(options.deadline_ms));
  }
  if (options.max_derived_facts < 0) {
    return Status::InvalidArgument(
        "EvalOptions::max_derived_facts must be >= 0 (0 = unlimited), got " +
        std::to_string(options.max_derived_facts));
  }
  return Status::OK();
}

}  // namespace eval_internal
}  // namespace cqlopt
