#include "eval/relation.h"

#include "constraint/implication.h"

namespace cqlopt {

InsertOutcome Relation::Insert(Fact fact, int birth, SubsumptionMode mode,
                               std::string rule_label,
                               std::vector<FactRef> parents) {
  std::string key = fact.Key();
  if (keys_.count(key) > 0) return InsertOutcome::kDuplicate;
  bool ground = fact.IsGround();
  if (mode == SubsumptionMode::kSingleFact) {
    for (const Entry& entry : entries_) {
      // Fast path: a ground fact denotes a single point, so it can subsume
      // another fact only if they are structurally identical — already
      // excluded by the key check (facts are kept in canonical simplified
      // form, see fm::RemoveRedundant's equality merging).
      if (entry.ground && ground) continue;
      if (entry.fact.pred != fact.pred || entry.fact.arity != fact.arity) {
        continue;
      }
      if (Implies(fact.constraint, entry.fact.constraint)) {
        return InsertOutcome::kSubsumed;
      }
    }
  } else if (mode == SubsumptionMode::kSetImplication) {
    std::vector<Conjunction> existing;
    existing.reserve(entries_.size());
    for (const Entry& entry : entries_) {
      if (entry.fact.pred == fact.pred && entry.fact.arity == fact.arity) {
        existing.push_back(entry.fact.constraint);
      }
    }
    if (!existing.empty() &&
        ImpliesDisjunction(fact.constraint, existing)) {
      return InsertOutcome::kSubsumed;
    }
  }
  std::vector<ArgSignature> signature;
  signature.reserve(static_cast<size_t>(fact.arity));
  for (int i = 1; i <= fact.arity; ++i) {
    signature.push_back(ArgSignature{fact.constraint.GetSymbol(i),
                                     fact.constraint.QuickNumericValue(i)});
  }
  keys_.insert(std::move(key));
  entries_.push_back(Entry{std::move(fact), birth, ground,
                           std::move(signature), std::move(rule_label),
                           std::move(parents)});
  return InsertOutcome::kInserted;
}

bool Relation::AllGround() const {
  for (const Entry& entry : entries_) {
    if (!entry.ground) return false;
  }
  return true;
}

}  // namespace cqlopt
