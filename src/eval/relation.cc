#include "eval/relation.h"

#include "constraint/implication.h"

namespace cqlopt {

InsertOutcome Relation::Insert(Fact fact, int birth, SubsumptionMode mode,
                               std::string rule_label,
                               std::vector<FactRef> parents) {
  std::string key = fact.Key();
  if (keys_.count(key) > 0) return InsertOutcome::kDuplicate;
  bool ground = fact.IsGround();
  if (mode == SubsumptionMode::kSingleFact) {
    for (const Entry& entry : entries_) {
      // Fast path: a ground fact denotes a single point, so it can subsume
      // another fact only if they are structurally identical — already
      // excluded by the key check (facts are kept in canonical simplified
      // form, see fm::RemoveRedundant's equality merging).
      if (entry.ground && ground) continue;
      if (entry.fact.pred != fact.pred || entry.fact.arity != fact.arity) {
        continue;
      }
      if (Implies(fact.constraint, entry.fact.constraint)) {
        return InsertOutcome::kSubsumed;
      }
    }
  } else if (mode == SubsumptionMode::kSetImplication) {
    std::vector<Conjunction> existing;
    existing.reserve(entries_.size());
    for (const Entry& entry : entries_) {
      if (entry.fact.pred == fact.pred && entry.fact.arity == fact.arity) {
        existing.push_back(entry.fact.constraint);
      }
    }
    if (!existing.empty() &&
        ImpliesDisjunction(fact.constraint, existing)) {
      return InsertOutcome::kSubsumed;
    }
  }
  std::vector<ArgSignature> signature;
  signature.reserve(static_cast<size_t>(fact.arity));
  for (int i = 1; i <= fact.arity; ++i) {
    signature.push_back(ArgSignature{fact.constraint.GetSymbol(i),
                                     fact.constraint.QuickNumericValue(i)});
  }
  keys_.insert(std::move(key));
  if (birth > max_birth_) max_birth_ = birth;
  entries_.push_back(Entry{std::move(fact), birth, ground,
                           std::move(signature), std::move(rule_label),
                           std::move(parents)});
  const Entry& stored = entries_.back();
  size_t id = entries_.size() - 1;
  if (index_.size() < stored.signature.size()) {
    index_.resize(stored.signature.size());
  }
  for (size_t p = 0; p < stored.signature.size(); ++p) {
    const ArgSignature& sig = stored.signature[p];
    if (sig.symbol.has_value() || sig.number.has_value()) {
      index_[p].by_value[KeyOf(sig)].push_back(id);
    } else {
      index_[p].unbound.push_back(id);
    }
  }
  return InsertOutcome::kInserted;
}

Relation::IndexKey Relation::KeyOf(const ArgSignature& value) {
  if (value.symbol.has_value()) return IndexKey{value.symbol, Rational()};
  return IndexKey{std::nullopt, *value.number};
}

size_t Relation::ProbeCost(int position, const ArgSignature& value) const {
  size_t p = static_cast<size_t>(position - 1);
  if (p >= index_.size()) return 0;
  const PositionIndex& idx = index_[p];
  size_t cost = idx.unbound.size();
  auto it = idx.by_value.find(KeyOf(value));
  if (it != idx.by_value.end()) cost += it->second.size();
  return cost;
}

std::vector<size_t> Relation::Probe(int position, const ArgSignature& value,
                                    size_t limit) const {
  std::vector<size_t> out;
  size_t p = static_cast<size_t>(position - 1);
  if (p >= index_.size()) return out;
  const PositionIndex& idx = index_[p];
  auto it = idx.by_value.find(KeyOf(value));
  static const std::vector<size_t> kNoMatches;
  const std::vector<size_t>& bound =
      it == idx.by_value.end() ? kNoMatches : it->second;
  // Merge the two ascending lists, keeping insertion order, so the caller
  // enumerates candidates in exactly the order the linear scan would.
  out.reserve(bound.size() + idx.unbound.size());
  size_t bi = 0;
  size_t ui = 0;
  while (bi < bound.size() || ui < idx.unbound.size()) {
    size_t next;
    if (bi == bound.size()) {
      next = idx.unbound[ui++];
    } else if (ui == idx.unbound.size() || bound[bi] < idx.unbound[ui]) {
      next = bound[bi++];
    } else {
      next = idx.unbound[ui++];
    }
    if (next >= limit) break;
    out.push_back(next);
  }
  return out;
}

bool Relation::AllGround() const {
  for (const Entry& entry : entries_) {
    if (!entry.ground) return false;
  }
  return true;
}

}  // namespace cqlopt
