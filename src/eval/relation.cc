#include "eval/relation.h"

#include <algorithm>
#include <chrono>

#include "constraint/implication.h"

namespace cqlopt {

namespace {

/// Rough heap footprint of one stored fact: the conjunction's linear atoms
/// (map-node overhead per coefficient), union-find / symbol maps, and the
/// struct itself. Allocator slack is folded into the per-node constants.
size_t ApproxFactBytes(const Fact& fact) {
  constexpr size_t kMapNode = 48;  // red-black node + key/value payload
  size_t bytes = sizeof(Fact);
  for (const LinearConstraint& atom : fact.constraint.linear()) {
    bytes += sizeof(LinearConstraint) + sizeof(Rational);
    bytes += atom.expr().coefficients().size() * kMapNode;
  }
  bytes += fact.constraint.EqualityPairs().size() * kMapNode;
  bytes += fact.constraint.SymbolBindings().size() * kMapNode;
  return bytes;
}

/// The contiguous index range [first, last) of an ascending value array
/// whose values satisfy `query`'s bounds — exact, by binary search.
std::pair<size_t, size_t> AdmittedRange(const std::vector<Rational>& values,
                                        const Interval& query) {
  size_t first = 0;
  size_t last = values.size();
  if (!query.lower_infinite()) {
    const Rational& lo = query.lower();
    first = static_cast<size_t>(
        (query.lower_strict()
             ? std::upper_bound(values.begin(), values.end(), lo)
             : std::lower_bound(values.begin(), values.end(), lo)) -
        values.begin());
  }
  if (!query.upper_infinite()) {
    const Rational& hi = query.upper();
    last = static_cast<size_t>(
        (query.upper_strict()
             ? std::lower_bound(values.begin(), values.end(), hi)
             : std::upper_bound(values.begin(), values.end(), hi)) -
        values.begin());
  }
  if (last < first) last = first;
  return {first, last};
}

long ElapsedNs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Relation::Chunk* Relation::TailChunkForAppend() {
  if (chunks_.empty() || chunks_.back()->facts.size() == kChunkRows) {
    chunks_.push_back(std::make_shared<Chunk>());
  } else if (chunks_.back().use_count() > 1) {
    // The tail chunk is shared with a snapshot copy: clone it so the append
    // stays invisible to every other holder (copy-on-write).
    chunks_.back() = std::make_shared<Chunk>(*chunks_.back());
  }
  return chunks_.back().get();
}

void Relation::SealTail(IntervalIndex* idx) {
  if (idx->tail_rows.empty()) return;
  std::vector<size_t> order(idx->tail_rows.size());
  for (size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    int cmp = idx->tail_values[a].Compare(idx->tail_values[b]);
    if (cmp != 0) return cmp < 0;
    return idx->tail_rows[a] < idx->tail_rows[b];
  });
  BoundRun run;
  run.values.reserve(order.size());
  run.rows.reserve(order.size());
  for (size_t k : order) {
    run.values.push_back(std::move(idx->tail_values[k]));
    run.rows.push_back(idx->tail_rows[k]);
  }
  idx->tail_rows.clear();
  idx->tail_values.clear();
  idx->runs.push_back(std::move(run));
  if (idx->runs.size() <= kMaxRuns) return;
  // Too many runs: collapse them all into one sorted run (amortized
  // O(log n) sort work per row over the relation's lifetime).
  size_t total = 0;
  for (const BoundRun& r : idx->runs) total += r.rows.size();
  std::vector<std::pair<size_t, size_t>> flat;  // (run, offset)
  flat.reserve(total);
  for (size_t r = 0; r < idx->runs.size(); ++r) {
    for (size_t k = 0; k < idx->runs[r].rows.size(); ++k) {
      flat.emplace_back(r, k);
    }
  }
  std::sort(flat.begin(), flat.end(),
            [&](const std::pair<size_t, size_t>& a,
                const std::pair<size_t, size_t>& b) {
              int cmp = idx->runs[a.first].values[a.second].Compare(
                  idx->runs[b.first].values[b.second]);
              if (cmp != 0) return cmp < 0;
              return idx->runs[a.first].rows[a.second] <
                     idx->runs[b.first].rows[b.second];
            });
  BoundRun merged;
  merged.values.reserve(total);
  merged.rows.reserve(total);
  for (const auto& [r, k] : flat) {
    merged.values.push_back(std::move(idx->runs[r].values[k]));
    merged.rows.push_back(idx->runs[r].rows[k]);
  }
  idx->runs.clear();
  idx->runs.push_back(std::move(merged));
}

InsertOutcome Relation::Insert(Fact fact, int birth, SubsumptionMode mode,
                               std::string rule_label,
                               std::vector<FactRef> parents, bool edb) {
  std::string key = fact.Key();
  if (keys_.count(key) > 0) return InsertOutcome::kDuplicate;
  bool is_ground = fact.IsGround();
  if (mode == SubsumptionMode::kSingleFact) {
    for (size_t i = 0; i < size_; ++i) {
      // Fast path: a ground fact denotes a single point, so it can subsume
      // another fact only if they are structurally identical — already
      // excluded by the key check (facts are kept in canonical simplified
      // form, see fm::RemoveRedundant's equality merging).
      if (ground(i) && is_ground) continue;
      const Fact& existing = this->fact(i);
      if (existing.pred != fact.pred || existing.arity != fact.arity) {
        continue;
      }
      if (Implies(fact.constraint, existing.constraint)) {
        return InsertOutcome::kSubsumed;
      }
    }
  } else if (mode == SubsumptionMode::kSetImplication) {
    std::vector<Conjunction> existing;
    existing.reserve(size_);
    for (size_t i = 0; i < size_; ++i) {
      const Fact& stored = this->fact(i);
      if (stored.pred == fact.pred && stored.arity == fact.arity) {
        existing.push_back(stored.constraint);
      }
    }
    if (!existing.empty() && ImpliesDisjunction(fact.constraint, existing)) {
      return InsertOutcome::kSubsumed;
    }
  }

  // Classify each argument position (the column tag) and collect interval
  // summaries for numerically constrained positions. Bound propagation runs
  // at most once per fact, lazily, and never for facts with no linear atoms
  // (their positions classify from the direct lookups alone).
  size_t arity = static_cast<size_t>(fact.arity);
  std::vector<ColTag> tags(arity, ColTag::kUnbound);
  std::vector<SymbolId> syms(arity, SymbolId{});
  std::vector<Rational> nums(arity);
  std::vector<std::pair<size_t, Interval>> summaries;  // (pos-1, bounds)
  std::optional<IntervalDomain> domain;
  for (size_t p = 0; p < arity; ++p) {
    VarId v = static_cast<VarId>(p + 1);
    if (auto sym = fact.constraint.GetSymbol(v)) {
      tags[p] = ColTag::kSymbol;
      syms[p] = *sym;
      continue;
    }
    if (auto num = fact.constraint.QuickNumericValue(v)) {
      tags[p] = ColTag::kNumber;
      nums[p] = std::move(*num);
      continue;
    }
    if (fact.constraint.linear().empty()) continue;  // stays kUnbound
    auto start = std::chrono::steady_clock::now();
    if (!domain.has_value()) {
      domain =
          IntervalDomain::Propagate(fact.constraint.LinearWithEqualities());
    }
    const Interval& iv = domain->Of(fact.constraint.Find(v));
    interval_build_ns_ += ElapsedNs(start);
    if (!iv.lower_infinite() || !iv.upper_infinite()) {
      tags[p] = ColTag::kInterval;
      summaries.emplace_back(p, iv);
    }
  }

  // Append the row.
  size_t id = size_;
  keys_.emplace(std::move(key), id);
  if (birth > max_birth_) max_birth_ = birth;
  Chunk* tail = TailChunkForAppend();
  size_t row_in_chunk = tail->facts.size();
  if (tail->columns.size() < arity) {
    tail->columns.resize(arity);
    // Columns added mid-chunk are padded so every column array stays
    // parallel to the chunk's row arrays.
    for (Column& col : tail->columns) {
      col.tags.resize(row_in_chunk, static_cast<uint8_t>(ColTag::kAbsent));
      col.symbols.resize(row_in_chunk, SymbolId{});
      col.numbers.resize(row_in_chunk);
    }
  }
  tail->facts.push_back(std::move(fact));
  tail->births.push_back(birth);
  tail->ground.push_back(is_ground ? 1 : 0);
  tail->edb.push_back(edb ? 1 : 0);
  tail->support.push_back(1);
  tail->blocked.push_back(0);
  tail->rule_labels.push_back(std::move(rule_label));
  tail->parents.push_back(std::move(parents));
  for (size_t p = 0; p < tail->columns.size(); ++p) {
    Column& col = tail->columns[p];
    ColTag t = p < arity ? tags[p] : ColTag::kAbsent;
    col.tags.push_back(static_cast<uint8_t>(t));
    col.symbols.push_back(t == ColTag::kSymbol ? syms[p] : SymbolId{});
    col.numbers.push_back(t == ColTag::kNumber ? std::move(nums[p])
                                               : Rational());
  }
  ++size_;

  // Maintain both per-position indexes.
  if (index_.size() < arity) {
    index_.resize(arity);
    ival_index_.resize(arity);
  }
  auto start = std::chrono::steady_clock::now();
  for (size_t p = 0; p < arity; ++p) {
    const Column& col = tail->columns[p];
    ColTag t = static_cast<ColTag>(col.tags[row_in_chunk]);
    switch (t) {
      case ColTag::kSymbol:
        index_[p]
            .by_value[IndexKey{col.symbols[row_in_chunk], Rational()}]
            .push_back(id);
        ival_index_[p].loose.push_back(id);
        break;
      case ColTag::kNumber:
        index_[p]
            .by_value[IndexKey{std::nullopt, col.numbers[row_in_chunk]}]
            .push_back(id);
        ival_index_[p].tail_rows.push_back(id);
        ival_index_[p].tail_values.push_back(col.numbers[row_in_chunk]);
        if (ival_index_[p].tail_rows.size() >= kRunSeal) {
          SealTail(&ival_index_[p]);
        }
        break;
      case ColTag::kInterval:
        // Bounded short of a point: the hash index treats the position as
        // unbound (the row can match any probed value), while the interval
        // index keeps the bound summary for range pruning.
        index_[p].unbound.push_back(id);
        break;
      case ColTag::kUnbound:
        index_[p].unbound.push_back(id);
        ival_index_[p].loose.push_back(id);
        break;
      case ColTag::kAbsent:
        break;
    }
  }
  for (auto& [p, iv] : summaries) {
    ival_index_[p].ranged_rows.push_back(id);
    ival_index_[p].ranged_ivals.push_back(std::move(iv));
  }
  interval_build_ns_ += ElapsedNs(start);
  return InsertOutcome::kInserted;
}

Relation::Chunk* Relation::ChunkForCounterUpdate(size_t chunk_index) {
  if (chunks_[chunk_index].use_count() > 1) {
    chunks_[chunk_index] = std::make_shared<Chunk>(*chunks_[chunk_index]);
  }
  return chunks_[chunk_index].get();
}

void Relation::BumpSupport(size_t i) {
  ++ChunkForCounterUpdate(i >> kChunkShift)->support[i & kChunkMask];
}

void Relation::BumpBlocked(size_t i) {
  ++ChunkForCounterUpdate(i >> kChunkShift)->blocked[i & kChunkMask];
}

Relation Relation::Spliced(const std::vector<uint8_t>& dead,
                           const std::function<FactRef(FactRef)>& remap) const {
  Relation out;
  for (size_t i = 0; i < size_; ++i) {
    if (i < dead.size() && dead[i] != 0) continue;
    std::vector<FactRef> refs = parents(i);
    if (remap) {
      for (FactRef& ref : refs) ref = remap(ref);
    }
    out.Insert(fact(i), birth(i), SubsumptionMode::kNone, rule_label(i),
               std::move(refs), edb(i));
    Chunk* tail = out.chunks_.back().get();
    size_t row_in_chunk = (out.size_ - 1) & kChunkMask;
    tail->support[row_in_chunk] = support(i);
    tail->blocked[row_in_chunk] = blocked(i);
  }
  out.opaque_subsumption_events_ = opaque_subsumption_events_;
  return out;
}

Relation::IndexKey Relation::KeyOf(const ArgSignature& value) {
  if (value.symbol.has_value()) return IndexKey{value.symbol, Rational()};
  return IndexKey{std::nullopt, *value.number};
}

size_t Relation::ProbeCost(int position, const ArgSignature& value) const {
  size_t p = static_cast<size_t>(position - 1);
  if (p >= index_.size()) return 0;
  const PositionIndex& idx = index_[p];
  size_t cost = idx.unbound.size();
  auto it = idx.by_value.find(KeyOf(value));
  if (it != idx.by_value.end()) cost += it->second.size();
  return cost;
}

const std::vector<size_t>& Relation::Probe(int position,
                                           const ArgSignature& value,
                                           size_t limit,
                                           std::vector<size_t>* scratch) const {
  static const std::vector<size_t> kNoMatches;
  size_t p = static_cast<size_t>(position - 1);
  if (p >= index_.size()) return kNoMatches;
  const PositionIndex& idx = index_[p];
  auto it = idx.by_value.find(KeyOf(value));
  const std::vector<size_t>& bound =
      it == idx.by_value.end() ? kNoMatches : it->second;
  // Single-list fast paths: posting lists are ascending, so when the other
  // list is empty and the last id is below the limit the stored list itself
  // is the answer — no copy, no allocation (the hot ground-workload case).
  const std::vector<size_t>* only = nullptr;
  if (idx.unbound.empty()) {
    only = &bound;
  } else if (bound.empty()) {
    only = &idx.unbound;
  }
  if (only != nullptr) {
    if (only->empty() || only->back() < limit) return *only;
    std::vector<size_t>& out = *scratch;
    out.clear();
    out.assign(only->begin(),
               std::lower_bound(only->begin(), only->end(), limit));
    return out;
  }
  // Merge the two ascending lists, keeping insertion order, so the caller
  // enumerates candidates in exactly the order the linear scan would.
  std::vector<size_t>& out = *scratch;
  out.clear();
  out.reserve(bound.size() + idx.unbound.size());
  size_t bi = 0;
  size_t ui = 0;
  while (bi < bound.size() || ui < idx.unbound.size()) {
    size_t next;
    if (bi == bound.size()) {
      next = idx.unbound[ui++];
    } else if (ui == idx.unbound.size() || bound[bi] < idx.unbound[ui]) {
      next = bound[bi++];
    } else {
      next = idx.unbound[ui++];
    }
    if (next >= limit) break;
    out.push_back(next);
  }
  return out;
}

bool Relation::HasIntervalIndex(int position) const {
  size_t p = static_cast<size_t>(position - 1);
  if (p >= ival_index_.size()) return false;
  const IntervalIndex& idx = ival_index_[p];
  return !idx.runs.empty() || !idx.tail_rows.empty() ||
         !idx.ranged_rows.empty();
}

size_t Relation::IntervalProbeCost(int position, const Interval& query) const {
  size_t p = static_cast<size_t>(position - 1);
  if (p >= ival_index_.size()) return 0;
  const IntervalIndex& idx = ival_index_[p];
  size_t cost =
      idx.tail_rows.size() + idx.ranged_rows.size() + idx.loose.size();
  for (const BoundRun& run : idx.runs) {
    auto [first, last] = AdmittedRange(run.values, query);
    cost += last - first;
  }
  return cost;
}

const std::vector<size_t>& Relation::IntervalProbe(
    int position, const Interval& query, size_t limit,
    std::vector<size_t>* scratch, long* runs_pruned) const {
  static const std::vector<size_t> kNoMatches;
  size_t p = static_cast<size_t>(position - 1);
  if (p >= ival_index_.size()) return kNoMatches;
  const IntervalIndex& idx = ival_index_[p];
  std::vector<size_t>& out = *scratch;
  out.clear();
  for (const BoundRun& run : idx.runs) {
    auto [first, last] = AdmittedRange(run.values, query);
    if (first == last) {
      if (runs_pruned != nullptr) ++*runs_pruned;
      continue;
    }
    for (size_t k = first; k < last; ++k) out.push_back(run.rows[k]);
  }
  for (size_t k = 0; k < idx.tail_rows.size(); ++k) {
    if (query.Contains(idx.tail_values[k])) out.push_back(idx.tail_rows[k]);
  }
  for (size_t k = 0; k < idx.ranged_rows.size(); ++k) {
    if (query.Intersects(idx.ranged_ivals[k])) {
      out.push_back(idx.ranged_rows[k]);
    }
  }
  out.insert(out.end(), idx.loose.begin(), idx.loose.end());
  // Candidates must come out in ascending row order: the emit-visibility
  // and trace-identity contracts require probe enumeration to match the
  // scan's insertion order exactly.
  std::sort(out.begin(), out.end());
  out.erase(std::lower_bound(out.begin(), out.end(), limit), out.end());
  return out;
}

bool Relation::AllGround() const {
  for (const auto& chunk : chunks_) {
    for (uint8_t g : chunk->ground) {
      if (g == 0) return false;
    }
  }
  return true;
}

size_t Relation::ApproxChunkBytes(const Chunk& chunk) {
  size_t bytes = sizeof(Chunk);
  bytes += chunk.births.capacity() * sizeof(int);
  bytes += chunk.ground.capacity() + chunk.edb.capacity();
  bytes += (chunk.support.capacity() + chunk.blocked.capacity()) *
           sizeof(long);
  for (const Fact& fact : chunk.facts) bytes += ApproxFactBytes(fact);
  for (const std::string& label : chunk.rule_labels) {
    bytes += sizeof(std::string) + label.capacity();
  }
  for (const auto& refs : chunk.parents) {
    bytes += sizeof(refs) + refs.capacity() * sizeof(FactRef);
  }
  for (const Column& col : chunk.columns) {
    bytes += col.tags.capacity();
    bytes += col.symbols.capacity() * sizeof(SymbolId);
    bytes += col.numbers.capacity() * sizeof(Rational);
  }
  return bytes;
}

size_t Relation::ApproxBytes() const {
  size_t bytes = sizeof(Relation);
  for (const auto& chunk : chunks_) bytes += ApproxChunkBytes(*chunk);
  for (const auto& [key, row] : keys_) {
    bytes += sizeof(std::string) + key.capacity() + sizeof(row) +
             16;  // map node overhead
  }
  for (const PositionIndex& idx : index_) {
    bytes += idx.unbound.capacity() * sizeof(size_t);
    for (const auto& [key, rows] : idx.by_value) {
      bytes += sizeof(key) + 32 + rows.capacity() * sizeof(size_t);
    }
  }
  for (const IntervalIndex& idx : ival_index_) {
    for (const BoundRun& run : idx.runs) {
      bytes += run.values.capacity() * sizeof(Rational) +
               run.rows.capacity() * sizeof(size_t);
    }
    bytes += idx.tail_rows.capacity() * sizeof(size_t) +
             idx.tail_values.capacity() * sizeof(Rational);
    bytes += idx.ranged_rows.capacity() * sizeof(size_t) +
             idx.ranged_ivals.capacity() * sizeof(Interval);
    bytes += idx.loose.capacity() * sizeof(size_t);
  }
  return bytes;
}

size_t Relation::SharedBytes() const {
  size_t bytes = 0;
  for (const auto& chunk : chunks_) {
    if (chunk.use_count() > 1) bytes += ApproxChunkBytes(*chunk);
  }
  return bytes;
}

}  // namespace cqlopt
