#include "eval/seminaive.h"

#include <set>

#include "constraint/implication.h"
#include "eval/rule_application.h"

namespace cqlopt {
namespace {

/// A derivation buffered during one iteration, reconciled at iteration end.
struct Pending {
  std::string rule_label;
  Fact fact;
  std::vector<Relation::FactRef> parents;
  std::string key;
  bool ground = false;
  InsertOutcome outcome = InsertOutcome::kInserted;
};

/// End-of-iteration reconciliation: the derivations of one iteration are
/// treated as a *set* (the paper's tables discard a fact as subsumed even
/// when the subsuming fact was derived later in the same iteration, e.g.
/// Table 1 iteration 3 discards m_fib(0,4) in favour of m_fib(0,V2)).
void Reconcile(std::vector<Pending>* pending, const Database& db,
               SubsumptionMode mode) {
  // Pass 1: structural duplicates, against the database and earlier pending.
  std::set<std::string> seen;
  for (Pending& p : *pending) {
    p.key = p.fact.Key();
    p.ground = p.fact.IsGround();
    const Relation* rel = db.Find(p.fact.pred);
    bool in_db = rel != nullptr && rel->ContainsKey(p.key);
    if (in_db || !seen.insert(p.key).second) {
      p.outcome = InsertOutcome::kDuplicate;
    }
  }
  if (mode == SubsumptionMode::kNone) return;
  if (mode == SubsumptionMode::kSetImplication) {
    // Disjunction-based subsumption: a derivation is discarded when the
    // union of the database facts and the other surviving derivations
    // already covers it. Processed in derivation order, so of two
    // equivalent covers the earlier one survives.
    for (size_t i = 0; i < pending->size(); ++i) {
      Pending& p = (*pending)[i];
      if (p.outcome != InsertOutcome::kInserted) continue;
      std::vector<Conjunction> others;
      const Relation* rel = db.Find(p.fact.pred);
      if (rel != nullptr) {
        for (const Relation::Entry& e : rel->entries()) {
          others.push_back(e.fact.constraint);
        }
      }
      for (size_t j = 0; j < pending->size(); ++j) {
        if (j == i) continue;
        const Pending& q = (*pending)[j];
        if (q.outcome != InsertOutcome::kInserted) continue;
        if (q.fact.pred != p.fact.pred || q.fact.arity != p.fact.arity) {
          continue;
        }
        others.push_back(q.fact.constraint);
      }
      if (!others.empty() && ImpliesDisjunction(p.fact.constraint, others)) {
        p.outcome = InsertOutcome::kSubsumed;
      }
    }
    return;
  }
  // Pass 2: subsumption against existing database facts. Ground-vs-ground
  // pairs are skipped: a ground fact can only subsume a structurally
  // identical one (see Relation::Insert).
  for (Pending& p : *pending) {
    if (p.outcome != InsertOutcome::kInserted) continue;
    const Relation* rel = db.Find(p.fact.pred);
    if (rel == nullptr) continue;
    for (const Relation::Entry& e : rel->entries()) {
      if (p.ground && e.ground) continue;
      if (Implies(p.fact.constraint, e.fact.constraint)) {
        p.outcome = InsertOutcome::kSubsumed;
        break;
      }
    }
  }
  // Pass 3: mutual subsumption within the iteration. Equivalent facts keep
  // the earliest derivation.
  for (size_t i = 0; i < pending->size(); ++i) {
    Pending& p = (*pending)[i];
    if (p.outcome != InsertOutcome::kInserted) continue;
    for (size_t j = 0; j < pending->size(); ++j) {
      if (j == i) continue;
      const Pending& q = (*pending)[j];
      if (q.outcome != InsertOutcome::kInserted) continue;
      if (q.fact.pred != p.fact.pred || q.fact.arity != p.fact.arity) continue;
      if (p.ground && q.ground) continue;
      if (!Implies(p.fact.constraint, q.fact.constraint)) continue;
      if (j > i && Implies(q.fact.constraint, p.fact.constraint)) {
        continue;  // Equivalent and p came first: p wins.
      }
      p.outcome = InsertOutcome::kSubsumed;
      break;
    }
  }
}

}  // namespace

Result<EvalResult> Evaluate(const Program& program, const Database& edb,
                            const EvalOptions& options) {
  EvalResult result;
  result.db = edb;  // EDB facts carry birth -1.

  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    std::vector<Pending> pending;
    bool require_delta =
        options.strategy == EvalStrategy::kSemiNaive && iteration > 0;
    for (const Rule& rule : program.rules) {
      if (rule.IsConstraintFact() && iteration != 0) continue;
      auto emit = [&](Fact fact,
                      const std::vector<Relation::FactRef>& parents)
          -> Status {
        ++result.stats.derivations;
        pending.push_back(
            Pending{rule.label, std::move(fact), parents, "", false,
                    InsertOutcome::kInserted});
        return Status::OK();
      };
      CQLOPT_RETURN_IF_ERROR(ApplyRule(rule, result.db,
                                       /*max_birth=*/iteration - 1,
                                       require_delta, emit));
    }
    Reconcile(&pending, result.db, options.subsumption);
    long inserted_this_iteration = 0;
    if (options.record_trace) result.trace.emplace_back();
    for (Pending& p : pending) {
      if (options.record_trace) {
        result.trace.back().push_back(Derivation{
            p.rule_label, p.fact.ToString(*program.symbols), p.outcome});
      }
      switch (p.outcome) {
        case InsertOutcome::kInserted:
          ++result.stats.inserted;
          ++inserted_this_iteration;
          if (!p.fact.IsGround()) result.stats.all_ground = false;
          result.db.AddFact(std::move(p.fact), iteration,
                            SubsumptionMode::kNone, p.rule_label,
                            std::move(p.parents));
          break;
        case InsertOutcome::kSubsumed:
          ++result.stats.subsumed;
          break;
        case InsertOutcome::kDuplicate:
          ++result.stats.duplicates;
          break;
      }
    }
    result.stats.iterations = iteration + 1;
    if (inserted_this_iteration == 0) {
      result.stats.reached_fixpoint = true;
      break;
    }
  }

  for (const auto& [pred, rel] : result.db.relations()) {
    result.stats.facts_per_pred[pred] = static_cast<long>(rel.size());
  }
  return result;
}

std::string RenderTrace(const std::vector<std::vector<Derivation>>& trace) {
  std::string out;
  for (size_t i = 0; i < trace.size(); ++i) {
    out += "iteration " + std::to_string(i) + ": {";
    for (size_t j = 0; j < trace[i].size(); ++j) {
      if (j > 0) out += ", ";
      const Derivation& d = trace[i][j];
      bool discarded = d.outcome != InsertOutcome::kInserted;
      if (!d.rule_label.empty()) out += d.rule_label + ":";
      if (discarded) out += "*";
      out += d.fact;
      if (discarded) out += "*";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace cqlopt
