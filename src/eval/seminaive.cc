#include "eval/seminaive.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <set>

#include "constraint/decision_cache.h"
#include "constraint/implication.h"
#include "constraint/interval.h"
#include "eval/rule_application.h"
#include "eval/validate.h"
#include "graph/scc.h"
#include "util/thread_pool.h"

namespace cqlopt {
namespace {

/// Cooperative enforcement of EvalOptions' governance limits (cancel token,
/// wall-clock deadline, derived-fact budget).
///
/// Check granularity:
///  - Fine(): called from the emit callback on every derivation. Costs one
///    branch when no limit is set; when governed, samples the clock / token
///    only every kFineInterval derivations (a relaxed shared tick), and
///    otherwise just reads the trip flag — so a trip in one parallel worker
///    makes every other worker bail on its next derivation.
///  - RuleBoundary(): called before each rule application (serially between
///    rules, and at task start inside pool workers) — an unconditional
///    clock/token sample, so even derivation-free rule batches stay
///    responsive.
///  - IterationBoundary(): called serially after each iteration commits;
///    adds the derived-fact budget, which deliberately lives ONLY here so
///    the abort lands on the same iteration — with the same committed
///    database — at any thread count.
///
/// The returned Status carries the cause ("wall-clock deadline of 50ms
/// expired"); the strategy loops annotate it with the position
/// (stratum / global iteration / facts stored) before surfacing it.
class Governor {
 public:
  Governor(const EvalOptions& options, long baseline_inserted)
      : cancel_(options.cancel),
        deadline_ms_(options.deadline_ms),
        max_facts_(options.max_derived_facts),
        baseline_inserted_(baseline_inserted),
        active_(options.deadline_ms > 0 || options.max_derived_facts > 0 ||
                options.cancel.can_cancel()) {
    if (deadline_ms_ > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms_);
    }
  }

  bool active() const { return active_; }

  Status Fine() {
    if (!active_) return Status::OK();
    if (tripped_.load(std::memory_order_relaxed)) return TrippedStatus();
    if ((tick_.fetch_add(1, std::memory_order_relaxed) & (kFineInterval - 1)) !=
        0) {
      return Status::OK();
    }
    return Sample();
  }

  Status RuleBoundary() {
    if (!active_) return Status::OK();
    if (tripped_.load(std::memory_order_relaxed)) return TrippedStatus();
    return Sample();
  }

  Status IterationBoundary(long inserted_total) {
    if (!active_) return Status::OK();
    CQLOPT_RETURN_IF_ERROR(RuleBoundary());
    if (max_facts_ > 0 && inserted_total - baseline_inserted_ > max_facts_) {
      return Status::ResourceExhausted(
          "derived-fact budget of " + std::to_string(max_facts_) +
          " exceeded (" + std::to_string(inserted_total - baseline_inserted_) +
          " facts stored by this call)");
    }
    return Status::OK();
  }

  /// True for codes a governed (or fault-injected) abort produces — the
  /// errors whose message the strategy loops annotate with the abort
  /// position and whose partial stats flow into EvalOptions::abort_stats.
  static bool IsAbortCode(StatusCode code) {
    return code == StatusCode::kDeadlineExceeded ||
           code == StatusCode::kCancelled ||
           code == StatusCode::kResourceExhausted;
  }

 private:
  static constexpr long kFineInterval = 64;  // power of two (mask below)

  /// Samples the token and the clock; records the first trip so concurrent
  /// workers short-circuit without re-sampling.
  Status Sample() {
    if (cancel_.cancel_requested()) {
      tripped_.store(kTripCancelled, std::memory_order_relaxed);
      return TrippedStatus();
    }
    if (deadline_ms_ > 0 && std::chrono::steady_clock::now() >= deadline_) {
      tripped_.store(kTripDeadline, std::memory_order_relaxed);
      return TrippedStatus();
    }
    return Status::OK();
  }

  Status TrippedStatus() const {
    if (tripped_.load(std::memory_order_relaxed) == kTripCancelled ||
        cancel_.cancel_requested()) {
      return Status::Cancelled("evaluation cancelled via CancelToken");
    }
    return Status::DeadlineExceeded("wall-clock deadline of " +
                                    std::to_string(deadline_ms_) +
                                    "ms expired");
  }

  static constexpr int kTripDeadline = 1;
  static constexpr int kTripCancelled = 2;

  CancelToken cancel_;
  const long deadline_ms_;
  const long max_facts_;
  const long baseline_inserted_;
  const bool active_;
  std::chrono::steady_clock::time_point deadline_{};
  std::atomic<long> tick_{0};
  std::atomic<int> tripped_{0};
};

/// A derivation buffered during one iteration, reconciled at iteration end.
struct Pending {
  std::string rule_label;
  Fact fact;
  std::vector<Relation::FactRef> parents;
  std::string key;
  bool ground = false;
  InsertOutcome outcome = InsertOutcome::kInserted;
};

/// End-of-iteration reconciliation: the derivations of one iteration are
/// treated as a *set* (the paper's tables discard a fact as subsumed even
/// when the subsuming fact was derived later in the same iteration, e.g.
/// Table 1 iteration 3 discards m_fib(0,4) in favour of m_fib(0,V2)).
void Reconcile(std::vector<Pending>* pending, const Database& db,
               SubsumptionMode mode) {
  // Pass 1: structural duplicates, against the database and earlier pending.
  std::set<std::string> seen;
  for (Pending& p : *pending) {
    p.key = p.fact.Key();
    p.ground = p.fact.IsGround();
    const Relation* rel = db.Find(p.fact.pred);
    bool in_db = rel != nullptr && rel->ContainsKey(p.key);
    if (in_db || !seen.insert(p.key).second) {
      p.outcome = InsertOutcome::kDuplicate;
    }
  }
  if (mode == SubsumptionMode::kNone) return;
  if (mode == SubsumptionMode::kSetImplication) {
    // Disjunction-based subsumption: a derivation is discarded when the
    // union of the database facts and the other surviving derivations
    // already covers it. Processed in derivation order, so of two
    // equivalent covers the earlier one survives.
    for (size_t i = 0; i < pending->size(); ++i) {
      Pending& p = (*pending)[i];
      if (p.outcome != InsertOutcome::kInserted) continue;
      std::vector<Conjunction> others;
      const Relation* rel = db.Find(p.fact.pred);
      if (rel != nullptr) {
        for (size_t e = 0; e < rel->size(); ++e) {
          others.push_back(rel->fact(e).constraint);
        }
      }
      for (size_t j = 0; j < pending->size(); ++j) {
        if (j == i) continue;
        const Pending& q = (*pending)[j];
        if (q.outcome != InsertOutcome::kInserted) continue;
        if (q.fact.pred != p.fact.pred || q.fact.arity != p.fact.arity) {
          continue;
        }
        others.push_back(q.fact.constraint);
      }
      if (!others.empty() && ImpliesDisjunction(p.fact.constraint, others)) {
        p.outcome = InsertOutcome::kSubsumed;
      }
    }
    return;
  }
  // Pass 2: subsumption against existing database facts. Ground-vs-ground
  // pairs are skipped: a ground fact can only subsume a structurally
  // identical one (see Relation::Insert).
  for (Pending& p : *pending) {
    if (p.outcome != InsertOutcome::kInserted) continue;
    const Relation* rel = db.Find(p.fact.pred);
    if (rel == nullptr) continue;
    for (size_t e = 0; e < rel->size(); ++e) {
      if (p.ground && rel->ground(e)) continue;
      if (Implies(p.fact.constraint, rel->fact(e).constraint)) {
        p.outcome = InsertOutcome::kSubsumed;
        break;
      }
    }
  }
  // Pass 3: mutual subsumption within the iteration. Equivalent facts keep
  // the earliest derivation.
  for (size_t i = 0; i < pending->size(); ++i) {
    Pending& p = (*pending)[i];
    if (p.outcome != InsertOutcome::kInserted) continue;
    for (size_t j = 0; j < pending->size(); ++j) {
      if (j == i) continue;
      const Pending& q = (*pending)[j];
      if (q.outcome != InsertOutcome::kInserted) continue;
      if (q.fact.pred != p.fact.pred || q.fact.arity != p.fact.arity) continue;
      if (p.ground && q.ground) continue;
      if (!Implies(p.fact.constraint, q.fact.constraint)) continue;
      if (j > i && Implies(q.fact.constraint, p.fact.constraint)) {
        continue;  // Equivalent and p came first: p wins.
      }
      p.outcome = InsertOutcome::kSubsumed;
      break;
    }
  }
}

/// Applies one rule against the frozen pre-iteration database, buffering
/// derivations into `pending` and counting into `stats`. The workhorse of
/// both the serial and the parallel iteration: in the parallel case each
/// worker gets its own `pending`/`stats`, so the only shared state is the
/// const database snapshot.
Status ApplyOneRule(const Program& program, size_t rule_index,
                    const Database& db, int iteration, bool require_delta,
                    bool use_index, bool delta_rotate, bool interval_index,
                    Governor* governor, std::vector<Pending>* pending,
                    EvalStats* stats) {
  // Rule-batch boundary check: keeps long serial rule sequences (and pool
  // tasks dequeued after a sibling tripped) responsive even when individual
  // rules derive nothing.
  CQLOPT_RETURN_IF_ERROR(governor->RuleBoundary());
  const Rule& rule = program.rules[rule_index];
  const std::string rule_key =
      rule.label.empty() ? "rule#" + std::to_string(rule_index) : rule.label;
  auto emit = [&](Fact fact,
                  const std::vector<Relation::FactRef>& parents) -> Status {
    CQLOPT_RETURN_IF_ERROR(governor->Fine());
    ++stats->derivations;
    ++stats->derivations_per_rule[rule_key];
    pending->push_back(Pending{rule.label, std::move(fact), parents, "",
                               false, InsertOutcome::kInserted});
    return Status::OK();
  };
  return ApplyRule(rule, db, /*max_birth=*/iteration - 1, require_delta, emit,
                   use_index, stats, delta_rotate, interval_index);
}

/// One fixpoint iteration over `rule_indexes`: applies the rules under the
/// given delta discipline, reconciles the buffered derivations as a set,
/// and commits the survivors with birth `iteration`. Constraint facts
/// (body-free rules) fire only when `fire_constraint_facts` is set — the
/// first iteration of their stratum / of the global loop. Returns the
/// number of facts inserted.
///
/// When `pool` is non-null the rules are applied concurrently, one task per
/// rule, each deriving into a worker-local buffer against the frozen
/// pre-iteration database (no commits happen until all rules ran, exactly
/// as in the serial path). The buffers are then merged in rule order —
/// ApplyRule enumerates deterministically, so the merged pending list, and
/// with it fact ids, birth stamps, traces, and stats, are byte-identical to
/// the serial run at any thread count.
Result<long> RunIteration(const Program& program,
                          const std::vector<size_t>& rule_indexes,
                          int iteration, bool fire_constraint_facts,
                          bool require_delta, bool use_index,
                          bool delta_rotate, bool interval_index,
                          const EvalOptions& options, Governor* governor,
                          ThreadPool* pool, EvalResult* result) {
  std::vector<size_t> active;
  active.reserve(rule_indexes.size());
  for (size_t rule_index : rule_indexes) {
    if (program.rules[rule_index].IsConstraintFact() && !fire_constraint_facts)
      continue;
    active.push_back(rule_index);
  }
  std::vector<Pending> pending;
  if (pool != nullptr && active.size() > 1) {
    struct WorkerOutput {
      std::vector<Pending> pending;
      EvalStats stats;
      Status status = Status::OK();
    };
    std::vector<WorkerOutput> outputs(active.size());
    for (size_t t = 0; t < active.size(); ++t) {
      WorkerOutput* out = &outputs[t];
      size_t rule_index = active[t];
      pool->Submit([&program, rule_index, iteration, require_delta, use_index,
                    delta_rotate, interval_index, governor, out,
                    db = &result->db] {
        out->status = ApplyOneRule(program, rule_index, *db, iteration,
                                   require_delta, use_index, delta_rotate,
                                   interval_index, governor, &out->pending,
                                   &out->stats);
      });
    }
    pool->Wait();
    // Merge counters before surfacing any error, mirroring the serial
    // path's partially-incremented stats on failure. The partial Pending
    // buffers of tripped workers are merged too, then discarded with the
    // whole iteration when the error returns below — nothing half-commits.
    Status failed = Status::OK();
    for (WorkerOutput& out : outputs) {
      result->stats.MergeWorkerCounters(out.stats);
      for (Pending& p : out.pending) pending.push_back(std::move(p));
      if (failed.ok() && !out.status.ok()) failed = out.status;
    }
    CQLOPT_RETURN_IF_ERROR(failed);
  } else {
    for (size_t rule_index : active) {
      CQLOPT_RETURN_IF_ERROR(ApplyOneRule(program, rule_index, result->db,
                                          iteration, require_delta, use_index,
                                          delta_rotate, interval_index,
                                          governor, &pending, &result->stats));
    }
  }
  Reconcile(&pending, result->db, options.subsumption);
  long inserted = 0;
  if (options.record_trace) result->trace.emplace_back();
  for (Pending& p : pending) {
    if (options.record_trace) {
      result->trace.back().push_back(Derivation{
          p.rule_label, p.fact.ToString(*program.symbols), p.outcome});
    }
    switch (p.outcome) {
      case InsertOutcome::kInserted:
        ++result->stats.inserted;
        ++inserted;
        if (!p.fact.IsGround()) result->stats.all_ground = false;
        result->db.AddFact(std::move(p.fact), iteration,
                           SubsumptionMode::kNone, p.rule_label,
                           std::move(p.parents));
        break;
      case InsertOutcome::kSubsumed:
        ++result->stats.subsumed;
        break;
      case InsertOutcome::kDuplicate:
        ++result->stats.duplicates;
        break;
    }
  }
  return inserted;
}

/// Annotates a governed (or fault-injected) abort Status with the position
/// it landed at, mirrors the position into the partial stats, and copies
/// those stats out through options.abort_stats — on failure the Result
/// carries no EvalResult, so this is the only way the counters escape.
Status GovernedAbort(const Status& cause, const std::string& position,
                     const EvalOptions& options, EvalResult* result) {
  result->stats.aborted = true;
  result->stats.abort_point = position;
  for (const auto& [pred, rel] : result->db.relations()) {
    result->stats.facts_per_pred[pred] = static_cast<long>(rel.size());
  }
  result->stats.interval_index_build_ns = result->db.IntervalBuildNs();
  if (options.abort_stats != nullptr) *options.abort_stats = result->stats;
  return Status(cause.code(), cause.message() + " at " + position);
}

/// "<N> facts stored (<M> derivations made)" — the facts-so-far tail every
/// abort and cap message carries.
std::string FactsSoFar(const EvalResult& result) {
  return std::to_string(result.db.TotalFacts()) + " facts stored (" +
         std::to_string(result.stats.derivations) + " derivations made)";
}

/// SCC-stratified semi-naive evaluation: condense the predicate dependency
/// graph, assign every rule to the component of its head predicate, and run
/// one semi-naive fixpoint per component in bottom-up topological order.
/// Lower strata are frozen when a stratum runs: their facts carry older
/// births, so they join as "old" facts and are never re-derived. Iteration
/// numbering (birth stamps, trace rows, max_iterations) is global across
/// strata.
Result<EvalResult> EvaluateStratified(const Program& program,
                                      const Database& edb,
                                      const EvalOptions& options,
                                      Governor* governor) {
  EvalResult result;
  result.db = edb;  // EDB facts carry birth -1.

  // One pool for the whole evaluation: workers survive across iterations
  // and strata, idling between the fork-join batches.
  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) pool = std::make_unique<ThreadPool>(options.threads);

  DependencyGraph graph(program);
  SccDecomposition sccs(graph);
  // components() is in reverse topological order: front depends on nothing
  // later, so walking front-to-back is the bottom-up strata order.
  const auto& components = sccs.components();
  std::vector<std::vector<size_t>> rules_of(components.size());
  for (size_t rule_index = 0; rule_index < program.rules.size();
       ++rule_index) {
    int component = sccs.ComponentOf(program.rules[rule_index].head.pred);
    rules_of[static_cast<size_t>(component)].push_back(rule_index);
  }

  int global_iteration = 0;
  bool capped = false;
  for (size_t c = 0; c < components.size() && !capped; ++c) {
    if (rules_of[c].empty()) continue;  // pure-EDB component
    // A stratum is recursive iff some rule's body mentions a predicate of
    // the same component; non-recursive strata converge in one pass, so
    // the empty fixpoint-confirmation iteration is skipped.
    bool recursive = false;
    for (size_t rule_index : rules_of[c]) {
      for (const Literal& lit : program.rules[rule_index].body) {
        if (sccs.ComponentOf(lit.pred) == static_cast<int>(c)) {
          recursive = true;
        }
      }
    }
    long stratum_iterations = 0;
    for (int local = 0;; ++local) {
      if (global_iteration >= options.max_iterations) {
        capped = true;
        break;
      }
      const int this_iteration = global_iteration;
      auto position = [&] {
        return "stratum " + std::to_string(c + 1) + "/" +
               std::to_string(components.size()) + " (local iteration " +
               std::to_string(local) + "), global iteration " +
               std::to_string(this_iteration) + ", " + FactsSoFar(result);
      };
      Result<long> ran = RunIteration(
          program, rules_of[c], global_iteration,
          /*fire_constraint_facts=*/local == 0,
          /*require_delta=*/local > 0, /*use_index=*/true,
          /*delta_rotate=*/false, options.interval_index, options, governor,
          pool.get(), &result);
      if (!ran.ok()) {
        if (Governor::IsAbortCode(ran.status().code())) {
          return GovernedAbort(ran.status(), position(), options, &result);
        }
        return ran.status();
      }
      long inserted = *ran;
      ++global_iteration;
      ++stratum_iterations;
      result.stats.iterations = global_iteration;
      Status boundary = governor->IterationBoundary(result.stats.inserted);
      if (!boundary.ok()) {
        return GovernedAbort(boundary, position(), options, &result);
      }
      if (inserted == 0 || !recursive) break;
    }
    result.stats.scc_iterations.push_back(stratum_iterations);
  }
  result.stats.reached_fixpoint = !capped;

  for (const auto& [pred, rel] : result.db.relations()) {
    result.stats.facts_per_pred[pred] = static_cast<long>(rel.size());
  }
  result.stats.interval_index_build_ns = result.db.IntervalBuildNs();
  return result;
}

/// The kNaive / kSemiNaive oracle loop: every rule in one global fixpoint,
/// linear-scan joins, always serial (the oracles define the reference
/// behaviour the parallel stratified path must reproduce).
Result<EvalResult> EvaluateGlobal(const Program& program, const Database& edb,
                                  const EvalOptions& options,
                                  Governor* governor) {
  EvalResult result;
  result.db = edb;  // EDB facts carry birth -1.

  std::vector<size_t> all_rules(program.rules.size());
  std::iota(all_rules.begin(), all_rules.end(), 0);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    bool require_delta =
        options.strategy == EvalStrategy::kSemiNaive && iteration > 0;
    auto position = [&] {
      return "global iteration " + std::to_string(iteration) +
             " (single global stratum), " + FactsSoFar(result);
    };
    Result<long> ran = RunIteration(
        program, all_rules, iteration,
        /*fire_constraint_facts=*/iteration == 0, require_delta,
        /*use_index=*/false, /*delta_rotate=*/false, /*interval_index=*/false,
        options, governor, /*pool=*/nullptr, &result);
    if (!ran.ok()) {
      if (Governor::IsAbortCode(ran.status().code())) {
        return GovernedAbort(ran.status(), position(), options, &result);
      }
      return ran.status();
    }
    long inserted = *ran;
    result.stats.iterations = iteration + 1;
    Status boundary = governor->IterationBoundary(result.stats.inserted);
    if (!boundary.ok()) {
      return GovernedAbort(boundary, position(), options, &result);
    }
    if (inserted == 0) {
      result.stats.reached_fixpoint = true;
      break;
    }
  }

  for (const auto& [pred, rel] : result.db.relations()) {
    result.stats.facts_per_pred[pred] = static_cast<long>(rel.size());
  }
  result.stats.interval_index_build_ns = result.db.IntervalBuildNs();
  return result;
}

/// Rejects option values the fixpoint loops cannot interpret (negative
/// caps would loop forever; negative thread counts would size a pool
/// undefinedly).
Status CheckEvalOptions(const EvalOptions& options) {
  if (options.max_iterations < 0) {
    return Status::InvalidArgument(
        "EvalOptions::max_iterations must be >= 0, got " +
        std::to_string(options.max_iterations));
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("EvalOptions::threads must be >= 0, got " +
                                   std::to_string(options.threads));
  }
  if (options.deadline_ms < 0) {
    return Status::InvalidArgument(
        "EvalOptions::deadline_ms must be >= 0 (0 = no deadline), got " +
        std::to_string(options.deadline_ms));
  }
  if (options.max_derived_facts < 0) {
    return Status::InvalidArgument(
        "EvalOptions::max_derived_facts must be >= 0 (0 = unlimited), got " +
        std::to_string(options.max_derived_facts));
  }
  return Status::OK();
}

}  // namespace

Result<EvalResult> Evaluate(const Program& program, const Database& edb,
                            const EvalOptions& options) {
  CQLOPT_RETURN_IF_ERROR(CheckEvalOptions(options));
  // Free head positions are legitimate here: the magic rewrite emits them
  // for unbound adornment positions (validate.h).
  CQLOPT_RETURN_IF_ERROR(ValidateProgram(
      program, {/*reject_free_head_vars=*/false,
                /*reject_constraint_only_recursion=*/true}));
  // The decision cache is process-wide; attribute its activity to this
  // evaluation by differencing the counters around the run. Same deal for
  // the interval-prepass counters; the EvalOptions::prepass toggle holds
  // the process-wide enable flag down for the duration of the call.
  std::optional<prepass::PrepassDisabler> prepass_off;
  if (!options.prepass) prepass_off.emplace();
  DecisionCache::Counters before = DecisionCache::Instance().Snapshot();
  prepass::Counters pre_before = prepass::Snapshot();
  Governor governor(options, /*baseline_inserted=*/0);
  Result<EvalResult> result =
      options.strategy == EvalStrategy::kStratified
          ? EvaluateStratified(program, edb, options, &governor)
          : EvaluateGlobal(program, edb, options, &governor);
  if (result.ok()) {
    DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
    result->stats.cache_hits = after.hits - before.hits;
    result->stats.cache_misses = after.misses - before.misses;
    result->stats.cache_evictions = after.evictions - before.evictions;
    prepass::Counters pre_after = prepass::Snapshot();
    result->stats.prepass_conclusive =
        pre_after.conclusive() - pre_before.conclusive();
    result->stats.prepass_fallback = pre_after.fallback - pre_before.fallback;
  }
  return result;
}

Result<EvalResult> ResumeEvaluate(const Program& program, EvalResult base,
                                  const std::vector<Fact>& delta,
                                  const EvalOptions& options) {
  CQLOPT_RETURN_IF_ERROR(CheckEvalOptions(options));
  // Free head positions are legitimate here: the magic rewrite emits them
  // for unbound adornment positions (validate.h).
  CQLOPT_RETURN_IF_ERROR(ValidateProgram(
      program, {/*reject_free_head_vars=*/false,
                /*reject_constraint_only_recursion=*/true}));
  if (!base.stats.reached_fixpoint) {
    // Say exactly where the base run stopped — callers picking a bigger
    // max_iterations (or diagnosing a governed abort) need the position,
    // not just the precondition.
    std::string where = base.stats.aborted
                            ? "was aborted at " + base.stats.abort_point
                            : "hit its iteration cap at global iteration " +
                                  std::to_string(base.stats.iterations);
    if (!base.stats.scc_iterations.empty()) {
      where += ", stratum iterations [";
      for (size_t i = 0; i < base.stats.scc_iterations.size(); ++i) {
        if (i > 0) where += ",";
        where += std::to_string(base.stats.scc_iterations[i]);
      }
      where += "]";
    }
    return Status::InvalidArgument(
        "ResumeEvaluate requires a base evaluation that reached its "
        "fixpoint, but the base " +
        where + "; " + FactsSoFar(base) +
        "; re-evaluate from scratch (with a higher max_iterations) instead");
  }
  std::optional<prepass::PrepassDisabler> prepass_off;
  if (!options.prepass) prepass_off.emplace();
  DecisionCache::Counters before = DecisionCache::Instance().Snapshot();
  prepass::Counters pre_before = prepass::Snapshot();
  const long baseline_inserted = base.stats.inserted;
  Governor governor(options, baseline_inserted);
  EvalResult result = std::move(base);

  // The batch joins the database as-if derived in the first unused
  // iteration: every stored fact is strictly older, so the delta discipline
  // of the next iteration selects exactly the batch.
  const int ingest_iteration = result.stats.iterations;
  // Batch facts are EDB, not derivations: like loading, they bypass the
  // derivation counters (inserted/duplicates keep meaning "rule output").
  Database::BatchOutcome batch = result.db.AddFacts(delta, ingest_iteration);
  if (batch.inserted == 0) return result;  // nothing new: fixpoint unchanged
  // stats.all_ground tracks *derived* facts only, so the batch itself does
  // not clear it — exactly as EDB loading leaves it untouched.
  if (!result.trace.empty() || options.record_trace) {
    // Keep trace[i] == iteration i: the ingest pseudo-iteration derives
    // nothing through rules.
    result.trace.emplace_back();
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) pool = std::make_unique<ThreadPool>(options.threads);

  std::vector<size_t> all_rules(program.rules.size());
  std::iota(all_rules.begin(), all_rules.end(), 0);
  result.stats.reached_fixpoint = false;
  for (int resumed = 0; resumed < options.max_iterations; ++resumed) {
    int iteration = ingest_iteration + 1 + resumed;
    auto position = [&] {
      return "resumed iteration " + std::to_string(resumed) +
             " (global iteration " + std::to_string(iteration) + "), " +
             FactsSoFar(result);
    };
    // Constraint facts fired in the base run's iteration 0; re-firing them
    // would only produce duplicates.
    Result<long> ran = RunIteration(
        program, all_rules, iteration,
        /*fire_constraint_facts=*/false, /*require_delta=*/true,
        /*use_index=*/true, /*delta_rotate=*/true, options.interval_index,
        options, &governor, pool.get(), &result);
    if (!ran.ok()) {
      if (Governor::IsAbortCode(ran.status().code())) {
        return GovernedAbort(ran.status(), position(), options, &result);
      }
      return ran.status();
    }
    long inserted = *ran;
    result.stats.iterations = iteration + 1;
    Status boundary = governor.IterationBoundary(result.stats.inserted);
    if (!boundary.ok()) {
      return GovernedAbort(boundary, position(), options, &result);
    }
    if (inserted == 0) {
      result.stats.reached_fixpoint = true;
      break;
    }
  }

  for (const auto& [pred, rel] : result.db.relations()) {
    result.stats.facts_per_pred[pred] = static_cast<long>(rel.size());
  }
  result.stats.interval_index_build_ns = result.db.IntervalBuildNs();
  DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
  result.stats.cache_hits += after.hits - before.hits;
  result.stats.cache_misses += after.misses - before.misses;
  result.stats.cache_evictions += after.evictions - before.evictions;
  prepass::Counters pre_after = prepass::Snapshot();
  result.stats.prepass_conclusive +=
      pre_after.conclusive() - pre_before.conclusive();
  result.stats.prepass_fallback += pre_after.fallback - pre_before.fallback;
  return result;
}

std::string RenderTrace(const std::vector<std::vector<Derivation>>& trace) {
  std::string out;
  for (size_t i = 0; i < trace.size(); ++i) {
    out += "iteration " + std::to_string(i) + ": {";
    for (size_t j = 0; j < trace[i].size(); ++j) {
      if (j > 0) out += ", ";
      const Derivation& d = trace[i][j];
      bool discarded = d.outcome != InsertOutcome::kInserted;
      if (!d.rule_label.empty()) out += d.rule_label + ":";
      if (discarded) out += "*";
      out += d.fact;
      if (discarded) out += "*";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace cqlopt
