#include "eval/seminaive.h"

#include <memory>
#include <numeric>
#include <optional>

#include "constraint/decision_cache.h"
#include "constraint/interval.h"
#include "eval/fixpoint.h"
#include "eval/validate.h"
#include "util/thread_pool.h"

namespace cqlopt {
namespace {

using eval_internal::CheckEvalOptions;
using eval_internal::FactsSoFar;
using eval_internal::Governor;
using eval_internal::GovernedAbort;
using eval_internal::RunIteration;

/// SCC-stratified semi-naive evaluation: condense the predicate dependency
/// graph, assign every rule to the component of its head predicate, and run
/// one semi-naive fixpoint per component in bottom-up topological order
/// (eval_internal::RunStrata — the same walk RetractEvaluate resumes
/// mid-plan). Lower strata are frozen when a stratum runs: their facts
/// carry older births, so they join as "old" facts and are never
/// re-derived. Iteration numbering (birth stamps, trace rows,
/// max_iterations) is global across strata.
Result<EvalResult> EvaluateStratified(const Program& program,
                                      const Database& edb,
                                      const EvalOptions& options,
                                      Governor* governor) {
  EvalResult result;
  result.db = edb;  // EDB facts carry birth -1.

  // One pool for the whole evaluation: workers survive across iterations
  // and strata, idling between the fork-join batches.
  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) pool = std::make_unique<ThreadPool>(options.threads);

  eval_internal::StratifiedPlan plan = eval_internal::PlanStratified(program);
  CQLOPT_RETURN_IF_ERROR(eval_internal::RunStrata(
      program, plan, /*first_component=*/0, /*start_iteration=*/0, options,
      governor, pool.get(), &result));
  return result;
}

/// The kNaive / kSemiNaive oracle loop: every rule in one global fixpoint,
/// linear-scan joins, always serial (the oracles define the reference
/// behaviour the parallel stratified path must reproduce).
Result<EvalResult> EvaluateGlobal(const Program& program, const Database& edb,
                                  const EvalOptions& options,
                                  Governor* governor) {
  EvalResult result;
  result.db = edb;  // EDB facts carry birth -1.

  std::vector<size_t> all_rules(program.rules.size());
  std::iota(all_rules.begin(), all_rules.end(), 0);
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    bool require_delta =
        options.strategy == EvalStrategy::kSemiNaive && iteration > 0;
    auto position = [&] {
      return "global iteration " + std::to_string(iteration) +
             " (single global stratum), " + FactsSoFar(result);
    };
    Result<long> ran = RunIteration(
        program, all_rules, iteration,
        /*fire_constraint_facts=*/iteration == 0, require_delta,
        /*use_index=*/false, /*delta_rotate=*/false, /*interval_index=*/false,
        options, governor, /*pool=*/nullptr, &result);
    if (!ran.ok()) {
      if (Governor::IsAbortCode(ran.status().code())) {
        return GovernedAbort(ran.status(), position(), options, &result);
      }
      return ran.status();
    }
    long inserted = *ran;
    result.stats.iterations = iteration + 1;
    Status boundary = governor->IterationBoundary(result.stats.inserted);
    if (!boundary.ok()) {
      return GovernedAbort(boundary, position(), options, &result);
    }
    if (inserted == 0) {
      result.stats.reached_fixpoint = true;
      break;
    }
  }

  for (const auto& [pred, rel] : result.db.relations()) {
    result.stats.facts_per_pred[pred] = static_cast<long>(rel.size());
  }
  result.stats.interval_index_build_ns = result.db.IntervalBuildNs();
  return result;
}

}  // namespace

Result<EvalResult> Evaluate(const Program& program, const Database& edb,
                            const EvalOptions& options) {
  CQLOPT_RETURN_IF_ERROR(CheckEvalOptions(options));
  // Free head positions are legitimate here: the magic rewrite emits them
  // for unbound adornment positions (validate.h).
  CQLOPT_RETURN_IF_ERROR(ValidateProgram(
      program, {/*reject_free_head_vars=*/false,
                /*reject_constraint_only_recursion=*/true}));
  // The decision cache is process-wide; attribute its activity to this
  // evaluation by differencing the counters around the run. Same deal for
  // the interval-prepass counters; the EvalOptions::prepass toggle holds
  // the process-wide enable flag down for the duration of the call.
  std::optional<prepass::PrepassDisabler> prepass_off;
  if (!options.prepass) prepass_off.emplace();
  DecisionCache::Counters before = DecisionCache::Instance().Snapshot();
  prepass::Counters pre_before = prepass::Snapshot();
  Governor governor(options, /*baseline_inserted=*/0);
  Result<EvalResult> result =
      options.strategy == EvalStrategy::kStratified
          ? EvaluateStratified(program, edb, options, &governor)
          : EvaluateGlobal(program, edb, options, &governor);
  if (result.ok()) {
    DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
    result->stats.cache_hits = after.hits - before.hits;
    result->stats.cache_misses = after.misses - before.misses;
    result->stats.cache_evictions = after.evictions - before.evictions;
    prepass::Counters pre_after = prepass::Snapshot();
    result->stats.prepass_conclusive =
        pre_after.conclusive() - pre_before.conclusive();
    result->stats.prepass_fallback = pre_after.fallback - pre_before.fallback;
  }
  return result;
}

Result<EvalResult> ResumeEvaluate(const Program& program, EvalResult base,
                                  const std::vector<Fact>& delta,
                                  const EvalOptions& options) {
  CQLOPT_RETURN_IF_ERROR(CheckEvalOptions(options));
  // Free head positions are legitimate here: the magic rewrite emits them
  // for unbound adornment positions (validate.h).
  CQLOPT_RETURN_IF_ERROR(ValidateProgram(
      program, {/*reject_free_head_vars=*/false,
                /*reject_constraint_only_recursion=*/true}));
  if (!base.stats.reached_fixpoint) {
    // Say exactly where the base run stopped — callers picking a bigger
    // max_iterations (or diagnosing a governed abort) need the position,
    // not just the precondition.
    std::string where = base.stats.aborted
                            ? "was aborted at " + base.stats.abort_point
                            : "hit its iteration cap at global iteration " +
                                  std::to_string(base.stats.iterations);
    if (!base.stats.scc_iterations.empty()) {
      where += ", stratum iterations [";
      for (size_t i = 0; i < base.stats.scc_iterations.size(); ++i) {
        if (i > 0) where += ",";
        where += std::to_string(base.stats.scc_iterations[i]);
      }
      where += "]";
    }
    return Status::InvalidArgument(
        "ResumeEvaluate requires a base evaluation that reached its "
        "fixpoint, but the base " +
        where + "; " + FactsSoFar(base) +
        "; re-evaluate from scratch (with a higher max_iterations) instead");
  }
  std::optional<prepass::PrepassDisabler> prepass_off;
  if (!options.prepass) prepass_off.emplace();
  DecisionCache::Counters before = DecisionCache::Instance().Snapshot();
  prepass::Counters pre_before = prepass::Snapshot();
  const long baseline_inserted = base.stats.inserted;
  Governor governor(options, baseline_inserted);
  EvalResult result = std::move(base);

  // The batch joins the database as-if derived in the first unused
  // iteration: every stored fact is strictly older, so the delta discipline
  // of the next iteration selects exactly the batch.
  const int ingest_iteration = result.stats.iterations;
  // Batch facts are EDB, not derivations: like loading, they bypass the
  // derivation counters (inserted/duplicates keep meaning "rule output").
  Database::BatchOutcome batch = result.db.AddFacts(delta, ingest_iteration);
  if (batch.inserted == 0) return result;  // nothing new: fixpoint unchanged
  // stats.all_ground tracks *derived* facts only, so the batch itself does
  // not clear it — exactly as EDB loading leaves it untouched.
  if (!result.trace.empty() || options.record_trace) {
    // Keep trace[i] == iteration i: the ingest pseudo-iteration derives
    // nothing through rules.
    result.trace.emplace_back();
  }

  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) pool = std::make_unique<ThreadPool>(options.threads);

  std::vector<size_t> all_rules(program.rules.size());
  std::iota(all_rules.begin(), all_rules.end(), 0);
  result.stats.reached_fixpoint = false;
  for (int resumed = 0; resumed < options.max_iterations; ++resumed) {
    int iteration = ingest_iteration + 1 + resumed;
    auto position = [&] {
      return "resumed iteration " + std::to_string(resumed) +
             " (global iteration " + std::to_string(iteration) + "), " +
             FactsSoFar(result);
    };
    // Constraint facts fired in the base run's iteration 0; re-firing them
    // would only produce duplicates.
    Result<long> ran = RunIteration(
        program, all_rules, iteration,
        /*fire_constraint_facts=*/false, /*require_delta=*/true,
        /*use_index=*/true, /*delta_rotate=*/true, options.interval_index,
        options, &governor, pool.get(), &result);
    if (!ran.ok()) {
      if (Governor::IsAbortCode(ran.status().code())) {
        return GovernedAbort(ran.status(), position(), options, &result);
      }
      return ran.status();
    }
    long inserted = *ran;
    result.stats.iterations = iteration + 1;
    Status boundary = governor.IterationBoundary(result.stats.inserted);
    if (!boundary.ok()) {
      return GovernedAbort(boundary, position(), options, &result);
    }
    if (inserted == 0) {
      result.stats.reached_fixpoint = true;
      break;
    }
  }

  for (const auto& [pred, rel] : result.db.relations()) {
    result.stats.facts_per_pred[pred] = static_cast<long>(rel.size());
  }
  result.stats.interval_index_build_ns = result.db.IntervalBuildNs();
  DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
  result.stats.cache_hits += after.hits - before.hits;
  result.stats.cache_misses += after.misses - before.misses;
  result.stats.cache_evictions += after.evictions - before.evictions;
  prepass::Counters pre_after = prepass::Snapshot();
  result.stats.prepass_conclusive +=
      pre_after.conclusive() - pre_before.conclusive();
  result.stats.prepass_fallback += pre_after.fallback - pre_before.fallback;
  return result;
}

std::string RenderTrace(const std::vector<std::vector<Derivation>>& trace) {
  std::string out;
  for (size_t i = 0; i < trace.size(); ++i) {
    out += "iteration " + std::to_string(i) + ": {";
    for (size_t j = 0; j < trace[i].size(); ++j) {
      if (j > 0) out += ", ";
      const Derivation& d = trace[i][j];
      bool discarded = d.outcome != InsertOutcome::kInserted;
      if (!d.rule_label.empty()) out += d.rule_label + ":";
      if (discarded) out += "*";
      out += d.fact;
      if (discarded) out += "*";
    }
    out += "}\n";
  }
  return out;
}

}  // namespace cqlopt
