#include "eval/retract.h"

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <utility>

#include "constraint/decision_cache.h"
#include "constraint/interval.h"
#include "eval/fixpoint.h"
#include "eval/validate.h"
#include "util/thread_pool.h"

namespace cqlopt {
namespace {

using eval_internal::FactsSoFar;
using eval_internal::Governor;
using eval_internal::PlanStratified;
using eval_internal::RunStrata;
using eval_internal::StratifiedPlan;

constexpr size_t kDeadRow = std::numeric_limits<size_t>::max();

/// Per-predicate deletion masks, parallel to the relation's rows. A
/// predicate is "dirty" exactly when it has an entry here (every entry has
/// at least one marked row by construction).
using DeadMasks = std::map<PredId, std::vector<uint8_t>>;

bool IsDead(const DeadMasks& dead, PredId pred, size_t row) {
  auto it = dead.find(pred);
  return it != dead.end() && row < it->second.size() && it->second[row] != 0;
}

/// True if the derived fact set of the base is unchanged by the deletions:
/// no dirty predicate appears in any rule head or body, so the rules cannot
/// observe the difference and rows can be removed in place.
bool RulesMention(const Program& program, const DeadMasks& dead) {
  for (const Rule& rule : program.rules) {
    if (dead.count(rule.head.pred) > 0) return true;
    for (const Literal& lit : rule.body) {
      if (dead.count(lit.pred) > 0) return true;
    }
  }
  return false;
}

/// True when `base` is shaped exactly like one Evaluate(kStratified) run of
/// `plan`: the recorded per-stratum iterations tile the global iteration
/// range with one entry per rule-bearing component. Bases extended by
/// ResumeEvaluate (whose ingest pseudo-iteration and global delta loop break
/// the tiling) fail this and take the "full" path.
bool PureStratifiedShape(const StratifiedPlan& plan, const EvalResult& base,
                         const EvalOptions& options) {
  if (options.strategy != EvalStrategy::kStratified) return false;
  long sum = std::accumulate(base.stats.scc_iterations.begin(),
                             base.stats.scc_iterations.end(), long{0});
  if (sum != base.stats.iterations) return false;
  size_t rule_bearing = 0;
  for (const auto& rules : plan.rules_of) {
    if (!rules.empty()) ++rule_bearing;
  }
  if (base.stats.scc_iterations.size() != rule_bearing) return false;
  // With tracing requested the kept prefix must be a prefix of the trace
  // too; a base whose trace rows do not line up iteration-for-iteration
  // (e.g. evaluated without record_trace) cannot be split.
  if (options.record_trace &&
      base.trace.size() != static_cast<size_t>(base.stats.iterations)) {
    return false;
  }
  return true;
}

/// True if every derived (non-base) stored row is ground — recomputed from
/// storage after a splice, since deletions can remove the only non-ground
/// derived rows and scratch evaluation would then report all_ground again.
bool StoredDerivedAllGround(const Database& db) {
  for (const auto& [pred, rel] : db.relations()) {
    (void)pred;
    for (size_t i = 0; i < rel.size(); ++i) {
      if (!rel.edb(i) && !rel.ground(i)) return false;
    }
  }
  return true;
}

void RefreshFactsPerPred(EvalResult* result) {
  result->stats.facts_per_pred.clear();
  for (const auto& [pred, rel] : result->db.relations()) {
    result->stats.facts_per_pred[pred] = static_cast<long>(rel.size());
  }
}

}  // namespace

Result<EvalResult> RetractEvaluate(const Program& program, EvalResult base,
                                   const std::vector<Fact>& retracted,
                                   const EvalOptions& options) {
  CQLOPT_RETURN_IF_ERROR(eval_internal::CheckEvalOptions(options));
  // Free head positions are legitimate here: the magic rewrite emits them
  // for unbound adornment positions (validate.h).
  CQLOPT_RETURN_IF_ERROR(ValidateProgram(
      program, {/*reject_free_head_vars=*/false,
                /*reject_constraint_only_recursion=*/true}));
  if (!base.stats.reached_fixpoint) {
    return Status::InvalidArgument(
        "RetractEvaluate requires a base evaluation that reached its "
        "fixpoint (deleting from a truncated result could \"repair\" facts "
        "the base never finished deriving); the base stopped at global "
        "iteration " +
        std::to_string(base.stats.iterations) + "; " + FactsSoFar(base) +
        "; re-evaluate from scratch instead");
  }

  EvalResult result = std::move(base);

  // Match the batch against stored base rows. Only rows flagged EDB are
  // deletable — naming a derived fact (or a fact never inserted, or one
  // already deleted by an earlier entry of this very batch) just counts as
  // missing, keeping retraction batches idempotent.
  DeadMasks dead;
  long matched = 0;
  for (const Fact& f : retracted) {
    const Relation* rel = result.db.Find(f.pred);
    std::optional<size_t> row;
    if (rel != nullptr) row = rel->RowOf(f.Key());
    if (!row.has_value() || !rel->edb(*row)) {
      ++result.stats.retract_missing;
      continue;
    }
    std::vector<uint8_t>& mask = dead[f.pred];
    if (mask.empty()) mask.assign(rel->size(), 0);
    if (mask[*row] != 0) {
      ++result.stats.retract_missing;
      continue;
    }
    mask[*row] = 1;
    ++matched;
  }
  result.stats.retracted_facts += matched;
  if (matched == 0) {
    result.stats.retract_path = "noop";
    return result;
  }

  // Scratch evaluation with record_trace off carries no trace; drop a
  // base's leftover trace up front so every path below agrees.
  if (!options.record_trace) result.trace.clear();

  // --- Path "splice" (rule-blind): the deleted rows live in predicates no
  // rule mentions, so the derived fact set cannot change. Sound for any
  // base, pure or not — no re-derivation, no plan needed. No stored row can
  // reference rows of an unmentioned predicate (parents come from rule
  // bodies), so no remap is needed either.
  if (!RulesMention(program, dead)) {
    Database db;
    db.set_epoch(result.db.epoch());
    for (const auto& [pred, rel] : result.db.relations()) {
      auto it = dead.find(pred);
      if (it == dead.end()) {
        *db.FindMutable(pred) = rel;  // copy-on-write chunk sharing
        continue;
      }
      Relation spliced = rel.Spliced(it->second, /*remap=*/nullptr);
      if (!spliced.empty()) *db.FindMutable(pred) = std::move(spliced);
    }
    result.db = std::move(db);
    result.stats.retract_kept_rows +=
        static_cast<long>(result.db.TotalFacts());
    result.stats.retract_path = "splice";
    RefreshFactsPerPred(&result);
    result.stats.all_ground = StoredDerivedAllGround(result.db);
    result.stats.interval_index_build_ns = result.db.IntervalBuildNs();
    return result;
  }

  StratifiedPlan plan = PlanStratified(program);

  // --- Path "full": the base is not one pure stratified evaluation, so
  // there is no kept-prefix structure to exploit. Rebuild the surviving
  // base facts (original insertion order, birth -1) and evaluate from
  // scratch — by construction this IS the scratch run the differential
  // property compares against.
  if (!PureStratifiedShape(plan, result, options)) {
    Database edb;
    edb.set_epoch(result.db.epoch());
    long base_derived = 0;
    for (const auto& [pred, rel] : result.db.relations()) {
      for (size_t i = 0; i < rel.size(); ++i) {
        if (!rel.edb(i)) {
          ++base_derived;
        } else if (!IsDead(dead, pred, i)) {
          edb.AddFact(rel.fact(i));
        }
      }
    }
    long missing = result.stats.retract_missing;
    long total_matched = result.stats.retracted_facts;
    Result<EvalResult> rebuilt = Evaluate(program, edb, options);
    if (!rebuilt.ok()) return rebuilt.status();
    rebuilt->stats.retracted_facts = total_matched;
    rebuilt->stats.retract_missing = missing;
    rebuilt->stats.retract_kept_rows =
        static_cast<long>(edb.TotalFacts());
    rebuilt->stats.retract_rederived_rows = base_derived;
    rebuilt->stats.retract_path = "full";
    return rebuilt;
  }

  // --- Kept-prefix walk. Components are visited bottom-up; `dead` grows as
  // counting deletions cascade, and the first stratum that cannot be
  // repaired row-by-row starts the recomputed suffix. Row-level splicing is
  // only attempted when no trace must be reproduced (removing a derived row
  // removes trace entries scratch evaluation would also lack — but the kept
  // iterations' remaining lists could interleave differently, so tracing
  // always goes through the suffix) and subsumption decisions are
  // row-attributable (set-implication covers are relation-level events).
  const bool allow_row_splice =
      !options.record_trace && result.trace.empty() &&
      options.subsumption != SubsumptionMode::kSetImplication;
  const size_t component_count = plan.component_count();
  size_t suffix_start = component_count;
  size_t scc_idx = 0;       // cursor into base scc_iterations
  int prefix_iters = 0;     // global iterations covered by kept strata
  for (size_t c = 0; c < component_count; ++c) {
    if (plan.rules_of[c].empty()) continue;  // pure-EDB: masks handled below
    const long iters = result.stats.scc_iterations[scc_idx];
    bool touched = false;
    for (size_t rule_index : plan.rules_of[c]) {
      const Rule& rule = program.rules[rule_index];
      if (dead.count(rule.head.pred) > 0) touched = true;
      for (const Literal& lit : rule.body) {
        if (dead.count(lit.pred) > 0) touched = true;
      }
    }
    if (!touched) {
      // Reads and writes only clean predicates: scratch evaluation runs
      // this stratum on identical inputs and stores identical rows.
      prefix_iters += static_cast<int>(iters);
      ++scc_idx;
      continue;
    }
    // Counting repair (non-recursive strata only): a single-predicate
    // stratum that converged in one pass derived every row from frozen
    // lower strata, so each row's recorded parents are its first witness
    // and deletion needs no fixpoint — drop rows whose only witness died,
    // keep the rest, in unchanged relative order.
    bool spliced = false;
    if (allow_row_splice && plan.recursive[c] == 0 && iters == 1 &&
        plan.sccs.components()[c].size() == 1) {
      const PredId written = plan.sccs.components()[c][0];
      const Relation* rel = result.db.Find(written);
      bool ok = true;
      std::vector<uint8_t> mask;
      bool any_deleted = false;
      if (rel != nullptr) {
        auto it = dead.find(written);
        if (it != dead.end()) {
          mask = it->second;
          mask.resize(rel->size(), 0);
        } else {
          mask.assign(rel->size(), 0);
        }
        // A subsumption event that cannot be pinned on one stored row may
        // have discarded facts scratch evaluation would now store.
        if (rel->opaque_subsumption_events() > 0) ok = false;
        for (size_t i = 0; i < rel->size() && ok; ++i) {
          if (rel->edb(i)) {
            // A deleted base row that was also rule-derived (support > 1)
            // would resurrect as a derived row in scratch; one that
            // subsumed derivations (blocked > 0) suppressed facts scratch
            // would store. Either way: re-derive.
            if (mask[i] != 0 &&
                (rel->support(i) != 1 || rel->blocked(i) != 0)) {
              ok = false;
            }
            if (mask[i] != 0) any_deleted = true;
            continue;
          }
          bool witness_alive = true;
          for (const Relation::FactRef& parent : rel->parents(i)) {
            if (IsDead(dead, parent.pred, parent.index)) {
              witness_alive = false;
              break;
            }
          }
          if (witness_alive) continue;
          if (rel->support(i) == 1 && rel->blocked(i) == 0) {
            mask[i] = 1;  // only witness died: counting deletion
            any_deleted = true;
          } else {
            ok = false;  // other witnesses (or suppressed facts) may survive
          }
        }
      }
      if (ok) {
        if (any_deleted) {
          dead[written] = std::move(mask);
        }
        prefix_iters += static_cast<int>(iters);
        ++scc_idx;
        spliced = true;
      }
    }
    if (!spliced) {
      suffix_start = c;
      break;
    }
  }
  const size_t prefix_rule_entries = scc_idx;

  // Rebuild the database: kept strata spliced in place (parent references
  // remapped through the survivors), suffix strata stripped to their
  // surviving base rows — the DRed over-deletion — for re-derivation.
  std::map<PredId, std::vector<size_t>> row_map;  // old row -> new row
  for (const auto& [pred, mask] : dead) {
    int comp = plan.sccs.ComponentOf(pred);
    if (comp >= 0 && static_cast<size_t>(comp) >= suffix_start) continue;
    const Relation* rel = result.db.Find(pred);
    std::vector<size_t>& map = row_map[pred];
    map.assign(rel->size(), kDeadRow);
    size_t next = 0;
    for (size_t i = 0; i < rel->size(); ++i) {
      if (i < mask.size() && mask[i] != 0) continue;
      map[i] = next++;
    }
  }
  auto remap = [&row_map](Relation::FactRef ref) {
    auto it = row_map.find(ref.pred);
    if (it != row_map.end()) ref.index = it->second[ref.index];
    return ref;
  };

  Database db;
  db.set_epoch(result.db.epoch());
  long rederived = 0;
  for (const auto& [pred, rel] : result.db.relations()) {
    int comp = plan.sccs.ComponentOf(pred);
    if (comp >= 0 && static_cast<size_t>(comp) >= suffix_start) {
      // Suffix: keep only surviving base rows. Base rows carry no parents,
      // so no remap is needed; re-derivation records fresh provenance.
      std::vector<uint8_t> mask(rel.size(), 0);
      size_t kept = 0;
      for (size_t i = 0; i < rel.size(); ++i) {
        if (!rel.edb(i)) {
          mask[i] = 1;
          ++rederived;
        } else if (IsDead(dead, pred, i)) {
          mask[i] = 1;
        } else {
          ++kept;
        }
      }
      if (kept == 0) continue;
      *db.FindMutable(pred) = rel.Spliced(mask, /*remap=*/nullptr);
      continue;
    }
    auto it = dead.find(pred);
    if (it == dead.end()) {
      *db.FindMutable(pred) = rel;  // untouched: copy-on-write chunk sharing
      continue;
    }
    Relation spliced = rel.Spliced(it->second, remap);
    if (!spliced.empty()) *db.FindMutable(pred) = std::move(spliced);
  }
  result.db = std::move(db);
  result.stats.retract_kept_rows += static_cast<long>(result.db.TotalFacts());
  result.stats.retract_rederived_rows += rederived;

  // The kept prefix defines the resumption point: iteration numbering,
  // per-stratum history, and (when tracing) the trace rows of the kept
  // iterations are exactly scratch's.
  result.stats.iterations = prefix_iters;
  result.stats.scc_iterations.resize(prefix_rule_entries);
  if (options.record_trace) {
    result.trace.resize(static_cast<size_t>(prefix_iters));
  }
  result.stats.all_ground = StoredDerivedAllGround(result.db);

  if (suffix_start == component_count) {
    // Every touched stratum was repaired row-by-row: no rules to re-run.
    result.stats.reached_fixpoint = true;
    result.stats.retract_path = "splice";
    RefreshFactsPerPred(&result);
    result.stats.interval_index_build_ns = result.db.IntervalBuildNs();
    return result;
  }

  // --- Path "prefix": re-derive the suffix with the ordinary stratified
  // fixpoint, resumed mid-plan at the first unrepairable stratum. Counter
  // attribution mirrors Evaluate/ResumeEvaluate: the process-wide
  // decision-cache and prepass counters are snapshot-diffed around the run.
  result.stats.retract_path = "prefix";
  result.stats.reached_fixpoint = false;
  result.stats.facts_per_pred.clear();
  std::optional<prepass::PrepassDisabler> prepass_off;
  if (!options.prepass) prepass_off.emplace();
  DecisionCache::Counters before = DecisionCache::Instance().Snapshot();
  prepass::Counters pre_before = prepass::Snapshot();
  Governor governor(options, /*baseline_inserted=*/result.stats.inserted);
  std::unique_ptr<ThreadPool> pool;
  if (options.threads > 1) pool = std::make_unique<ThreadPool>(options.threads);
  CQLOPT_RETURN_IF_ERROR(RunStrata(program, plan, suffix_start, prefix_iters,
                                   options, &governor, pool.get(), &result));
  DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
  result.stats.cache_hits += after.hits - before.hits;
  result.stats.cache_misses += after.misses - before.misses;
  result.stats.cache_evictions += after.evictions - before.evictions;
  prepass::Counters pre_after = prepass::Snapshot();
  result.stats.prepass_conclusive +=
      pre_after.conclusive() - pre_before.conclusive();
  result.stats.prepass_fallback += pre_after.fallback - pre_before.fallback;
  return result;
}

}  // namespace cqlopt
