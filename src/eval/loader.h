#ifndef CQLOPT_EVAL_LOADER_H_
#define CQLOPT_EVAL_LOADER_H_

#include <memory>
#include <string>

#include "eval/database.h"

namespace cqlopt {

/// Loads an extensional database from text in the program syntax: a
/// sequence of facts such as
///
///   singleleg(msn, ord, 50, 80).
///   b1(3, 7).
///
/// Every statement must be a body-free rule; non-ground constraint facts
/// (e.g. `m_fib(N, 5).`) are accepted too — they load as constraint facts
/// with birth -1, exactly like programmatic AddFact. Predicates and symbols
/// are interned into `symbols`. Returns the number of facts loaded.
///
/// Malformed inputs are rejected with the 1-based source line and the
/// offending statement rendered back in the surface syntax (rules with
/// bodies, unsatisfiable facts, and `?-` queries are all positional errors).
Result<int> LoadDatabaseText(const std::string& text,
                             std::shared_ptr<SymbolTable> symbols,
                             Database* db);

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_LOADER_H_
