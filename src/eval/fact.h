#ifndef CQLOPT_EVAL_FACT_H_
#define CQLOPT_EVAL_FACT_H_

#include <string>

#include "ast/symbol_table.h"
#include "constraint/conjunction.h"

namespace cqlopt {

/// A constraint fact `p(X̄; C)` (Section 2): a predicate plus a conjunction
/// of constraints over its argument positions (VarIds 1..arity). It finitely
/// represents the — possibly infinite — set of ground facts satisfying C.
/// A *ground* fact is the special case where every position is forced to a
/// single symbol or number.
struct Fact {
  Fact() : pred(SymbolTable::kNoPred), arity(0) {}
  Fact(PredId pred_in, int arity_in, Conjunction constraint_in)
      : pred(pred_in), arity(arity_in), constraint(std::move(constraint_in)) {}

  /// True if every argument position has a unique value.
  bool IsGround() const;

  /// Structural identity key: predicate id + canonical constraint string.
  /// Structurally distinct but equivalent facts get different keys; the
  /// subsumption check (relation.h) handles semantic duplicates.
  std::string Key() const;

  /// Paper-style rendering: `flight(madison, chicago, 50, 100)` for ground
  /// facts, `m_fib(N1, V1; N1 > 0)` style (with $i shown for unbound
  /// positions) otherwise.
  std::string ToString(const SymbolTable& symbols) const;

  PredId pred;
  int arity;
  Conjunction constraint;
};

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_FACT_H_
