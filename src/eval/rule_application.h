#ifndef CQLOPT_EVAL_RULE_APPLICATION_H_
#define CQLOPT_EVAL_RULE_APPLICATION_H_

#include <functional>

#include "ast/rule.h"
#include "eval/database.h"
#include "eval/stats.h"

namespace cqlopt {

/// Callback receiving each fact derived by a rule application, along with
/// the body facts that derived it (in body-literal order) — the provenance
/// edges of Definition 2.2's derivation trees.
using EmitFn =
    std::function<Status(Fact, const std::vector<Relation::FactRef>&)>;

/// One rule application (Section 2's basic evaluation step): enumerates
/// every combination of body facts, conjoins the rule's constraints with the
/// facts' constraints, checks satisfiability, eliminates the non-head
/// variables by projection, and emits the resulting head facts.
///
/// Semi-naive discipline: only facts with birth <= `max_birth` participate,
/// and when `require_delta` is set at least one chosen fact must have birth
/// == `max_birth` (the facts newly derived in the previous iteration).
///
/// Delta-availability pruning: under `require_delta`, Relation::max_birth()
/// bounds tell in O(body) whether any combination can contain a delta fact.
/// A rule none of whose body relations reach `max_birth` is skipped
/// outright; during the join, a branch that has not yet taken a delta fact
/// is cut as soon as no remaining literal can supply one, and when only the
/// current literal can, its enumeration is restricted to delta-born
/// entries. All three cuts discard only combinations the leaf check would
/// reject, so the emitted derivations and their order are identical to the
/// unpruned join.
///
/// Delta rotation (`delta_rotate`, requires `require_delta`): instead of
/// enumerating in body order and checking for a delta at the leaf, the rule
/// is applied once per delta-capable body position p — that pass enumerates
/// p's delta entries FIRST, so the delta fact's bindings drive index probes
/// for the remaining literals, while positions before p are held to
/// pre-delta facts (making "first delta position == p" a partition: every
/// delta-containing combination is derived exactly once). This is what
/// makes a resumed fixpoint (ResumeEvaluate) cost proportional to the
/// batch's consequences instead of the database: without it, a rule whose
/// early literals are delta-capable still walks its full relations. The
/// derived fact set is identical to the classic order, but derivations
/// arrive grouped by pivot — callers that pin derivation order (the
/// paper-table traces) must keep `delta_rotate` off.
///
/// Join access path: when `use_index` is set, each body literal whose
/// accumulated join state binds some argument position to a unique symbol
/// or number is resolved by probing the relation's per-position hash index
/// at the most selective such position. Direct bindings are read cheaply
/// (Conjunction::GetSymbol / QuickNumericValue); numeric values that are
/// only entailed — e.g. `X = N - 1` after joining a fact with `N = 2` —
/// are recovered by the exact projection (Conjunction::GetNumericValue).
/// Literals with no uniquely-bound position (unbound, or restricted only
/// by non-point constraints like `X > 0`) fall back to the linear scan.
/// A probe skips exactly the candidates the scan would discard as
/// unsatisfiable value clashes and enumerates the rest in entry
/// (insertion) order under the same birth, arity, and signature filters,
/// so both paths make the same derivations in the same order. When `stats`
/// is non-null, probe/candidate counters (and nothing else) are
/// accumulated into it.
///
/// Interval pruning (`interval_index`, meaningful only with `use_index`):
/// when no position is bound to a unique value, the accumulated state's
/// interval box (IntervalDomain::Propagate over its linear part) is
/// intersected against the relation's per-position interval index
/// (DESIGN.md §12) at the most selective numerically-ranged position — a
/// pushed selection like `T <= 60` then skips whole sorted runs of facts
/// whose stored value or propagated bound summary cannot meet the range.
/// Every skipped fact would have failed the leaf satisfiability check
/// (its value/box at the position is disjoint from a sound
/// over-approximation of the accumulated solutions), and surviving
/// candidates are re-sorted into insertion order, so derivations and
/// their order are again identical to the scan.
///
/// Emit-visibility contract: a `emit` callback MAY insert facts into `db`
/// immediately (streaming evaluation); such facts are not visible to the
/// in-flight application provided they are inserted with birth >
/// `max_birth`. Candidate enumeration snapshots each relation's size before
/// iterating (Relation entry storage is append-only) and additionally
/// filters on birth, so mid-application inserts can neither join into the
/// current application nor invalidate its iteration state.
///
/// Body-free rules (constraint facts in the program) derive their head
/// directly; callers fire them only in iteration 0.
Status ApplyRule(const Rule& rule, const Database& db, int max_birth,
                 bool require_delta, const EmitFn& emit,
                 bool use_index = false, EvalStats* stats = nullptr,
                 bool delta_rotate = false, bool interval_index = false);

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_RULE_APPLICATION_H_
