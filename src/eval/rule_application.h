#ifndef CQLOPT_EVAL_RULE_APPLICATION_H_
#define CQLOPT_EVAL_RULE_APPLICATION_H_

#include <functional>

#include "ast/rule.h"
#include "eval/database.h"

namespace cqlopt {

/// Callback receiving each fact derived by a rule application, along with
/// the body facts that derived it (in body-literal order) — the provenance
/// edges of Definition 2.2's derivation trees.
using EmitFn =
    std::function<Status(Fact, const std::vector<Relation::FactRef>&)>;

/// One rule application (Section 2's basic evaluation step): enumerates
/// every combination of body facts, conjoins the rule's constraints with the
/// facts' constraints, checks satisfiability, eliminates the non-head
/// variables by projection, and emits the resulting head facts.
///
/// Semi-naive discipline: only facts with birth <= `max_birth` participate,
/// and when `require_delta` is set at least one chosen fact must have birth
/// == `max_birth` (the facts newly derived in the previous iteration).
///
/// Body-free rules (constraint facts in the program) derive their head
/// directly; callers fire them only in iteration 0.
Status ApplyRule(const Rule& rule, const Database& db, int max_birth,
                 bool require_delta, const EmitFn& emit);

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_RULE_APPLICATION_H_
