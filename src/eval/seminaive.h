#ifndef CQLOPT_EVAL_SEMINAIVE_H_
#define CQLOPT_EVAL_SEMINAIVE_H_

#include <string>
#include <vector>

#include "ast/program.h"
#include "eval/database.h"
#include "eval/stats.h"
#include "util/cancel.h"

namespace cqlopt {

/// Fixpoint strategy.
enum class EvalStrategy {
  /// Derivations in iteration i use at least one fact first derived in
  /// iteration i-1 — the evaluation the paper's tables trace. Runs every
  /// rule in one global loop with linear-scan joins; kept unchanged as the
  /// differential-testing oracle for kStratified.
  kSemiNaive,
  /// Every rule is re-applied to all known facts each iteration. Same
  /// fixpoint, many redundant derivations; kept as a differential-testing
  /// oracle for the semi-naive delta discipline.
  kNaive,
  /// SCC-stratified semi-naive: the predicate dependency graph is condensed
  /// into strongly connected components and one semi-naive fixpoint runs
  /// per component in bottom-up topological order, so facts of lower strata
  /// are computed once and frozen instead of being re-joined every global
  /// iteration. Body literals are resolved through the relations'
  /// per-position hash indexes where the join state directly binds a
  /// position (rule_application.h). Reaches the same fixpoint as the two
  /// oracles; iteration numbering is global across strata (trace[i] /
  /// birth stamps keep their meaning), `max_iterations` caps the global
  /// total, and EvalStats::scc_iterations attributes iterations to strata.
  /// When a program is a single SCC (e.g. the Table 1/2 magic programs) the
  /// evaluation and its trace coincide with kSemiNaive's.
  kStratified,
};

/// Options of the bottom-up fixpoint. Evaluate/ResumeEvaluate validate the
/// numeric fields (negative `threads` or `max_iterations` is rejected with
/// InvalidArgument rather than looping/partitioning undefinedly).
struct EvalOptions {
  /// Hard cap on iterations — CQL evaluation need not terminate (the
  /// paper's Table 1 program runs forever); the cap turns divergence into
  /// an observable `reached_fixpoint == false`. Must be >= 0; 0 means "run
  /// no iterations" (the EDB alone is returned, fixpoint not reached).
  int max_iterations = 256;
  SubsumptionMode subsumption = SubsumptionMode::kSingleFact;
  EvalStrategy strategy = EvalStrategy::kSemiNaive;
  /// Record per-iteration derivation lists (the format of Tables 1 and 2).
  bool record_trace = false;
  /// Worker threads applying rules within each kStratified iteration
  /// (ignored by the oracle strategies). Workers read the frozen
  /// pre-iteration snapshot and derive into thread-local buffers; a
  /// deterministic serial merge (rule order, then enumeration order) then
  /// reconciles and commits, so final facts, birth stamps, traces, and
  /// stats are byte-identical to the serial run at any thread count.
  /// Must be >= 0; 0 and 1 both mean the serial path.
  int threads = 1;
  /// Two-tier constraint decisions (DESIGN.md §11): when true (default)
  /// satisfiability / implication queries try the interval-propagation
  /// prepass first, falling back to exact cached Fourier–Motzkin only on
  /// inconclusive probes. Conclusive prepass answers are proven equal to
  /// the exact decision, so toggling this never changes facts, births, or
  /// traces — only wall-clock and the prepass/cache counters. The flag is
  /// applied process-wide for the duration of the call (like the
  /// DecisionCache enable flag), so concurrent evaluations in one process
  /// should agree on it.
  bool prepass = true;
  /// Interval-indexed candidate pruning (DESIGN.md §12): when true
  /// (default), body literals with no uniquely-bound position — where the
  /// hash index cannot help — intersect the accumulated state's interval
  /// box against the relations' per-position interval indexes, skipping
  /// whole sorted runs of facts a pushed range selection rules out. Only
  /// candidates the leaf satisfiability check would reject are skipped and
  /// enumeration order is preserved, so toggling this never changes facts,
  /// births, or traces — only wall-clock and the interval_* counters.
  /// Applies to the kStratified strategy and to ResumeEvaluate (the paths
  /// that use indexes at all); the oracle strategies always scan.
  bool interval_index = true;

  // --- Resource governance. The three limits below are checked
  // cooperatively: at iteration boundaries, at rule-batch boundaries, and
  // (for deadline/cancel) every ~64 derivations inside rule application —
  // including inside parallel workers, which observe a shared trip flag so
  // a stratum aborts cleanly at any thread count (partial Pending buffers
  // are discarded; nothing half-commits). A governed abort returns a typed
  // error Status (kDeadlineExceeded / kResourceExhausted / kCancelled)
  // whose message pinpoints the stratum, global iteration, and facts
  // stored; `abort_stats` receives the partial counters. All limits are
  // off by default, costing one branch per derivation. ---

  /// Cooperative cancellation handle. Default-constructed tokens are inert;
  /// pass CancelToken::Cancellable() and call RequestCancel() from any
  /// thread to abort the evaluation with kCancelled.
  CancelToken cancel;
  /// Wall-clock budget in milliseconds, measured from the Evaluate /
  /// ResumeEvaluate entry on a monotonic clock; on expiry the evaluation
  /// aborts with kDeadlineExceeded. Must be >= 0; 0 means no deadline.
  long deadline_ms = 0;
  /// Budget on facts *stored by this call* (EvalStats::inserted growth;
  /// ResumeEvaluate counts only the resumed portion). Checked at the serial
  /// iteration boundary, so the abort point — and the partial database — is
  /// identical at any thread count. Exceeding it aborts with
  /// kResourceExhausted. Must be >= 0; 0 means unlimited. Since every
  /// stored fact has bounded footprint this doubles as the memory budget.
  long max_derived_facts = 0;
  /// When a governed abort (or an injected eval/rule-alloc fault) makes
  /// Evaluate/ResumeEvaluate return an error, the partial EvalStats — with
  /// `aborted` and `abort_point` set — are copied here, because the
  /// Result carries no EvalResult on failure. Untouched on success. May be
  /// null (the default) when the caller only needs the Status.
  EvalStats* abort_stats = nullptr;
};

/// One derivation event in the trace.
struct Derivation {
  std::string rule_label;
  std::string fact;  // rendered via Fact::ToString
  InsertOutcome outcome;
};

struct EvalResult {
  /// EDB + derived facts.
  Database db;
  /// trace[i] lists the derivations made in iteration i (only when
  /// record_trace was set). Subsumed/duplicate derivations are included,
  /// marked by their outcome — the paper's boldface rows.
  std::vector<std::vector<Derivation>> trace;
  EvalStats stats;
};

/// Semi-naive bottom-up evaluation of `program` over `edb` (Section 2):
///  - iteration 0 fires the program's constraint facts (body-free rules)
///    and rules whose bodies are satisfiable purely from EDB facts;
///  - iteration i > 0 makes every derivation that uses at least one fact
///    first derived in iteration i-1, using only facts known at the end of
///    iteration i-1;
///  - stops at a fixpoint (an iteration adding no new facts) or at the cap.
Result<EvalResult> Evaluate(const Program& program, const Database& edb,
                            const EvalOptions& options);

/// Incremental fact ingestion: resumes a *completed* evaluation after a
/// batch of new EDB facts arrives, instead of recomputing the fixpoint from
/// scratch. The batch is inserted with birth = `base.stats.iterations` (the
/// next unused iteration stamp — every existing fact is older), and the
/// semi-naive loop continues with the delta discipline: each resumed
/// iteration makes exactly the derivations that use at least one fact first
/// seen in the previous one, so work is proportional to the consequences of
/// the batch, not to the whole database. Because CQL evaluation is monotone
/// (no negation; subsumption only prunes covered representations), the
/// resumed fixpoint denotes the same fact set as a from-scratch evaluation
/// of the union EDB — per predicate, each result's facts are covered by the
/// disjunction of the other's (tests/test_service.cc locks this against
/// EvalStrategy::kStratified across the program corpus, all three
/// SubsumptionModes, and 1/2/8 threads).
///
/// `base` is consumed and extended: stats accumulate on top (iterations
/// keeps global numbering; when record_trace was set, one empty trace row
/// marks the ingest pseudo-iteration so trace[i] still lists iteration i's
/// derivations). `options.strategy` is ignored — the resume always runs the
/// delta-driven global loop with hash-indexed joins and delta rotations
/// (rule_application.h: each rule is driven from its delta facts, so within
/// an iteration derivations arrive grouped by pivot position rather than in
/// body-enumeration order); `max_iterations` caps
/// the *resumed* iterations. `options.threads` parallelizes rule
/// application exactly as in Evaluate. Preconditions: `base` reached its
/// fixpoint (resuming a capped run would silently drop the unexplored
/// frontier — InvalidArgument), and options are valid.
///
/// Batch facts that structurally duplicate stored facts are dropped (as a
/// from-scratch load would drop them); if nothing of the batch is new, the
/// base result is returned unchanged.
Result<EvalResult> ResumeEvaluate(const Program& program, EvalResult base,
                                  const std::vector<Fact>& delta,
                                  const EvalOptions& options);

/// Renders `trace` in the style of Tables 1 and 2: one row per iteration,
/// subsumed derivations wrapped in `*...*` (the paper's boldface).
std::string RenderTrace(const std::vector<std::vector<Derivation>>& trace);

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_SEMINAIVE_H_
