#include "eval/validate.h"

#include <set>

#include "graph/dependency_graph.h"
#include "graph/scc.h"

namespace cqlopt {
namespace {

std::string RuleName(const Rule& rule, size_t index) {
  return rule.label.empty() ? "rule#" + std::to_string(index) : rule.label;
}

std::string VarDisplayName(const Rule& rule, VarId v) {
  auto it = rule.var_names.find(v);
  return it != rule.var_names.end() ? it->second : VarName(v);
}

}  // namespace

Status ValidateProgram(const Program& program,
                       const ValidateOptions& options) {
  // Unbound head variables.
  for (size_t i = 0; options.reject_free_head_vars &&
                     i < program.rules.size();
       ++i) {
    const Rule& rule = program.rules[i];
    std::set<VarId> bound;
    for (const Literal& lit : rule.body) {
      for (VarId v : lit.args) bound.insert(v);
    }
    for (VarId v : rule.constraints.Vars()) bound.insert(v);
    for (VarId v : rule.head.args) {
      if (bound.count(v) == 0) {
        return Status::InvalidArgument(
            RuleName(rule, i) + ": head variable " +
            VarDisplayName(rule, v) +
            " is unbound (appears in no body literal and no constraint)");
      }
    }
  }

  if (!options.reject_constraint_only_recursion) return Status::OK();

  // Constraint-only recursion: a recursive SCC with no exit rule.
  DependencyGraph graph(program);
  SccDecomposition sccs(graph);
  std::vector<bool> recursive(sccs.components().size(), false);
  std::vector<bool> has_exit(sccs.components().size(), false);
  for (const Rule& rule : program.rules) {
    int c = sccs.ComponentOf(rule.head.pred);
    if (c < 0) continue;
    bool in_scc_body = false;
    for (const Literal& lit : rule.body) {
      if (sccs.ComponentOf(lit.pred) == c) in_scc_body = true;
    }
    if (in_scc_body) {
      recursive[static_cast<size_t>(c)] = true;
    } else {
      // Body-free constraint facts and rules over lower strata / EDB
      // predicates can fire without any fact of this component existing.
      has_exit[static_cast<size_t>(c)] = true;
    }
  }
  for (size_t c = 0; c < recursive.size(); ++c) {
    if (!recursive[c] || has_exit[c]) continue;
    const std::vector<PredId>& preds = sccs.components()[c];
    std::string names;
    for (PredId pred : preds) {
      if (!names.empty()) names += ", ";
      names += program.symbols->PredicateName(pred);
    }
    return Status::InvalidArgument(
        "constraint-only recursion: predicate(s) {" + names +
        "} have no exit rule, so the recursion is grounded only in "
        "constraints and can never derive a fact");
  }
  return Status::OK();
}

}  // namespace cqlopt
