#include "eval/fact.h"

namespace cqlopt {

bool Fact::IsGround() const {
  std::vector<VarId> positions;
  positions.reserve(static_cast<size_t>(arity));
  for (int i = 1; i <= arity; ++i) positions.push_back(i);
  return constraint.IsGroundOver(positions);
}

std::string Fact::Key() const {
  return std::to_string(pred) + "/" + std::to_string(arity) + ":" +
         constraint.ToString();
}

std::string Fact::ToString(const SymbolTable& symbols) const {
  std::string out = symbols.PredicateName(pred) + "(";
  std::vector<VarId> residual;
  for (int i = 1; i <= arity; ++i) {
    if (i > 1) out += ", ";
    auto sym = constraint.GetSymbol(i);
    if (sym.has_value()) {
      out += symbols.SymbolName(*sym);
      continue;
    }
    auto value = constraint.GetNumericValue(i);
    if (value.has_value()) {
      out += value->ToString();
      continue;
    }
    out += "$" + std::to_string(i);
    residual.push_back(i);
  }
  if (!residual.empty()) {
    auto projected = constraint.Project(residual);
    std::string cs = projected.ok() ? projected->ToString() : "?";
    if (cs != "true") out += "; " + cs;
  }
  return out + ")";
}

}  // namespace cqlopt
