#ifndef CQLOPT_EVAL_PROVENANCE_H_
#define CQLOPT_EVAL_PROVENANCE_H_

#include <optional>
#include <string>

#include "eval/database.h"

namespace cqlopt {

/// Derivation trees (Definition 2.2): every derived fact records the rule
/// and the body facts that produced it, so the tree rooted at any stored
/// fact can be reconstructed. EDB facts are leaves; constraints are the
/// conditions that admitted each node, not tree nodes themselves — exactly
/// the paper's reading.

/// Renders the derivation tree rooted at `ref`, e.g.
///
///   t(1, 3)  [r2]
///   |- e(1, 2)
///   `- t(2, 3)  [r1]
///      `- e(2, 3)
///
/// Returns NotFound if `ref` does not name a stored fact.
Result<std::string> RenderDerivationTree(const Database& db,
                                         Relation::FactRef ref,
                                         const SymbolTable& symbols);

/// Number of nodes in the derivation tree rooted at `ref` (the root
/// included). Shared subtrees are counted once per occurrence, like the
/// rendering.
Result<int> DerivationTreeSize(const Database& db, Relation::FactRef ref);

/// Finds the first stored fact of `pred` whose rendering equals `text`
/// (e.g. "t(1, 3)"); nullopt if absent.
std::optional<Relation::FactRef> FindFactByText(const Database& db,
                                                PredId pred,
                                                const std::string& text,
                                                const SymbolTable& symbols);

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_PROVENANCE_H_
