#ifndef CQLOPT_EVAL_DATABASE_H_
#define CQLOPT_EVAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "eval/relation.h"
#include "util/rational.h"

namespace cqlopt {

/// A finite set of relations (Section 2's database). Holds EDB facts given
/// as input and, during evaluation, the derived facts as well.
class Database {
 public:
  Database() = default;

  /// Inserts a fact; convenience for EDB loading (birth -1, no
  /// subsumption pruning so the EDB is taken verbatim).
  InsertOutcome AddFact(Fact fact) {
    return relations_[fact.pred].Insert(std::move(fact), /*birth=*/-1,
                                        SubsumptionMode::kNone);
  }

  InsertOutcome AddFact(Fact fact, int birth, SubsumptionMode mode,
                        std::string rule_label = "",
                        std::vector<Relation::FactRef> parents = {}) {
    return relations_[fact.pred].Insert(std::move(fact), birth, mode,
                                        std::move(rule_label),
                                        std::move(parents));
  }

  /// Builds and inserts a ground fact from argument values, each either a
  /// number or a symbolic constant name (interned via `symbols`).
  struct Value {
    static Value Number(Rational r) { return Value{false, std::move(r), ""}; }
    static Value Symbol(std::string name) {
      return Value{true, Rational(0), std::move(name)};
    }
    bool is_symbol;
    Rational number;
    std::string symbol;
  };
  Status AddGroundFact(SymbolTable* symbols, const std::string& pred_name,
                       const std::vector<Value>& values);

  const Relation* Find(PredId pred) const;
  Relation* FindMutable(PredId pred) { return &relations_[pred]; }
  const std::map<PredId, Relation>& relations() const { return relations_; }

  size_t TotalFacts() const;
  size_t FactsFor(PredId pred) const;

  /// True if every stored fact is ground (Theorem 4.4's property).
  bool AllGround() const;

 private:
  std::map<PredId, Relation> relations_;
};

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_DATABASE_H_
