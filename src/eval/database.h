#ifndef CQLOPT_EVAL_DATABASE_H_
#define CQLOPT_EVAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "eval/relation.h"
#include "util/rational.h"

namespace cqlopt {

/// A finite set of relations (Section 2's database). Holds EDB facts given
/// as input and, during evaluation, the derived facts as well.
class Database {
 public:
  Database() = default;

  /// Inserts a fact; convenience for EDB loading (birth -1, no
  /// subsumption pruning so the EDB is taken verbatim). Rows entered here
  /// are flagged as base facts — the targets retraction may name
  /// (eval/retract.h).
  InsertOutcome AddFact(Fact fact) {
    return relations_[fact.pred].Insert(std::move(fact), /*birth=*/-1,
                                        SubsumptionMode::kNone,
                                        /*rule_label=*/"", /*parents=*/{},
                                        /*edb=*/true);
  }

  InsertOutcome AddFact(Fact fact, int birth, SubsumptionMode mode,
                        std::string rule_label = "",
                        std::vector<Relation::FactRef> parents = {}) {
    return relations_[fact.pred].Insert(std::move(fact), birth, mode,
                                        std::move(rule_label),
                                        std::move(parents));
  }

  /// Builds and inserts a ground fact from argument values, each either a
  /// number or a symbolic constant name (interned via `symbols`).
  struct Value {
    static Value Number(Rational r) { return Value{false, std::move(r), ""}; }
    static Value Symbol(std::string name) {
      return Value{true, Rational(0), std::move(name)};
    }
    bool is_symbol;
    Rational number;
    std::string symbol;
  };
  Status AddGroundFact(SymbolTable* symbols, const std::string& pred_name,
                       const std::vector<Value>& values);

  /// Batch EDB ingest: inserts every fact verbatim (no subsumption pruning,
  /// like the single-fact AddFact; structural duplicates are dropped) with
  /// the given birth stamp. EDB loading uses birth -1; the incremental
  /// resume path (seminaive.h ResumeEvaluate) stamps the batch with the
  /// resuming iteration so the facts drive the semi-naive delta discipline.
  struct BatchOutcome {
    int inserted = 0;
    int duplicates = 0;
  };
  BatchOutcome AddFacts(const std::vector<Fact>& batch, int birth = -1);

  /// Epoch tag of this database snapshot. The service layer
  /// (src/service/query_service.h) publishes immutable `Database` copies,
  /// one per committed ingest batch, and advances the tag on commit; a
  /// reader evaluating against a snapshot can assert which epoch it saw.
  /// Plain evaluation ignores the tag (EvalResult::db inherits the EDB's).
  int64_t epoch() const { return epoch_; }
  void set_epoch(int64_t epoch) { epoch_ = epoch; }

  const Relation* Find(PredId pred) const;
  Relation* FindMutable(PredId pred) { return &relations_[pred]; }
  const std::map<PredId, Relation>& relations() const { return relations_; }

  size_t TotalFacts() const;
  size_t FactsFor(PredId pred) const;

  /// True if every stored fact is ground (Theorem 4.4's property).
  bool AllGround() const;

  /// Total nanoseconds the relations spent building interval-index state
  /// (Relation::interval_build_ns summed) — surfaced through
  /// EvalStats::interval_index_build_ns.
  long IntervalBuildNs() const;

  /// Approximate resident bytes across all relations (chunked columns,
  /// fact payloads, provenance, indexes) — the bytes-per-fact numerator the
  /// benches report. An estimate, not exact allocator accounting.
  size_t ApproxBytes() const;

  /// Approximate bytes held in chunks shared with other Database copies —
  /// the storage a snapshot epoch reuses instead of duplicating.
  size_t SharedBytes() const;

 private:
  std::map<PredId, Relation> relations_;
  int64_t epoch_ = 0;
};

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_DATABASE_H_
