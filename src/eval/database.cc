#include "eval/database.h"

namespace cqlopt {

Status Database::AddGroundFact(SymbolTable* symbols,
                               const std::string& pred_name,
                               const std::vector<Value>& values) {
  PredId pred = symbols->InternPredicate(pred_name);
  Conjunction c;
  for (size_t i = 0; i < values.size(); ++i) {
    VarId position = static_cast<VarId>(i + 1);
    if (values[i].is_symbol) {
      CQLOPT_RETURN_IF_ERROR(
          c.BindSymbol(position, symbols->InternSymbol(values[i].symbol)));
    } else {
      LinearExpr expr = LinearExpr::Var(position) -
                        LinearExpr::Constant(values[i].number);
      CQLOPT_RETURN_IF_ERROR(c.AddLinear(LinearConstraint(expr, CmpOp::kEq)));
    }
  }
  AddFact(Fact(pred, static_cast<int>(values.size()), std::move(c)));
  return Status::OK();
}

Database::BatchOutcome Database::AddFacts(const std::vector<Fact>& batch,
                                          int birth) {
  BatchOutcome out;
  for (const Fact& fact : batch) {
    InsertOutcome o = relations_[fact.pred].Insert(
        fact, birth, SubsumptionMode::kNone, /*rule_label=*/"",
        /*parents=*/{}, /*edb=*/true);
    if (o == InsertOutcome::kInserted) {
      ++out.inserted;
    } else {
      ++out.duplicates;
    }
  }
  return out;
}

const Relation* Database::Find(PredId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

size_t Database::TotalFacts() const {
  size_t total = 0;
  for (const auto& [pred, rel] : relations_) total += rel.size();
  return total;
}

size_t Database::FactsFor(PredId pred) const {
  const Relation* rel = Find(pred);
  return rel == nullptr ? 0 : rel->size();
}

bool Database::AllGround() const {
  for (const auto& [pred, rel] : relations_) {
    if (!rel.AllGround()) return false;
  }
  return true;
}

long Database::IntervalBuildNs() const {
  long total = 0;
  for (const auto& [pred, rel] : relations_) total += rel.interval_build_ns();
  return total;
}

size_t Database::ApproxBytes() const {
  size_t total = 0;
  for (const auto& [pred, rel] : relations_) total += rel.ApproxBytes();
  return total;
}

size_t Database::SharedBytes() const {
  size_t total = 0;
  for (const auto& [pred, rel] : relations_) total += rel.SharedBytes();
  return total;
}

}  // namespace cqlopt
