#include "eval/rule_application.h"

#include "ast/arg_map.h"

namespace cqlopt {
namespace {

struct JoinContext {
  const Rule* rule;
  const Database* db;
  int max_birth;
  bool require_delta;
  const EmitFn* emit;
};

Status EmitHead(const JoinContext& ctx, const Conjunction& accumulated,
                const std::vector<Relation::FactRef>& parents) {
  if (!accumulated.IsSatisfiable()) return Status::OK();
  CQLOPT_ASSIGN_OR_RETURN(Conjunction head_constraint,
                          LtopConjunction(ctx.rule->head, accumulated));
  if (!head_constraint.IsSatisfiable()) return Status::OK();
  // Canonical, redundancy-free constraints make subsumption checks cheaper
  // and give facts the minimal rendering the paper's tables use.
  head_constraint.Simplify();
  return (*ctx.emit)(Fact(ctx.rule->head.pred, ctx.rule->head.arity(),
                          std::move(head_constraint)),
                     parents);
}

/// Recursion over body literals; `saw_delta` tracks whether any chosen fact
/// was born exactly at max_birth; `parents` records the chosen facts.
Status JoinFrom(const JoinContext& ctx, size_t index,
                const Conjunction& accumulated, bool saw_delta,
                std::vector<Relation::FactRef>* parents) {
  if (index == ctx.rule->body.size()) {
    if (ctx.require_delta && !saw_delta) return Status::OK();
    return EmitHead(ctx, accumulated, *parents);
  }
  const Literal& lit = ctx.rule->body[index];
  const Relation* rel = ctx.db->Find(lit.pred);
  if (rel == nullptr) return Status::OK();
  // Remaining-delta pruning: if no later literal can still contribute a
  // delta fact, combinations without one so far are useless — but detecting
  // that cheaply per branch costs more than it saves here; the saw_delta
  // check at the leaves is sufficient for correctness.
  std::map<VarId, VarId> to_args;
  for (int i = 0; i < lit.arity(); ++i) {
    to_args[i + 1] = lit.args[static_cast<size_t>(i)];
  }
  // Pre-compute the accumulated state's quick values per argument, so
  // candidate facts with a clashing directly-bound symbol or number can be
  // skipped without copying conjunctions or running satisfiability.
  std::vector<std::optional<SymbolId>> acc_symbol(
      static_cast<size_t>(lit.arity()));
  std::vector<std::optional<Rational>> acc_number(
      static_cast<size_t>(lit.arity()));
  for (int i = 0; i < lit.arity(); ++i) {
    VarId v = lit.args[static_cast<size_t>(i)];
    acc_symbol[static_cast<size_t>(i)] = accumulated.GetSymbol(v);
    acc_number[static_cast<size_t>(i)] = accumulated.QuickNumericValue(v);
  }
  // Index-based iteration over a size snapshot: emit() appends to this very
  // relation when the rule is recursive, which may reallocate the entry
  // vector. Facts appended during this application have birth > max_birth
  // and would be skipped anyway.
  size_t snapshot = rel->entries().size();
  for (size_t i = 0; i < snapshot; ++i) {
    const Relation::Entry& entry = rel->entries()[i];
    int birth = entry.birth;
    if (birth > ctx.max_birth) continue;
    if (entry.fact.arity != lit.arity()) continue;
    bool clash = false;
    for (size_t a = 0; a < entry.signature.size(); ++a) {
      const Relation::ArgSignature& sig = entry.signature[a];
      if (acc_symbol[a] && sig.symbol && *acc_symbol[a] != *sig.symbol) {
        clash = true;
        break;
      }
      if (acc_number[a] && sig.number && *acc_number[a] != *sig.number) {
        clash = true;
        break;
      }
      // A symbol can never equal a number.
      if ((acc_symbol[a] && sig.number) || (acc_number[a] && sig.symbol)) {
        clash = true;
        break;
      }
    }
    if (clash) continue;
    Conjunction next = accumulated;
    Status st =
        next.AddConjunction(rel->entries()[i].fact.constraint.Rename(to_args));
    if (!st.ok()) return st;
    if (next.known_unsat() || !next.IsSatisfiable()) continue;
    parents->push_back(Relation::FactRef{lit.pred, i});
    CQLOPT_RETURN_IF_ERROR(JoinFrom(ctx, index + 1, next,
                                    saw_delta || birth == ctx.max_birth,
                                    parents));
    parents->pop_back();
  }
  return Status::OK();
}

}  // namespace

Status ApplyRule(const Rule& rule, const Database& db, int max_birth,
                 bool require_delta, const EmitFn& emit) {
  JoinContext ctx{&rule, &db, max_birth, require_delta, &emit};
  if (rule.body.empty()) {
    return EmitHead(ctx, rule.constraints, {});
  }
  if (!rule.constraints.IsSatisfiable()) return Status::OK();
  std::vector<Relation::FactRef> parents;
  parents.reserve(rule.body.size());
  return JoinFrom(ctx, 0, rule.constraints, /*saw_delta=*/false, &parents);
}

}  // namespace cqlopt
