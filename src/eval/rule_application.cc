#include "eval/rule_application.h"

#include "ast/arg_map.h"
#include "constraint/interval.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

/// Per-literal birth restriction of one delta rotation (ApplyRule's
/// `delta_rotate` mode).
enum class BirthFilter : char {
  kAny,    // birth <= max_birth (the classic bound)
  kOld,    // birth <  max_birth — positions before the rotation's pivot
  kDelta,  // birth == max_birth — the pivot itself
};

struct JoinContext {
  const Rule* rule;
  const Database* db;
  int max_birth;
  bool require_delta;
  const EmitFn* emit;
  bool use_index;
  bool interval_index;
  EvalStats* stats;
  /// Per-enumeration-depth candidate buffers, owned by ApplyRule and reused
  /// across every probe at the same depth, so candidate materialization is
  /// amortized allocation-free. Distinct depths need distinct buffers: the
  /// recursion at depth d+1 probes while depth d is still iterating its
  /// list. Sized body.size(); null for body-free rules.
  std::vector<std::vector<size_t>>* scratch = nullptr;
  /// suffix_has_delta[i] — some literal j >= i references a relation whose
  /// max_birth() reaches max_birth, i.e. that literal MAY still contribute a
  /// delta fact (Relation::max_birth() never under-reports, so false means
  /// "provably cannot"). Sized body.size() + 1 when require_delta is set,
  /// empty otherwise. Classic (non-rotated) joins only.
  std::vector<char> suffix_has_delta;
  /// Rotation mode (null outside it): `order` maps enumeration depth to
  /// body-literal position — the pivot literal is enumerated first so its
  /// delta fact's bindings drive index probes for the rest — and `filter`
  /// gives each body-literal position its birth restriction.
  const std::vector<size_t>* order = nullptr;
  const std::vector<BirthFilter>* filter = nullptr;
};

Status EmitHead(const JoinContext& ctx, const Conjunction& accumulated,
                const std::vector<Relation::FactRef>& parents) {
  // Satisfiability and implication checks on this path (and in the
  // subsumption probes downstream) go through the two-tier decision
  // procedure: interval prepass first, exact cached FM on fallback
  // (DESIGN.md §11). Conjunction::IsSatisfiable and Implies route there.
  if (!accumulated.IsSatisfiable()) return Status::OK();
  CQLOPT_ASSIGN_OR_RETURN(Conjunction head_constraint,
                          LtopConjunction(ctx.rule->head, accumulated));
  if (!head_constraint.IsSatisfiable()) return Status::OK();
  // Canonical, redundancy-free constraints make subsumption checks cheaper
  // and give facts the minimal rendering the paper's tables use.
  head_constraint.Simplify();
  return (*ctx.emit)(Fact(ctx.rule->head.pred, ctx.rule->head.arity(),
                          std::move(head_constraint)),
                     parents);
}

/// Recursion over body literals (in `ctx.order` when rotating, body order
/// otherwise); `saw_delta` tracks whether any chosen fact was born exactly
/// at max_birth; `parents` records the chosen facts by body-literal
/// position.
Status JoinFrom(const JoinContext& ctx, size_t index,
                const Conjunction& accumulated, bool saw_delta,
                std::vector<Relation::FactRef>* parents) {
  if (index == ctx.rule->body.size()) {
    // A rotation carries its delta by construction (the pivot literal).
    if (ctx.require_delta && ctx.order == nullptr && !saw_delta) {
      return Status::OK();
    }
    return EmitHead(ctx, accumulated, *parents);
  }
  const size_t lit_pos = ctx.order == nullptr ? index : (*ctx.order)[index];
  const Literal& lit = ctx.rule->body[lit_pos];
  const Relation* rel = ctx.db->Find(lit.pred);
  if (rel == nullptr) return Status::OK();
  // Remaining-delta pruning (classic order only): a combination without a
  // delta fact is discarded at the leaf, so once no remaining literal can
  // supply one the whole branch is dead — and when only THIS literal still
  // can, every non-delta entry of it is dead too. Both cuts remove only
  // leaf-rejected combinations, so the surviving derivations and their
  // order are untouched.
  BirthFilter filter = BirthFilter::kAny;
  if (ctx.order != nullptr) {
    filter = (*ctx.filter)[lit_pos];
  } else if (ctx.require_delta && !saw_delta) {
    if (!ctx.suffix_has_delta[index]) return Status::OK();
    if (ctx.suffix_has_delta[index + 1] == 0) filter = BirthFilter::kDelta;
  }
  std::map<VarId, VarId> to_args;
  for (int i = 0; i < lit.arity(); ++i) {
    to_args[i + 1] = lit.args[static_cast<size_t>(i)];
  }
  // Pre-compute the accumulated state's quick values per argument, so
  // candidate facts with a clashing directly-bound symbol or number can be
  // skipped without copying conjunctions or running satisfiability.
  std::vector<std::optional<SymbolId>> acc_symbol(
      static_cast<size_t>(lit.arity()));
  std::vector<std::optional<Rational>> acc_number(
      static_cast<size_t>(lit.arity()));
  for (int i = 0; i < lit.arity(); ++i) {
    VarId v = lit.args[static_cast<size_t>(i)];
    acc_symbol[static_cast<size_t>(i)] = accumulated.GetSymbol(v);
    acc_number[static_cast<size_t>(i)] = accumulated.QuickNumericValue(v);
  }
  // Size snapshot: the emit-visibility contract (rule_application.h) lets
  // callers append facts mid-application; those get row indexes >=
  // snapshot and birth > max_birth, so both enumeration paths below exclude
  // them.
  size_t snapshot = rel->size();
  auto try_entry = [&](size_t i) -> Status {
    int birth = rel->birth(i);
    if (birth > ctx.max_birth) return Status::OK();
    if (filter == BirthFilter::kDelta && birth != ctx.max_birth) {
      return Status::OK();
    }
    if (filter == BirthFilter::kOld && birth == ctx.max_birth) {
      return Status::OK();
    }
    const Fact& fact = rel->fact(i);
    if (fact.arity != lit.arity()) return Status::OK();
    bool clash = false;
    for (int a = 0; a < lit.arity(); ++a) {
      size_t ai = static_cast<size_t>(a);
      if (!acc_symbol[ai] && !acc_number[ai]) continue;
      switch (rel->tag(i, a + 1)) {
        case Relation::ColTag::kSymbol:
          // A symbol can never equal a number.
          clash = acc_number[ai].has_value() ||
                  *acc_symbol[ai] != rel->symbol_at(i, a + 1);
          break;
        case Relation::ColTag::kNumber:
          clash = acc_symbol[ai].has_value() ||
                  *acc_number[ai] != rel->number_at(i, a + 1);
          break;
        default:
          break;  // unbound / interval-ranged: no quick-value clash
      }
      if (clash) break;
    }
    if (clash) return Status::OK();
    Conjunction next = accumulated;
    Status st = next.AddConjunction(fact.constraint.Rename(to_args));
    if (!st.ok()) return st;
    if (next.known_unsat() || !next.IsSatisfiable()) return Status::OK();
    // Assigned by body-literal position (not enumeration depth): at the
    // leaf every position on the path has been written, so `parents` lists
    // the combination in body order whichever order enumerated it.
    (*parents)[lit_pos] = Relation::FactRef{lit.pred, i};
    return JoinFrom(ctx, index + 1, next,
                    saw_delta || birth == ctx.max_birth, parents);
  };
  // Access-path choice: probe the hash index at the most selective bound
  // position, falling back to the linear scan when no position is bound to
  // a unique value (unbound, or restricted only by non-point constraints).
  int probe_pos = 0;  // 1-based; 0 = scan fallback
  Relation::ArgSignature probe_value;
  if (ctx.use_index) {
    std::vector<std::optional<Rational>> probe_number = acc_number;
    bool any_direct = false;
    for (int a = 0; a < lit.arity(); ++a) {
      size_t ai = static_cast<size_t>(a);
      if (acc_symbol[ai] || acc_number[ai]) any_direct = true;
    }
    if (!any_direct) {
      // No position is directly bound: before giving up on the index, try
      // to resolve point values that are only entailed (e.g. X = N - 1
      // after joining a fact with N = 2) with the exact projection. A
      // unique entailed value restricts the join exactly like a stored
      // equality, so probing with it skips only candidates the scan would
      // have discarded as unsatisfiable — same derivations, same order.
      // When some position is already directly bound the projections are
      // skipped: they cost a Fourier-Motzkin elimination per position, and
      // a direct probe already prunes well.
      for (int a = 0; a < lit.arity(); ++a) {
        size_t ai = static_cast<size_t>(a);
        if (probe_number[ai]) continue;
        probe_number[ai] =
            accumulated.GetNumericValue(lit.args[static_cast<size_t>(a)]);
      }
    }
    size_t best_cost = 0;
    for (int a = 0; a < lit.arity(); ++a) {
      size_t ai = static_cast<size_t>(a);
      if (!acc_symbol[ai] && !probe_number[ai]) continue;
      Relation::ArgSignature value{acc_symbol[ai], probe_number[ai]};
      size_t cost = rel->ProbeCost(a + 1, value);
      if (probe_pos == 0 || cost < best_cost) {
        probe_pos = a + 1;
        best_cost = cost;
        probe_value = value;
      }
    }
  }
  // Mid-application emits may append to `rel` while the loops below run, and
  // an append can reallocate the very posting list Probe returned — so the
  // candidate ids are copied into this depth's reusable buffer first
  // (amortized allocation-free; ids < snapshot stay valid because row
  // storage is append-only).
  std::vector<size_t>& candidates = (*ctx.scratch)[index];
  if (probe_pos > 0) {
    const std::vector<size_t>& probed =
        rel->Probe(probe_pos, probe_value, snapshot, &candidates);
    if (&probed != &candidates) {
      candidates.assign(probed.begin(), probed.end());
    }
    if (ctx.stats != nullptr) {
      ++ctx.stats->index_probes;
      ctx.stats->index_candidates += static_cast<long>(candidates.size());
      ctx.stats->indexed_scan_equivalent += static_cast<long>(snapshot);
    }
    for (size_t i : candidates) {
      CQLOPT_RETURN_IF_ERROR(try_entry(i));
    }
    return Status::OK();
  }
  // No uniquely-bound position. Before falling back to the full scan, try
  // the interval index: a numeric position the accumulated state bounds to
  // a proper sub-range (a pushed selection like `T <= 60`, or bounds
  // propagated from already-joined facts) prunes every fact whose stored
  // point or bound summary lies outside the range — each such fact's
  // conjunction with the accumulated state is unsatisfiable, so only
  // leaf-rejected candidates are skipped and derivation order is preserved
  // (IntervalProbe re-sorts into insertion order).
  if (ctx.use_index && ctx.interval_index) {
    int ival_pos = 0;  // 1-based; 0 = nothing usable
    size_t ival_cost = 0;
    Interval ival_query;
    std::optional<IntervalDomain> domain;
    for (int a = 0; a < lit.arity(); ++a) {
      size_t ai = static_cast<size_t>(a);
      if (acc_symbol[ai]) continue;  // symbol-typed: no numeric range
      if (!rel->HasIntervalIndex(a + 1)) continue;
      if (!domain.has_value()) {
        domain = IntervalDomain::Propagate(accumulated.LinearWithEqualities());
        // The accumulated state passed a satisfiability check upstream, so
        // an empty box cannot occur; bail to the scan defensively if it
        // somehow does rather than prune on a meaningless domain.
        if (domain->definitely_empty()) break;
      }
      const Interval& iv = domain->Of(accumulated.Find(lit.args[ai]));
      if (iv.lower_infinite() && iv.upper_infinite()) continue;
      size_t cost = rel->IntervalProbeCost(a + 1, iv);
      if (ival_pos == 0 || cost < ival_cost) {
        ival_pos = a + 1;
        ival_cost = cost;
        ival_query = iv;
      }
    }
    if (ival_pos > 0 && ival_cost < snapshot &&
        !(domain.has_value() && domain->definitely_empty())) {
      long runs_pruned = 0;
      const std::vector<size_t>& probed = rel->IntervalProbe(
          ival_pos, ival_query, snapshot, &candidates, &runs_pruned);
      if (&probed != &candidates) {
        candidates.assign(probed.begin(), probed.end());
      }
      if (ctx.stats != nullptr) {
        ++ctx.stats->interval_probes;
        ctx.stats->interval_candidates += static_cast<long>(candidates.size());
        ctx.stats->interval_scan_equivalent += static_cast<long>(snapshot);
        ctx.stats->interval_runs_pruned += runs_pruned;
      }
      for (size_t i : candidates) {
        CQLOPT_RETURN_IF_ERROR(try_entry(i));
      }
      return Status::OK();
    }
  }
  if (ctx.stats != nullptr) {
    ++ctx.stats->scan_probes;
    ctx.stats->scan_candidates += static_cast<long>(snapshot);
  }
  for (size_t i = 0; i < snapshot; ++i) {
    CQLOPT_RETURN_IF_ERROR(try_entry(i));
  }
  return Status::OK();
}

}  // namespace

Status ApplyRule(const Rule& rule, const Database& db, int max_birth,
                 bool require_delta, const EmitFn& emit, bool use_index,
                 EvalStats* stats, bool delta_rotate, bool interval_index) {
  // Fault-injection hook: an allocation failure while materializing this
  // rule's join state. Near-free when disarmed (util/failpoint.h).
  if (failpoint::ShouldFail(failpoint::kEvalRuleAlloc)) {
    return Status::ResourceExhausted(
        "injected allocation failure applying rule " +
        (rule.label.empty() ? std::string("<unlabeled>") : rule.label) +
        " (failpoint " + failpoint::kEvalRuleAlloc + ")");
  }
  JoinContext ctx{&rule,     &db,   max_birth,      require_delta,
                  &emit,     use_index, interval_index, stats, {}};
  if (rule.body.empty()) {
    return EmitHead(ctx, rule.constraints, {});
  }
  std::vector<std::vector<size_t>> scratch(rule.body.size());
  ctx.scratch = &scratch;
  // Delta capability per body literal: when no body relation's max_birth()
  // reaches max_birth, no combination can contain a delta fact, so the rule
  // derives nothing this iteration — skip before touching any index or
  // constraint machinery.
  std::vector<char> capable;
  if (require_delta) {
    capable.resize(rule.body.size(), 0);
    bool any = false;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Relation* rel = db.Find(rule.body[i].pred);
      capable[i] =
          static_cast<char>(rel != nullptr && rel->max_birth() >= max_birth);
      any = any || capable[i] != 0;
    }
    if (!any) return Status::OK();
  }
  if (!rule.constraints.IsSatisfiable()) return Status::OK();
  std::vector<Relation::FactRef> parents(rule.body.size());
  if (require_delta && delta_rotate) {
    // Delta rotations: one pass per delta-capable position p, enumerating
    // p's delta entries FIRST so their bindings turn the remaining literals
    // into index probes, with positions before p held to pre-delta facts.
    // Each delta-containing combination has exactly one first delta
    // position, so the rotations partition the classic enumeration — same
    // derivations, order grouped by pivot.
    std::vector<BirthFilter> filter(rule.body.size());
    std::vector<size_t> order(rule.body.size());
    for (size_t p = 0; p < rule.body.size(); ++p) {
      if (capable[p] == 0) continue;
      order[0] = p;
      for (size_t i = 0, at = 1; i < rule.body.size(); ++i) {
        if (i != p) order[at++] = i;
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        filter[i] = i < p    ? BirthFilter::kOld
                    : i == p ? BirthFilter::kDelta
                             : BirthFilter::kAny;
      }
      ctx.order = &order;
      ctx.filter = &filter;
      CQLOPT_RETURN_IF_ERROR(
          JoinFrom(ctx, 0, rule.constraints, /*saw_delta=*/false, &parents));
    }
    return Status::OK();
  }
  if (require_delta) {
    ctx.suffix_has_delta.assign(rule.body.size() + 1, 0);
    for (size_t i = rule.body.size(); i-- > 0;) {
      ctx.suffix_has_delta[i] =
          static_cast<char>(capable[i] != 0 ||
                            ctx.suffix_has_delta[i + 1] != 0);
    }
  }
  return JoinFrom(ctx, 0, rule.constraints, /*saw_delta=*/false, &parents);
}

}  // namespace cqlopt
