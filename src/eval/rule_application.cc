#include "eval/rule_application.h"

#include "ast/arg_map.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

/// Per-literal birth restriction of one delta rotation (ApplyRule's
/// `delta_rotate` mode).
enum class BirthFilter : char {
  kAny,    // birth <= max_birth (the classic bound)
  kOld,    // birth <  max_birth — positions before the rotation's pivot
  kDelta,  // birth == max_birth — the pivot itself
};

struct JoinContext {
  const Rule* rule;
  const Database* db;
  int max_birth;
  bool require_delta;
  const EmitFn* emit;
  bool use_index;
  EvalStats* stats;
  /// suffix_has_delta[i] — some literal j >= i references a relation whose
  /// max_birth() reaches max_birth, i.e. that literal MAY still contribute a
  /// delta fact (Relation::max_birth() never under-reports, so false means
  /// "provably cannot"). Sized body.size() + 1 when require_delta is set,
  /// empty otherwise. Classic (non-rotated) joins only.
  std::vector<char> suffix_has_delta;
  /// Rotation mode (null outside it): `order` maps enumeration depth to
  /// body-literal position — the pivot literal is enumerated first so its
  /// delta fact's bindings drive index probes for the rest — and `filter`
  /// gives each body-literal position its birth restriction.
  const std::vector<size_t>* order = nullptr;
  const std::vector<BirthFilter>* filter = nullptr;
};

Status EmitHead(const JoinContext& ctx, const Conjunction& accumulated,
                const std::vector<Relation::FactRef>& parents) {
  // Satisfiability and implication checks on this path (and in the
  // subsumption probes downstream) go through the two-tier decision
  // procedure: interval prepass first, exact cached FM on fallback
  // (DESIGN.md §11). Conjunction::IsSatisfiable and Implies route there.
  if (!accumulated.IsSatisfiable()) return Status::OK();
  CQLOPT_ASSIGN_OR_RETURN(Conjunction head_constraint,
                          LtopConjunction(ctx.rule->head, accumulated));
  if (!head_constraint.IsSatisfiable()) return Status::OK();
  // Canonical, redundancy-free constraints make subsumption checks cheaper
  // and give facts the minimal rendering the paper's tables use.
  head_constraint.Simplify();
  return (*ctx.emit)(Fact(ctx.rule->head.pred, ctx.rule->head.arity(),
                          std::move(head_constraint)),
                     parents);
}

/// Recursion over body literals (in `ctx.order` when rotating, body order
/// otherwise); `saw_delta` tracks whether any chosen fact was born exactly
/// at max_birth; `parents` records the chosen facts by body-literal
/// position.
Status JoinFrom(const JoinContext& ctx, size_t index,
                const Conjunction& accumulated, bool saw_delta,
                std::vector<Relation::FactRef>* parents) {
  if (index == ctx.rule->body.size()) {
    // A rotation carries its delta by construction (the pivot literal).
    if (ctx.require_delta && ctx.order == nullptr && !saw_delta) {
      return Status::OK();
    }
    return EmitHead(ctx, accumulated, *parents);
  }
  const size_t lit_pos = ctx.order == nullptr ? index : (*ctx.order)[index];
  const Literal& lit = ctx.rule->body[lit_pos];
  const Relation* rel = ctx.db->Find(lit.pred);
  if (rel == nullptr) return Status::OK();
  // Remaining-delta pruning (classic order only): a combination without a
  // delta fact is discarded at the leaf, so once no remaining literal can
  // supply one the whole branch is dead — and when only THIS literal still
  // can, every non-delta entry of it is dead too. Both cuts remove only
  // leaf-rejected combinations, so the surviving derivations and their
  // order are untouched.
  BirthFilter filter = BirthFilter::kAny;
  if (ctx.order != nullptr) {
    filter = (*ctx.filter)[lit_pos];
  } else if (ctx.require_delta && !saw_delta) {
    if (!ctx.suffix_has_delta[index]) return Status::OK();
    if (ctx.suffix_has_delta[index + 1] == 0) filter = BirthFilter::kDelta;
  }
  std::map<VarId, VarId> to_args;
  for (int i = 0; i < lit.arity(); ++i) {
    to_args[i + 1] = lit.args[static_cast<size_t>(i)];
  }
  // Pre-compute the accumulated state's quick values per argument, so
  // candidate facts with a clashing directly-bound symbol or number can be
  // skipped without copying conjunctions or running satisfiability.
  std::vector<std::optional<SymbolId>> acc_symbol(
      static_cast<size_t>(lit.arity()));
  std::vector<std::optional<Rational>> acc_number(
      static_cast<size_t>(lit.arity()));
  for (int i = 0; i < lit.arity(); ++i) {
    VarId v = lit.args[static_cast<size_t>(i)];
    acc_symbol[static_cast<size_t>(i)] = accumulated.GetSymbol(v);
    acc_number[static_cast<size_t>(i)] = accumulated.QuickNumericValue(v);
  }
  // Size snapshot: the emit-visibility contract (rule_application.h) lets
  // callers append facts mid-application; those get entry indexes >=
  // snapshot and birth > max_birth, so both enumeration paths below exclude
  // them.
  size_t snapshot = rel->entries().size();
  auto try_entry = [&](size_t i) -> Status {
    const Relation::Entry& entry = rel->entries()[i];
    int birth = entry.birth;
    if (birth > ctx.max_birth) return Status::OK();
    if (filter == BirthFilter::kDelta && birth != ctx.max_birth) {
      return Status::OK();
    }
    if (filter == BirthFilter::kOld && birth == ctx.max_birth) {
      return Status::OK();
    }
    if (entry.fact.arity != lit.arity()) return Status::OK();
    bool clash = false;
    for (size_t a = 0; a < entry.signature.size(); ++a) {
      const Relation::ArgSignature& sig = entry.signature[a];
      if (acc_symbol[a] && sig.symbol && *acc_symbol[a] != *sig.symbol) {
        clash = true;
        break;
      }
      if (acc_number[a] && sig.number && *acc_number[a] != *sig.number) {
        clash = true;
        break;
      }
      // A symbol can never equal a number.
      if ((acc_symbol[a] && sig.number) || (acc_number[a] && sig.symbol)) {
        clash = true;
        break;
      }
    }
    if (clash) return Status::OK();
    Conjunction next = accumulated;
    Status st =
        next.AddConjunction(rel->entries()[i].fact.constraint.Rename(to_args));
    if (!st.ok()) return st;
    if (next.known_unsat() || !next.IsSatisfiable()) return Status::OK();
    // Assigned by body-literal position (not enumeration depth): at the
    // leaf every position on the path has been written, so `parents` lists
    // the combination in body order whichever order enumerated it.
    (*parents)[lit_pos] = Relation::FactRef{lit.pred, i};
    return JoinFrom(ctx, index + 1, next,
                    saw_delta || birth == ctx.max_birth, parents);
  };
  // Access-path choice: probe the hash index at the most selective bound
  // position, falling back to the linear scan when no position is bound to
  // a unique value (unbound, or restricted only by non-point constraints).
  int probe_pos = 0;  // 1-based; 0 = scan fallback
  Relation::ArgSignature probe_value;
  if (ctx.use_index) {
    std::vector<std::optional<Rational>> probe_number = acc_number;
    bool any_direct = false;
    for (int a = 0; a < lit.arity(); ++a) {
      size_t ai = static_cast<size_t>(a);
      if (acc_symbol[ai] || acc_number[ai]) any_direct = true;
    }
    if (!any_direct) {
      // No position is directly bound: before giving up on the index, try
      // to resolve point values that are only entailed (e.g. X = N - 1
      // after joining a fact with N = 2) with the exact projection. A
      // unique entailed value restricts the join exactly like a stored
      // equality, so probing with it skips only candidates the scan would
      // have discarded as unsatisfiable — same derivations, same order.
      // When some position is already directly bound the projections are
      // skipped: they cost a Fourier-Motzkin elimination per position, and
      // a direct probe already prunes well.
      for (int a = 0; a < lit.arity(); ++a) {
        size_t ai = static_cast<size_t>(a);
        if (probe_number[ai]) continue;
        probe_number[ai] =
            accumulated.GetNumericValue(lit.args[static_cast<size_t>(a)]);
      }
    }
    size_t best_cost = 0;
    for (int a = 0; a < lit.arity(); ++a) {
      size_t ai = static_cast<size_t>(a);
      if (!acc_symbol[ai] && !probe_number[ai]) continue;
      Relation::ArgSignature value{acc_symbol[ai], probe_number[ai]};
      size_t cost = rel->ProbeCost(a + 1, value);
      if (probe_pos == 0 || cost < best_cost) {
        probe_pos = a + 1;
        best_cost = cost;
        probe_value = value;
      }
    }
  }
  if (probe_pos > 0) {
    std::vector<size_t> candidates = rel->Probe(probe_pos, probe_value,
                                                snapshot);
    if (ctx.stats != nullptr) {
      ++ctx.stats->index_probes;
      ctx.stats->index_candidates += static_cast<long>(candidates.size());
      ctx.stats->indexed_scan_equivalent += static_cast<long>(snapshot);
    }
    for (size_t i : candidates) {
      CQLOPT_RETURN_IF_ERROR(try_entry(i));
    }
  } else {
    if (ctx.stats != nullptr) {
      ++ctx.stats->scan_probes;
      ctx.stats->scan_candidates += static_cast<long>(snapshot);
    }
    for (size_t i = 0; i < snapshot; ++i) {
      CQLOPT_RETURN_IF_ERROR(try_entry(i));
    }
  }
  return Status::OK();
}

}  // namespace

Status ApplyRule(const Rule& rule, const Database& db, int max_birth,
                 bool require_delta, const EmitFn& emit, bool use_index,
                 EvalStats* stats, bool delta_rotate) {
  // Fault-injection hook: an allocation failure while materializing this
  // rule's join state. Near-free when disarmed (util/failpoint.h).
  if (failpoint::ShouldFail(failpoint::kEvalRuleAlloc)) {
    return Status::ResourceExhausted(
        "injected allocation failure applying rule " +
        (rule.label.empty() ? std::string("<unlabeled>") : rule.label) +
        " (failpoint " + failpoint::kEvalRuleAlloc + ")");
  }
  JoinContext ctx{&rule, &db,      max_birth, require_delta,
                  &emit, use_index, stats,     {}};
  if (rule.body.empty()) {
    return EmitHead(ctx, rule.constraints, {});
  }
  // Delta capability per body literal: when no body relation's max_birth()
  // reaches max_birth, no combination can contain a delta fact, so the rule
  // derives nothing this iteration — skip before touching any index or
  // constraint machinery.
  std::vector<char> capable;
  if (require_delta) {
    capable.resize(rule.body.size(), 0);
    bool any = false;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      const Relation* rel = db.Find(rule.body[i].pred);
      capable[i] =
          static_cast<char>(rel != nullptr && rel->max_birth() >= max_birth);
      any = any || capable[i] != 0;
    }
    if (!any) return Status::OK();
  }
  if (!rule.constraints.IsSatisfiable()) return Status::OK();
  std::vector<Relation::FactRef> parents(rule.body.size());
  if (require_delta && delta_rotate) {
    // Delta rotations: one pass per delta-capable position p, enumerating
    // p's delta entries FIRST so their bindings turn the remaining literals
    // into index probes, with positions before p held to pre-delta facts.
    // Each delta-containing combination has exactly one first delta
    // position, so the rotations partition the classic enumeration — same
    // derivations, order grouped by pivot.
    std::vector<BirthFilter> filter(rule.body.size());
    std::vector<size_t> order(rule.body.size());
    for (size_t p = 0; p < rule.body.size(); ++p) {
      if (capable[p] == 0) continue;
      order[0] = p;
      for (size_t i = 0, at = 1; i < rule.body.size(); ++i) {
        if (i != p) order[at++] = i;
      }
      for (size_t i = 0; i < rule.body.size(); ++i) {
        filter[i] = i < p    ? BirthFilter::kOld
                    : i == p ? BirthFilter::kDelta
                             : BirthFilter::kAny;
      }
      ctx.order = &order;
      ctx.filter = &filter;
      CQLOPT_RETURN_IF_ERROR(
          JoinFrom(ctx, 0, rule.constraints, /*saw_delta=*/false, &parents));
    }
    return Status::OK();
  }
  if (require_delta) {
    ctx.suffix_has_delta.assign(rule.body.size() + 1, 0);
    for (size_t i = rule.body.size(); i-- > 0;) {
      ctx.suffix_has_delta[i] =
          static_cast<char>(capable[i] != 0 ||
                            ctx.suffix_has_delta[i + 1] != 0);
    }
  }
  return JoinFrom(ctx, 0, rule.constraints, /*saw_delta=*/false, &parents);
}

}  // namespace cqlopt
