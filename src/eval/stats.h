#ifndef CQLOPT_EVAL_STATS_H_
#define CQLOPT_EVAL_STATS_H_

#include <map>
#include <string>
#include <vector>

#include "ast/symbol_table.h"

namespace cqlopt {

/// Counters of one bottom-up evaluation, the quantities the paper's
/// comparisons are phrased in: "the number of facts computed" and "the
/// number of derivations made" (Theorem 4.4, Section 4.6).
struct EvalStats {
  /// Successful rule firings (satisfiable head facts produced), whether or
  /// not the fact was new.
  long derivations = 0;
  /// Facts actually stored.
  long inserted = 0;
  /// Facts discarded because an existing fact subsumed them.
  long subsumed = 0;
  /// Facts discarded as structural duplicates.
  long duplicates = 0;
  /// Iterations executed (0-based count of the last iteration + 1).
  int iterations = 0;
  bool reached_fixpoint = false;
  /// True if every derived fact was ground (Theorem 4.4's property).
  bool all_ground = true;
  /// Stored facts per predicate.
  std::map<PredId, long> facts_per_pred;

  // --- SCC-stratified evaluation and join-index accounting. These stay 0 /
  // empty for strategies or paths that do not exercise them. ---

  /// Iterations spent per stratum, in evaluation (bottom-up topological)
  /// order; strata without rules are omitted. Their sum equals
  /// `iterations` under EvalStrategy::kStratified.
  std::vector<long> scc_iterations;
  /// Body-literal resolutions served by the per-position hash index (some
  /// argument position was directly bound to a symbol/number in the
  /// accumulated join state).
  long index_probes = 0;
  /// Resolutions that fell back to the linear scan: no position directly
  /// bound — unbound, or bound only through constraints (e.g. entailed by
  /// `X = N - 1 & N = 2` without a stored point equality).
  long scan_probes = 0;
  /// Join candidate facts enumerated through index probes.
  long index_candidates = 0;
  /// Join candidate facts enumerated by fallback scans.
  long scan_candidates = 0;
  /// Candidates the replaced scans would have enumerated for the indexed
  /// probes; `index_candidates` vs this number attributes the index win.
  long indexed_scan_equivalent = 0;

  // --- Interval-index accounting (DESIGN.md §12): the columnar per-position
  // interval indexes serving body-literal resolutions whose accumulated
  // state bounds a numeric position without pinning it to a point (e.g. a
  // pushed selection `T <= 60`). Zero when EvalOptions::interval_index is
  // off or no literal carries a usable range. ---

  /// Body-literal resolutions served by an interval-index probe.
  long interval_probes = 0;
  /// Join candidate facts those probes enumerated.
  long interval_candidates = 0;
  /// Candidates the replaced scans would have enumerated — the interval
  /// pruning win is this number vs `interval_candidates`.
  long interval_scan_equivalent = 0;
  /// Sealed sorted runs rejected wholesale by probe binary searches (no
  /// per-row work at all for those rows).
  long interval_runs_pruned = 0;
  /// Nanoseconds spent building interval-index state (insertion-time bound
  /// propagation, run sealing/merging) across the database's relations —
  /// the price paid for the pruning, reported so benches can net it out.
  long interval_index_build_ns = 0;
  /// Derivations per rule, keyed by rule label (or "rule#<index>" for
  /// unlabeled rules) — lets benches attribute wins rule by rule.
  std::map<std::string, long> derivations_per_rule;

  // --- Decision-cache accounting: the DecisionCache counter deltas
  // accumulated by this evaluation (the cache itself is process-wide;
  // Evaluate snapshots before/after). ---
  long cache_hits = 0;
  long cache_misses = 0;
  long cache_evictions = 0;

  // --- Interval-prepass accounting (DESIGN.md §11): counter deltas of the
  // approximate decision tier over this evaluation, snapshot-diffed like
  // the cache counters above. `prepass_conclusive` decisions were answered
  // by bound propagation alone (never touching the DecisionCache);
  // `prepass_fallback` probes were inconclusive and fell through to the
  // exact cached Fourier–Motzkin tier. Both stay 0 with prepass disabled.
  long prepass_conclusive = 0;
  long prepass_fallback = 0;

  // --- Resource-governance accounting (EvalOptions::{cancel, deadline_ms,
  // max_derived_facts}). Untouched when the evaluation runs to fixpoint or
  // hits only the iteration cap. ---

  /// True when the evaluation was aborted by a governance limit (deadline,
  /// fact budget, or cancellation) rather than finishing or being capped.
  bool aborted = false;
  /// Where the abort landed, e.g.
  /// "stratum 3/7, global iteration 12, 4831 facts stored". Empty unless
  /// `aborted`. The same text is embedded in the returned Status message.
  std::string abort_point;

  // --- Retraction accounting (eval/retract.h RetractEvaluate). Zero /
  // empty for plain evaluations. ---

  /// Base (EDB) rows removed by the retraction.
  long retracted_facts = 0;
  /// Retract requests that matched no stored base row (retracting a fact
  /// that was never inserted, or twice) — counted, never an error.
  long retract_missing = 0;
  /// Rows carried over from the base run without re-derivation (whole kept
  /// strata plus counting-spliced survivors).
  long retract_kept_rows = 0;
  /// Derived rows dropped for re-derivation (the DRed over-deletion).
  long retract_rederived_rows = 0;
  /// Which maintenance path the last RetractEvaluate took:
  /// "noop" / "splice" / "prefix" / "full". Empty for plain evaluations.
  std::string retract_path;

  /// Folds the join/derivation counters of one parallel worker into this —
  /// the deterministic-merge half of eval/seminaive.cc's parallel
  /// iteration. All folded fields are sums, so merge order cannot change
  /// the totals.
  void MergeWorkerCounters(const EvalStats& worker);

  std::string ToString(const SymbolTable& symbols) const;
};

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_STATS_H_
