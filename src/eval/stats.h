#ifndef CQLOPT_EVAL_STATS_H_
#define CQLOPT_EVAL_STATS_H_

#include <map>
#include <string>

#include "ast/symbol_table.h"

namespace cqlopt {

/// Counters of one bottom-up evaluation, the quantities the paper's
/// comparisons are phrased in: "the number of facts computed" and "the
/// number of derivations made" (Theorem 4.4, Section 4.6).
struct EvalStats {
  /// Successful rule firings (satisfiable head facts produced), whether or
  /// not the fact was new.
  long derivations = 0;
  /// Facts actually stored.
  long inserted = 0;
  /// Facts discarded because an existing fact subsumed them.
  long subsumed = 0;
  /// Facts discarded as structural duplicates.
  long duplicates = 0;
  /// Iterations executed (0-based count of the last iteration + 1).
  int iterations = 0;
  bool reached_fixpoint = false;
  /// True if every derived fact was ground (Theorem 4.4's property).
  bool all_ground = true;
  /// Stored facts per predicate.
  std::map<PredId, long> facts_per_pred;

  std::string ToString(const SymbolTable& symbols) const;
};

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_STATS_H_
