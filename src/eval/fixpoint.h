#ifndef CQLOPT_EVAL_FIXPOINT_H_
#define CQLOPT_EVAL_FIXPOINT_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "eval/seminaive.h"
#include "graph/scc.h"
#include "util/thread_pool.h"

/// Internal fixpoint machinery shared by the evaluation entry points of
/// seminaive.h (Evaluate / ResumeEvaluate) and the incremental-maintenance
/// entry point of retract.h (RetractEvaluate). Everything here is an
/// implementation detail: the iteration/reconcile/commit pipeline, the
/// governance sampler, and the SCC stratification plan. Callers outside
/// src/eval should use the public headers.
namespace cqlopt {
namespace eval_internal {

/// Cooperative enforcement of EvalOptions' governance limits (cancel token,
/// wall-clock deadline, derived-fact budget).
///
/// Check granularity:
///  - Fine(): called from the emit callback on every derivation. Costs one
///    branch when no limit is set; when governed, samples the clock / token
///    only every kFineInterval derivations (a relaxed shared tick), and
///    otherwise just reads the trip flag — so a trip in one parallel worker
///    makes every other worker bail on its next derivation.
///  - RuleBoundary(): called before each rule application (serially between
///    rules, and at task start inside pool workers) — an unconditional
///    clock/token sample, so even derivation-free rule batches stay
///    responsive.
///  - IterationBoundary(): called serially after each iteration commits;
///    adds the derived-fact budget, which deliberately lives ONLY here so
///    the abort lands on the same iteration — with the same committed
///    database — at any thread count.
///
/// The returned Status carries the cause ("wall-clock deadline of 50ms
/// expired"); the strategy loops annotate it with the position
/// (stratum / global iteration / facts stored) before surfacing it.
class Governor {
 public:
  Governor(const EvalOptions& options, long baseline_inserted)
      : cancel_(options.cancel),
        deadline_ms_(options.deadline_ms),
        max_facts_(options.max_derived_facts),
        baseline_inserted_(baseline_inserted),
        active_(options.deadline_ms > 0 || options.max_derived_facts > 0 ||
                options.cancel.can_cancel()) {
    if (deadline_ms_ > 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms_);
    }
  }

  bool active() const { return active_; }

  Status Fine() {
    if (!active_) return Status::OK();
    if (tripped_.load(std::memory_order_relaxed)) return TrippedStatus();
    if ((tick_.fetch_add(1, std::memory_order_relaxed) &
         (kFineInterval - 1)) != 0) {
      return Status::OK();
    }
    return Sample();
  }

  Status RuleBoundary() {
    if (!active_) return Status::OK();
    if (tripped_.load(std::memory_order_relaxed)) return TrippedStatus();
    return Sample();
  }

  Status IterationBoundary(long inserted_total) {
    if (!active_) return Status::OK();
    CQLOPT_RETURN_IF_ERROR(RuleBoundary());
    if (max_facts_ > 0 && inserted_total - baseline_inserted_ > max_facts_) {
      return Status::ResourceExhausted(
          "derived-fact budget of " + std::to_string(max_facts_) +
          " exceeded (" + std::to_string(inserted_total - baseline_inserted_) +
          " facts stored by this call)");
    }
    return Status::OK();
  }

  /// True for codes a governed (or fault-injected) abort produces — the
  /// errors whose message the strategy loops annotate with the abort
  /// position and whose partial stats flow into EvalOptions::abort_stats.
  static bool IsAbortCode(StatusCode code) {
    return code == StatusCode::kDeadlineExceeded ||
           code == StatusCode::kCancelled ||
           code == StatusCode::kResourceExhausted;
  }

 private:
  static constexpr long kFineInterval = 64;  // power of two (mask below)

  /// Samples the token and the clock; records the first trip so concurrent
  /// workers short-circuit without re-sampling.
  Status Sample() {
    if (cancel_.cancel_requested()) {
      tripped_.store(kTripCancelled, std::memory_order_relaxed);
      return TrippedStatus();
    }
    if (deadline_ms_ > 0 && std::chrono::steady_clock::now() >= deadline_) {
      tripped_.store(kTripDeadline, std::memory_order_relaxed);
      return TrippedStatus();
    }
    return Status::OK();
  }

  Status TrippedStatus() const {
    if (tripped_.load(std::memory_order_relaxed) == kTripCancelled ||
        cancel_.cancel_requested()) {
      return Status::Cancelled("evaluation cancelled via CancelToken");
    }
    return Status::DeadlineExceeded("wall-clock deadline of " +
                                    std::to_string(deadline_ms_) +
                                    "ms expired");
  }

  static constexpr int kTripDeadline = 1;
  static constexpr int kTripCancelled = 2;

  CancelToken cancel_;
  const long deadline_ms_;
  const long max_facts_;
  const long baseline_inserted_;
  const bool active_;
  std::chrono::steady_clock::time_point deadline_{};
  std::atomic<long> tick_{0};
  std::atomic<int> tripped_{0};
};

/// One fixpoint iteration over `rule_indexes` against result->db: applies
/// the rules under the given delta discipline (concurrently when `pool` is
/// non-null, merged deterministically in rule order), reconciles the
/// buffered derivations as a set, and commits the survivors with birth
/// `iteration`. Constraint facts (body-free rules) fire only when
/// `fire_constraint_facts` is set. Returns the number of facts inserted.
///
/// The commit also maintains the counting state of DESIGN.md §14: a
/// duplicate-discarded derivation bumps the stored row's support(), a
/// single-fact-subsumed derivation bumps its subsumer's blocked(), and a
/// subsumption that cannot be pinned on one stored row (set-implication
/// mode, or a subsumer that itself was discarded) is charged to the
/// relation as an opaque event.
Result<long> RunIteration(const Program& program,
                          const std::vector<size_t>& rule_indexes,
                          int iteration, bool fire_constraint_facts,
                          bool require_delta, bool use_index,
                          bool delta_rotate, bool interval_index,
                          const EvalOptions& options, Governor* governor,
                          ThreadPool* pool, EvalResult* result);

/// Annotates a governed (or fault-injected) abort Status with the position
/// it landed at, mirrors the position into the partial stats, and copies
/// those stats out through options.abort_stats — on failure the Result
/// carries no EvalResult, so this is the only way the counters escape.
Status GovernedAbort(const Status& cause, const std::string& position,
                     const EvalOptions& options, EvalResult* result);

/// "<N> facts stored (<M> derivations made)" — the facts-so-far tail every
/// abort and cap message carries.
std::string FactsSoFar(const EvalResult& result);

/// The shape of one SCC-stratified evaluation: the predicate dependency
/// condensation in bottom-up order, each component's rules (assigned by
/// head predicate), and whether the component is recursive (some rule body
/// mentions a same-component predicate). Both Evaluate(kStratified) and
/// RetractEvaluate walk the same plan, which is what makes a retraction's
/// kept-prefix / recomputed-suffix split line up with scratch evaluation
/// iteration for iteration.
struct StratifiedPlan {
  SccDecomposition sccs;
  std::vector<std::vector<size_t>> rules_of;  // per component, by head pred
  std::vector<uint8_t> recursive;             // per component

  size_t component_count() const { return sccs.components().size(); }
};

StratifiedPlan PlanStratified(const Program& program);

/// Runs the stratified fixpoint over components [first_component, end) of
/// `plan` on top of `result` (already seeded with the EDB and, when
/// first_component > 0, the facts of every lower stratum), with the global
/// iteration counter starting at `start_iteration`. Appends one
/// scc_iterations entry per component that has rules, updates
/// stats.iterations after every committed iteration, sets reached_fixpoint,
/// and finalizes facts_per_pred / interval_index_build_ns on success.
/// A governed abort returns its annotated Status after routing the partial
/// stats through GovernedAbort.
Status RunStrata(const Program& program, const StratifiedPlan& plan,
                 size_t first_component, int start_iteration,
                 const EvalOptions& options, Governor* governor,
                 ThreadPool* pool, EvalResult* result);

/// Rejects option values the fixpoint loops cannot interpret (negative
/// caps would loop forever; negative thread counts would size a pool
/// undefinedly).
Status CheckEvalOptions(const EvalOptions& options);

}  // namespace eval_internal
}  // namespace cqlopt

#endif  // CQLOPT_EVAL_FIXPOINT_H_
