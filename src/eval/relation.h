#ifndef CQLOPT_EVAL_RELATION_H_
#define CQLOPT_EVAL_RELATION_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "eval/fact.h"

namespace cqlopt {

/// Duplicate-elimination policy applied when inserting a freshly derived
/// fact (the "compared against previously generated p facts to check
/// whether it is indeed a new fact" step of Section 2).
enum class SubsumptionMode {
  /// Only structurally identical facts are duplicates. Constraint facts
  /// that are semantically subsumed survive — the ablation arm of
  /// bench_flights; can prevent termination.
  kNone,
  /// A new fact is discarded when some single existing fact implies it —
  /// the check the paper's Tables 1–2 apply (subsumed facts in boldface are
  /// "discarded, and not used to make new derivations").
  kSingleFact,
  /// A new fact is discarded when the *disjunction* of the existing facts
  /// implies it (exact set containment). Strictly stronger pruning than
  /// kSingleFact — e.g. p(X; 0<=X<=10) is discarded given p(X; X<=5) and
  /// p(X; X>=5) — at the cost of an exponential-in-principle case split
  /// per check (constraint/implication.h). An extension beyond the paper,
  /// which only discusses the single-fact check.
  kSetImplication,
};

/// What happened to an inserted fact.
enum class InsertOutcome {
  kInserted,
  kDuplicate,  // structurally identical fact already present
  kSubsumed,   // implied by an existing fact (kSingleFact mode)
};

/// The set of facts of one predicate, each stamped with the iteration that
/// derived it (EDB facts carry birth -1), supporting the semi-naive
/// delta discipline.
class Relation {
 public:
  /// Per-position quick values of a fact, computed once at insertion and
  /// used as a join pre-filter: candidate facts whose directly-bound symbol
  /// or number clashes with the accumulated join state are skipped without
  /// touching the constraint machinery.
  struct ArgSignature {
    std::optional<SymbolId> symbol;
    std::optional<Rational> number;
  };

  /// Reference to a fact in a database: predicate plus entry index.
  struct FactRef {
    PredId pred;
    size_t index;
  };

  struct Entry {
    Fact fact;
    int birth;
    /// Cached Fact::IsGround(), computed once at insertion: the
    /// subsumption fast path relies on it (a ground fact cannot subsume a
    /// distinct fact).
    bool ground;
    std::vector<ArgSignature> signature;
    /// Provenance (Definition 2.2's derivation trees): the rule that
    /// derived this fact and the body facts used, in body-literal order.
    /// Empty rule label and parents for EDB facts.
    std::string rule_label;
    std::vector<FactRef> parents;
  };

  /// Attempts to insert; `birth` is the deriving iteration. `rule_label`
  /// and `parents` record provenance (empty for EDB facts).
  InsertOutcome Insert(Fact fact, int birth, SubsumptionMode mode,
                       std::string rule_label = "",
                       std::vector<FactRef> parents = {});

  /// True if a structurally identical fact is stored.
  bool ContainsKey(const std::string& key) const {
    return keys_.count(key) > 0;
  }

  /// Number of entries an index probe at 1-based `position` for `value`
  /// would enumerate (bound matches plus the unbound fallback list), with
  /// no limit applied. Used to pick the most selective bound position
  /// before materializing a probe.
  size_t ProbeCost(int position, const ArgSignature& value) const;

  /// Hash-index probe: the entry indexes, in ascending (= insertion) order
  /// and restricted to indexes < `limit`, of facts that can match `value`
  /// at 1-based `position`. That is facts whose signature binds the
  /// position to exactly the probed symbol/number, merged with facts whose
  /// signature leaves the position unbound — constraint facts restrict
  /// such positions only through their constraint part (e.g. `$1 > 0`), so
  /// they can match any probed value and are always enumerated.
  ///
  /// `value` must have exactly one of symbol/number set. Enumerating the
  /// result under the caller's arity and full-signature checks visits
  /// exactly the facts a linear scan over entries()[0..limit) keeps after
  /// its ArgSignature pre-filter at this position.
  std::vector<size_t> Probe(int position, const ArgSignature& value,
                            size_t limit) const;

  /// Entry storage is append-only: Insert never reorders or removes, so
  /// entry indexes are stable and iterating over a size snapshot taken
  /// before a batch of inserts visits exactly the pre-batch facts (the
  /// emit-visibility contract of rule_application.h relies on this
  /// together with birth stamps).
  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True if every stored fact is ground.
  bool AllGround() const;

  /// Largest birth stamp ever stored (-2 while empty). A cheap
  /// delta-availability bound for semi-naive joins: no entry of this
  /// relation can have birth == b when max_birth() < b. The bound is an
  /// over-approximation in the other direction — it never decreases, so it
  /// can exceed the birth of every *current* entry; callers may only use it
  /// to prune, never to assert a delta exists.
  int max_birth() const { return max_birth_; }

 private:
  /// Exact map key of a directly-bound value — the bound symbol, or the
  /// bound number when no symbol is bound. An exact key (not a bare hash):
  /// conflating two distinct values would merge their posting lists and
  /// corrupt join results. Symbols and numbers cannot collide (a key is a
  /// symbol key iff `symbol` is set; `number` is ignored then).
  struct IndexKey {
    std::optional<SymbolId> symbol;
    Rational number;

    bool operator==(const IndexKey& other) const {
      return symbol == other.symbol &&
             (symbol.has_value() || number == other.number);
    }
  };
  struct IndexKeyHash {
    size_t operator()(const IndexKey& key) const {
      // Tags keep a symbol's hash distinct from a number's even when the
      // underlying integer values coincide.
      return key.symbol.has_value()
                 ? std::hash<SymbolId>()(*key.symbol) ^ size_t{0x9e3779b9}
                 : key.number.Hash();
    }
  };

  /// Per-argument-position hash index, maintained by Insert. Only facts
  /// that were actually stored (InsertOutcome::kInserted) are indexed;
  /// duplicates and subsumed facts never enter. Entry-id lists are
  /// ascending because ids are assigned in insertion order.
  struct PositionIndex {
    std::unordered_map<IndexKey, std::vector<size_t>, IndexKeyHash> by_value;
    std::vector<size_t> unbound;
  };

  /// Index key of a signature binding a symbol or a number (exactly one
  /// must be set). No string is materialized — Probe/ProbeCost run once
  /// per candidate join, and the old "s<id>"/"n<rational>" string keys
  /// showed up as allocation hot spots.
  static IndexKey KeyOf(const ArgSignature& value);

  std::vector<Entry> entries_;
  std::unordered_set<std::string> keys_;
  std::vector<PositionIndex> index_;  // index_[p-1]; sized to max arity seen
  int max_birth_ = -2;
};

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_RELATION_H_
