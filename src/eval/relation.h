#ifndef CQLOPT_EVAL_RELATION_H_
#define CQLOPT_EVAL_RELATION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "constraint/interval.h"
#include "eval/fact.h"

namespace cqlopt {

/// Duplicate-elimination policy applied when inserting a freshly derived
/// fact (the "compared against previously generated p facts to check
/// whether it is indeed a new fact" step of Section 2).
enum class SubsumptionMode {
  /// Only structurally identical facts are duplicates. Constraint facts
  /// that are semantically subsumed survive — the ablation arm of
  /// bench_flights; can prevent termination.
  kNone,
  /// A new fact is discarded when some single existing fact implies it —
  /// the check the paper's Tables 1–2 apply (subsumed facts in boldface are
  /// "discarded, and not used to make new derivations").
  kSingleFact,
  /// A new fact is discarded when the *disjunction* of the existing facts
  /// implies it (exact set containment). Strictly stronger pruning than
  /// kSingleFact — e.g. p(X; 0<=X<=10) is discarded given p(X; X<=5) and
  /// p(X; X>=5) — at the cost of an exponential-in-principle case split
  /// per check (constraint/implication.h). An extension beyond the paper,
  /// which only discusses the single-fact check.
  kSetImplication,
};

/// What happened to an inserted fact.
enum class InsertOutcome {
  kInserted,
  kDuplicate,  // structurally identical fact already present
  kSubsumed,   // implied by an existing fact (kSingleFact mode)
};

/// The set of facts of one predicate, each stamped with the iteration that
/// derived it (EDB facts carry birth -1), supporting the semi-naive
/// delta discipline.
///
/// Storage is *columnar* (DESIGN.md §12): rows live in fixed-size chunks of
/// parallel arrays — fact payloads, birth stamps, ground flags, provenance,
/// and one value column per argument position (tag + symbol + number) — so
/// the delta scan walks a contiguous birth array and the join pre-filter
/// reads value columns instead of chasing a per-fact signature vector.
/// Chunks are held by shared_ptr and copied lazily: copying a Relation (the
/// service layer publishes one immutable Database per snapshot epoch)
/// shares every chunk, and an append into a shared tail chunk clones just
/// that chunk first — sealed segments are never duplicated, so the
/// bytes-per-epoch cost of a snapshot is the indexes plus at most one
/// partial chunk per relation.
class Relation {
 public:
  /// Per-position quick values of a fact (the probe *query* shape): the
  /// directly-bound symbol or number of one argument position. Candidate
  /// facts whose column value clashes with the accumulated join state are
  /// skipped without touching the constraint machinery.
  struct ArgSignature {
    std::optional<SymbolId> symbol;
    std::optional<Rational> number;
  };

  /// Reference to a fact in a database: predicate plus row index.
  struct FactRef {
    PredId pred;
    size_t index;
  };

  /// Classification of one argument position of one stored fact, computed
  /// once at insertion and stored in the position's column.
  enum class ColTag : uint8_t {
    /// The fact's arity does not reach this position. Such rows are never
    /// enumerated by probes at the position (the arity check would reject
    /// them anyway).
    kAbsent = 0,
    /// No direct value and no finite numeric bounds — matches any probe.
    kUnbound,
    /// Bound to a symbolic constant (column's `symbols` array holds it).
    kSymbol,
    /// Bound to a single numeric point (column's `numbers` array holds it).
    /// These rows feed the interval index's sorted bound runs.
    kNumber,
    /// Numerically constrained short of a stored point: the fact's
    /// constraint gives the position finite lower and/or upper bounds
    /// (interval-propagated at insertion, kept in the interval index).
    kInterval,
  };

  /// Attempts to insert; `birth` is the deriving iteration. `rule_label`
  /// and `parents` record provenance (empty for EDB facts). `edb` marks a
  /// base fact — a row retractions may target (eval/retract.h); the
  /// derivation path never sets it.
  InsertOutcome Insert(Fact fact, int birth, SubsumptionMode mode,
                       std::string rule_label = "",
                       std::vector<FactRef> parents = {}, bool edb = false);

  /// True if a structurally identical fact is stored.
  bool ContainsKey(const std::string& key) const {
    return keys_.count(key) > 0;
  }

  /// Row index of the structurally identical stored fact, if any.
  std::optional<size_t> RowOf(const std::string& key) const {
    auto it = keys_.find(key);
    if (it == keys_.end()) return std::nullopt;
    return it->second;
  }

  /// Row storage is append-only: Insert never reorders or removes, so row
  /// indexes are stable and iterating over a size snapshot taken before a
  /// batch of inserts visits exactly the pre-batch facts (the
  /// emit-visibility contract of rule_application.h relies on this together
  /// with birth stamps).
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Row accessors; `i < size()` is the caller's obligation.
  const Fact& fact(size_t i) const {
    return chunks_[i >> kChunkShift]->facts[i & kChunkMask];
  }
  int birth(size_t i) const {
    return chunks_[i >> kChunkShift]->births[i & kChunkMask];
  }
  /// Cached Fact::IsGround(), computed once at insertion: the subsumption
  /// fast path relies on it (a ground fact cannot subsume a distinct fact).
  bool ground(size_t i) const {
    return chunks_[i >> kChunkShift]->ground[i & kChunkMask] != 0;
  }
  /// Provenance (Definition 2.2's derivation trees): the rule that derived
  /// this fact and the body facts used, in body-literal order. Empty rule
  /// label and parents for EDB facts.
  const std::string& rule_label(size_t i) const {
    return chunks_[i >> kChunkShift]->rule_labels[i & kChunkMask];
  }
  const std::vector<FactRef>& parents(size_t i) const {
    return chunks_[i >> kChunkShift]->parents[i & kChunkMask];
  }

  /// True if the row is a base (EDB) fact — the only rows a retraction may
  /// name directly.
  bool edb(size_t i) const {
    return chunks_[i >> kChunkShift]->edb[i & kChunkMask] != 0;
  }
  /// Counting maintenance (DESIGN.md §14): number of derivation events that
  /// produced this fact — 1 for the storing event (EDB load or the first
  /// kInserted derivation) plus one per later duplicate-discarded event.
  /// support() == 1 means the recorded parents are the row's *only*
  /// derivation, so losing one of them kills the row without re-derivation.
  long support(size_t i) const {
    return chunks_[i >> kChunkShift]->support[i & kChunkMask];
  }
  /// Number of candidate derivations this row discarded by single-fact
  /// subsumption. A retracted row with blocked() > 0 may have suppressed
  /// facts a scratch run would store, so deleting it forces re-derivation.
  long blocked(size_t i) const {
    return chunks_[i >> kChunkShift]->blocked[i & kChunkMask];
  }
  /// Bump the counters above for row `i` (clones a shared chunk first, so
  /// snapshot copies never observe the update).
  void BumpSupport(size_t i);
  void BumpBlocked(size_t i);

  /// Subsumption events charged against this relation that cannot be pinned
  /// on one stored row (a set-implication cover, or a subsumer that was
  /// itself discarded). Any such event poisons row-level counting for the
  /// whole relation: a retraction must fall back to re-derivation there.
  long opaque_subsumption_events() const { return opaque_subsumption_events_; }
  void NoteOpaqueSubsumption() { ++opaque_subsumption_events_; }

  /// Rebuilds this relation without the rows marked in `dead` (indexed by
  /// row; rows beyond dead.size() are kept), preserving births, provenance
  /// labels, EDB flags, and the support/blocked counters of surviving rows.
  /// `remap` (may be null) rewrites each surviving row's parent references —
  /// callers pass the old-row -> new-row maps of *other* spliced relations;
  /// it is never called on a reference into this relation. Surviving rows
  /// are re-inserted in order, so indexes, chunk boundaries, and interval
  /// runs end up exactly as if only the survivors had ever been inserted.
  Relation Spliced(const std::vector<uint8_t>& dead,
                   const std::function<FactRef(FactRef)>& remap) const;

  /// Column reads for the join pre-filter. `position` is 1-based; positions
  /// beyond the fact's arity read kAbsent. symbol_at / number_at are only
  /// meaningful when the tag is kSymbol / kNumber respectively.
  ColTag tag(size_t i, int position) const {
    const Chunk& chunk = *chunks_[i >> kChunkShift];
    size_t p = static_cast<size_t>(position - 1);
    if (p >= chunk.columns.size()) return ColTag::kAbsent;
    return static_cast<ColTag>(chunk.columns[p].tags[i & kChunkMask]);
  }
  SymbolId symbol_at(size_t i, int position) const {
    const Chunk& chunk = *chunks_[i >> kChunkShift];
    return chunk.columns[static_cast<size_t>(position - 1)]
        .symbols[i & kChunkMask];
  }
  const Rational& number_at(size_t i, int position) const {
    const Chunk& chunk = *chunks_[i >> kChunkShift];
    return chunk.columns[static_cast<size_t>(position - 1)]
        .numbers[i & kChunkMask];
  }

  /// Number of rows a hash-index probe at 1-based `position` for `value`
  /// would enumerate (bound matches plus the unbound fallback list), with
  /// no limit applied. Used to pick the most selective bound position
  /// before materializing a probe.
  size_t ProbeCost(int position, const ArgSignature& value) const;

  /// Hash-index probe: the row indexes, in ascending (= insertion) order
  /// and restricted to indexes < `limit`, of facts that can match `value`
  /// at 1-based `position`. That is facts whose column binds the position
  /// to exactly the probed symbol/number, merged with facts whose column
  /// leaves the position unbound — constraint facts restrict such positions
  /// only through their constraint part (e.g. `$1 > 0`), so they can match
  /// any probed value and are always enumerated.
  ///
  /// `value` must have exactly one of symbol/number set. Enumerating the
  /// result under the caller's arity and column checks visits exactly the
  /// facts a linear scan over rows [0, limit) keeps after its column
  /// pre-filter at this position.
  ///
  /// Returns a reference valid until the next Insert: either a posting list
  /// owned by the index (the common no-merge case — no allocation, the hot
  /// join path's win) or `*scratch` after filling it. `scratch` must be
  /// non-null and outlive the use of the returned reference.
  const std::vector<size_t>& Probe(int position, const ArgSignature& value,
                                   size_t limit,
                                   std::vector<size_t>* scratch) const;

  /// Upper bound on the rows an interval probe at `position` with `query`
  /// would enumerate: the sorted-run ranges admitted by the query (binary
  /// searched, exact) plus every not-yet-sealed point row, ranged row, and
  /// unprunable (symbol/unbound) row. Cheap — no per-row value checks — and
  /// never under-reports, so callers can compare it against the scan size
  /// when choosing an access path.
  size_t IntervalProbeCost(int position, const Interval& query) const;

  /// Interval-index probe (DESIGN.md §12): the row indexes, ascending and
  /// < `limit`, of facts NOT provably excluded by `query` at 1-based
  /// `position`:
  ///  - point rows (ColTag::kNumber) whose value lies in `query` — whole
  ///    runs of out-of-range rows are skipped by binary search on the
  ///    sorted bound runs;
  ///  - ranged rows (kInterval) whose propagated bound summary intersects
  ///    `query`;
  ///  - every kSymbol / kUnbound row (never numerically excluded).
  /// A pruned row is one whose conjunction with any join state entailing
  /// `query` at this position is unsatisfiable, so enumerating the result
  /// makes exactly the derivations the full scan would, in the same order.
  /// When `runs_pruned` is non-null it accumulates the number of sealed
  /// runs the binary search rejected wholesale. Reference semantics as
  /// Probe (`*scratch` is used whenever filtering or merging is needed).
  const std::vector<size_t>& IntervalProbe(int position, const Interval& query,
                                           size_t limit,
                                           std::vector<size_t>* scratch,
                                           long* runs_pruned = nullptr) const;

  /// True if any row at `position` carries numeric content the interval
  /// index can prune on (a point value or a finite bound summary).
  bool HasIntervalIndex(int position) const;

  /// True if every stored fact is ground.
  bool AllGround() const;

  /// Largest birth stamp ever stored (-2 while empty). A cheap
  /// delta-availability bound for semi-naive joins: no row of this relation
  /// can have birth == b when max_birth() < b. The bound is an
  /// over-approximation in the other direction — it never decreases, so it
  /// can exceed the birth of every *current* row; callers may only use it
  /// to prune, never to assert a delta exists.
  int max_birth() const { return max_birth_; }

  /// Nanoseconds spent building interval-index state (bound propagation of
  /// inserted constraints, run sealing and merging) over this relation's
  /// lifetime. Monotone; surfaced through EvalStats.
  long interval_build_ns() const { return interval_build_ns_; }

  /// Approximate resident bytes of this relation: chunked columns, fact
  /// payloads, provenance, key set, and both indexes. An estimate (heap
  /// allocator overhead and small-string storage are approximated), meant
  /// for bytes-per-fact trend reporting, not exact accounting. Chunks
  /// shared with other Relation copies are counted in full here; see
  /// SharedBytes for the portion a copy would share.
  size_t ApproxBytes() const;

  /// Approximate bytes of this relation held in chunks shared with at least
  /// one other Relation copy — the storage a snapshot copy reuses instead
  /// of duplicating (the copy-on-write saving of DESIGN.md §12).
  size_t SharedBytes() const;

 private:
  /// Rows per chunk. Power of two so row -> (chunk, offset) is a shift and
  /// a mask on the hot accessors.
  static constexpr size_t kChunkShift = 8;
  static constexpr size_t kChunkRows = size_t{1} << kChunkShift;
  static constexpr size_t kChunkMask = kChunkRows - 1;

  /// Point rows accumulate in an unsorted tail; at this size the tail is
  /// sorted and sealed into a bound run.
  static constexpr size_t kRunSeal = 128;
  /// Sealed runs beyond this count are merged into one (amortized O(log n)
  /// sort work per row), bounding the binary searches per probe.
  static constexpr size_t kMaxRuns = 8;

  /// One argument position's value column within a chunk; arrays are
  /// parallel to the chunk's row arrays (padded with kAbsent defaults for
  /// rows inserted before the column first appeared).
  struct Column {
    std::vector<uint8_t> tags;      // ColTag per row
    std::vector<SymbolId> symbols;  // valid where tag == kSymbol
    std::vector<Rational> numbers;  // valid where tag == kNumber
  };

  /// A columnar segment of kChunkRows rows. Only the last chunk of a
  /// relation is ever appended to; a chunk reachable from more than one
  /// Relation is cloned before mutation (copy-on-write), so shared chunks
  /// are de-facto immutable.
  struct Chunk {
    std::vector<Fact> facts;
    std::vector<int> births;
    std::vector<uint8_t> ground;
    std::vector<uint8_t> edb;     // base-fact flag (retraction targets)
    std::vector<long> support;    // derivation events per row (counting)
    std::vector<long> blocked;    // derivations this row subsumed away
    std::vector<std::string> rule_labels;
    std::vector<std::vector<FactRef>> parents;
    std::vector<Column> columns;
  };

  /// Exact map key of a directly-bound value — the bound symbol, or the
  /// bound number when no symbol is bound. An exact key (not a bare hash):
  /// conflating two distinct values would merge their posting lists and
  /// corrupt join results. Symbols and numbers cannot collide (a key is a
  /// symbol key iff `symbol` is set; `number` is ignored then).
  struct IndexKey {
    std::optional<SymbolId> symbol;
    Rational number;

    bool operator==(const IndexKey& other) const {
      return symbol == other.symbol &&
             (symbol.has_value() || number == other.number);
    }
  };
  struct IndexKeyHash {
    size_t operator()(const IndexKey& key) const {
      // Tags keep a symbol's hash distinct from a number's even when the
      // underlying integer values coincide.
      return key.symbol.has_value()
                 ? std::hash<SymbolId>()(*key.symbol) ^ size_t{0x9e3779b9}
                 : key.number.Hash();
    }
  };

  /// Per-argument-position hash index, maintained by Insert. Only facts
  /// that were actually stored (InsertOutcome::kInserted) are indexed;
  /// duplicates and subsumed facts never enter. Row-id lists are ascending
  /// because ids are assigned in insertion order.
  struct PositionIndex {
    std::unordered_map<IndexKey, std::vector<size_t>, IndexKeyHash> by_value;
    std::vector<size_t> unbound;
  };

  /// A sealed sorted run of point-valued rows: `values` ascending (ties by
  /// row id), `rows` parallel. Binary search admits or rejects the whole
  /// run range for a query interval.
  struct BoundRun {
    std::vector<Rational> values;
    std::vector<size_t> rows;
  };

  /// Per-argument-position interval index over the numeric content of the
  /// column: sorted bound runs + unsorted tail for point rows, propagated
  /// bound summaries for ranged rows, and the unprunable remainder.
  struct IntervalIndex {
    std::vector<BoundRun> runs;
    std::vector<size_t> tail_rows;      // insertion order
    std::vector<Rational> tail_values;  // parallel
    std::vector<size_t> ranged_rows;    // kInterval rows, insertion order
    std::vector<Interval> ranged_ivals;  // parallel bound summaries
    std::vector<size_t> loose;  // kSymbol + kUnbound rows — always enumerated
  };

  /// Index key of a signature binding a symbol or a number (exactly one
  /// must be set). No string is materialized — Probe/ProbeCost run once
  /// per candidate join, and the old "s<id>"/"n<rational>" string keys
  /// showed up as allocation hot spots.
  static IndexKey KeyOf(const ArgSignature& value);

  /// The chunk the next row lands in, exclusively owned: starts a fresh
  /// chunk when the tail is full, clones the tail first when it is shared
  /// with another Relation copy (copy-on-write).
  Chunk* TailChunkForAppend();

  /// Exclusive ownership of an arbitrary chunk for a counter update
  /// (clone-on-write when shared with a snapshot copy).
  Chunk* ChunkForCounterUpdate(size_t chunk_index);

  /// Seals the tail of `idx` into a sorted run; merges all runs into one
  /// when their count exceeds kMaxRuns.
  void SealTail(IntervalIndex* idx);

  /// Approximate resident bytes of one chunk (rows, provenance, columns).
  static size_t ApproxChunkBytes(const Chunk& chunk);

  std::vector<std::shared_ptr<Chunk>> chunks_;
  size_t size_ = 0;
  std::unordered_map<std::string, size_t> keys_;  // structural key -> row
  std::vector<PositionIndex> index_;   // index_[p-1]; sized to max arity seen
  std::vector<IntervalIndex> ival_index_;  // parallel to index_
  int max_birth_ = -2;
  long interval_build_ns_ = 0;
  long opaque_subsumption_events_ = 0;
};

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_RELATION_H_
