#include "eval/provenance.h"

namespace cqlopt {
namespace {

/// Resolves `ref` to its relation, or NotFound when the ref names no stored
/// row. The row index is returned through `ref` validation — callers read
/// the row via the relation's columnar accessors.
Result<const Relation*> Lookup(const Database& db, Relation::FactRef ref) {
  const Relation* rel = db.Find(ref.pred);
  if (rel == nullptr || ref.index >= rel->size()) {
    return Status::NotFound("no such fact: pred " + std::to_string(ref.pred) +
                            " index " + std::to_string(ref.index));
  }
  return rel;
}

Status RenderNode(const Database& db, Relation::FactRef ref,
                  const SymbolTable& symbols, const std::string& prefix,
                  bool is_last, bool is_root, std::string* out, int depth) {
  if (depth > 256) {
    return Status::Internal("derivation tree too deep (cycle?)");
  }
  CQLOPT_ASSIGN_OR_RETURN(const Relation* rel, Lookup(db, ref));
  if (!is_root) {
    *out += prefix;
    *out += is_last ? "`- " : "|- ";
  }
  *out += rel->fact(ref.index).ToString(symbols);
  const std::string& rule_label = rel->rule_label(ref.index);
  if (!rule_label.empty()) *out += "  [" + rule_label + "]";
  *out += "\n";
  std::string child_prefix =
      is_root ? "" : prefix + (is_last ? "   " : "|  ");
  const std::vector<Relation::FactRef>& parents = rel->parents(ref.index);
  for (size_t i = 0; i < parents.size(); ++i) {
    CQLOPT_RETURN_IF_ERROR(RenderNode(db, parents[i], symbols, child_prefix,
                                      i + 1 == parents.size(),
                                      /*is_root=*/false, out, depth + 1));
  }
  return Status::OK();
}

}  // namespace

Result<std::string> RenderDerivationTree(const Database& db,
                                         Relation::FactRef ref,
                                         const SymbolTable& symbols) {
  std::string out;
  CQLOPT_RETURN_IF_ERROR(
      RenderNode(db, ref, symbols, "", /*is_last=*/true, /*is_root=*/true,
                 &out, /*depth=*/0));
  return out;
}

Result<int> DerivationTreeSize(const Database& db, Relation::FactRef ref) {
  CQLOPT_ASSIGN_OR_RETURN(const Relation* rel, Lookup(db, ref));
  int size = 1;
  for (const Relation::FactRef& parent : rel->parents(ref.index)) {
    CQLOPT_ASSIGN_OR_RETURN(int child, DerivationTreeSize(db, parent));
    size += child;
  }
  return size;
}

std::optional<Relation::FactRef> FindFactByText(const Database& db,
                                                PredId pred,
                                                const std::string& text,
                                                const SymbolTable& symbols) {
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return std::nullopt;
  for (size_t i = 0; i < rel->size(); ++i) {
    if (rel->fact(i).ToString(symbols) == text) {
      return Relation::FactRef{pred, i};
    }
  }
  return std::nullopt;
}

}  // namespace cqlopt
