#include "eval/provenance.h"

namespace cqlopt {
namespace {

Result<const Relation::Entry*> Lookup(const Database& db,
                                      Relation::FactRef ref) {
  const Relation* rel = db.Find(ref.pred);
  if (rel == nullptr || ref.index >= rel->entries().size()) {
    return Status::NotFound("no such fact: pred " + std::to_string(ref.pred) +
                            " index " + std::to_string(ref.index));
  }
  return &rel->entries()[ref.index];
}

Status RenderNode(const Database& db, Relation::FactRef ref,
                  const SymbolTable& symbols, const std::string& prefix,
                  bool is_last, bool is_root, std::string* out, int depth) {
  if (depth > 256) {
    return Status::Internal("derivation tree too deep (cycle?)");
  }
  CQLOPT_ASSIGN_OR_RETURN(const Relation::Entry* entry, Lookup(db, ref));
  if (!is_root) {
    *out += prefix;
    *out += is_last ? "`- " : "|- ";
  }
  *out += entry->fact.ToString(symbols);
  if (!entry->rule_label.empty()) *out += "  [" + entry->rule_label + "]";
  *out += "\n";
  std::string child_prefix =
      is_root ? "" : prefix + (is_last ? "   " : "|  ");
  for (size_t i = 0; i < entry->parents.size(); ++i) {
    CQLOPT_RETURN_IF_ERROR(RenderNode(db, entry->parents[i], symbols,
                                      child_prefix,
                                      i + 1 == entry->parents.size(),
                                      /*is_root=*/false, out, depth + 1));
  }
  return Status::OK();
}

}  // namespace

Result<std::string> RenderDerivationTree(const Database& db,
                                         Relation::FactRef ref,
                                         const SymbolTable& symbols) {
  std::string out;
  CQLOPT_RETURN_IF_ERROR(
      RenderNode(db, ref, symbols, "", /*is_last=*/true, /*is_root=*/true,
                 &out, /*depth=*/0));
  return out;
}

Result<int> DerivationTreeSize(const Database& db, Relation::FactRef ref) {
  CQLOPT_ASSIGN_OR_RETURN(const Relation::Entry* entry, Lookup(db, ref));
  int size = 1;
  for (const Relation::FactRef& parent : entry->parents) {
    CQLOPT_ASSIGN_OR_RETURN(int child, DerivationTreeSize(db, parent));
    size += child;
  }
  return size;
}

std::optional<Relation::FactRef> FindFactByText(const Database& db,
                                                PredId pred,
                                                const std::string& text,
                                                const SymbolTable& symbols) {
  const Relation* rel = db.Find(pred);
  if (rel == nullptr) return std::nullopt;
  for (size_t i = 0; i < rel->entries().size(); ++i) {
    if (rel->entries()[i].fact.ToString(symbols) == text) {
      return Relation::FactRef{pred, i};
    }
  }
  return std::nullopt;
}

}  // namespace cqlopt
