#ifndef CQLOPT_EVAL_RETRACT_H_
#define CQLOPT_EVAL_RETRACT_H_

#include <vector>

#include "eval/seminaive.h"

namespace cqlopt {

/// DRed-style incremental maintenance (DESIGN.md §14): removes base (EDB)
/// facts from a finished evaluation and repairs the derived state so it
/// matches what evaluating the surviving base facts from scratch would
/// produce.
///
/// `base` must have reached its fixpoint (same precondition as
/// ResumeEvaluate; InvalidArgument otherwise). Each fact in `retracted` is
/// matched *structurally* (Fact::Key) against stored rows flagged as base
/// facts; requests that match nothing — retracting a fact that was never
/// inserted, was already retracted, or names a derived-only fact — are
/// counted in stats.retract_missing and otherwise ignored, so retraction
/// batches are idempotent.
///
/// Maintenance picks the cheapest sound path, recorded in
/// stats.retract_path:
///  - "noop"    nothing matched; the base is returned unchanged.
///  - "splice"  every deleted row could be removed in place: retracted
///              predicates no rule mentions, plus derived rows proven
///              removable by counting (support() == 1 with a dead witness
///              and nothing blocked) — no rule re-runs at all.
///  - "prefix"  the SCC linearization splits into a kept prefix (strata
///              untouched by the deletions, or repaired row-by-row via the
///              counting state for non-recursive strata) and a recomputed
///              suffix: derived rows of suffix strata are dropped
///              wholesale (the DRed over-deletion) and re-derived by the
///              stratified fixpoint starting mid-plan — the re-derivation
///              reuses the exact delta machinery of the semi-naive loop.
///  - "full"    the base is not a pure stratified evaluation (e.g. it was
///              extended by ResumeEvaluate) or traces cannot be split:
///              surviving base facts are rebuilt at birth -1 and evaluated
///              from scratch with `options`.
///
/// Equivalence contract: when `base` is exactly the result of
/// Evaluate(program, edb, options) with options.strategy == kStratified
/// (a "pure" base — service materializations right after a cold
/// evaluation, or any chain of RetractEvaluate calls on one), the result
/// is byte-identical — facts, row order, birth stamps, traces — to
/// Evaluate(program, surviving_edb, options), where surviving_edb holds
/// the surviving base facts in their original insertion order. This is
/// the retract_vs_scratch property of src/testing/properties.cc. For
/// impure bases the result is denotationally equal to that scratch run
/// (same facts per predicate, same answers) but may differ in row order
/// and birth stamps, exactly like ResumeEvaluate's contract.
///
/// Work counters (derivations / inserted / cache / prepass) accumulate on
/// top of the base's, reflecting the incremental work actually done — they
/// are NOT scratch-identical. iterations / scc_iterations /
/// reached_fixpoint / facts_per_pred / all_ground ARE scratch-identical on
/// pure bases, so a later ResumeEvaluate or RetractEvaluate composes.
Result<EvalResult> RetractEvaluate(const Program& program, EvalResult base,
                                   const std::vector<Fact>& retracted,
                                   const EvalOptions& options);

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_RETRACT_H_
