#ifndef CQLOPT_EVAL_VALIDATE_H_
#define CQLOPT_EVAL_VALIDATE_H_

#include "ast/program.h"

namespace cqlopt {

/// Structural pre-flight run by Evaluate/ResumeEvaluate before any fixpoint
/// work. Rejects, with a clean InvalidArgument Status naming the offending
/// rule or predicate, two program shapes that are never meaningful in
/// hand-written programs and that random program generators
/// (src/testing/generator.h) readily produce:
///
///  - *Unbound head variables*: a head variable that appears in no body
///    literal and in no constraint atom. The rule would derive facts whose
///    position is completely unconstrained — almost always a typo in a
///    hand-written program. The check is option-gated because the magic
///    rewrite *deliberately* emits free head positions: an unbound
///    adornment position of a magic predicate carries no constraint (e.g.
///    `mr3_1: m_fib(N1, X1) :- m_fib(N, V), N - N1 = 1, N > 1.` in Table
///    1's P_fib^mg, where X1 is fib's free second argument), so the engine
///    path validates with `reject_free_head_vars = false` and the strict
///    default applies to parsed user programs and fuzz inputs.
///
///  - *Constraint-only recursion*: a recursive SCC of the dependency graph
///    in which every rule has at least one body literal inside the SCC.
///    Such a component has no exit rule — its first fact would need an
///    in-SCC fact to already exist — so recursion is grounded only in
///    constraints and the component can never derive anything; the
///    Gen_*_constraints fixpoints would chase it pointlessly.
///
/// Programs the paper's examples and the transformation outputs produce all
/// pass the engine-path configuration: constraint facts (body-free rules)
/// count as exit rules, and head variables bound only through constraints
/// (e.g. `T = T1 + T2 + 30`) are bound.
struct ValidateOptions {
  bool reject_free_head_vars = true;
  bool reject_constraint_only_recursion = true;
};

Status ValidateProgram(const Program& program,
                       const ValidateOptions& options = {});

}  // namespace cqlopt

#endif  // CQLOPT_EVAL_VALIDATE_H_
