#include "eval/loader.h"

#include "ast/arg_map.h"
#include "ast/parser.h"

namespace cqlopt {

Result<int> LoadDatabaseText(const std::string& text,
                             std::shared_ptr<SymbolTable> symbols,
                             Database* db) {
  CQLOPT_ASSIGN_OR_RETURN(ParseResult parsed,
                          ParseProgram(text, std::move(symbols)));
  if (!parsed.queries.empty()) {
    return Status::InvalidArgument("database text must not contain queries");
  }
  int loaded = 0;
  for (const Rule& rule : parsed.program.rules) {
    if (!rule.IsConstraintFact()) {
      return Status::InvalidArgument(
          "database text must contain only facts; rule '" + rule.label +
          "' has a body");
    }
    // Convert the head's variable-form constraints to argument-position
    // form, exactly as a derived fact would be built.
    CQLOPT_ASSIGN_OR_RETURN(Conjunction over_positions,
                            LtopConjunction(rule.head, rule.constraints));
    if (!over_positions.IsSatisfiable()) {
      return Status::InvalidArgument("unsatisfiable fact in database text");
    }
    over_positions.Simplify();
    db->AddFact(
        Fact(rule.head.pred, rule.head.arity(), std::move(over_positions)));
    ++loaded;
  }
  return loaded;
}

}  // namespace cqlopt
