#include "eval/loader.h"

#include "ast/arg_map.h"
#include "ast/parser.h"
#include "ast/printer.h"

namespace cqlopt {
namespace {

/// Positional load error: cites the 1-based source line and the offending
/// statement rendered back in the surface syntax, so a bad row in a large
/// fact file can be found without bisecting the input.
Status FactError(int line, const std::string& statement,
                 const std::string& problem) {
  return Status::InvalidArgument("database text line " + std::to_string(line) +
                                 ": " + problem + ": " + statement);
}

}  // namespace

Result<int> LoadDatabaseText(const std::string& text,
                             std::shared_ptr<SymbolTable> symbols,
                             Database* db) {
  CQLOPT_ASSIGN_OR_RETURN(ParseResult parsed,
                          ParseProgram(text, std::move(symbols)));
  if (!parsed.queries.empty()) {
    return Status::InvalidArgument(
        "database text line " + std::to_string(parsed.queries[0].source_line) +
        ": queries are not allowed in an EDB: " +
        RenderQuery(parsed.queries[0], *parsed.program.symbols));
  }
  int loaded = 0;
  for (const Rule& rule : parsed.program.rules) {
    if (!rule.IsConstraintFact()) {
      return FactError(rule.source_line,
                       RenderRule(rule, *parsed.program.symbols),
                       "rule has a body; only facts are allowed");
    }
    // Convert the head's variable-form constraints to argument-position
    // form, exactly as a derived fact would be built.
    CQLOPT_ASSIGN_OR_RETURN(Conjunction over_positions,
                            LtopConjunction(rule.head, rule.constraints));
    if (!over_positions.IsSatisfiable()) {
      return FactError(rule.source_line,
                       RenderRule(rule, *parsed.program.symbols),
                       "fact is unsatisfiable");
    }
    over_positions.Simplify();
    db->AddFact(
        Fact(rule.head.pred, rule.head.arity(), std::move(over_positions)));
    ++loaded;
  }
  return loaded;
}

}  // namespace cqlopt
