#ifndef CQLOPT_TRANSFORM_WIDENING_H_
#define CQLOPT_TRANSFORM_WIDENING_H_

#include "transform/predicate_constraints.h"

namespace cqlopt {

/// Options of the widening fixpoint (see GenPredicateConstraintsWithWidening).
struct WideningOptions {
  InferenceOptions base;
  /// Exact Single_step iterations before widening kicks in; more warmup
  /// means tighter invariants (classic delayed-widening).
  int warmup = 4;
  /// Cap on widening iterations after warmup.
  int max_widening_iterations = 16;
};

/// Result of the widening fixpoint.
struct WideningResult {
  /// Per-predicate predicate constraints — a single conjunction each (the
  /// convex-hull style invariant), sound but not minimum in general.
  std::map<PredId, ConstraintSet> constraints;
  /// True when a post-fixpoint was found and verified inductive.
  bool converged = false;
  /// True when the exact fixpoint converged during warmup (the result then
  /// equals GenPredicateConstraints' minimum constraints).
  bool exact = false;
  int iterations = 0;
};

/// **Extension beyond the paper.** Gen_predicate_constraints with
/// abstract-interpretation widening.
///
/// The paper shows (Theorem 3.1) that minimum predicate constraints need
/// not be finitely representable — its Example 4.4 therefore *hand-picks*
/// the sound constraint `fib: $2 >= 1` that makes Table 2's evaluation
/// terminate. This procedure derives such constraints automatically:
///
///   1. run the exact Single_step iteration for `warmup` rounds;
///   2. collapse each predicate's disjunction to its *hull* — the
///      conjunction of atom relaxations implied by every disjunct
///      (equalities contribute both inequality directions, so
///      {$2 = 1} ∨ {$2 = 2} hulls to $2 >= 1);
///   3. iterate with the standard widening operator — keep only the hull
///      atoms the next approximation still implies — until nothing drops;
///   4. verify the candidate is inductive (one more Single_step stays
///      within it) and return it; on failure, fall back to `true`.
///
/// On the backward-Fibonacci program this derives ($1 >= 0 & $2 >= 1),
/// subsuming the paper's hand-picked constraint; bench_table2's companion
/// test (tests/test_widening.cc) shows the resulting magic evaluation
/// terminates with no human input.
Result<WideningResult> GenPredicateConstraintsWithWidening(
    const Program& program,
    const std::map<PredId, ConstraintSet>& edb_constraints,
    const WideningOptions& options);

/// The hull of a constraint set: the strongest single conjunction of
/// candidate atoms (the disjuncts' atoms plus relaxations of their
/// equalities) implied by every disjunct; Conjunction::False() for the
/// empty set. Exposed for tests.
Conjunction HullOf(const ConstraintSet& set);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_WIDENING_H_
