#ifndef CQLOPT_TRANSFORM_FOLD_UNFOLD_H_
#define CQLOPT_TRANSFORM_FOLD_UNFOLD_H_

#include <optional>

#include "ast/program.h"

namespace cqlopt {

/// The Tamaki–Sato fold/unfold steps, restricted as in Appendix A to the
/// shapes the paper's transformations need. These are the primitive moves
/// behind Gen_Prop_QRP_constraints (Section 4.3) and the GMT grounding
/// procedure Ground_Fold_Unfold (Section 6.2); their correctness gives
/// Theorem 4.3's query equivalence.

/// Definition step (Appendix A): builds the rule
///   `new_pred(X̄) :- C(X̄), base_pred(X̄).`
/// over fresh distinct variables, where `constraint_over_args` is given in
/// argument-position form ($1..arity) and is PTOL-converted onto X̄.
Rule MakeDefinition(PredId new_pred, PredId base_pred, int arity,
                    const Conjunction& constraint_over_args,
                    VarAllocator* alloc, const std::string& label);

/// Unfolding step (Appendix A): resolves `rule.body[body_index]` against
/// every rule of `defs` whose head predicate matches, returning one resolvent
/// per (satisfiable) resolution. The resolved rule's variables are renamed
/// apart via `alloc`. Repeated variables in a definition head induce
/// equality constraints, as mgu semantics require.
Result<std::vector<Rule>> UnfoldLiteral(const Program& defs, const Rule& rule,
                                        size_t body_index, VarAllocator* alloc);

/// Folding step (Appendix A, generalized to multi-literal definitions for
/// the GMT grounding): if `rule`'s body contains an instance of `def`'s body
/// literals (a consistent variable matching, with any induced equalities
/// entailed by `rule`'s constraints) whose instantiated definition
/// constraints are implied by `rule`'s constraints, replaces those body
/// literals with the instantiated `def` head and returns the folded rule.
/// `anchor_index`, when >= 0, requires the match to include that body
/// literal (used to fold a specific occurrence).
///
/// Returns nullopt when no such match exists. The caller is responsible for
/// avoiding degenerate folds (a rule folded by itself), per Appendix A's
/// closing remark.
std::optional<Rule> TryFold(const Rule& rule, const Rule& def,
                            int anchor_index);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_FOLD_UNFOLD_H_
