#ifndef CQLOPT_TRANSFORM_PROPAGATE_H_
#define CQLOPT_TRANSFORM_PROPAGATE_H_

#include "transform/predicate_constraints.h"

namespace cqlopt {

/// Options of the QRP propagation step.
struct PropagateOptions {
  /// After propagation, predicates whose original rules were all deleted
  /// get their primed replacement renamed back (flight' -> flight), giving
  /// the presentation of Example 4.3. Purely cosmetic.
  bool rename_back = false;
};

/// Procedure Gen_Prop_QRP_constraints' propagation phase (Section 4.3):
/// given QRP constraints per predicate (in argument-position form), for
/// every derived predicate p with a nontrivial QRP constraint of m
/// disjuncts it
///   1. performs m definition steps creating p'(X̄) :- PTOL(d_i), p(X̄);
///   2. unfolds p's definition into the new rules;
///   3. folds the original definitions of p' into every rule with a body
///      occurrence of p.
/// When a rule's constraints imply no single disjunct, the rule is split
/// into one copy per disjunct (footnote 4; the copies' union is equivalent
/// because the literal constraint implies the disjunction — see DESIGN.md).
/// Rules unreachable from `query_pred` are deleted afterwards.
///
/// Correctness is Theorem 4.3 (query equivalence) and Theorem 4.4 (ground
/// facts stay ground; fewer facts computed).
Result<Program> PropagateQrpConstraints(
    const Program& program, PredId query_pred,
    const std::map<PredId, ConstraintSet>& qrp, const PropagateOptions& options);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_PROPAGATE_H_
