#include "transform/constraint_rewrite.h"

#include <set>

#include "ast/normalize.h"
#include "transform/balbin_c.h"

namespace cqlopt {

Result<ConstraintRewriteResult> ConstraintRewrite(
    const Program& program, PredId query_pred,
    const ConstraintRewriteOptions& options) {
  ConstraintRewriteResult result;

  // Step 1: query wrapper q1(X̄) :- q(X̄).
  Program wrapped = program;
  VarAllocator alloc = MakeAllocator(wrapped);
  int query_arity = wrapped.Arity(query_pred);
  if (query_arity < 0) {
    return Status::InvalidArgument("unknown arity for query predicate");
  }
  PredId wrapper = wrapped.symbols->FreshPredicate(
      wrapped.symbols->PredicateName(query_pred) + "_q1");
  CQLOPT_RETURN_IF_ERROR(wrapped.DeclareArity(wrapper, query_arity));
  wrapped.rules.push_back(
      MakeBridgeRule(wrapper, query_pred, query_arity, &alloc, "q1"));

  // Step 2: generate and propagate minimum predicate constraints.
  Program pred_propagated = wrapped;
  if (options.apply_predicate_constraints) {
    InferenceResult inference;
    CQLOPT_ASSIGN_OR_RETURN(
        pred_propagated,
        PropagatePredicateConstraints(wrapped, options.edb_constraints,
                                      options.inference, &inference));
    result.predicate_constraints = std::move(inference.constraints);
    result.predicate_converged = inference.converged;
  }

  // Step 3: generate and propagate QRP constraints, with the wrapper as
  // query predicate.
  CQLOPT_ASSIGN_OR_RETURN(
      InferenceResult qrp,
      options.syntactic_generation
          ? GenSyntacticQrpConstraints(pred_propagated, wrapper,
                                       options.inference)
          : GenQrpConstraints(pred_propagated, wrapper, options.inference));
  result.qrp_constraints = qrp.constraints;
  result.qrp_converged = qrp.converged;
  CQLOPT_ASSIGN_OR_RETURN(
      Program propagated,
      PropagateQrpConstraints(pred_propagated, wrapper, qrp.constraints,
                              options.propagate));

  // Step 4: delete the wrapper's rules; the real query predicate takes
  // over. (The wrapper's QRP constraint was `true`, so the query
  // predicate's rewritten rules are already in place.)
  std::vector<Rule> kept;
  for (Rule& rule : propagated.rules) {
    if (rule.head.pred != wrapper) kept.push_back(std::move(rule));
  }
  propagated.rules = std::move(kept);
  // The query predicate may have been primed (query_pred'); rename back if
  // its original name lost all rules.
  {
    std::set<PredId> heads;
    for (const Rule& rule : propagated.rules) heads.insert(rule.head.pred);
    if (heads.count(query_pred) == 0) {
      PredId primed = propagated.symbols->LookupPredicate(
          propagated.symbols->PredicateName(query_pred) + "'");
      if (primed != SymbolTable::kNoPred && heads.count(primed) > 0) {
        for (Rule& rule : propagated.rules) {
          if (rule.head.pred == primed) rule.head.pred = query_pred;
          for (Literal& lit : rule.body) {
            if (lit.pred == primed) lit.pred = query_pred;
          }
        }
      }
    }
  }
  propagated.RemoveUnreachable(query_pred);
  result.program = std::move(propagated);
  return result;
}

}  // namespace cqlopt
