#include "transform/fold_unfold.h"

#include <algorithm>
#include <set>

#include "ast/arg_map.h"
#include "constraint/implication.h"

namespace cqlopt {
namespace {

/// True iff `constraints` entail the variable equality a = b.
bool EntailsEq(const Conjunction& constraints, VarId a, VarId b) {
  if (a == b) return true;
  Conjunction eq;
  if (!eq.AddEquality(a, b).ok()) return false;
  return Implies(constraints, eq);
}

}  // namespace

Rule MakeDefinition(PredId new_pred, PredId base_pred, int arity,
                    const Conjunction& constraint_over_args,
                    VarAllocator* alloc, const std::string& label) {
  Rule rule;
  rule.label = label;
  std::vector<VarId> args;
  args.reserve(static_cast<size_t>(arity));
  for (int i = 0; i < arity; ++i) {
    VarId v = alloc->Fresh();
    rule.var_names[v] = "X" + std::to_string(i + 1);
    args.push_back(v);
  }
  rule.head = Literal(new_pred, args);
  rule.body.push_back(Literal(base_pred, args));
  rule.constraints =
      PtolConjunction(rule.body.back(), constraint_over_args);
  return rule;
}

Result<std::vector<Rule>> UnfoldLiteral(const Program& defs, const Rule& rule,
                                        size_t body_index,
                                        VarAllocator* alloc) {
  if (body_index >= rule.body.size()) {
    return Status::InvalidArgument("unfold index out of range");
  }
  const Literal& lit = rule.body[body_index];
  std::vector<Rule> out;
  for (const Rule& def : defs.rules) {
    if (def.head.pred != lit.pred) continue;
    if (def.head.arity() != lit.arity()) continue;
    Rule rd = def.RenameApart(alloc);
    // Head-argument unification: rd's head variables map onto lit's
    // arguments; a repeated head variable meeting two different arguments
    // induces an equality between those arguments.
    std::map<VarId, VarId> theta;
    std::vector<std::pair<VarId, VarId>> induced;
    for (int i = 0; i < lit.arity(); ++i) {
      VarId dv = rd.head.args[static_cast<size_t>(i)];
      VarId rv = lit.args[static_cast<size_t>(i)];
      auto [it, inserted] = theta.emplace(dv, rv);
      if (!inserted && it->second != rv) induced.emplace_back(it->second, rv);
    }
    Rule resolved;
    // Definition rules (labels starting "def_") are transient scaffolding;
    // rules unfolded through them inherit the source rule's label primed,
    // so Example 4.3's r4 prints as r3' etc.
    if (rule.label.rfind("def_", 0) == 0) {
      resolved.label = def.label.empty() ? "" : def.label + "'";
    } else {
      resolved.label = rule.label;
    }
    resolved.head = rule.head;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i == body_index) {
        for (const Literal& dlit : rd.body) {
          resolved.body.push_back(dlit.Rename(theta));
        }
      } else {
        resolved.body.push_back(rule.body[i]);
      }
    }
    resolved.constraints = rule.constraints;
    Status st = resolved.constraints.AddConjunction(rd.constraints.Rename(theta));
    if (!st.ok()) return st;
    for (const auto& [a, b] : induced) {
      CQLOPT_RETURN_IF_ERROR(resolved.constraints.AddEquality(a, b));
    }
    if (!resolved.constraints.IsSatisfiable()) continue;
    resolved.var_names = rule.var_names;
    for (const auto& [v, name] : rd.var_names) {
      auto it = theta.find(v);
      if (it == theta.end()) resolved.var_names.emplace(v, name);
    }
    out.push_back(std::move(resolved));
  }
  return out;
}

namespace {

/// Backtracking matcher for TryFold: assigns def body literal `j` onwards to
/// distinct rule body positions, extending `theta` consistently.
bool MatchFrom(const Rule& rule, const Rule& def, size_t j,
               std::map<VarId, VarId>* theta, std::vector<size_t>* chosen,
               std::vector<bool>* used) {
  if (j == def.body.size()) return true;
  const Literal& dlit = def.body[j];
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if ((*used)[i]) continue;
    const Literal& rlit = rule.body[i];
    if (rlit.pred != dlit.pred || rlit.arity() != dlit.arity()) continue;
    // Tentatively extend theta.
    std::map<VarId, VarId> saved = *theta;
    bool ok = true;
    for (int a = 0; a < dlit.arity(); ++a) {
      VarId dv = dlit.args[static_cast<size_t>(a)];
      VarId rv = rlit.args[static_cast<size_t>(a)];
      auto [it, inserted] = theta->emplace(dv, rv);
      if (!inserted && it->second != rv &&
          !EntailsEq(rule.constraints, it->second, rv)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      (*used)[i] = true;
      chosen->push_back(i);
      if (MatchFrom(rule, def, j + 1, theta, chosen, used)) return true;
      chosen->pop_back();
      (*used)[i] = false;
    }
    *theta = std::move(saved);
  }
  return false;
}

}  // namespace

std::optional<Rule> TryFold(const Rule& rule, const Rule& def,
                            int anchor_index) {
  if (def.body.empty()) return std::nullopt;
  std::map<VarId, VarId> theta;
  std::vector<size_t> chosen;
  std::vector<bool> used(rule.body.size(), false);
  // If an anchor is requested, match it against def's body literals first by
  // pinning: try each def literal as the one covering the anchor.
  if (anchor_index >= 0) {
    size_t anchor = static_cast<size_t>(anchor_index);
    if (anchor >= rule.body.size()) return std::nullopt;
    for (size_t j = 0; j < def.body.size(); ++j) {
      theta.clear();
      chosen.clear();
      std::fill(used.begin(), used.end(), false);
      const Literal& dlit = def.body[j];
      const Literal& rlit = rule.body[anchor];
      if (rlit.pred != dlit.pred || rlit.arity() != dlit.arity()) continue;
      bool ok = true;
      for (int a = 0; a < dlit.arity(); ++a) {
        VarId dv = dlit.args[static_cast<size_t>(a)];
        VarId rv = rlit.args[static_cast<size_t>(a)];
        auto [it, inserted] = theta.emplace(dv, rv);
        if (!inserted && it->second != rv &&
            !EntailsEq(rule.constraints, it->second, rv)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      used[anchor] = true;
      // Match remaining def literals (skipping j).
      std::vector<size_t> order;
      for (size_t k = 0; k < def.body.size(); ++k) {
        if (k != j) order.push_back(k);
      }
      // Build a temporary def with body reordered so MatchFrom can walk it.
      Rule reordered = def;
      reordered.body.clear();
      for (size_t k : order) reordered.body.push_back(def.body[k]);
      if (!MatchFrom(rule, reordered, 0, &theta, &chosen, &used)) continue;
      chosen.push_back(anchor);
      goto matched;
    }
    return std::nullopt;
  } else {
    if (!MatchFrom(rule, def, 0, &theta, &chosen, &used)) return std::nullopt;
  }
matched:
  // Every def head variable must be bound by the match.
  for (VarId v : def.head.args) {
    if (theta.count(v) == 0) return std::nullopt;
  }
  // The instantiated definition constraints must be implied (Appendix A's
  // folding condition Ci(X̄i) ⊐ C(X̄)θ).
  if (!Implies(rule.constraints, def.constraints.Rename(theta))) {
    return std::nullopt;
  }
  // Build the folded rule: matched literals replaced by the def head.
  std::sort(chosen.begin(), chosen.end());
  Rule folded;
  folded.label = rule.label;
  folded.head = rule.head;
  folded.constraints = rule.constraints;
  folded.var_names = rule.var_names;
  size_t insert_at = chosen.front();
  std::set<size_t> removed(chosen.begin(), chosen.end());
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i == insert_at) folded.body.push_back(def.head.Rename(theta));
    if (removed.count(i) > 0) continue;
    folded.body.push_back(rule.body[i]);
  }
  // Folding may leave constraint variables that no longer occur in any
  // literal (their constraints were absorbed into the definition predicate,
  // e.g. U1 > 10 after folding s_1_p in Example 6.1). They are existential;
  // project them away, exactly.
  std::vector<VarId> live = folded.head.Vars();
  for (const Literal& lit : folded.body) live = VarUnion(live, lit.Vars());
  auto projected = folded.constraints.Project(live);
  if (projected.ok()) folded.constraints = std::move(projected).value();
  return folded;
}

}  // namespace cqlopt
