#include "transform/adornment.h"

#include <deque>
#include <set>

namespace cqlopt {
namespace {

/// Classes of `c` that are ground given that the classes of `seed` are:
/// symbol-bound classes, seed classes, and classes functionally determined
/// through equality atoms by ground classes (covers `V = N - 1` with N
/// ground, and `V = 5`). Returns a set of class roots.
std::set<VarId> GroundClosure(const Conjunction& c,
                              const std::set<VarId>& seed) {
  std::set<VarId> ground;
  for (VarId v : seed) ground.insert(c.Find(v));
  for (const auto& [root, symbol] : c.SymbolBindings()) ground.insert(root);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const LinearConstraint& atom : c.linear()) {
      if (atom.op() != CmpOp::kEq) continue;
      VarId unknown = kNoVar;
      int unknown_count = 0;
      for (VarId v : atom.Vars()) {
        VarId r = c.Find(v);
        if (ground.count(r) == 0) {
          unknown = r;
          ++unknown_count;
        }
      }
      if (unknown_count == 1) {
        ground.insert(unknown);
        changed = true;
      } else if (unknown_count == 0 && atom.Vars().empty()) {
        // Ground atom; nothing to do.
      }
    }
  }
  return ground;
}

bool IsGroundVar(const Conjunction& c, const std::set<VarId>& ground_roots,
                 VarId v) {
  return ground_roots.count(c.Find(v)) > 0;
}

/// bcf 'c' test: v occurs in a constraint atom all of whose other variables
/// are ground, or v's class was marked constrained (inherited from a 'c'
/// head position).
bool IsConstrainedVar(const Conjunction& c, const std::set<VarId>& ground_roots,
                      const std::set<VarId>& constrained_roots, VarId v) {
  VarId r = c.Find(v);
  if (constrained_roots.count(r) > 0) return true;
  for (const LinearConstraint& atom : c.linear()) {
    bool mentions = false;
    bool others_ground = true;
    for (VarId x : atom.Vars()) {
      if (c.Find(x) == r) {
        mentions = true;
      } else if (ground_roots.count(c.Find(x)) == 0) {
        others_ground = false;
      }
    }
    if (mentions && others_ground) return true;
  }
  return false;
}

}  // namespace

Result<AdornedProgram> Adorn(const Program& program, const Query& query,
                             SipStrategy strategy) {
  AdornedProgram out;
  out.program = Program(program.symbols);
  out.program.arities = program.arities;

  if (strategy == SipStrategy::kFullLeftToRight) {
    // Template-passing: no specialization. Adornment is all-'b'.
    out.program.rules = program.rules;
    out.program.RemoveUnreachable(query.literal.pred);
    out.query_pred = query.literal.pred;
    out.query_adornment = std::string(
        static_cast<size_t>(query.literal.arity()), 'b');
    for (PredId p : out.program.DerivedPredicates()) {
      int arity = program.Arity(p);
      out.info[p] = AdornInfo{p, std::string(
          arity < 0 ? 0 : static_cast<size_t>(arity), 'b')};
    }
    return out;
  }

  // kBoundIfGround / kBcf: per-pattern specialization.
  const bool bcf = strategy == SipStrategy::kBcf;
  std::set<PredId> derived;
  for (PredId p : program.DerivedPredicates()) derived.insert(p);

  // Query adornment: positions whose variable the query constraints ground
  // (and, under bcf, 'c' for independently constrained positions).
  std::set<VarId> query_ground = GroundClosure(query.constraints, {});
  std::string query_adornment;
  for (VarId v : query.literal.args) {
    if (IsGroundVar(query.constraints, query_ground, v)) {
      query_adornment += 'b';
    } else if (bcf && IsConstrainedVar(query.constraints, query_ground, {}, v)) {
      query_adornment += 'c';
    } else {
      query_adornment += 'f';
    }
  }

  std::map<std::pair<PredId, std::string>, PredId> adorned_ids;
  std::deque<std::pair<PredId, std::string>> worklist;
  auto intern_adorned = [&](PredId base, const std::string& adornment) {
    auto key = std::make_pair(base, adornment);
    auto it = adorned_ids.find(key);
    if (it != adorned_ids.end()) return it->second;
    PredId id = program.symbols->FreshPredicate(
        program.symbols->PredicateName(base) + "_" + adornment);
    adorned_ids[key] = id;
    out.info[id] = AdornInfo{base, adornment};
    (void)out.program.DeclareArity(id, program.Arity(base));
    worklist.emplace_back(base, adornment);
    return id;
  };

  out.query_pred = intern_adorned(query.literal.pred, query_adornment);
  out.query_adornment = query_adornment;

  std::set<std::pair<PredId, std::string>> processed;
  while (!worklist.empty()) {
    auto [base, adornment] = worklist.front();
    worklist.pop_front();
    if (!processed.insert({base, adornment}).second) continue;
    PredId adorned_head = adorned_ids.at({base, adornment});
    for (const Rule& rule : program.rules) {
      if (rule.head.pred != base) continue;
      Rule adorned_rule = rule;
      adorned_rule.head.pred = adorned_head;
      // Bound variables: head arguments at bound positions, then closed and
      // extended literal by literal (left-to-right sips). Under bcf, head
      // 'c' positions seed the constrained set.
      std::set<VarId> bound_seed;
      std::set<VarId> constrained_seed;
      for (size_t i = 0; i < adornment.size() && i < rule.head.args.size();
           ++i) {
        if (adornment[i] == 'b') bound_seed.insert(rule.head.args[i]);
        if (adornment[i] == 'c') constrained_seed.insert(rule.head.args[i]);
      }
      for (Literal& lit : adorned_rule.body) {
        std::set<VarId> ground_roots =
            GroundClosure(rule.constraints, bound_seed);
        std::set<VarId> constrained_roots;
        for (VarId v : constrained_seed) {
          constrained_roots.insert(rule.constraints.Find(v));
        }
        if (derived.count(lit.pred) > 0) {
          std::string lit_adornment;
          for (VarId v : lit.args) {
            if (IsGroundVar(rule.constraints, ground_roots, v)) {
              lit_adornment += 'b';
            } else if (bcf && IsConstrainedVar(rule.constraints, ground_roots,
                                               constrained_roots, v)) {
              lit_adornment += 'c';
            } else {
              lit_adornment += 'f';
            }
          }
          lit.pred = intern_adorned(lit.pred, lit_adornment);
        }
        for (VarId v : lit.args) bound_seed.insert(v);
      }
      out.program.rules.push_back(std::move(adorned_rule));
    }
  }
  return out;
}

}  // namespace cqlopt
