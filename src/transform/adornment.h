#ifndef CQLOPT_TRANSFORM_ADORNMENT_H_
#define CQLOPT_TRANSFORM_ADORNMENT_H_

#include <map>
#include <string>

#include "ast/program.h"

namespace cqlopt {

/// Sideways information passing strategies (Appendix B) supported by the
/// Magic Templates rewriting.
enum class SipStrategy {
  /// Complete left-to-right sips passing full templates: every argument of
  /// every derived literal is passed (possibly non-ground), so predicates
  /// need no per-pattern specialization and magic predicates keep full
  /// arity. This is what the paper uses for P_fib^mg (Example 1.2) — and it
  /// is what makes the magic program compute constraint facts.
  kFullLeftToRight,
  /// bf adornments with the bound-if-ground rule (Sections 1, 4.1, 7): an
  /// argument is bound only if it is bound to a ground term. Under this
  /// strategy the magic program computes only ground facts when the source
  /// program does (Proposition 7.1).
  kBoundIfGround,
  /// bcf adornments of Mumick et al. (Sections 6.2, 7.7): 'b' for ground
  /// arguments, 'c' for arguments that are not ground but *independently
  /// constrained* (they occur in a constraint atom whose other variables
  /// are ground, or inherit 'c' from the rule head), 'f' otherwise. Used
  /// by the GMT pipeline; its magic predicates carry both b and c
  /// arguments, so the magic program may compute constraint facts until the
  /// grounding step removes them.
  kBcf,
};

/// Adornment metadata attached to a rewritten program.
struct AdornInfo {
  PredId base_pred;
  std::string adornment;  // e.g. "bbff"; all-'b' under kFullLeftToRight
};

/// Result of the adornment phase (Definition B.2).
struct AdornedProgram {
  Program program;
  /// Adorned version of the query predicate.
  PredId query_pred;
  std::string query_adornment;
  /// adorned predicate -> base predicate + adornment string.
  std::map<PredId, AdornInfo> info;
};

/// Computes the adorned program for `query` under `strategy`, renaming each
/// derived predicate p used with binding pattern a to `p_a` and keeping only
/// rules reachable from the adorned query (Definition B.2 step 3). Database
/// predicates are never adorned.
///
/// Under kBoundIfGround, an argument of a body literal is bound iff its
/// variable is ground-determined at that point: it is (equated to) a
/// constant, occurs in a bound head argument or an earlier body literal, or
/// is functionally determined through equality constraints by such
/// variables (so `fib(N - 1, X1)` has a bound first argument whenever N is
/// bound, matching the paper's reading of "bound to a ground term").
Result<AdornedProgram> Adorn(const Program& program, const Query& query,
                             SipStrategy strategy);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_ADORNMENT_H_
