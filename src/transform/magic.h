#ifndef CQLOPT_TRANSFORM_MAGIC_H_
#define CQLOPT_TRANSFORM_MAGIC_H_

#include "transform/adornment.h"

namespace cqlopt {

/// Options of the Magic Templates rewriting (Appendix B / Section 7.2).
struct MagicOptions {
  SipStrategy sips = SipStrategy::kBoundIfGround;
  /// Constraint magic rewriting (Section 7.2): each magic rule carries the
  /// projection of its source rule's constraint conjunction onto the magic
  /// rule's variables, so Π_Ȳ(C_r) = Π_Ȳ(C_mr). When false, magic rules
  /// keep only binding information (equalities and symbol bindings) — the
  /// paper's `mrl'` alternative, which passes no inequality selections and
  /// hence computes more irrelevant facts.
  bool constraint_magic = true;
};

/// Result of the Magic Templates rewriting.
struct MagicResult {
  Program program;
  /// The adorned query predicate (what to read answers from).
  PredId query_pred;
  /// The magic predicate of the query (its seed rule is in `program`).
  PredId magic_query_pred;
  /// The query rewritten against the adorned predicate, for evaluation.
  Query query;
  /// Adornment metadata.
  std::map<PredId, AdornInfo> info;
  /// adorned derived predicate -> its magic predicate.
  std::map<PredId, PredId> magic_of;
  /// adorned predicate -> positions its magic predicate carries.
  std::map<PredId, std::vector<int>> carried_positions;
};

/// Magic Templates (Definition B.3 with the constraint handling of Section
/// 7.2): adorn, create magic predicates carrying the bound arguments,
/// modify each rule with a magic guard, emit one magic rule per derived
/// body literal (with full left-to-right information passing), and seed the
/// magic predicate of the query from the query's constants.
Result<MagicResult> MagicTemplates(const Program& program, const Query& query,
                                   const MagicOptions& options);

/// Same, starting from an already-adorned program (used by the GMT pipeline,
/// which needs the adorned program's SCC structure as well).
Result<MagicResult> MagicTemplatesOnAdorned(const AdornedProgram& adorned,
                                            const Query& query,
                                            const MagicOptions& options);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_MAGIC_H_
