#include "transform/propagate.h"

#include <deque>
#include <set>

#include "ast/arg_map.h"
#include "ast/normalize.h"
#include "transform/fold_unfold.h"

namespace cqlopt {
namespace {

struct Target {
  PredId base;
  PredId primed;
  std::vector<Rule> defs;               // p'(X̄) :- PTOL(d_i), p(X̄).
  std::vector<Conjunction> disjuncts;   // the d_i, argument-position form
};

}  // namespace

Result<Program> PropagateQrpConstraints(
    const Program& program, PredId query_pred,
    const std::map<PredId, ConstraintSet>& qrp,
    const PropagateOptions& options) {
  VarAllocator alloc = MakeAllocator(program);

  // Step 1: definition steps, one predicate p' per propagated predicate,
  // one rule per disjunct of its QRP constraint.
  std::map<PredId, Target> targets;
  for (PredId p : program.DerivedPredicates()) {
    if (p == query_pred) continue;
    auto it = qrp.find(p);
    if (it == qrp.end()) continue;
    const ConstraintSet& set = it->second;
    if (set.is_false() || set.IsTriviallyTrue()) continue;
    Target target;
    target.base = p;
    // Copy: FreshPredicate below may reallocate the name table.
    const std::string name = program.symbols->PredicateName(p);
    target.primed = program.symbols->FreshPredicate(name + "'");
    int arity = program.Arity(p);
    int k = 0;
    for (const Conjunction& d : set.disjuncts()) {
      target.defs.push_back(MakeDefinition(
          target.primed, p, arity, d, &alloc,
          "def_" + name + "_" + std::to_string(++k)));
      target.disjuncts.push_back(d);
    }
    targets.emplace(p, std::move(target));
  }
  if (targets.empty()) {
    Program out = program;
    out.RemoveUnreachable(query_pred);
    return out;
  }

  // Step 2: unfold p's definition into each rule defining p'. The unfolded
  // rules replace p's original rules in the output.
  Program out(program.symbols);
  out.arities = program.arities;
  for (const auto& [p, target] : targets) {
    CQLOPT_RETURN_IF_ERROR(
        out.DeclareArity(target.primed, program.Arity(p)));
  }
  std::deque<Rule> queue;
  for (const auto& [p, target] : targets) {
    for (const Rule& def : target.defs) {
      CQLOPT_ASSIGN_OR_RETURN(std::vector<Rule> unfolded,
                              UnfoldLiteral(program, def, 0, &alloc));
      for (Rule& r : unfolded) queue.push_back(std::move(r));
    }
  }
  for (const Rule& rule : program.rules) {
    if (targets.count(rule.head.pred) == 0) queue.push_back(rule);
  }

  // Step 3: fold every body occurrence of a propagated predicate. If the
  // rule's constraints imply no single disjunct, split the rule into one
  // copy per disjunct with the disjunct's PTOL conjoined (footnote 4); the
  // copies then fold directly.
  while (!queue.empty()) {
    Rule rule = std::move(queue.front());
    queue.pop_front();
    // A rule with unsatisfiable constraints can never fire; dropping it here
    // also lets the reachability cleanup prune predicates it referenced.
    if (!rule.constraints.IsSatisfiable()) continue;
    int occurrence = -1;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (targets.count(rule.body[i].pred) > 0) {
        occurrence = static_cast<int>(i);
        break;
      }
    }
    if (occurrence < 0) {
      out.rules.push_back(std::move(rule));
      continue;
    }
    const Target& target = targets.at(rule.body[static_cast<size_t>(occurrence)].pred);
    bool folded = false;
    for (const Rule& def : target.defs) {
      std::optional<Rule> attempt = TryFold(rule, def, occurrence);
      if (attempt.has_value()) {
        queue.push_front(std::move(*attempt));
        folded = true;
        break;
      }
    }
    if (folded) continue;
    // Split per disjunct.
    const Literal& occ = rule.body[static_cast<size_t>(occurrence)];
    int copy_index = 0;
    for (const Conjunction& d : target.disjuncts) {
      Rule copy = rule;
      Status st = copy.constraints.AddConjunction(PtolConjunction(occ, d));
      if (!st.ok()) return st;
      if (!copy.constraints.IsSatisfiable()) continue;
      copy.body[static_cast<size_t>(occurrence)].pred = target.primed;
      if (copy_index > 0) {
        copy.label = rule.label + "_" + std::to_string(copy_index);
      }
      ++copy_index;
      queue.push_front(std::move(copy));
    }
  }

  out.RemoveUnreachable(query_pred);
  DeduplicateRules(&out);

  if (options.rename_back) {
    std::set<PredId> remaining_heads;
    for (const Rule& rule : out.rules) remaining_heads.insert(rule.head.pred);
    std::map<PredId, PredId> rename;
    for (const auto& [p, target] : targets) {
      if (remaining_heads.count(p) == 0) rename[target.primed] = p;
    }
    for (Rule& rule : out.rules) {
      auto fix = [&rename](Literal* lit) {
        auto it = rename.find(lit->pred);
        if (it != rename.end()) lit->pred = it->second;
      };
      fix(&rule.head);
      for (Literal& lit : rule.body) fix(&lit);
    }
  }
  return out;
}

}  // namespace cqlopt
