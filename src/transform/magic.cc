#include "transform/magic.h"

#include <memory>
#include <set>

namespace cqlopt {
namespace {

/// Keeps only binding information: variable equalities, symbol bindings,
/// and linear equalities (template arithmetic like V = N - 1). Inequality
/// selections are dropped — the plain-magic `mrl'` behaviour.
Conjunction FilterToBindings(const Conjunction& conj) {
  Conjunction out;
  if (conj.known_unsat()) return Conjunction::False();
  for (const auto& [member, root] : conj.EqualityPairs()) {
    (void)out.AddEquality(member, root);
  }
  for (const auto& [root, symbol] : conj.SymbolBindings()) {
    (void)out.BindSymbol(root, symbol);
  }
  for (const LinearConstraint& atom : conj.linear()) {
    if (atom.op() == CmpOp::kEq) (void)out.AddLinear(atom);
  }
  return out;
}

}  // namespace

Result<MagicResult> MagicTemplates(const Program& program, const Query& query,
                                   const MagicOptions& options) {
  CQLOPT_ASSIGN_OR_RETURN(AdornedProgram adorned,
                          Adorn(program, query, options.sips));
  return MagicTemplatesOnAdorned(adorned, query, options);
}

Result<MagicResult> MagicTemplatesOnAdorned(const AdornedProgram& adorned,
                                            const Query& query,
                                            const MagicOptions& options) {
  (void)options;
  std::shared_ptr<SymbolTable> symbols = adorned.program.symbols;
  MagicResult out;
  out.program = Program(symbols);
  out.program.arities = adorned.program.arities;
  out.query_pred = adorned.query_pred;
  out.info = adorned.info;

  std::set<PredId> derived;
  for (PredId p : adorned.program.DerivedPredicates()) derived.insert(p);

  // One magic predicate per adorned derived predicate, carrying the bound
  // argument positions (all positions under full left-to-right sips).
  std::map<PredId, PredId> magic_of;
  std::map<PredId, std::vector<int>> bound_positions;
  auto adornment_of = [&](PredId p) -> std::string {
    auto it = out.info.find(p);
    if (it != out.info.end() && !it->second.adornment.empty()) {
      return it->second.adornment;
    }
    int arity = adorned.program.Arity(p);
    return std::string(arity < 0 ? 0 : static_cast<size_t>(arity), 'b');
  };
  for (PredId p : derived) {
    std::string adornment = adornment_of(p);
    std::vector<int> bound;
    for (size_t i = 0; i < adornment.size(); ++i) {
      // Magic predicates carry bound arguments and, under bcf adornments,
      // the independently-constrained ones too (Section 6.2: m_p^cf(X)).
      if (adornment[i] == 'b' || adornment[i] == 'c') {
        bound.push_back(static_cast<int>(i));
      }
    }
    PredId m = symbols->FreshPredicate("m_" + symbols->PredicateName(p));
    magic_of[p] = m;
    bound_positions[p] = bound;
    CQLOPT_RETURN_IF_ERROR(
        out.program.DeclareArity(m, static_cast<int>(bound.size())));
  }
  auto magic_literal = [&](const Literal& lit) {
    std::vector<VarId> args;
    for (int i : bound_positions[lit.pred]) {
      args.push_back(lit.args[static_cast<size_t>(i)]);
    }
    return Literal(magic_of[lit.pred], std::move(args));
  };

  for (const Rule& rule : adorned.program.rules) {
    // Magic rules, one per derived body literal (Definition B.3 step 4).
    for (size_t j = 0; j < rule.body.size(); ++j) {
      const Literal& lit = rule.body[j];
      if (derived.count(lit.pred) == 0) continue;
      Rule mr;
      mr.label = "m" + (rule.label.empty() ? "r" : rule.label) + "_" +
                 std::to_string(j + 1);
      mr.head = magic_literal(lit);
      mr.body.push_back(magic_literal(rule.head));
      for (size_t k = 0; k < j; ++k) mr.body.push_back(rule.body[k]);
      // Constraint magic (Section 7.2): carry Π_Ȳ(C_r) where Ȳ are the
      // magic rule's variables.
      std::vector<VarId> vars = mr.head.Vars();
      for (const Literal& b : mr.body) vars = VarUnion(vars, b.Vars());
      CQLOPT_ASSIGN_OR_RETURN(Conjunction projected,
                              rule.constraints.Project(vars));
      mr.constraints = options.constraint_magic ? projected
                                                : FilterToBindings(projected);
      mr.var_names = rule.var_names;
      if (!mr.constraints.IsSatisfiable()) continue;
      out.program.rules.push_back(std::move(mr));
    }
    // Modified rule: magic guard first (Definition B.3 step 3).
    Rule modified = rule;
    modified.body.insert(modified.body.begin(), magic_literal(rule.head));
    out.program.rules.push_back(std::move(modified));
  }

  // Seed (Definition B.3 step 5): m_q(query bound args) with the query's
  // constraints projected onto them.
  Literal adorned_query_lit = query.literal;
  adorned_query_lit.pred = adorned.query_pred;
  Rule seed;
  seed.label = "seed";
  seed.head = magic_literal(adorned_query_lit);
  CQLOPT_ASSIGN_OR_RETURN(seed.constraints,
                          query.constraints.Project(seed.head.Vars()));
  out.program.rules.push_back(std::move(seed));
  out.magic_query_pred = magic_of[adorned.query_pred];

  out.query.literal = adorned_query_lit;
  out.query.constraints = query.constraints;
  out.magic_of = magic_of;
  out.carried_positions = bound_positions;
  return out;
}

}  // namespace cqlopt
