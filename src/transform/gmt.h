#ifndef CQLOPT_TRANSFORM_GMT_H_
#define CQLOPT_TRANSFORM_GMT_H_

#include "transform/magic.h"

namespace cqlopt {

/// Result of the GMT pipeline (Section 6.2): adorn with bcf, Magic
/// Templates with grounding sips, then the grounding step — reconstructed,
/// per the paper's contribution, as procedure Ground_Fold_Unfold: a
/// sequence of Tamaki–Sato definition/unfold/fold steps over the SCC
/// structure of the adorned program.
struct GmtResult {
  /// P^{ad,mg}: may contain non-range-restricted magic rules (these would
  /// compute constraint facts).
  Program magic;
  /// P^{ad,mg,gr}: range-restricted; computes only ground facts
  /// (Theorem 6.2).
  Program grounded;
  /// Adorned query predicate (where to read answers in both programs).
  PredId query_pred;
  /// The query rewritten against the adorned predicate.
  Query query;
  /// Supplementary predicates introduced (s_k_p of [MFPR90]).
  std::vector<PredId> supplementary;
};

/// Runs the full GMT pipeline on a range-restricted, groundable program
/// (Definition 6.1). Returns InvalidArgument when some rule defining a
/// c-adorned predicate has a head 'c' variable not covered by ordinary
/// non-recursive body literals (not groundable).
Result<GmtResult> GmtTransform(const Program& program, const Query& query);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_GMT_H_
