#ifndef CQLOPT_TRANSFORM_CONSTRAINT_REWRITE_H_
#define CQLOPT_TRANSFORM_CONSTRAINT_REWRITE_H_

#include "transform/propagate.h"
#include "transform/qrp_constraints.h"

namespace cqlopt {

/// Options of procedure Constraint_rewrite.
struct ConstraintRewriteOptions {
  InferenceOptions inference;
  PropagateOptions propagate;
  /// Run Gen_Prop_predicate_constraints first (the full procedure of
  /// Section 4.5). Disable to study the qrp-only pipeline arm.
  bool apply_predicate_constraints = true;
  /// Use Balbin et al.'s syntactic constraint generation (Section 6.1)
  /// instead of the semantic Gen_QRP_constraints — the baseline of
  /// bench_semantic_vs_syntactic.
  bool syntactic_generation = false;
  /// Minimum predicate constraints of the database predicates; default
  /// `true` for each.
  std::map<PredId, ConstraintSet> edb_constraints;
};

/// Result of procedure Constraint_rewrite.
struct ConstraintRewriteResult {
  Program program;
  /// Minimum predicate constraints of the input program (argument-position
  /// form), when computed.
  std::map<PredId, ConstraintSet> predicate_constraints;
  /// QRP constraints generated for the (predicate-propagated) program —
  /// minimum QRP constraints when everything converged (Theorem 4.8).
  std::map<PredId, ConstraintSet> qrp_constraints;
  bool predicate_converged = true;
  bool qrp_converged = false;
};

/// Procedure Constraint_rewrite (Section 4.5, Appendix C):
///   1. add a fresh query wrapper q1(X̄) :- q(X̄) and treat q1 as the query
///      predicate (so the real query predicate participates in QRP
///      inference);
///   2. generate and propagate minimum predicate constraints
///      (Gen_Prop_predicate_constraints);
///   3. generate and propagate QRP constraints
///      (Gen_Prop_QRP_constraints);
///   4. delete the wrapper's rules (and anything unreachable).
/// If both fixpoints converge, the propagated constraints are the minimum
/// QRP constraints (Theorem 4.8).
Result<ConstraintRewriteResult> ConstraintRewrite(
    const Program& program, PredId query_pred,
    const ConstraintRewriteOptions& options);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_CONSTRAINT_REWRITE_H_
