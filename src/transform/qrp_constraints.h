#ifndef CQLOPT_TRANSFORM_QRP_CONSTRAINTS_H_
#define CQLOPT_TRANSFORM_QRP_CONSTRAINTS_H_

#include "transform/predicate_constraints.h"

namespace cqlopt {

/// Procedure Gen_QRP_constraints (Section 4.2, Appendix C): starting from
/// `true` for the query predicate and `false` for everything else, it
/// iterates the nonrecursive inference of Proposition 4.1 — the literal
/// constraint of p_i(X̄i) in rule r with desired head constraint C_p is
///   C_{pi(X̄i)} = Π_{X̄i}( PTOL(p(X̄), C_p) ∧ C_r(Ȳ) )
/// — disjoining the LTOPs of the literal constraints of every occurrence of
/// each predicate, until the approximations stabilize. The result is a QRP
/// constraint for every predicate (Theorem 4.2); if minimum predicate
/// constraints were propagated into the program first, it is the *minimum*
/// QRP constraint (Theorem 4.7).
///
/// On cap overrun the result is widened to `true` (the paper's terminating
/// fallback).
Result<InferenceResult> GenQrpConstraints(const Program& program,
                                          PredId query_pred,
                                          const InferenceOptions& options);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_QRP_CONSTRAINTS_H_
