#include "transform/widening.h"

#include <algorithm>
#include <set>

#include "constraint/fourier_motzkin.h"
#include "constraint/implication.h"

namespace cqlopt {
namespace {

/// Candidate atoms of a disjunct: its linear atoms with equalities also
/// contributed as both one-sided relaxations, so the hull can pick up
/// monotone trends across point facts ({$2=1} ∨ {$2=2} → $2 >= 1).
std::vector<LinearConstraint> CandidateAtoms(const Conjunction& d) {
  std::vector<LinearConstraint> out;
  for (const LinearConstraint& atom : d.LinearWithEqualities()) {
    if (atom.op() == CmpOp::kEq) {
      out.emplace_back(atom.expr(), CmpOp::kLe);
      out.emplace_back(-atom.expr(), CmpOp::kLe);
    }
    out.push_back(atom);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

Conjunction HullOf(const ConstraintSet& set) {
  std::vector<const Conjunction*> live;
  for (const Conjunction& d : set.disjuncts()) {
    if (d.IsSatisfiable()) live.push_back(&d);
  }
  if (live.empty()) return Conjunction::False();
  // Candidates from every disjunct; keep those implied by all of them.
  std::vector<LinearConstraint> candidates;
  for (const Conjunction* d : live) {
    std::vector<LinearConstraint> atoms = CandidateAtoms(*d);
    candidates.insert(candidates.end(), atoms.begin(), atoms.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<std::vector<LinearConstraint>> disjunct_atoms;
  disjunct_atoms.reserve(live.size());
  for (const Conjunction* d : live) {
    disjunct_atoms.push_back(d->LinearWithEqualities());
  }
  Conjunction hull;
  for (const LinearConstraint& candidate : candidates) {
    bool everywhere = true;
    for (const auto& atoms : disjunct_atoms) {
      if (!fm::ImpliesAtom(atoms, candidate)) {
        everywhere = false;
        break;
      }
    }
    if (everywhere) (void)hull.AddLinear(candidate);
  }
  // Shared symbol bindings survive the hull too.
  if (!live.empty()) {
    for (const auto& [root, symbol] : live[0]->SymbolBindings()) {
      bool everywhere = true;
      for (const Conjunction* d : live) {
        auto bound = d->GetSymbol(root);
        if (!bound.has_value() || *bound != symbol) everywhere = false;
      }
      if (everywhere) (void)hull.BindSymbol(root, symbol);
    }
  }
  hull.Simplify();
  return hull;
}

Result<WideningResult> GenPredicateConstraintsWithWidening(
    const Program& program,
    const std::map<PredId, ConstraintSet>& edb_constraints,
    const WideningOptions& options) {
  WideningResult result;
  std::vector<PredId> derived = program.DerivedPredicates();
  std::set<PredId> derived_set(derived.begin(), derived.end());

  std::map<PredId, ConstraintSet> current;  // exact sets during warmup
  for (PredId p : derived) current[p] = ConstraintSet::False();
  const ConstraintSet kTrue = ConstraintSet::True();
  auto constraint_of = [&](PredId p) -> const ConstraintSet& {
    if (derived_set.count(p) > 0) return current.at(p);
    auto it = edb_constraints.find(p);
    return it == edb_constraints.end() ? kTrue : it->second;
  };

  // Phase 1: exact iteration. If it converges here, the result is the
  // minimum predicate constraint and no widening is needed.
  for (int i = 0; i < options.warmup; ++i) {
    ++result.iterations;
    CQLOPT_ASSIGN_OR_RETURN(auto inferred,
                            PredicateSingleStep(program, constraint_of));
    bool all_marked = true;
    for (PredId p : derived) {
      auto it = inferred.find(p);
      if (it == inferred.end()) continue;
      if (it->second.Implies(current.at(p))) continue;
      current[p].UnionWith(it->second);
      all_marked = false;
    }
    if (all_marked) {
      result.constraints = std::move(current);
      result.converged = true;
      result.exact = true;
      return result;
    }
  }

  // Phase 2: collapse to hulls and widen.
  for (PredId p : derived) current[p] = ConstraintSet::Of(HullOf(current[p]));
  for (int i = 0; i < options.max_widening_iterations; ++i) {
    ++result.iterations;
    CQLOPT_ASSIGN_OR_RETURN(auto inferred,
                            PredicateSingleStep(program, constraint_of));
    bool changed = false;
    for (PredId p : derived) {
      auto it = inferred.find(p);
      if (it == inferred.end()) continue;
      // New approximation: old ∨ inferred, collapsed to its hull.
      ConstraintSet joined = current.at(p);
      joined.UnionWith(it->second);
      Conjunction new_hull = HullOf(joined);
      if (current.at(p).is_false()) {
        if (!new_hull.known_unsat()) {
          current[p] = ConstraintSet::Of(std::move(new_hull));
          changed = true;
        }
        continue;
      }
      const Conjunction& old_hull = current.at(p).disjuncts()[0];
      // Standard widening: keep the old atoms the new approximation still
      // implies; drop the rest (they were transient).
      Conjunction widened;
      for (const LinearConstraint& atom : old_hull.LinearWithEqualities()) {
        if (fm::ImpliesAtom(new_hull.LinearWithEqualities(), atom)) {
          (void)widened.AddLinear(atom);
        }
      }
      for (const auto& [root, symbol] : old_hull.SymbolBindings()) {
        auto bound = new_hull.GetSymbol(root);
        if (bound.has_value() && *bound == symbol) {
          (void)widened.BindSymbol(root, symbol);
        }
      }
      widened.Simplify();
      if (!Equivalent(widened, old_hull)) {
        current[p] = ConstraintSet::Of(std::move(widened));
        changed = true;
      }
    }
    if (!changed) {
      // Candidate post-fixpoint: verify inductiveness — one more step must
      // stay within the candidate on every predicate.
      CQLOPT_ASSIGN_OR_RETURN(auto check,
                              PredicateSingleStep(program, constraint_of));
      bool inductive = true;
      for (PredId p : derived) {
        auto it = check.find(p);
        if (it == check.end()) continue;
        if (!it->second.Implies(current.at(p))) inductive = false;
      }
      if (inductive) {
        result.constraints = std::move(current);
        result.converged = true;
        return result;
      }
      // Not inductive (should not happen with this widening; defensive):
      // fall through to the fallback below.
      break;
    }
  }
  // Fallback: `true` everywhere — always a sound predicate constraint.
  for (PredId p : derived) result.constraints[p] = ConstraintSet::True();
  result.converged = false;
  return result;
}

}  // namespace cqlopt
