#ifndef CQLOPT_TRANSFORM_PREDICATE_CONSTRAINTS_H_
#define CQLOPT_TRANSFORM_PREDICATE_CONSTRAINTS_H_

#include <functional>
#include <map>

#include "ast/program.h"
#include "constraint/constraint_set.h"

namespace cqlopt {

/// Options shared by the two constraint-inference fixpoints.
struct InferenceOptions {
  /// Iteration cap. The fixpoints need not terminate (Theorems 3.1/3.3
  /// prove the finiteness question undecidable); on hitting the cap the
  /// procedure returns the trivially correct constraint `true` for every
  /// derived predicate, exactly the paper's fallback (Section 4.2).
  int max_iterations = 64;
  /// Cap on the number of disjuncts kept per predicate. Exceeding it
  /// widens that predicate's constraint to `true` — correct but
  /// uninformative, bounding the representation as Section 4.2 suggests.
  int max_disjuncts = 64;
};

/// Result of Gen_predicate_constraints / Gen_QRP_constraints.
struct InferenceResult {
  /// Constraint set per predicate, in argument-position form ($1..arity).
  std::map<PredId, ConstraintSet> constraints;
  /// False when the iteration or disjunct cap fired (constraints were
  /// widened to `true`, so they are still sound, just not minimum).
  bool converged = false;
  int iterations = 0;
  /// Decision-cache activity attributed to this inference run (the
  /// fixpoints re-decide the same implications every iteration, so the
  /// memo hit rate here is a direct measure of saved Fourier-Motzkin work).
  long cache_hits = 0;
  long cache_misses = 0;
  /// Interval-prepass activity attributed to this inference run (DESIGN.md
  /// §11): decisions answered conclusively by bound propagation vs. probes
  /// that fell through to the exact cached Fourier–Motzkin tier.
  long prepass_conclusive = 0;
  long prepass_fallback = 0;
  /// Interval-index activity (DESIGN.md §12). Pure constraint inference
  /// stores no facts, so these stay zero here; they are populated when an
  /// InferenceResult is reported alongside an evaluation run (the --json
  /// bench writers copy the evaluation's EvalStats counters in so one
  /// record carries the whole pipeline's pruning story).
  long interval_probes = 0;
  long interval_candidates = 0;
  long interval_runs_pruned = 0;
};

/// Procedure Gen_predicate_constraints (Section 4.4, Appendix C): iterates
/// Single_step — for every rule and every choice of disjuncts for its body
/// predicates, infer the head constraint LTOP(head, Π(C_r ∧ ⋀ PTOL(...)))
/// — until the per-predicate constraint sets stabilize. On convergence the
/// result is the *minimum* predicate constraint per predicate
/// (Theorem 4.5).
///
/// `edb_constraints` supplies the minimum predicate constraints of database
/// predicates ("part of the input"); predicates absent from the map default
/// to `true`.
Result<InferenceResult> GenPredicateConstraints(
    const Program& program,
    const std::map<PredId, ConstraintSet>& edb_constraints,
    const InferenceOptions& options);

/// One application of Single_step (Appendix C): for every rule and every
/// choice of disjuncts from `constraint_of(body predicate)`, infers the
/// head constraint and disjoins it per head predicate. Exposed so the
/// widening extension (transform/widening.h) can drive the same inference.
Result<std::map<PredId, ConstraintSet>> PredicateSingleStep(
    const Program& program,
    const std::function<const ConstraintSet&(PredId)>& constraint_of);

/// Procedure Gen_Prop_predicate_constraints (Section 4.4, Appendix C):
/// computes predicate constraints and conjoins, for every body literal, the
/// PTOL of its predicate constraint into the rule — creating one rule copy
/// per choice of disjunct (footnote 4) and dropping unsatisfiable copies.
/// Equivalence is Theorem 4.6.
Result<Program> PropagatePredicateConstraints(
    const Program& program,
    const std::map<PredId, ConstraintSet>& edb_constraints,
    const InferenceOptions& options, InferenceResult* inference_out);

/// Propagation of *caller-supplied* predicate constraints (no inference):
/// associates the PTOL of constraints[p] with every body occurrence of p.
/// The caller asserts soundness (each set really is a predicate
/// constraint). This is how the paper's Example 4.4 / Table 2 works: the
/// minimum predicate constraint of fib has no finite representation, and
/// the paper hand-picks the *non-minimum* predicate constraint `$2 >= 1`
/// ("though not the minimum") to make the magic evaluation terminate.
Result<Program> PropagateGivenConstraints(
    const Program& program,
    const std::map<PredId, ConstraintSet>& constraints);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_PREDICATE_CONSTRAINTS_H_
