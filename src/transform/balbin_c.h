#ifndef CQLOPT_TRANSFORM_BALBIN_C_H_
#define CQLOPT_TRANSFORM_BALBIN_C_H_

#include "transform/predicate_constraints.h"

namespace cqlopt {

/// The constraint-generation phase of Balbin et al.'s C transformation
/// (Section 6.1), reconstructed as a *syntactic* variant of
/// Gen_QRP_constraints: a constraint is passed to a body literal only when
/// it is an explicit constraining literal over that literal's variables —
/// constraints are treated "as any other literal", with no semantic
/// manipulation (no projection, no implication reasoning).
///
/// This is the fundamental limitation the paper identifies: in Example 4.1
/// the conjunction (X + Y <= 6) & (X >= 2) implies Y <= 4, but no explicit
/// constraining literal mentions only Y, so the C transformation cannot
/// push anything into p2's definition while Gen_QRP_constraints can.
/// bench_semantic_vs_syntactic measures the resulting fact-count gap.
Result<InferenceResult> GenSyntacticQrpConstraints(
    const Program& program, PredId query_pred, const InferenceOptions& options);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_BALBIN_C_H_
