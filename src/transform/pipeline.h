#ifndef CQLOPT_TRANSFORM_PIPELINE_H_
#define CQLOPT_TRANSFORM_PIPELINE_H_

#include <string>
#include <vector>

#include "transform/constraint_rewrite.h"
#include "transform/magic.h"

namespace cqlopt {

/// One rewriting in a Section 7 transformation sequence.
enum class RewriteStep {
  kPred,    // Gen_Prop_predicate_constraints
  kQrp,     // Gen_Prop_QRP_constraints
  kMagic,   // constraint magic rewriting (apply at most once)
  kBalbin,  // Balbin et al.'s C-transformation arm (syntactic qrp)
  kGmt,     // the GMT pipeline (Section 6.2); like magic, apply at most once
};

struct PipelineOptions {
  MagicOptions magic;
  InferenceOptions inference;
  PropagateOptions propagate;
  std::map<PredId, ConstraintSet> edb_constraints;
};

/// Outcome of a transformation sequence: the rewritten program and the
/// query against it (adorned once magic has been applied; the seed rule in
/// the program already carries the query's constants).
struct PipelineResult {
  Program program;
  Query query;
  PredId query_pred;
  bool magic_applied = false;
};

/// Applies a sequence such as {pred, qrp, mg} (Section 7's P^{pred,qrp,mg}
/// notation). Steps before magic rewrite the program query-independently
/// against the query *predicate*; the magic step specializes to the actual
/// query; steps after magic operate on the magic program with the adorned
/// query predicate (the P^{mg,qrp} arm of Examples 7.1/7.2).
Result<PipelineResult> ApplyPipeline(const Program& program,
                                     const Query& query,
                                     const std::vector<RewriteStep>& steps,
                                     const PipelineOptions& options);

/// Parses "pred,qrp,mg" / "mg,pred,qrp" / "balbin" / "gmt" etc.
Result<std::vector<RewriteStep>> ParseSteps(const std::string& spec);

/// Renders a sequence back to its spec string.
std::string StepsName(const std::vector<RewriteStep>& steps);

/// Canonical fingerprint of an ApplyPipeline invocation, the cache key of
/// the service layer's prepared-program cache (src/service/prepared.h):
/// two invocations with the same fingerprint produce the same
/// PipelineResult, so the fold/unfold and magic rewrites can be skipped on
/// a hit. Digests the step sequence, the query's predicate, argument
/// binding pattern and constraints (query variables renamed to their
/// first-appearance positions so textually identical queries fingerprint
/// identically regardless of the VarIds a parse handed out), and the
/// program's rules — mixed with constraint/fingerprint.h's splitmix64
/// combiner. When `canonical` is non-null the digested canonical text is
/// also returned, letting exactness-paranoid callers double-check a
/// fingerprint hit by string comparison before trusting it.
uint64_t PipelineFingerprint(const Program& program, const Query& query,
                             const std::vector<RewriteStep>& steps,
                             std::string* canonical = nullptr);

}  // namespace cqlopt

#endif  // CQLOPT_TRANSFORM_PIPELINE_H_
