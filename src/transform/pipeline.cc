#include "transform/pipeline.h"

#include <set>

#include "ast/printer.h"
#include "constraint/fingerprint.h"
#include "transform/gmt.h"

namespace cqlopt {
namespace {

/// Drops rules that can never fire. A body predicate is potentially
/// derivable when it is an EDB relation (no rules; its facts arrive with
/// the database at evaluation time) or the head of some live rule.
/// Constraint rewriting makes the underivable case reachable in practice:
/// pushing the query's selections can prove every exit rule of a recursive
/// component unsatisfiable, and the surviving in-component rules then form
/// a constraint-only recursion that derives nothing — a shape the engine's
/// ValidateProgram pre-flight rejects. Pruning removes those shells, and
/// transitively every rule that depended on the predicates they were the
/// only producers of.
void PruneUnderivableRules(Program* program) {
  std::set<PredId> heads;
  for (const Rule& rule : program->rules) heads.insert(rule.head.pred);
  std::set<PredId> derivable;
  std::vector<bool> live(program->rules.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < program->rules.size(); ++i) {
      if (live[i]) continue;
      const Rule& rule = program->rules[i];
      bool fires = true;
      for (const Literal& lit : rule.body) {
        if (heads.count(lit.pred) != 0 && derivable.count(lit.pred) == 0) {
          fires = false;
          break;
        }
      }
      if (!fires) continue;
      live[i] = true;
      derivable.insert(rule.head.pred);
      changed = true;
    }
  }
  size_t out = 0;
  for (size_t i = 0; i < program->rules.size(); ++i) {
    if (live[i]) {
      if (out != i) program->rules[out] = std::move(program->rules[i]);
      ++out;
    }
  }
  program->rules.resize(out);
}

}  // namespace

Result<PipelineResult> ApplyPipeline(const Program& program,
                                     const Query& query,
                                     const std::vector<RewriteStep>& steps,
                                     const PipelineOptions& options) {
  PipelineResult state;
  state.program = program;
  state.query = query;
  state.query_pred = query.literal.pred;

  for (RewriteStep step : steps) {
    switch (step) {
      case RewriteStep::kPred: {
        CQLOPT_ASSIGN_OR_RETURN(
            Program next,
            PropagatePredicateConstraints(state.program,
                                          options.edb_constraints,
                                          options.inference, nullptr));
        state.program = std::move(next);
        break;
      }
      case RewriteStep::kQrp:
      case RewriteStep::kBalbin: {
        ConstraintRewriteOptions cro;
        cro.inference = options.inference;
        cro.propagate = options.propagate;
        cro.apply_predicate_constraints = false;
        cro.syntactic_generation = step == RewriteStep::kBalbin;
        cro.edb_constraints = options.edb_constraints;
        CQLOPT_ASSIGN_OR_RETURN(
            ConstraintRewriteResult rewritten,
            ConstraintRewrite(state.program, state.query_pred, cro));
        state.program = std::move(rewritten.program);
        break;
      }
      case RewriteStep::kMagic: {
        if (state.magic_applied) {
          return Status::InvalidArgument(
              "magic rewriting applied more than once in a sequence");
        }
        CQLOPT_ASSIGN_OR_RETURN(
            MagicResult magic,
            MagicTemplates(state.program, state.query, options.magic));
        state.program = std::move(magic.program);
        state.query = magic.query;
        state.query_pred = magic.query_pred;
        state.magic_applied = true;
        break;
      }
      case RewriteStep::kGmt: {
        if (state.magic_applied) {
          return Status::InvalidArgument(
              "magic/GMT rewriting applied more than once in a sequence");
        }
        CQLOPT_ASSIGN_OR_RETURN(GmtResult gmt,
                                GmtTransform(state.program, state.query));
        state.program = std::move(gmt.grounded);
        state.query = gmt.query;
        state.query_pred = gmt.query_pred;
        state.magic_applied = true;
        break;
      }
    }
  }
  PruneUnderivableRules(&state.program);
  return state;
}

Result<std::vector<RewriteStep>> ParseSteps(const std::string& spec) {
  std::vector<RewriteStep> steps;
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    std::string token = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    // Trim spaces.
    while (!token.empty() && token.front() == ' ') token.erase(0, 1);
    while (!token.empty() && token.back() == ' ') token.pop_back();
    if (!token.empty()) {
      if (token == "pred") {
        steps.push_back(RewriteStep::kPred);
      } else if (token == "qrp") {
        steps.push_back(RewriteStep::kQrp);
      } else if (token == "mg" || token == "magic") {
        steps.push_back(RewriteStep::kMagic);
      } else if (token == "balbin" || token == "c") {
        steps.push_back(RewriteStep::kBalbin);
      } else if (token == "gmt") {
        steps.push_back(RewriteStep::kGmt);
      } else {
        return Status::InvalidArgument("unknown rewriting step '" + token +
                                       "'");
      }
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return steps;
}

std::string StepsName(const std::vector<RewriteStep>& steps) {
  std::string out;
  for (RewriteStep step : steps) {
    if (!out.empty()) out += ",";
    switch (step) {
      case RewriteStep::kPred:
        out += "pred";
        break;
      case RewriteStep::kQrp:
        out += "qrp";
        break;
      case RewriteStep::kMagic:
        out += "mg";
        break;
      case RewriteStep::kBalbin:
        out += "balbin";
        break;
      case RewriteStep::kGmt:
        out += "gmt";
        break;
    }
  }
  return out.empty() ? "(identity)" : out;
}

uint64_t PipelineFingerprint(const Program& program, const Query& query,
                             const std::vector<RewriteStep>& steps,
                             std::string* canonical) {
  // Rename query variables to their first-appearance order over the
  // literal's arguments: `?- q(A, B), A <= 4.` and `?- q(X, Y), X <= 4.`
  // parse to different VarIds but canonicalize to the same text.
  std::map<VarId, std::string> names;
  for (VarId v : query.literal.args) {
    if (names.count(v) == 0) {
      names[v] = "q" + std::to_string(names.size());
    }
  }
  VarNameFn name = [names](VarId v) {
    auto it = names.find(v);
    return it != names.end() ? it->second : "q?" + std::to_string(v);
  };
  std::string text = StepsName(steps);
  text += '\n';
  text += "?- " + RenderLiteral(query.literal, *program.symbols, name);
  std::string constraints =
      RenderConjunction(query.constraints, *program.symbols, name);
  if (constraints != "true") text += ", " + constraints;
  text += ".\n";
  text += RenderProgram(program);

  // splitmix64-mix the canonical text in 8-byte chunks; seed with the
  // length so texts that are prefixes of one another separate early.
  uint64_t h = fp::Mix(0x51c1d5e1a1ull, static_cast<uint64_t>(text.size()));
  for (size_t i = 0; i < text.size(); i += 8) {
    uint64_t chunk = 0;
    for (size_t j = i; j < text.size() && j < i + 8; ++j) {
      chunk = (chunk << 8) | static_cast<unsigned char>(text[j]);
    }
    h = fp::Mix(h, chunk);
  }
  if (canonical != nullptr) *canonical = std::move(text);
  return h;
}

}  // namespace cqlopt
