#include "transform/gmt.h"

#include <algorithm>
#include <set>

#include "ast/normalize.h"
#include "graph/scc.h"
#include "transform/fold_unfold.h"

namespace cqlopt {
namespace {

/// Index of the first body literal whose predicate is in `preds`, or -1.
int FindBodyPred(const Rule& rule, const std::set<PredId>& preds) {
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (preds.count(rule.body[i].pred) > 0) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

Result<GmtResult> GmtTransform(const Program& program, const Query& query) {
  CQLOPT_ASSIGN_OR_RETURN(AdornedProgram adorned,
                          Adorn(program, query, SipStrategy::kBcf));
  MagicOptions magic_options;
  magic_options.sips = SipStrategy::kBcf;
  magic_options.constraint_magic = true;  // grounding sips pass conditions
  CQLOPT_ASSIGN_OR_RETURN(MagicResult magic,
                          MagicTemplatesOnAdorned(adorned, query, magic_options));

  GmtResult out;
  out.magic = magic.program;
  out.query_pred = magic.query_pred;
  out.query = magic.query;

  // SCC structure of the *adorned* program, processed top-down from the
  // query's SCC (procedure Ground_Fold_Unfold).
  DependencyGraph graph(adorned.program);
  SccDecomposition sccs(graph);
  std::vector<std::vector<PredId>> order =
      sccs.TopDownFrom(adorned.query_pred, graph);

  std::shared_ptr<SymbolTable> symbols = program.symbols;
  std::vector<Rule> work = magic.program.rules;
  Program grounded(symbols);
  grounded.arities = magic.program.arities;
  VarAllocator alloc = MakeAllocator(magic.program);
  std::set<PredId> derived_adorned;
  for (PredId p : adorned.program.DerivedPredicates()) {
    derived_adorned.insert(p);
  }

  int supp_counter = 0;
  for (const std::vector<PredId>& component : order) {
    // Predicates of this SCC whose adornment has a condition argument.
    std::set<PredId> preds_c;
    std::set<PredId> scc_preds(component.begin(), component.end());
    for (PredId p : component) {
      if (derived_adorned.count(p) == 0) continue;
      auto it = magic.info.find(p);
      if (it != magic.info.end() &&
          it->second.adornment.find('c') != std::string::npos) {
        preds_c.insert(p);
      }
    }
    if (preds_c.empty()) continue;
    std::set<PredId> magic_preds;
    for (PredId p : preds_c) magic_preds.insert(magic.magic_of.at(p));

    // Partition the working rule set.
    std::vector<Rule> r_p;          // rules defining a c-adorned predicate
    std::vector<Rule> r_m;          // rules defining its magic predicate
    std::vector<Rule> lower;        // other rules using the magic predicate
    std::vector<Rule> rest;
    for (Rule& rule : work) {
      if (preds_c.count(rule.head.pred) > 0) {
        r_p.push_back(std::move(rule));
      } else if (magic_preds.count(rule.head.pred) > 0) {
        r_m.push_back(std::move(rule));
      } else if (FindBodyPred(rule, magic_preds) >= 0) {
        lower.push_back(std::move(rule));
      } else {
        rest.push_back(std::move(rule));
      }
    }

    // Definition step: one supplementary predicate s_k_p per rule in R_p,
    // defined by the magic guard plus the grounding subgoals G_k and the
    // constraints associated with them.
    std::vector<Rule> defs;
    std::vector<Rule> folded_rp;
    for (const Rule& rule : r_p) {
      int guard_index = FindBodyPred(rule, magic_preds);
      if (guard_index != 0) {
        return Status::Internal("modified rule without leading magic guard: " +
                                rule.label);
      }
      // Head 'c' variables that the grounding subgoals must cover.
      const std::string& adornment = magic.info.at(rule.head.pred).adornment;
      std::set<VarId> to_cover;
      for (size_t i = 0; i < adornment.size() && i < rule.head.args.size();
           ++i) {
        if (adornment[i] == 'c') to_cover.insert(rule.head.args[i]);
      }
      // Variables already carried by the guard are not in need of coverage
      // only if ground there — under bcf they are the condition arguments,
      // so they do need grounding subgoals; keep to_cover as-is.
      std::vector<Literal> grounding;
      std::set<VarId> def_vars(rule.body[0].args.begin(),
                               rule.body[0].args.end());
      size_t next = 1;
      auto covered = [&to_cover, &grounding]() {
        for (VarId v : to_cover) {
          bool found = false;
          for (const Literal& lit : grounding) {
            for (VarId a : lit.args) {
              if (a == v) found = true;
            }
          }
          if (!found) return false;
        }
        return true;
      };
      while (!covered() && next < rule.body.size()) {
        const Literal& lit = rule.body[next];
        // A grounding subgoal must be ordinary and non-recursive with the
        // head predicate (Definition 6.1).
        if (scc_preds.count(lit.pred) > 0 ||
            magic_preds.count(lit.pred) > 0) {
          return Status::InvalidArgument(
              "program not groundable: rule " + rule.label +
              " needs a recursive literal to ground a condition variable");
        }
        grounding.push_back(lit);
        for (VarId v : lit.args) def_vars.insert(v);
        ++next;
      }
      if (!covered()) {
        return Status::InvalidArgument(
            "program not groundable: rule " + rule.label +
            " has an uncovered condition variable (Definition 6.1)");
      }
      // Supplementary head arguments: definition variables still needed by
      // the rest of the rule (head, later literals, or constraints that
      // reach outside the definition).
      std::set<VarId> needed(rule.head.args.begin(), rule.head.args.end());
      for (size_t i = next; i < rule.body.size(); ++i) {
        for (VarId v : rule.body[i].args) needed.insert(v);
      }
      for (const LinearConstraint& atom : rule.constraints.linear()) {
        bool outside = false;
        for (VarId v : atom.Vars()) {
          if (def_vars.count(v) == 0) outside = true;
        }
        if (outside) {
          for (VarId v : atom.Vars()) needed.insert(v);
        }
      }
      std::vector<VarId> args;
      for (VarId v : def_vars) {
        if (needed.count(v) > 0) args.push_back(v);
      }
      PredId s_pred = symbols->FreshPredicate(
          "s_" + std::to_string(++supp_counter) + "_" +
          symbols->PredicateName(rule.head.pred));
      out.supplementary.push_back(s_pred);
      CQLOPT_RETURN_IF_ERROR(
          grounded.DeclareArity(s_pred, static_cast<int>(args.size())));
      Rule def;
      def.label = "s" + std::to_string(supp_counter);
      def.head = Literal(s_pred, args);
      def.body.push_back(rule.body[0]);
      for (const Literal& lit : grounding) def.body.push_back(lit);
      std::vector<VarId> def_var_list(def_vars.begin(), def_vars.end());
      CQLOPT_ASSIGN_OR_RETURN(def.constraints,
                              rule.constraints.Project(def_var_list));
      def.var_names = rule.var_names;
      defs.push_back(std::move(def));
    }

    // Unfold step: resolve the magic literal of every definition rule and
    // every lower rule against the rules defining the magic predicates.
    Program magic_defs(symbols);
    magic_defs.rules = r_m;
    std::vector<Rule> unfolded_plain;   // no residual magic literal
    std::vector<Rule> unfolded_magic;   // residual magic literal -> fold
    auto unfold_into = [&](const Rule& target) -> Status {
      int idx = FindBodyPred(target, magic_preds);
      if (idx < 0) {
        unfolded_plain.push_back(target);
        return Status::OK();
      }
      CQLOPT_ASSIGN_OR_RETURN(
          std::vector<Rule> results,
          UnfoldLiteral(magic_defs, target, static_cast<size_t>(idx), &alloc));
      for (Rule& r : results) {
        if (FindBodyPred(r, magic_preds) >= 0) {
          unfolded_magic.push_back(std::move(r));
        } else {
          unfolded_plain.push_back(std::move(r));
        }
      }
      return Status::OK();
    };
    for (const Rule& def : defs) CQLOPT_RETURN_IF_ERROR(unfold_into(def));
    for (const Rule& low : lower) CQLOPT_RETURN_IF_ERROR(unfold_into(low));

    // Fold step: replace [guard + grounding subgoals] by the supplementary
    // literal in the original rules and in the unfolded rules that still
    // carry a magic literal.
    auto fold_rule = [&](const Rule& rule) -> Result<Rule> {
      int anchor = FindBodyPred(rule, magic_preds);
      for (const Rule& def : defs) {
        std::optional<Rule> folded = TryFold(rule, def, anchor);
        if (folded.has_value()) return std::move(*folded);
      }
      return Status::Internal("GMT fold failed for rule " + rule.label);
    };
    for (const Rule& rule : r_p) {
      CQLOPT_ASSIGN_OR_RETURN(Rule folded, fold_rule(rule));
      folded_rp.push_back(std::move(folded));
    }
    std::vector<Rule> folded_magic;
    for (const Rule& rule : unfolded_magic) {
      CQLOPT_ASSIGN_OR_RETURN(Rule folded, fold_rule(rule));
      folded_magic.push_back(std::move(folded));
    }

    // New working set: untouched rules, residual-free unfoldings, and the
    // folded rules. The magic predicates of this SCC are gone.
    work = std::move(rest);
    for (Rule& r : unfolded_plain) work.push_back(std::move(r));
    for (Rule& r : folded_magic) work.push_back(std::move(r));
    for (Rule& r : folded_rp) work.push_back(std::move(r));
  }

  grounded.rules = std::move(work);
  grounded.RemoveUnreachable(out.query_pred);
  out.grounded = std::move(grounded);
  return out;
}

}  // namespace cqlopt
