#include "transform/qrp_constraints.h"

#include <set>

#include "ast/arg_map.h"
#include "constraint/decision_cache.h"
#include "constraint/interval.h"

namespace cqlopt {
namespace {

Result<InferenceResult> GenQrpConstraintsImpl(const Program& program,
                                              PredId query_pred,
                                              const InferenceOptions& options) {
  InferenceResult result;
  // QRP constraints are tracked for every predicate occurring in the
  // program — derived predicates feed the propagation; database-predicate
  // QRP constraints are the index selections of Section 4.6.
  std::set<PredId> preds;
  for (const Rule& rule : program.rules) {
    preds.insert(rule.head.pred);
    for (const Literal& lit : rule.body) preds.insert(lit.pred);
  }
  preds.insert(query_pred);
  for (PredId p : preds) {
    result.constraints[p] =
        p == query_pred ? ConstraintSet::True() : ConstraintSet::False();
  }

  std::set<PredId> widened;
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    std::map<PredId, ConstraintSet> inferred;  // C2
    for (const Rule& rule : program.rules) {
      const ConstraintSet& head_set = result.constraints.at(rule.head.pred);
      for (const Conjunction& head_disjunct : head_set.disjuncts()) {
        Conjunction base = rule.constraints;
        CQLOPT_RETURN_IF_ERROR(
            base.AddConjunction(PtolConjunction(rule.head, head_disjunct)));
        if (base.known_unsat() || !base.IsSatisfiable()) continue;
        for (const Literal& lit : rule.body) {
          if (widened.count(lit.pred) > 0) continue;
          CQLOPT_ASSIGN_OR_RETURN(Conjunction lit_c,
                                  LtopConjunction(lit, base));
          lit_c.Simplify();
          inferred[lit.pred].AddDisjunct(lit_c);
        }
      }
    }
    bool all_marked = true;
    for (PredId p : preds) {
      if (p == query_pred || widened.count(p) > 0) continue;
      ConstraintSet& current = result.constraints[p];
      auto it = inferred.find(p);
      if (it == inferred.end()) continue;
      if (it->second.Implies(current)) continue;  // 'marked'
      current.UnionWith(it->second);
      all_marked = false;
      if (static_cast<int>(current.disjuncts().size()) >
          options.max_disjuncts) {
        current = ConstraintSet::True();
        widened.insert(p);
      }
    }
    if (all_marked) {
      result.converged = widened.empty();
      return result;
    }
  }
  // Cap hit: `true` is trivially a QRP constraint (Section 4.2).
  for (PredId p : preds) result.constraints[p] = ConstraintSet::True();
  result.converged = false;
  return result;
}

}  // namespace

Result<InferenceResult> GenQrpConstraints(const Program& program,
                                          PredId query_pred,
                                          const InferenceOptions& options) {
  // As in GenPredicateConstraints: attribute the process-wide decision
  // cache's activity to this run by differencing its counters.
  DecisionCache::Counters before = DecisionCache::Instance().Snapshot();
  prepass::Counters pre_before = prepass::Snapshot();
  Result<InferenceResult> result =
      GenQrpConstraintsImpl(program, query_pred, options);
  if (result.ok()) {
    DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
    result->cache_hits = after.hits - before.hits;
    result->cache_misses = after.misses - before.misses;
    prepass::Counters pre_after = prepass::Snapshot();
    result->prepass_conclusive =
        pre_after.conclusive() - pre_before.conclusive();
    result->prepass_fallback = pre_after.fallback - pre_before.fallback;
  }
  return result;
}

}  // namespace cqlopt
