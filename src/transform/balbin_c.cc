#include "transform/balbin_c.h"

#include <algorithm>
#include <set>

#include "ast/arg_map.h"

namespace cqlopt {
namespace {

/// The syntactic literal constraint: the atoms of `pool` mentioning only
/// variables of `lit`.
Result<Conjunction> SyntacticLiteralConstraint(const Conjunction& pool,
                                               const Literal& lit) {
  std::vector<VarId> lit_vars = lit.Vars();
  auto covered = [&lit_vars](const std::vector<VarId>& vars) {
    for (VarId v : vars) {
      if (!std::binary_search(lit_vars.begin(), lit_vars.end(), v)) {
        return false;
      }
    }
    return true;
  };
  Conjunction out;
  for (const LinearConstraint& atom : pool.linear()) {
    if (covered(atom.Vars())) CQLOPT_RETURN_IF_ERROR(out.AddLinear(atom));
  }
  for (const auto& [member, root] : pool.EqualityPairs()) {
    if (covered({member, root})) {
      CQLOPT_RETURN_IF_ERROR(out.AddEquality(member, root));
    }
  }
  for (const auto& [root, symbol] : pool.SymbolBindings()) {
    if (covered({root})) CQLOPT_RETURN_IF_ERROR(out.BindSymbol(root, symbol));
  }
  return out;
}

}  // namespace

Result<InferenceResult> GenSyntacticQrpConstraints(
    const Program& program, PredId query_pred,
    const InferenceOptions& options) {
  InferenceResult result;
  std::set<PredId> preds;
  for (const Rule& rule : program.rules) {
    preds.insert(rule.head.pred);
    for (const Literal& lit : rule.body) preds.insert(lit.pred);
  }
  preds.insert(query_pred);
  for (PredId p : preds) {
    result.constraints[p] =
        p == query_pred ? ConstraintSet::True() : ConstraintSet::False();
  }

  std::set<PredId> widened;
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    std::map<PredId, ConstraintSet> inferred;
    for (const Rule& rule : program.rules) {
      const ConstraintSet& head_set = result.constraints.at(rule.head.pred);
      for (const Conjunction& head_disjunct : head_set.disjuncts()) {
        // The pool of constraining literals visible in this rule: its own
        // constraints plus the (syntactically mapped) head constraint.
        Conjunction pool = rule.constraints;
        CQLOPT_RETURN_IF_ERROR(
            pool.AddConjunction(PtolConjunction(rule.head, head_disjunct)));
        if (pool.known_unsat() || !pool.IsSatisfiable()) continue;
        for (const Literal& lit : rule.body) {
          if (widened.count(lit.pred) > 0) continue;
          CQLOPT_ASSIGN_OR_RETURN(Conjunction selected,
                                  SyntacticLiteralConstraint(pool, lit));
          CQLOPT_ASSIGN_OR_RETURN(Conjunction lit_c,
                                  LtopConjunction(lit, selected));
          inferred[lit.pred].AddDisjunct(lit_c);
        }
      }
    }
    bool all_marked = true;
    for (PredId p : preds) {
      if (p == query_pred || widened.count(p) > 0) continue;
      ConstraintSet& current = result.constraints[p];
      auto it = inferred.find(p);
      if (it == inferred.end()) continue;
      if (it->second.Implies(current)) continue;
      current.UnionWith(it->second);
      all_marked = false;
      if (static_cast<int>(current.disjuncts().size()) >
          options.max_disjuncts) {
        current = ConstraintSet::True();
        widened.insert(p);
      }
    }
    if (all_marked) {
      result.converged = widened.empty();
      return result;
    }
  }
  for (PredId p : preds) result.constraints[p] = ConstraintSet::True();
  result.converged = false;
  return result;
}

}  // namespace cqlopt
