#include "transform/predicate_constraints.h"

#include <functional>
#include <set>

#include "ast/arg_map.h"
#include "ast/normalize.h"
#include "constraint/decision_cache.h"
#include "constraint/interval.h"

namespace cqlopt {
namespace {

/// Recursion over body literals enumerating one disjunct per literal,
/// accumulating the conjunction; calls `leaf` with the full conjunction.
Status ForEachDisjunctChoice(
    const Rule& rule, size_t index,
    const std::function<const ConstraintSet&(PredId)>& constraint_of,
    const Conjunction& accumulated,
    const std::function<Status(const Conjunction&)>& leaf) {
  if (index == rule.body.size()) return leaf(accumulated);
  const Literal& lit = rule.body[index];
  const ConstraintSet& set = constraint_of(lit.pred);
  for (const Conjunction& disjunct : set.disjuncts()) {
    Conjunction next = accumulated;
    CQLOPT_RETURN_IF_ERROR(
        next.AddConjunction(PtolConjunction(lit, disjunct)));
    if (next.known_unsat() || !next.IsSatisfiable()) continue;
    CQLOPT_RETURN_IF_ERROR(
        ForEachDisjunctChoice(rule, index + 1, constraint_of, next, leaf));
  }
  return Status::OK();
}

}  // namespace

Result<std::map<PredId, ConstraintSet>> PredicateSingleStep(
    const Program& program,
    const std::function<const ConstraintSet&(PredId)>& constraint_of) {
  std::map<PredId, ConstraintSet> inferred;
  for (const Rule& rule : program.rules) {
    auto leaf = [&](const Conjunction& conj) -> Status {
      CQLOPT_ASSIGN_OR_RETURN(Conjunction head_c,
                              LtopConjunction(rule.head, conj));
      head_c.Simplify();
      inferred[rule.head.pred].AddDisjunct(head_c);
      return Status::OK();
    };
    CQLOPT_RETURN_IF_ERROR(
        ForEachDisjunctChoice(rule, 0, constraint_of, rule.constraints, leaf));
  }
  return inferred;
}

namespace {

Result<InferenceResult> GenPredicateConstraintsImpl(
    const Program& program,
    const std::map<PredId, ConstraintSet>& edb_constraints,
    const InferenceOptions& options) {
  InferenceResult result;
  std::vector<PredId> derived = program.DerivedPredicates();
  std::set<PredId> derived_set(derived.begin(), derived.end());
  // C1_p = false for every derived predicate.
  for (PredId p : derived) result.constraints[p] = ConstraintSet::False();

  const ConstraintSet kTrue = ConstraintSet::True();
  auto constraint_of = [&](PredId p) -> const ConstraintSet& {
    if (derived_set.count(p) > 0) return result.constraints.at(p);
    auto it = edb_constraints.find(p);
    return it == edb_constraints.end() ? kTrue : it->second;
  };

  std::set<PredId> widened;  // predicates forced to `true` by the caps
  for (int iteration = 0; iteration < options.max_iterations; ++iteration) {
    result.iterations = iteration + 1;
    // Single_step: inferred head constraints per rule and disjunct choice.
    std::map<PredId, ConstraintSet> inferred;  // C2
    for (const Rule& rule : program.rules) {
      if (widened.count(rule.head.pred) > 0) continue;
      auto leaf = [&](const Conjunction& conj) -> Status {
        CQLOPT_ASSIGN_OR_RETURN(Conjunction head_c,
                                LtopConjunction(rule.head, conj));
        head_c.Simplify();
        inferred[rule.head.pred].AddDisjunct(head_c);
        return Status::OK();
      };
      CQLOPT_RETURN_IF_ERROR(ForEachDisjunctChoice(rule, 0, constraint_of,
                                                   rule.constraints, leaf));
    }
    bool all_marked = true;
    for (PredId p : derived) {
      if (widened.count(p) > 0) continue;
      ConstraintSet& current = result.constraints[p];
      auto it = inferred.find(p);
      if (it == inferred.end()) continue;
      if (it->second.Implies(current)) continue;  // 'marked'
      current.UnionWith(it->second);
      all_marked = false;
      if (static_cast<int>(current.disjuncts().size()) >
          options.max_disjuncts) {
        current = ConstraintSet::True();
        widened.insert(p);
      }
    }
    if (all_marked) {
      result.converged = widened.empty();
      return result;
    }
  }
  // Cap hit: fall back to `true` for every derived predicate (Section 4.2's
  // terminating variant) — trivially a predicate constraint.
  for (PredId p : derived) result.constraints[p] = ConstraintSet::True();
  result.converged = false;
  return result;
}

}  // namespace

Result<InferenceResult> GenPredicateConstraints(
    const Program& program,
    const std::map<PredId, ConstraintSet>& edb_constraints,
    const InferenceOptions& options) {
  // The decision cache is process-wide; attribute its activity to this
  // inference run by differencing the counters around it.
  DecisionCache::Counters before = DecisionCache::Instance().Snapshot();
  prepass::Counters pre_before = prepass::Snapshot();
  Result<InferenceResult> result =
      GenPredicateConstraintsImpl(program, edb_constraints, options);
  if (result.ok()) {
    DecisionCache::Counters after = DecisionCache::Instance().Snapshot();
    result->cache_hits = after.hits - before.hits;
    result->cache_misses = after.misses - before.misses;
    prepass::Counters pre_after = prepass::Snapshot();
    result->prepass_conclusive =
        pre_after.conclusive() - pre_before.conclusive();
    result->prepass_fallback = pre_after.fallback - pre_before.fallback;
  }
  return result;
}

Result<Program> PropagatePredicateConstraints(
    const Program& program,
    const std::map<PredId, ConstraintSet>& edb_constraints,
    const InferenceOptions& options, InferenceResult* inference_out) {
  CQLOPT_ASSIGN_OR_RETURN(
      InferenceResult inference,
      GenPredicateConstraints(program, edb_constraints, options));
  if (inference_out != nullptr) *inference_out = inference;

  const ConstraintSet kTrue = ConstraintSet::True();
  auto constraint_of = [&](PredId p) -> const ConstraintSet& {
    auto it = inference.constraints.find(p);
    if (it != inference.constraints.end()) return it->second;
    auto edb = edb_constraints.find(p);
    return edb == edb_constraints.end() ? kTrue : edb->second;
  };

  Program out(program.symbols);
  out.arities = program.arities;
  for (const Rule& rule : program.rules) {
    // One rule copy per choice of disjunct per body literal (footnote 4).
    std::vector<Rule> copies;
    int counter = 0;
    auto leaf = [&](const Conjunction& conj) -> Status {
      Rule copy = rule;
      copy.constraints = conj;
      if (counter > 0) {
        copy.label = rule.label + "_" + std::to_string(counter);
      }
      ++counter;
      copies.push_back(std::move(copy));
      return Status::OK();
    };
    CQLOPT_RETURN_IF_ERROR(
        ForEachDisjunctChoice(rule, 0, constraint_of, rule.constraints, leaf));
    for (Rule& copy : copies) out.rules.push_back(std::move(copy));
  }
  DeduplicateRules(&out);
  return out;
}

Result<Program> PropagateGivenConstraints(
    const Program& program,
    const std::map<PredId, ConstraintSet>& constraints) {
  const ConstraintSet kTrue = ConstraintSet::True();
  auto constraint_of = [&](PredId p) -> const ConstraintSet& {
    auto it = constraints.find(p);
    return it == constraints.end() ? kTrue : it->second;
  };
  Program out(program.symbols);
  out.arities = program.arities;
  for (const Rule& rule : program.rules) {
    std::vector<Rule> copies;
    int counter = 0;
    auto leaf = [&](const Conjunction& conj) -> Status {
      Rule copy = rule;
      copy.constraints = conj;
      if (counter > 0) {
        copy.label = rule.label + "_" + std::to_string(counter);
      }
      ++counter;
      copies.push_back(std::move(copy));
      return Status::OK();
    };
    CQLOPT_RETURN_IF_ERROR(
        ForEachDisjunctChoice(rule, 0, constraint_of, rule.constraints, leaf));
    for (Rule& copy : copies) out.rules.push_back(std::move(copy));
  }
  DeduplicateRules(&out);
  return out;
}

}  // namespace cqlopt
