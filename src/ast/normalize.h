#ifndef CQLOPT_AST_NORMALIZE_H_
#define CQLOPT_AST_NORMALIZE_H_

#include "ast/program.h"

namespace cqlopt {

/// Helpers shared by the transformations for building normalized rules.

/// A variable allocator whose floor is above every id used in `program`
/// (and never below 1024, the rule-variable floor).
VarAllocator MakeAllocator(const Program& program);

/// Builds `head_pred(X1..Xn) :- body_pred(X1..Xn).` over fresh distinct
/// variables — the shape of the query-wrapper rule of Theorem 3.3 /
/// Constraint_rewrite and of fold/unfold definition rules.
Rule MakeBridgeRule(PredId head_pred, PredId body_pred, int arity,
                    VarAllocator* alloc, const std::string& label);

/// A copy of `query` with fresh variables from `alloc`, safe to embed in a
/// program whose variable ids may overlap the query's.
Query RenameQueryApart(const Query& query, VarAllocator* alloc);

/// Canonical structural key of a rule: predicates plus argument pattern plus
/// constraints, with variables renumbered by first occurrence — two
/// alpha-equivalent rules get the same key.
std::string RuleCanonicalKey(const Rule& rule);

/// Removes rules that are alpha-equivalent duplicates of earlier rules
/// (the propagation's disjunct cross-products can emit copies). Returns the
/// number removed.
int DeduplicateRules(Program* program);

/// True if every rule of the program is range-restricted in the CQL sense
/// used by Sections 6–7: every head variable either occurs in a body
/// literal or is functionally determined (through equality constraints and
/// symbol bindings) by variables that do. Range restriction is the
/// syntactic guarantee that bottom-up evaluation computes only ground facts
/// on ground EDBs (the paper's footnote 8).
bool IsRangeRestricted(const Program& program);
bool IsRuleRangeRestricted(const Rule& rule);

}  // namespace cqlopt

#endif  // CQLOPT_AST_NORMALIZE_H_
