#ifndef CQLOPT_AST_ARG_MAP_H_
#define CQLOPT_AST_ARG_MAP_H_

#include "ast/literal.h"
#include "constraint/constraint_set.h"

namespace cqlopt {

/// PTOL and LTOP (Definitions 2.7 and 2.8): the conversions between
/// constraints over the *argument positions* of a predicate ($1, $2, ...,
/// represented as VarIds 1..arity) and constraints over the *variables* of a
/// literal p(X̄) in a rule.
///
/// Example (Definition 2.7): for flight of arity 4,
///   PTOL(flight(S,D,T,C), ($3 <= 240) | ($4 <= 150))
///     = (T <= 240) | (C <= 150).
/// Example (Definition 2.8):
///   LTOP(flight(S,D,T,C), (T <= 240) | (C <= 150))
///     = ($3 <= 240) | ($4 <= 150).
///
/// Both handle literals with repeated variables: PTOL for p(X, X) conjoins
/// the constraints on $1 and $2 onto the same variable; LTOP ties each
/// position to its variable with an equality and projects onto the
/// positions, exactly as Definition 2.8 prescribes.

/// Converts a conjunction over argument positions into one over `lit`'s
/// variables.
Conjunction PtolConjunction(const Literal& lit, const Conjunction& over_args);

/// Converts a constraint set over argument positions into one over `lit`'s
/// variables.
ConstraintSet Ptol(const Literal& lit, const ConstraintSet& over_args);

/// Converts a conjunction over `lit`'s variables (or any superset: extra
/// variables are projected away) into one over argument positions 1..arity.
Result<Conjunction> LtopConjunction(const Literal& lit,
                                    const Conjunction& over_vars);

/// Converts a constraint set over `lit`'s variables into one over argument
/// positions.
Result<ConstraintSet> Ltop(const Literal& lit, const ConstraintSet& over_vars);

}  // namespace cqlopt

#endif  // CQLOPT_AST_ARG_MAP_H_
