#ifndef CQLOPT_AST_RULE_H_
#define CQLOPT_AST_RULE_H_

#include <map>
#include <string>
#include <vector>

#include "ast/literal.h"
#include "constraint/conjunction.h"

namespace cqlopt {

/// A normalized rule `p(X̄) :- C, p1(X̄1), ..., pn(X̄n).` (Section 2):
/// a head literal, body literals, and a conjunction of constraints over the
/// rule's variables. A rule with an empty body is a *constraint fact*
/// `p(X̄; C)` — the finite representation of the possibly infinite set of
/// ground facts satisfying C.
///
/// Rule variables use ids >= 1024 so they never collide with the
/// argument-position ids 1..arity used by facts and predicate constraints
/// (see constraint/variable.h).
struct Rule {
  /// Optional source label ("r1"); carried through transformations with
  /// suffixes so evaluation traces can cite the deriving rule as the paper's
  /// tables do.
  std::string label;
  Literal head;
  std::vector<Literal> body;
  Conjunction constraints;
  /// Original names of rule variables, for printing; fresh variables
  /// introduced by transformations get generated names.
  std::map<VarId, std::string> var_names;
  /// 1-based source line of the statement this rule was parsed from, or 0
  /// for rules built programmatically / by transformations. Error paths
  /// that reject statements (e.g. LoadDatabaseText) cite it.
  int source_line = 0;

  bool IsConstraintFact() const { return body.empty(); }

  /// All variables in head, body, and constraints, sorted.
  std::vector<VarId> Vars() const;

  /// Largest variable id used (0 if none).
  VarId MaxVar() const;

  /// A copy of the rule with every variable replaced by a fresh one from
  /// `alloc` (standardization apart, used by unfold/resolution and rule
  /// instantiation).
  Rule RenameApart(VarAllocator* alloc) const;

  /// Applies a variable mapping to head, body, constraints, and names.
  Rule Rename(const std::map<VarId, VarId>& mapping) const;
};

}  // namespace cqlopt

#endif  // CQLOPT_AST_RULE_H_
