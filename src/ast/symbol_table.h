#ifndef CQLOPT_AST_SYMBOL_TABLE_H_
#define CQLOPT_AST_SYMBOL_TABLE_H_

#include <map>
#include <string>
#include <vector>

#include "constraint/conjunction.h"

namespace cqlopt {

/// Identifier of an interned predicate name.
using PredId = int;

/// Interner for predicate names and symbolic constants.
///
/// One table is shared by a program and everything derived from it
/// (adorned programs, magic programs, rewritten programs), so transformation
/// outputs can introduce new predicates (`m_flight`, `flight'`, `s_1_p`)
/// without name clashes.
class SymbolTable {
 public:
  SymbolTable() = default;

  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for a predicate name, interning it if new.
  PredId InternPredicate(const std::string& name);
  /// Returns the id of an existing predicate, or kNoPred.
  PredId LookupPredicate(const std::string& name) const;
  const std::string& PredicateName(PredId id) const;
  bool HasPredicate(const std::string& name) const;

  /// Interns `base` if unused, else `base`, `base_2`, `base_3`, ... —
  /// used by transformations that must mint fresh predicates.
  PredId FreshPredicate(const std::string& base);

  /// Returns the id for a symbolic constant, interning it if new.
  SymbolId InternSymbol(const std::string& name);
  const std::string& SymbolName(SymbolId id) const;

  int num_predicates() const { return static_cast<int>(pred_names_.size()); }

  static constexpr PredId kNoPred = -1;

 private:
  std::map<std::string, PredId> pred_ids_;
  std::vector<std::string> pred_names_;
  std::map<std::string, SymbolId> symbol_ids_;
  std::vector<std::string> symbol_names_;
};

}  // namespace cqlopt

#endif  // CQLOPT_AST_SYMBOL_TABLE_H_
