#include "ast/arg_map.h"

namespace cqlopt {

Conjunction PtolConjunction(const Literal& lit, const Conjunction& over_args) {
  std::map<VarId, VarId> mapping;
  for (int i = 0; i < lit.arity(); ++i) {
    mapping[i + 1] = lit.args[static_cast<size_t>(i)];
  }
  // Rule variable ids (>= 1024) are disjoint from position ids (1..arity),
  // so the simultaneous rename is well defined; a non-injective argument
  // tuple conjoins the per-position constraints, per Definition 2.7.
  return over_args.Rename(mapping);
}

ConstraintSet Ptol(const Literal& lit, const ConstraintSet& over_args) {
  ConstraintSet out;
  for (const Conjunction& d : over_args.disjuncts()) {
    out.AddDisjunct(PtolConjunction(lit, d));
  }
  return out;
}

Result<Conjunction> LtopConjunction(const Literal& lit,
                                    const Conjunction& over_vars) {
  // Definition 2.8: conjoin position-variable equalities $i = X_i, then
  // project onto the positions.
  Conjunction tied = over_vars;
  std::vector<VarId> positions;
  positions.reserve(static_cast<size_t>(lit.arity()));
  for (int i = 0; i < lit.arity(); ++i) {
    CQLOPT_RETURN_IF_ERROR(
        tied.AddEquality(i + 1, lit.args[static_cast<size_t>(i)]));
    positions.push_back(i + 1);
  }
  return tied.Project(positions);
}

Result<ConstraintSet> Ltop(const Literal& lit, const ConstraintSet& over_vars) {
  ConstraintSet out;
  for (const Conjunction& d : over_vars.disjuncts()) {
    CQLOPT_ASSIGN_OR_RETURN(Conjunction c, LtopConjunction(lit, d));
    out.AddDisjunct(c);
  }
  return out;
}

}  // namespace cqlopt
