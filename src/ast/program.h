#ifndef CQLOPT_AST_PROGRAM_H_
#define CQLOPT_AST_PROGRAM_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ast/rule.h"

namespace cqlopt {

/// A query `?- C, q(X̄).` in normalized form: one literal over distinct
/// fresh variables plus a constraint conjunction binding some of them
/// (e.g. `?- cheaporshort(madison, seattle, T, C)` binds the first two
/// arguments to symbols).
struct Query {
  Literal literal;
  Conjunction constraints;
  /// 1-based source line of the `?-` statement, or 0 if built
  /// programmatically (mirrors Rule::source_line).
  int source_line = 0;
};

/// A CQL program: a finite set of rules over a shared symbol table
/// (Section 2). Predicates with at least one rule are *derived*; all others
/// are *database (EDB)* predicates.
struct Program {
  Program() : symbols(std::make_shared<SymbolTable>()) {}
  explicit Program(std::shared_ptr<SymbolTable> table)
      : symbols(std::move(table)) {}

  std::shared_ptr<SymbolTable> symbols;
  std::vector<Rule> rules;
  /// Declared arity of every predicate seen (rules and queries).
  std::map<PredId, int> arities;

  bool IsDerived(PredId pred) const;
  /// Predicates in rule heads, sorted.
  std::vector<PredId> DerivedPredicates() const;
  /// Predicates occurring only in bodies, sorted.
  std::vector<PredId> DatabasePredicates() const;
  /// Indexes of rules whose head is `pred`.
  std::vector<size_t> RuleIndexesFor(PredId pred) const;
  /// Declared arity, or -1 if the predicate is unknown.
  int Arity(PredId pred) const;
  /// Records the arity of a predicate; returns InvalidArgument on conflict.
  Status DeclareArity(PredId pred, int arity);

  /// Removes rules whose head predicate cannot reach `query_pred` in the
  /// dependency graph ("deleting rules not reachable from the query
  /// predicate", Example 4.1). Returns the number of rules removed.
  int RemoveUnreachable(PredId query_pred);

  /// Next variable id above every id used in the program; used to seed
  /// VarAllocators so transformation-introduced variables stay fresh.
  VarId MaxVar() const;
};

}  // namespace cqlopt

#endif  // CQLOPT_AST_PROGRAM_H_
