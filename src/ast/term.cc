#include "ast/term.h"

namespace cqlopt {

VarId ParsedTerm::AsPlainVar() const {
  if (kind != Kind::kLinear) return kNoVar;
  if (!linear.constant().is_zero()) return kNoVar;
  const auto& coeffs = linear.coefficients();
  if (coeffs.size() != 1) return kNoVar;
  if (coeffs.begin()->second != Rational(1)) return kNoVar;
  return coeffs.begin()->first;
}

}  // namespace cqlopt
