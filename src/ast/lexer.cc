#include "ast/lexer.h"

#include <cctype>

namespace cqlopt {

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text) {
    tokens.push_back(Token{kind, std::move(text), line, column});
  };
  while (i < input.size()) {
    char c = input[i];
    if (c == '\n') {
      ++line;
      column = 1;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++column;
      ++i;
      continue;
    }
    if (c == '%' || (c == '/' && i + 1 < input.size() && input[i + 1] == '/')) {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      if (i + 1 < input.size() && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        ++i;
        while (i < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      push(TokenKind::kNumber, input.substr(start, i - start));
      column += static_cast<int>(i - start);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_' || input[i] == '\'')) {
        ++i;
      }
      std::string text = input.substr(start, i - start);
      bool is_var = std::isupper(static_cast<unsigned char>(text[0])) ||
                    text[0] == '_';
      push(is_var ? TokenKind::kVariable : TokenKind::kIdent, std::move(text));
      column += static_cast<int>(i - start);
      continue;
    }
    auto two = [&](char a, char b) {
      return c == a && i + 1 < input.size() && input[i + 1] == b;
    };
    if (two(':', '-')) {
      push(TokenKind::kImplies, ":-");
      i += 2;
      column += 2;
      continue;
    }
    if (two('?', '-')) {
      push(TokenKind::kQuery, "?-");
      i += 2;
      column += 2;
      continue;
    }
    if (two('<', '=') || two('=', '<')) {
      push(TokenKind::kLe, "<=");
      i += 2;
      column += 2;
      continue;
    }
    if (two('>', '=') || two('=', '>')) {
      push(TokenKind::kGe, ">=");
      i += 2;
      column += 2;
      continue;
    }
    TokenKind kind;
    switch (c) {
      case '(':
        kind = TokenKind::kLParen;
        break;
      case ')':
        kind = TokenKind::kRParen;
        break;
      case ',':
        kind = TokenKind::kComma;
        break;
      case '.':
        kind = TokenKind::kDot;
        break;
      case ':':
        kind = TokenKind::kColon;
        break;
      case '<':
        kind = TokenKind::kLt;
        break;
      case '>':
        kind = TokenKind::kGt;
        break;
      case '=':
        kind = TokenKind::kEq;
        break;
      case '+':
        kind = TokenKind::kPlus;
        break;
      case '-':
        kind = TokenKind::kMinus;
        break;
      case '*':
        kind = TokenKind::kStar;
        break;
      default:
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at line " +
                                  std::to_string(line) + ", column " +
                                  std::to_string(column));
    }
    push(kind, std::string(1, c));
    ++i;
    ++column;
  }
  push(TokenKind::kEof, "");
  return tokens;
}

}  // namespace cqlopt
