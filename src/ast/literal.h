#ifndef CQLOPT_AST_LITERAL_H_
#define CQLOPT_AST_LITERAL_H_

#include <map>
#include <string>
#include <vector>

#include "ast/symbol_table.h"
#include "constraint/variable.h"

namespace cqlopt {

/// A predicate literal `p(X1, ..., Xn)` in normalized form: every argument
/// is a variable (constants and arithmetic live in the rule's constraint
/// conjunction). Variables may repeat, expressing equality joins.
struct Literal {
  Literal() : pred(SymbolTable::kNoPred) {}
  Literal(PredId pred_in, std::vector<VarId> args_in)
      : pred(pred_in), args(std::move(args_in)) {}

  int arity() const { return static_cast<int>(args.size()); }

  /// Sorted, deduplicated argument variables.
  std::vector<VarId> Vars() const;

  /// Applies a variable mapping to the arguments.
  Literal Rename(const std::map<VarId, VarId>& mapping) const;

  bool operator==(const Literal& other) const {
    return pred == other.pred && args == other.args;
  }
  bool operator!=(const Literal& other) const { return !(*this == other); }

  PredId pred;
  std::vector<VarId> args;
};

}  // namespace cqlopt

#endif  // CQLOPT_AST_LITERAL_H_
