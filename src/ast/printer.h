#ifndef CQLOPT_AST_PRINTER_H_
#define CQLOPT_AST_PRINTER_H_

#include <functional>
#include <string>

#include "ast/program.h"
#include "constraint/constraint_set.h"

namespace cqlopt {

/// Function mapping a variable id to its display name.
using VarNameFn = std::function<std::string(VarId)>;

/// Renders a conjunction with caller-chosen variable names and symbol names
/// resolved via `symbols` — the layer-polite version of
/// Conjunction::ToString (which only knows numeric ids).
std::string RenderConjunction(const Conjunction& conj,
                              const SymbolTable& symbols,
                              const VarNameFn& name);

/// Renders a constraint set, disjuncts parenthesized and '|'-joined.
std::string RenderConstraintSet(const ConstraintSet& set,
                                const SymbolTable& symbols,
                                const VarNameFn& name);

/// Renders a literal: `pred(X, Y, Z)`.
std::string RenderLiteral(const Literal& lit, const SymbolTable& symbols,
                          const VarNameFn& name);

/// Renders a rule in the surface syntax, e.g.
/// `r2: cheaporshort(S, D, T, C) :- flight(S, D, T, C), C <= 150.`
/// Constraint atoms print after the body literals.
std::string RenderRule(const Rule& rule, const SymbolTable& symbols);

/// Renders all rules, one per line.
std::string RenderProgram(const Program& program);

/// Renders a query: `?- q(X, Y), X <= 4.`
std::string RenderQuery(const Query& query, const SymbolTable& symbols);

/// Name function for a rule: uses the rule's var_names, falling back to
/// `V<id>`.
VarNameFn RuleVarNames(const Rule& rule);

/// Name function rendering argument positions as `$i`.
VarNameFn DollarNames();

}  // namespace cqlopt

#endif  // CQLOPT_AST_PRINTER_H_
