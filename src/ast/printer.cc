#include "ast/printer.h"

#include <algorithm>
#include <map>
#include <memory>

namespace cqlopt {
namespace {

std::string RenderLinearExpr(const LinearExpr& expr, const VarNameFn& name) {
  std::string out;
  for (const auto& [v, c] : expr.coefficients()) {
    if (out.empty()) {
      if (c == Rational(1)) {
        out += name(v);
      } else if (c == Rational(-1)) {
        out += "-" + name(v);
      } else {
        out += c.ToString() + "*" + name(v);
      }
    } else {
      Rational abs = c.Abs();
      out += c.is_negative() ? " - " : " + ";
      if (abs != Rational(1)) out += abs.ToString() + "*";
      out += name(v);
    }
  }
  if (out.empty()) return expr.constant().ToString();
  if (!expr.constant().is_zero()) {
    out += expr.constant().is_negative() ? " - " : " + ";
    out += expr.constant().Abs().ToString();
  }
  return out;
}

std::string RenderLinearConstraint(const LinearConstraint& atom,
                                   const VarNameFn& name) {
  LinearExpr lhs = atom.expr();
  bool flip = atom.op() != CmpOp::kEq && !lhs.coefficients().empty();
  for (const auto& [v, c] : lhs.coefficients()) {
    if (!c.is_negative()) flip = false;
  }
  const char* op_name = CmpOpName(atom.op());
  if (flip) {
    lhs = -lhs;
    op_name = atom.op() == CmpOp::kLe ? ">=" : ">";
  }
  Rational rhs = -lhs.constant();
  lhs.AddConstant(rhs);
  return RenderLinearExpr(lhs, name) + " " + op_name + " " + rhs.ToString();
}

}  // namespace

std::string RenderConjunction(const Conjunction& conj,
                              const SymbolTable& symbols,
                              const VarNameFn& name) {
  if (conj.known_unsat()) return "false";
  std::vector<std::string> pieces;
  for (const auto& [member, root] : conj.EqualityPairs()) {
    pieces.push_back(name(member) + " = " + name(root));
  }
  for (const auto& [root, symbol] : conj.SymbolBindings()) {
    pieces.push_back(name(root) + " = " + symbols.SymbolName(symbol));
  }
  for (const LinearConstraint& atom : conj.linear()) {
    pieces.push_back(RenderLinearConstraint(atom, name));
  }
  if (pieces.empty()) return "true";
  std::sort(pieces.begin(), pieces.end());
  std::string out = pieces[0];
  for (size_t i = 1; i < pieces.size(); ++i) out += ", " + pieces[i];
  return out;
}

std::string RenderConstraintSet(const ConstraintSet& set,
                                const SymbolTable& symbols,
                                const VarNameFn& name) {
  if (set.is_false()) return "false";
  std::vector<std::string> parts;
  for (const Conjunction& d : set.disjuncts()) {
    parts.push_back("(" + RenderConjunction(d, symbols, name) + ")");
  }
  std::sort(parts.begin(), parts.end());
  std::string out = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) out += " | " + parts[i];
  return out;
}

std::string RenderLiteral(const Literal& lit, const SymbolTable& symbols,
                          const VarNameFn& name) {
  std::string out = symbols.PredicateName(lit.pred) + "(";
  for (size_t i = 0; i < lit.args.size(); ++i) {
    if (i > 0) out += ", ";
    out += name(lit.args[i]);
  }
  return out + ")";
}

VarNameFn RuleVarNames(const Rule& rule) {
  // Copy the name map so the function outlives the rule reference, and
  // disambiguate: rules produced by unfolding can merge variables from two
  // source rules that carried the same surface name.
  auto names = std::make_shared<std::map<VarId, std::string>>();
  std::map<std::string, int> used;
  for (VarId v : rule.Vars()) {
    auto it = rule.var_names.find(v);
    std::string base =
        it != rule.var_names.end() ? it->second : "V" + std::to_string(v);
    int n = ++used[base];
    (*names)[v] = n == 1 ? base : base + "_" + std::to_string(n);
  }
  return [names](VarId v) {
    auto it = names->find(v);
    if (it != names->end()) return it->second;
    return "V" + std::to_string(v);
  };
}

VarNameFn DollarNames() {
  return [](VarId v) { return "$" + std::to_string(v); };
}

std::string RenderRule(const Rule& rule, const SymbolTable& symbols) {
  VarNameFn name = RuleVarNames(rule);
  std::string out;
  if (!rule.label.empty()) out += rule.label + ": ";
  out += RenderLiteral(rule.head, symbols, name);
  std::string constraint_str = RenderConjunction(rule.constraints, symbols, name);
  bool has_constraints = constraint_str != "true";
  if (!rule.body.empty() || has_constraints) {
    out += " :- ";
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (i > 0) out += ", ";
      out += RenderLiteral(rule.body[i], symbols, name);
    }
    if (has_constraints) {
      if (!rule.body.empty()) out += ", ";
      out += constraint_str;
    }
  }
  return out + ".";
}

std::string RenderProgram(const Program& program) {
  std::string out;
  for (const Rule& rule : program.rules) {
    out += RenderRule(rule, *program.symbols);
    out += "\n";
  }
  return out;
}

std::string RenderQuery(const Query& query, const SymbolTable& symbols) {
  VarNameFn name = [](VarId v) { return "V" + std::to_string(v); };
  std::string out = "?- " + RenderLiteral(query.literal, symbols, name);
  std::string cs = RenderConjunction(query.constraints, symbols, name);
  if (cs != "true") out += ", " + cs;
  return out + ".";
}

}  // namespace cqlopt
