#include "ast/parser.h"

#include <utility>

#include "ast/lexer.h"
#include "ast/term.h"

namespace cqlopt {
namespace {

/// Recursive-descent parser over the token stream. One instance parses one
/// text; variable scoping is per-rule (the same name in two rules denotes
/// two different variables), while ids are unique program-wide.
class Parser {
 public:
  Parser(std::vector<Token> tokens, std::shared_ptr<SymbolTable> symbols)
      : tokens_(std::move(tokens)),
        symbols_(std::move(symbols)),
        alloc_(1024) {}

  Result<ParseResult> Parse() {
    ParseResult out;
    out.program = Program(symbols_);
    while (!At(TokenKind::kEof)) {
      if (At(TokenKind::kQuery)) {
        CQLOPT_ASSIGN_OR_RETURN(Query q, ParseQuery(&out.program));
        out.queries.push_back(std::move(q));
      } else {
        CQLOPT_ASSIGN_OR_RETURN(Rule r, ParseRule(&out.program));
        out.program.rules.push_back(std::move(r));
      }
    }
    return out;
  }

  Result<Query> ParseOneQuery(Program* program) {
    if (!At(TokenKind::kQuery)) {
      return Error("expected '?-'");
    }
    CQLOPT_ASSIGN_OR_RETURN(Query q, ParseQuery(program));
    if (!At(TokenKind::kEof)) return Error("trailing input after query");
    return q;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Next() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : pos_];
  }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool Accept(TokenKind kind) {
    if (!At(kind)) return false;
    Advance();
    return true;
  }
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at line " +
                              std::to_string(Cur().line) + " near '" +
                              Cur().text + "'");
  }
  Status Expect(TokenKind kind, const std::string& what) {
    if (!Accept(kind)) return Error("expected " + what);
    return Status::OK();
  }

  VarId InternVar(const std::string& name) {
    auto [it, inserted] = rule_vars_.emplace(name, kNoVar);
    if (inserted) {
      it->second = alloc_.Fresh();
      rule_var_names_[it->second] = name;
    }
    return it->second;
  }
  VarId FreshVar() {
    VarId v = alloc_.Fresh();
    rule_var_names_[v] = "_g" + std::to_string(v);
    return v;
  }

  /// primary := number | variable | ident | '(' expr ')'
  Result<ParsedTerm> ParsePrimary() {
    if (At(TokenKind::kNumber)) {
      Rational value;
      if (!Rational::FromString(Cur().text, &value)) {
        return Error("malformed number");
      }
      Advance();
      return ParsedTerm::Linear(LinearExpr::Constant(value));
    }
    if (At(TokenKind::kVariable)) {
      VarId v = InternVar(Cur().text);
      Advance();
      return ParsedTerm::Linear(LinearExpr::Var(v));
    }
    if (At(TokenKind::kIdent)) {
      SymbolId sym = symbols_->InternSymbol(Cur().text);
      Advance();
      return ParsedTerm::Symbol(sym);
    }
    if (Accept(TokenKind::kLParen)) {
      CQLOPT_ASSIGN_OR_RETURN(ParsedTerm t, ParseExpr());
      CQLOPT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
      return t;
    }
    return Error("expected term");
  }

  /// unary := ['-'] primary
  Result<ParsedTerm> ParseUnary() {
    if (Accept(TokenKind::kMinus)) {
      CQLOPT_ASSIGN_OR_RETURN(ParsedTerm t, ParseUnary());
      if (t.kind != ParsedTerm::Kind::kLinear) {
        return Error("cannot negate a symbolic constant");
      }
      return ParsedTerm::Linear(-t.linear);
    }
    return ParsePrimary();
  }

  /// multerm := unary ('*' unary)*, with linearity enforced.
  Result<ParsedTerm> ParseMulTerm() {
    CQLOPT_ASSIGN_OR_RETURN(ParsedTerm t, ParseUnary());
    while (Accept(TokenKind::kStar)) {
      CQLOPT_ASSIGN_OR_RETURN(ParsedTerm rhs, ParseUnary());
      if (t.kind != ParsedTerm::Kind::kLinear ||
          rhs.kind != ParsedTerm::Kind::kLinear) {
        return Error("cannot multiply symbolic constants");
      }
      if (!t.linear.is_constant() && !rhs.linear.is_constant()) {
        return Error("nonlinear product of variables");
      }
      if (rhs.linear.is_constant()) {
        t = ParsedTerm::Linear(t.linear.Scale(rhs.linear.constant()));
      } else {
        t = ParsedTerm::Linear(rhs.linear.Scale(t.linear.constant()));
      }
    }
    return t;
  }

  /// expr := multerm (('+'|'-') multerm)*
  Result<ParsedTerm> ParseExpr() {
    CQLOPT_ASSIGN_OR_RETURN(ParsedTerm t, ParseMulTerm());
    while (At(TokenKind::kPlus) || At(TokenKind::kMinus)) {
      bool plus = At(TokenKind::kPlus);
      Advance();
      CQLOPT_ASSIGN_OR_RETURN(ParsedTerm rhs, ParseMulTerm());
      if (t.kind != ParsedTerm::Kind::kLinear ||
          rhs.kind != ParsedTerm::Kind::kLinear) {
        return Error("arithmetic over symbolic constants");
      }
      t = ParsedTerm::Linear(plus ? t.linear + rhs.linear
                                  : t.linear - rhs.linear);
    }
    return t;
  }

  /// Converts a parsed argument term into a bare variable, pushing any
  /// binding into `constraints`.
  Result<VarId> TermToVar(const ParsedTerm& t, Conjunction* constraints) {
    if (t.kind == ParsedTerm::Kind::kSymbol) {
      VarId v = FreshVar();
      CQLOPT_RETURN_IF_ERROR(constraints->BindSymbol(v, t.symbol));
      return v;
    }
    VarId plain = t.AsPlainVar();
    if (plain != kNoVar) return plain;
    VarId v = FreshVar();
    LinearExpr diff = LinearExpr::Var(v) - t.linear;
    CQLOPT_RETURN_IF_ERROR(
        constraints->AddLinear(LinearConstraint(diff, CmpOp::kEq)));
    return v;
  }

  /// literal := ident '(' term (',' term)* ')'
  Result<Literal> ParseLiteral(Program* program, Conjunction* constraints) {
    if (!At(TokenKind::kIdent)) return Error("expected predicate");
    PredId pred = symbols_->InternPredicate(Cur().text);
    Advance();
    CQLOPT_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('"));
    std::vector<VarId> args;
    if (!At(TokenKind::kRParen)) {
      do {
        CQLOPT_ASSIGN_OR_RETURN(ParsedTerm t, ParseExpr());
        CQLOPT_ASSIGN_OR_RETURN(VarId v, TermToVar(t, constraints));
        args.push_back(v);
      } while (Accept(TokenKind::kComma));
    }
    CQLOPT_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'"));
    CQLOPT_RETURN_IF_ERROR(
        program->DeclareArity(pred, static_cast<int>(args.size())));
    return Literal(pred, std::move(args));
  }

  /// constraint := expr cmpop expr (the leading expr is already parsed).
  Status FinishConstraint(const ParsedTerm& lhs, Conjunction* constraints) {
    std::string op;
    switch (Cur().kind) {
      case TokenKind::kLe:
        op = "<=";
        break;
      case TokenKind::kLt:
        op = "<";
        break;
      case TokenKind::kGe:
        op = ">=";
        break;
      case TokenKind::kGt:
        op = ">";
        break;
      case TokenKind::kEq:
        op = "=";
        break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    CQLOPT_ASSIGN_OR_RETURN(ParsedTerm rhs, ParseExpr());
    // Symbolic sides are only meaningful under `=` against a variable side.
    if (lhs.kind == ParsedTerm::Kind::kSymbol ||
        rhs.kind == ParsedTerm::Kind::kSymbol) {
      if (op != "=") return Error("symbolic constants admit only '='");
      const ParsedTerm& sym_side =
          lhs.kind == ParsedTerm::Kind::kSymbol ? lhs : rhs;
      const ParsedTerm& var_side =
          lhs.kind == ParsedTerm::Kind::kSymbol ? rhs : lhs;
      if (var_side.kind == ParsedTerm::Kind::kSymbol) {
        // symbol = symbol: satisfiable iff identical.
        if (var_side.symbol != sym_side.symbol) {
          return constraints->AddLinear(LinearConstraint(
              LinearExpr::Constant(Rational(1)), CmpOp::kLe));  // false
        }
        return Status::OK();
      }
      VarId v = var_side.AsPlainVar();
      if (v == kNoVar) return Error("symbolic constant equated to arithmetic");
      return constraints->BindSymbol(v, sym_side.symbol);
    }
    return constraints->AddLinear(
        LinearConstraint::Make(lhs.linear, op, rhs.linear));
  }

  /// bodyitem := literal | constraint
  Status ParseBodyItem(Program* program, std::vector<Literal>* body,
                       Conjunction* constraints) {
    if (At(TokenKind::kIdent) && Next().kind == TokenKind::kLParen) {
      CQLOPT_ASSIGN_OR_RETURN(Literal lit, ParseLiteral(program, constraints));
      body->push_back(std::move(lit));
      return Status::OK();
    }
    CQLOPT_ASSIGN_OR_RETURN(ParsedTerm lhs, ParseExpr());
    return FinishConstraint(lhs, constraints);
  }

  Result<Rule> ParseRule(Program* program) {
    rule_vars_.clear();
    rule_var_names_.clear();
    Rule rule;
    rule.source_line = Cur().line;
    // Optional label: ident ':' (but not ':-').
    if (At(TokenKind::kIdent) && Next().kind == TokenKind::kColon) {
      rule.label = Cur().text;
      Advance();
      Advance();
    }
    CQLOPT_ASSIGN_OR_RETURN(Literal head,
                            ParseLiteral(program, &rule.constraints));
    rule.head = std::move(head);
    if (Accept(TokenKind::kImplies)) {
      do {
        CQLOPT_RETURN_IF_ERROR(
            ParseBodyItem(program, &rule.body, &rule.constraints));
      } while (Accept(TokenKind::kComma));
    }
    CQLOPT_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.'"));
    rule.var_names = rule_var_names_;
    return rule;
  }

  Result<Query> ParseQuery(Program* program) {
    rule_vars_.clear();
    rule_var_names_.clear();
    int line = Cur().line;
    CQLOPT_RETURN_IF_ERROR(Expect(TokenKind::kQuery, "'?-'"));
    Query query;
    query.source_line = line;
    std::vector<Literal> body;
    do {
      CQLOPT_RETURN_IF_ERROR(ParseBodyItem(program, &body, &query.constraints));
    } while (Accept(TokenKind::kComma));
    CQLOPT_RETURN_IF_ERROR(Expect(TokenKind::kDot, "'.'"));
    if (body.size() != 1) {
      return Error("a query must contain exactly one literal");
    }
    query.literal = std::move(body[0]);
    return query;
  }

  std::vector<Token> tokens_;
  std::shared_ptr<SymbolTable> symbols_;
  VarAllocator alloc_;
  size_t pos_ = 0;
  std::map<std::string, VarId> rule_vars_;
  std::map<VarId, std::string> rule_var_names_;
};

}  // namespace

Result<ParseResult> ParseProgram(const std::string& text,
                                 std::shared_ptr<SymbolTable> symbols) {
  CQLOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), std::move(symbols));
  return parser.Parse();
}

Result<ParseResult> ParseProgram(const std::string& text) {
  return ParseProgram(text, std::make_shared<SymbolTable>());
}

Result<Query> ParseQueryText(const std::string& text, Program* program) {
  CQLOPT_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), program->symbols);
  return parser.ParseOneQuery(program);
}

}  // namespace cqlopt
