#include "ast/literal.h"

#include <algorithm>

namespace cqlopt {

std::vector<VarId> Literal::Vars() const {
  std::vector<VarId> out = args;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Literal Literal::Rename(const std::map<VarId, VarId>& mapping) const {
  Literal out = *this;
  for (VarId& v : out.args) {
    auto it = mapping.find(v);
    if (it != mapping.end()) v = it->second;
  }
  return out;
}

}  // namespace cqlopt
