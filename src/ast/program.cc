#include "ast/program.h"

#include <algorithm>

namespace cqlopt {

bool Program::IsDerived(PredId pred) const {
  for (const Rule& r : rules) {
    if (r.head.pred == pred) return true;
  }
  return false;
}

std::vector<PredId> Program::DerivedPredicates() const {
  std::set<PredId> preds;
  for (const Rule& r : rules) preds.insert(r.head.pred);
  return std::vector<PredId>(preds.begin(), preds.end());
}

std::vector<PredId> Program::DatabasePredicates() const {
  std::set<PredId> heads;
  for (const Rule& r : rules) heads.insert(r.head.pred);
  std::set<PredId> out;
  for (const Rule& r : rules) {
    for (const Literal& lit : r.body) {
      if (heads.count(lit.pred) == 0) out.insert(lit.pred);
    }
  }
  return std::vector<PredId>(out.begin(), out.end());
}

std::vector<size_t> Program::RuleIndexesFor(PredId pred) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i].head.pred == pred) out.push_back(i);
  }
  return out;
}

int Program::Arity(PredId pred) const {
  auto it = arities.find(pred);
  return it == arities.end() ? -1 : it->second;
}

Status Program::DeclareArity(PredId pred, int arity) {
  auto [it, inserted] = arities.emplace(pred, arity);
  if (!inserted && it->second != arity) {
    return Status::InvalidArgument(
        "predicate " + symbols->PredicateName(pred) + " used with arity " +
        std::to_string(arity) + " and " + std::to_string(it->second));
  }
  return Status::OK();
}

int Program::RemoveUnreachable(PredId query_pred) {
  // Predicates reachable from the query via "head depends on body" edges.
  std::set<PredId> reachable = {query_pred};
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& r : rules) {
      if (reachable.count(r.head.pred) == 0) continue;
      for (const Literal& lit : r.body) {
        if (reachable.insert(lit.pred).second) changed = true;
      }
    }
  }
  int removed = 0;
  std::vector<Rule> kept;
  kept.reserve(rules.size());
  for (Rule& r : rules) {
    if (reachable.count(r.head.pred) > 0) {
      kept.push_back(std::move(r));
    } else {
      ++removed;
    }
  }
  rules = std::move(kept);
  return removed;
}

VarId Program::MaxVar() const {
  VarId max_var = 1024;
  for (const Rule& r : rules) max_var = std::max(max_var, r.MaxVar());
  return max_var;
}

}  // namespace cqlopt
