#include "ast/symbol_table.h"

namespace cqlopt {

PredId SymbolTable::InternPredicate(const std::string& name) {
  auto [it, inserted] =
      pred_ids_.emplace(name, static_cast<PredId>(pred_names_.size()));
  if (inserted) pred_names_.push_back(name);
  return it->second;
}

PredId SymbolTable::LookupPredicate(const std::string& name) const {
  auto it = pred_ids_.find(name);
  return it == pred_ids_.end() ? kNoPred : it->second;
}

const std::string& SymbolTable::PredicateName(PredId id) const {
  return pred_names_.at(static_cast<size_t>(id));
}

bool SymbolTable::HasPredicate(const std::string& name) const {
  return pred_ids_.count(name) > 0;
}

PredId SymbolTable::FreshPredicate(const std::string& base) {
  if (!HasPredicate(base)) return InternPredicate(base);
  for (int i = 2;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (!HasPredicate(candidate)) return InternPredicate(candidate);
  }
}

SymbolId SymbolTable::InternSymbol(const std::string& name) {
  auto [it, inserted] =
      symbol_ids_.emplace(name, static_cast<SymbolId>(symbol_names_.size()));
  if (inserted) symbol_names_.push_back(name);
  return it->second;
}

const std::string& SymbolTable::SymbolName(SymbolId id) const {
  return symbol_names_.at(static_cast<size_t>(id));
}

}  // namespace cqlopt
