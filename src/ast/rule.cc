#include "ast/rule.h"

#include <algorithm>

namespace cqlopt {

std::vector<VarId> Rule::Vars() const {
  std::vector<VarId> out = head.args;
  for (const Literal& lit : body) {
    out.insert(out.end(), lit.args.begin(), lit.args.end());
  }
  std::vector<VarId> cvars = constraints.Vars();
  out.insert(out.end(), cvars.begin(), cvars.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

VarId Rule::MaxVar() const {
  std::vector<VarId> vars = Vars();
  return vars.empty() ? 0 : vars.back();
}

Rule Rule::RenameApart(VarAllocator* alloc) const {
  std::map<VarId, VarId> mapping;
  for (VarId v : Vars()) mapping[v] = alloc->Fresh();
  return Rename(mapping);
}

Rule Rule::Rename(const std::map<VarId, VarId>& mapping) const {
  Rule out;
  out.label = label;
  out.head = head.Rename(mapping);
  out.body.reserve(body.size());
  for (const Literal& lit : body) out.body.push_back(lit.Rename(mapping));
  out.constraints = constraints.Rename(mapping);
  for (const auto& [v, name] : var_names) {
    auto it = mapping.find(v);
    out.var_names[it == mapping.end() ? v : it->second] = name;
  }
  return out;
}

}  // namespace cqlopt
