#include "ast/normalize.h"

#include <algorithm>
#include <set>

namespace cqlopt {

VarAllocator MakeAllocator(const Program& program) {
  return VarAllocator(std::max(program.MaxVar() + 1, 1024));
}

Rule MakeBridgeRule(PredId head_pred, PredId body_pred, int arity,
                    VarAllocator* alloc, const std::string& label) {
  Rule rule;
  rule.label = label;
  std::vector<VarId> args;
  args.reserve(static_cast<size_t>(arity));
  for (int i = 0; i < arity; ++i) {
    VarId v = alloc->Fresh();
    rule.var_names[v] = "X" + std::to_string(i + 1);
    args.push_back(v);
  }
  rule.head = Literal(head_pred, args);
  rule.body.push_back(Literal(body_pred, args));
  return rule;
}

Query RenameQueryApart(const Query& query, VarAllocator* alloc) {
  std::map<VarId, VarId> mapping;
  for (VarId v : query.literal.Vars()) mapping[v] = alloc->Fresh();
  for (VarId v : query.constraints.Vars()) {
    if (mapping.count(v) == 0) mapping[v] = alloc->Fresh();
  }
  Query out;
  out.literal = query.literal.Rename(mapping);
  out.constraints = query.constraints.Rename(mapping);
  return out;
}

std::string RuleCanonicalKey(const Rule& rule) {
  // Renumber variables by first occurrence (head, then body, then
  // constraints) into a reserved id range, then render canonically.
  std::map<VarId, VarId> renumber;
  VarId next = 1 << 20;
  auto visit = [&](VarId v) {
    if (renumber.emplace(v, next).second) ++next;
  };
  for (VarId v : rule.head.args) visit(v);
  for (const Literal& lit : rule.body) {
    for (VarId v : lit.args) visit(v);
  }
  for (VarId v : rule.constraints.Vars()) visit(v);
  std::string key = std::to_string(rule.head.pred);
  auto append_literal = [&](const Literal& lit) {
    key += "|" + std::to_string(lit.pred) + "(";
    for (VarId v : lit.args) key += std::to_string(renumber.at(v)) + ",";
    key += ")";
  };
  append_literal(rule.head);
  for (const Literal& lit : rule.body) append_literal(lit);
  key += "#" + rule.constraints.Rename(renumber).ToString();
  return key;
}

int DeduplicateRules(Program* program) {
  std::set<std::string> seen;
  std::vector<Rule> kept;
  kept.reserve(program->rules.size());
  int removed = 0;
  for (Rule& rule : program->rules) {
    if (seen.insert(RuleCanonicalKey(rule)).second) {
      kept.push_back(std::move(rule));
    } else {
      ++removed;
    }
  }
  program->rules = std::move(kept);
  return removed;
}

bool IsRuleRangeRestricted(const Rule& rule) {
  std::set<VarId> bound;
  for (const Literal& lit : rule.body) {
    for (VarId v : lit.args) bound.insert(rule.constraints.Find(v));
  }
  // Symbol-bound and numerically-fixed classes count as bound; then close
  // under functional determination by equality atoms.
  for (const auto& [root, symbol] : rule.constraints.SymbolBindings()) {
    bound.insert(root);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const LinearConstraint& atom : rule.constraints.linear()) {
      if (atom.op() != CmpOp::kEq) continue;
      VarId unbound_var = kNoVar;
      int unbound_count = 0;
      for (VarId v : atom.Vars()) {
        if (bound.count(rule.constraints.Find(v)) == 0) {
          unbound_var = rule.constraints.Find(v);
          ++unbound_count;
        }
      }
      if (unbound_count == 1) {
        bound.insert(unbound_var);
        changed = true;
      }
    }
  }
  for (VarId v : rule.head.args) {
    VarId root = rule.constraints.Find(v);
    if (bound.count(root) > 0) continue;
    // A variable fixed to a single numeric value is also ground.
    if (rule.constraints.GetNumericValue(v).has_value()) continue;
    return false;
  }
  return true;
}

bool IsRangeRestricted(const Program& program) {
  for (const Rule& rule : program.rules) {
    if (!IsRuleRangeRestricted(rule)) return false;
  }
  return true;
}

}  // namespace cqlopt
