#ifndef CQLOPT_AST_TERM_H_
#define CQLOPT_AST_TERM_H_

#include <string>

#include "constraint/linear_expr.h"
#include "ast/symbol_table.h"

namespace cqlopt {

/// A parsed term: either a linear arithmetic expression over rule variables
/// (covering plain variables, numbers, and arithmetic like `N-1` or
/// `X1+X2`), or a symbolic constant like `madison`.
///
/// Terms exist only at parse level. Rule normalization (ast/normalize.h)
/// flattens every literal argument to a bare variable, pushing numbers,
/// symbols, repeated variables and arithmetic into the rule's constraint
/// conjunction — e.g. `fib(N-1, X1)` becomes `fib(V, X1)` with `V = N - 1`.
/// The paper performs the same normalization implicitly when it treats
/// constraints as separate body conjuncts.
struct ParsedTerm {
  enum class Kind { kLinear, kSymbol };

  static ParsedTerm Linear(LinearExpr expr) {
    ParsedTerm t;
    t.kind = Kind::kLinear;
    t.linear = std::move(expr);
    return t;
  }
  static ParsedTerm Symbol(SymbolId symbol) {
    ParsedTerm t;
    t.kind = Kind::kSymbol;
    t.symbol = symbol;
    return t;
  }

  /// If the term is exactly one variable (coefficient 1, no constant),
  /// returns it; else kNoVar.
  VarId AsPlainVar() const;

  Kind kind = Kind::kLinear;
  LinearExpr linear;
  SymbolId symbol = -1;
};

}  // namespace cqlopt

#endif  // CQLOPT_AST_TERM_H_
