#ifndef CQLOPT_AST_LEXER_H_
#define CQLOPT_AST_LEXER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace cqlopt {

/// Token kinds of the rule language (see parser.h for the grammar).
enum class TokenKind {
  kIdent,     // lowercase-initial: predicate or symbolic constant
  kVariable,  // uppercase- or underscore-initial
  kNumber,    // decimal literal, possibly with a fractional part
  kLParen,
  kRParen,
  kComma,
  kDot,
  kColon,
  kImplies,   // :-
  kQuery,     // ?-
  kLe,        // <=
  kLt,        // <
  kGe,        // >=
  kGt,        // >
  kEq,        // =
  kPlus,
  kMinus,
  kStar,
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
  int column;
};

/// Tokenizes `input`. `%` and `//` start line comments.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace cqlopt

#endif  // CQLOPT_AST_LEXER_H_
