#ifndef CQLOPT_AST_PARSER_H_
#define CQLOPT_AST_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/program.h"

namespace cqlopt {

/// Parse result: the program's rules plus any `?- ...` queries that appeared
/// in the text.
struct ParseResult {
  Program program;
  std::vector<Query> queries;
};

/// Parses a program in the paper's surface syntax:
///
///   r1: cheaporshort(S, D, T, C) :- flight(S, D, T, C), T <= 240.
///   r4: flight(S, D, T, C) :- flight(S, D1, T1, C1), flight(D1, D, T2, C2),
///                             T = T1 + T2 + 30, C = C1 + C2.
///   fib(0, 1).
///   fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), fib(N - 2, X2).
///   ?- cheaporshort(madison, seattle, Time, Cost).
///
/// Lowercase-initial identifiers are predicates (before `(`) or symbolic
/// constants; uppercase/underscore-initial are variables; rule labels
/// (`r1:`) are optional. Literal arguments may be variables, numbers,
/// symbolic constants, or linear arithmetic expressions — normalization to
/// variable-only arguments (with the bindings moved into the rule's
/// constraint conjunction) happens during parsing.
Result<ParseResult> ParseProgram(const std::string& text);

/// Same, interning into an existing symbol table (so several programs can
/// share predicate ids).
Result<ParseResult> ParseProgram(const std::string& text,
                                 std::shared_ptr<SymbolTable> symbols);

/// Parses a single `?- ...` query against an existing program (predicates
/// are interned into the program's table and arities checked).
Result<Query> ParseQueryText(const std::string& text, Program* program);

}  // namespace cqlopt

#endif  // CQLOPT_AST_PARSER_H_
