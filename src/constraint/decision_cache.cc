#include "constraint/decision_cache.h"

namespace cqlopt {

DecisionCache& DecisionCache::Instance() {
  static DecisionCache* cache = new DecisionCache();  // never destroyed
  return *cache;
}

std::optional<bool> DecisionCache::Lookup(uint64_t key) {
  if (!enabled()) return std::nullopt;
  Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void DecisionCache::Store(uint64_t key, bool value) {
  if (!enabled()) return;
  Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= capacity_per_shard() &&
      shard.map.find(key) == shard.map.end()) {
    evictions_.fetch_add(static_cast<long>(shard.map.size()),
                         std::memory_order_relaxed);
    shard.map.clear();
  }
  shard.map.emplace(key, value);
}

DecisionCache::Counters DecisionCache::Snapshot() const {
  Counters out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.entries += static_cast<long>(shard.map.size());
  }
  return out;
}

void DecisionCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
  }
}

}  // namespace cqlopt
