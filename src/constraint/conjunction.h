#ifndef CQLOPT_CONSTRAINT_CONJUNCTION_H_
#define CQLOPT_CONSTRAINT_CONJUNCTION_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "constraint/linear_constraint.h"
#include "util/status.h"

namespace cqlopt {

/// Identifier of an interned symbolic constant (e.g. `madison`); assigned by
/// ast::SymbolTable. The constraint layer treats symbols as opaque values
/// that are equal iff their ids are equal.
using SymbolId = int;

/// A satisfiable-or-known-false conjunction of constraints over variables:
/// the body constraint `C` of a rule, one disjunct of a constraint set, or
/// the constraint part of a constraint fact `p(X̄; C)` (Section 2).
///
/// Three kinds of atoms are maintained:
///  - variable equalities `X = Y`, kept in a union–find so symbolic and
///    numeric variables are handled uniformly;
///  - symbol bindings `X = madison` (at most one symbol per class);
///  - linear arithmetic atoms over numeric variables, stored over class
///    roots in canonical form.
///
/// Mixing a symbol-bound variable into a linear atom is a type error: the
/// paper's programs are implicitly column-typed (flight times are reals,
/// sources are airports), and arithmetic over airports indicates a broken
/// program rather than an unsatisfiable one.
class Conjunction {
 public:
  /// The empty conjunction (`true`).
  Conjunction() = default;

  static Conjunction True() { return Conjunction(); }
  /// A canonical unsatisfiable conjunction (`false`).
  static Conjunction False();

  /// Conjoins a linear atom. Cheap syntactic checks may set known_unsat.
  Status AddLinear(const LinearConstraint& atom);
  /// Conjoins the equality `a = b`.
  Status AddEquality(VarId a, VarId b);
  /// Conjoins the binding `v = symbol`.
  Status BindSymbol(VarId v, SymbolId symbol);
  /// Conjoins every atom of `other`.
  Status AddConjunction(const Conjunction& other);

  /// True if a cheap check has already established unsatisfiability.
  bool known_unsat() const { return unsat_; }

  /// Full decision procedure (Fourier–Motzkin on the linear part; the
  /// symbolic part is consistent by construction). Cached until mutation.
  bool IsSatisfiable() const;

  /// Projects onto `keep`: the result constrains exactly the variables in
  /// `keep`, with solutions `exists (Vars() \ keep). this` (Definition 2.8's
  /// Π operation). Exact for linear constraints.
  Result<Conjunction> Project(const std::vector<VarId>& keep) const;

  /// Applies a variable mapping (ids absent from the map are unchanged).
  /// The mapping need not be injective: mapping two variables to the same
  /// id conjoins their constraints, which is exactly the PTOL semantics for
  /// literals with repeated variables (Definition 2.7).
  Conjunction Rename(const std::map<VarId, VarId>& mapping) const;

  /// All variables mentioned by any atom, sorted.
  std::vector<VarId> Vars() const;

  /// Union–find root of `v` (v itself if never mentioned).
  VarId Find(VarId v) const;

  /// The symbol bound to `v`'s class, if any.
  std::optional<SymbolId> GetSymbol(VarId v) const;

  /// The unique numeric value of `v` if the conjunction forces one
  /// (i.e. `v = c` is entailed); nullopt otherwise. Runs a projection.
  std::optional<Rational> GetNumericValue(VarId v) const;

  /// Cheap variant of GetNumericValue: only recognizes a direct
  /// single-variable equality atom `v = c` on v's class (the form
  /// simplified ground facts store). No projection; may return nullopt for
  /// values that are entailed but not directly stored. Used as a join
  /// pre-filter.
  std::optional<Rational> QuickNumericValue(VarId v) const;

  /// True if every variable in `vars` is bound to a symbol or forced to a
  /// unique numeric value — the fact is a *ground* fact over those
  /// positions (Section 2's ground vs constraint facts distinction).
  bool IsGroundOver(const std::vector<VarId>& vars) const;

  /// Linear atoms, over class roots, canonically sorted.
  const std::vector<LinearConstraint>& linear() const { return linear_; }

  /// Non-trivial equality edges (member, root), member != root, sorted.
  std::vector<std::pair<VarId, VarId>> EqualityPairs() const;

  /// (root, symbol) bindings, sorted by root.
  std::vector<std::pair<VarId, SymbolId>> SymbolBindings() const;

  /// Exports every atom as (kind-tagged) pieces for re-insertion after a
  /// variable rename; used internally and by the DNF machinery.
  /// The linear part of this conjunction *plus* its equalities materialized
  /// as linear EQ atoms — the form the implication checker feeds to FM.
  std::vector<LinearConstraint> LinearWithEqualities() const;

  /// Removes linear atoms implied by the rest and normalizes the store.
  void Simplify();

  /// True if the two conjunctions have identical canonical forms. (Two
  /// equivalent conjunctions may still differ; use implication for
  /// semantic equivalence.)
  bool StructurallyEquals(const Conjunction& other) const {
    return ToString() == other.ToString();
  }

  /// Canonical rendering, e.g. "$1 = madison & $3 <= 240 & $2 = $4".
  /// "true" for the empty conjunction, "false" when known unsatisfiable.
  std::string ToString() const;

 private:
  VarId FindMutable(VarId v);
  /// Whether any linear atom mentions root `r`.
  bool RootInLinear(VarId r) const;
  /// Re-sorts and dedups linear_; detects trivially false atoms.
  void TidyLinear();

  bool unsat_ = false;
  std::map<VarId, VarId> parent_;           // union-find; absent == self root
  std::map<VarId, SymbolId> symbols_;       // root -> symbol
  std::vector<LinearConstraint> linear_;    // over roots
  mutable std::optional<bool> sat_cache_;
};

}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_CONJUNCTION_H_
