#include "constraint/interval.h"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "constraint/conjunction.h"
#include "constraint/fingerprint.h"
#include "constraint/fourier_motzkin.h"

namespace cqlopt {

bool Interval::TightenLower(const Rational& value, bool strict) {
  if (!lo_inf_) {
    if (value < lo_) return false;
    if (value == lo_ && (!strict || lo_strict_)) return false;
  }
  lo_inf_ = false;
  lo_ = value;
  lo_strict_ = strict;
  return true;
}

bool Interval::TightenUpper(const Rational& value, bool strict) {
  if (!hi_inf_) {
    if (value > hi_) return false;
    if (value == hi_ && (!strict || hi_strict_)) return false;
  }
  hi_inf_ = false;
  hi_ = value;
  hi_strict_ = strict;
  return true;
}

bool Interval::IsEmpty() const {
  if (lo_inf_ || hi_inf_) return false;
  if (lo_ > hi_) return true;
  return lo_ == hi_ && (lo_strict_ || hi_strict_);
}

std::optional<Rational> Interval::Point() const {
  if (lo_inf_ || hi_inf_ || lo_strict_ || hi_strict_) return std::nullopt;
  if (lo_ != hi_) return std::nullopt;
  return lo_;
}

bool Interval::Contains(const Rational& value) const {
  if (!lo_inf_ && (lo_strict_ ? value <= lo_ : value < lo_)) return false;
  if (!hi_inf_ && (hi_strict_ ? value >= hi_ : value > hi_)) return false;
  return true;
}

bool Interval::Intersects(const Interval& other) const {
  Interval meet = *this;
  if (!other.lo_inf_) meet.TightenLower(other.lo_, other.lo_strict_);
  if (!other.hi_inf_) meet.TightenUpper(other.hi_, other.hi_strict_);
  return !meet.IsEmpty();
}

std::string Interval::ToString() const {
  std::string out = lo_inf_ ? "(-inf" : (lo_strict_ ? "(" : "[") +
                                            lo_.ToString();
  out += ", ";
  out += hi_inf_ ? "+inf)" : hi_.ToString() + (hi_strict_ ? ")" : "]");
  return out;
}

const Interval& IntervalDomain::Of(VarId v) const {
  static const Interval kFull;
  auto it = intervals_.find(v);
  return it == intervals_.end() ? kFull : it->second;
}

ExprRange IntervalDomain::RestRange(const LinearExpr& expr, VarId skip) const {
  ExprRange r;
  r.lo = RangeEnd{false, expr.constant(), false};
  r.hi = RangeEnd{false, expr.constant(), false};
  for (const auto& [v, coeff] : expr.coefficients()) {
    if (v == skip) continue;
    const Interval& iv = Of(v);
    // coeff > 0: min uses the lower endpoint, max the upper; coeff < 0
    // flips the roles. An infinite contributing endpoint makes that end of
    // the range infinite; a strict one makes it unattained.
    const bool from_lower_for_min = coeff.sign() > 0;
    if (!r.lo.infinite) {
      bool inf = from_lower_for_min ? iv.lower_infinite()
                                    : iv.upper_infinite();
      if (inf) {
        r.lo.infinite = true;
      } else {
        r.lo.value += coeff * (from_lower_for_min ? iv.lower() : iv.upper());
        r.lo.open = r.lo.open || (from_lower_for_min ? iv.lower_strict()
                                                     : iv.upper_strict());
      }
    }
    if (!r.hi.infinite) {
      bool inf = from_lower_for_min ? iv.upper_infinite()
                                    : iv.lower_infinite();
      if (inf) {
        r.hi.infinite = true;
      } else {
        r.hi.value += coeff * (from_lower_for_min ? iv.upper() : iv.lower());
        r.hi.open = r.hi.open || (from_lower_for_min ? iv.upper_strict()
                                                     : iv.lower_strict());
      }
    }
    if (r.lo.infinite && r.hi.infinite) break;
  }
  return r;
}

ExprRange IntervalDomain::RangeOf(const LinearExpr& expr) const {
  return RestRange(expr, kNoVar);
}

IntervalDomain IntervalDomain::Propagate(
    const std::vector<LinearConstraint>& cs) {
  IntervalDomain dom;
  for (int round = 0; round < kMaxRounds && !dom.empty_; ++round) {
    bool changed = false;
    for (const LinearConstraint& c : cs) {
      if (dom.empty_) break;
      if (c.is_ground()) {
        if (!c.GroundValue()) dom.empty_ = true;
        continue;
      }
      for (const auto& [v, a] : c.expr().coefficients()) {
        // a*v + rest op 0  =>  v op' (-rest)/a, the comparison direction
        // following the sign of a. The op-directed bound comes from the
        // rest's minimum; an equality bounds v from both rest endpoints.
        ExprRange rest = dom.RestRange(c.expr(), v);
        Interval& iv = dom.intervals_[v];
        if (!rest.lo.infinite) {
          Rational bound = (-rest.lo.value) / a;
          bool strict = c.op() == CmpOp::kLt || rest.lo.open;
          changed = (a.sign() > 0 ? iv.TightenUpper(bound, strict)
                                  : iv.TightenLower(bound, strict)) ||
                    changed;
        }
        if (c.op() == CmpOp::kEq && !rest.hi.infinite) {
          Rational bound = (-rest.hi.value) / a;
          changed = (a.sign() > 0 ? iv.TightenLower(bound, rest.hi.open)
                                  : iv.TightenUpper(bound, rest.hi.open)) ||
                    changed;
        }
        if (iv.IsEmpty()) {
          dom.empty_ = true;
          break;
        }
      }
    }
    if (!changed) break;
  }
  return dom;
}

bool IntervalDomain::ProvesAtom(const LinearConstraint& atom) const {
  ExprRange r = RangeOf(atom.expr());
  switch (atom.op()) {
    case CmpOp::kLe:  // all values <= 0
      return !r.hi.infinite && r.hi.value <= Rational(0);
    case CmpOp::kLt:  // all values < 0
      return !r.hi.infinite &&
             (r.hi.value < Rational(0) ||
              (r.hi.value == Rational(0) && r.hi.open));
    case CmpOp::kEq:  // range is exactly the closed point {0}
      return !r.lo.infinite && !r.hi.infinite && !r.lo.open && !r.hi.open &&
             r.lo.value == Rational(0) && r.hi.value == Rational(0);
  }
  return false;
}

bool IntervalDomain::RefutesAtom(const LinearConstraint& atom) const {
  ExprRange r = RangeOf(atom.expr());
  switch (atom.op()) {
    case CmpOp::kLe:  // all values > 0
      return !r.lo.infinite &&
             (r.lo.value > Rational(0) ||
              (r.lo.value == Rational(0) && r.lo.open));
    case CmpOp::kLt:  // all values >= 0
      return !r.lo.infinite && r.lo.value >= Rational(0);
    case CmpOp::kEq: {  // zero is not an achieved value
      bool zero_above_lo =
          r.lo.infinite || r.lo.value < Rational(0) ||
          (r.lo.value == Rational(0) && !r.lo.open);
      bool zero_below_hi =
          r.hi.infinite || r.hi.value > Rational(0) ||
          (r.hi.value == Rational(0) && !r.hi.open);
      return !(zero_above_lo && zero_below_hi);
    }
  }
  return false;
}

bool IntervalDomain::ViolatedSomewhere(const LinearConstraint& atom) const {
  ExprRange r = RangeOf(atom.expr());
  switch (atom.op()) {
    case CmpOp::kLe:  // some value > 0: the range's sup is positive
      return r.hi.infinite || r.hi.value > Rational(0);
    case CmpOp::kLt:  // some value >= 0
      return r.hi.infinite || r.hi.value > Rational(0) ||
             (r.hi.value == Rational(0) && !r.hi.open);
    case CmpOp::kEq:  // some value != 0: any range other than {0}
      return r.lo.infinite || r.hi.infinite ||
             r.lo.value != Rational(0) || r.hi.value != Rational(0);
  }
  return false;
}

bool IntervalDomain::ProvesAll(const std::vector<LinearConstraint>& cs) const {
  for (const LinearConstraint& c : cs) {
    if (!ProvesAtom(c)) return false;
  }
  return true;
}

namespace prepass {
namespace {

std::atomic<bool> g_enabled{true};
std::atomic<long> g_sat{0};
std::atomic<long> g_unsat{0};
std::atomic<long> g_implied{0};
std::atomic<long> g_not_implied{0};
std::atomic<long> g_fallback{0};

void Count(std::atomic<long>* counter) {
  counter->fetch_add(1, std::memory_order_relaxed);
}

// Domain-separation salts for the verdict memo (distinct from the
// DecisionCache salts in fourier_motzkin.cc / implication.cc — same operand
// fingerprints, different table).
constexpr uint64_t kMemoSatSalt = 0x9e3779b97f4a7c15ull;
constexpr uint64_t kMemoImpliesAtomSalt = 0xbf58476d1ce4e5b9ull;
constexpr uint64_t kMemoImpliesSalt = 0x94d049bb133111ebull;

/// Three-state outcome of an interval probe, memoized so a repeated probe
/// costs one fingerprint lookup instead of a fresh BigInt-rational
/// propagation. The memo is *not* the DecisionCache: conclusive prepass
/// answers stay out of the exact tier's cache by design (its entries and
/// hit/miss counters keep measuring exact-procedure traffic only), and
/// inconclusiveness — which the DecisionCache cannot represent — is
/// memoized here too, so repeats of hard probes skip straight to the
/// cached exact procedure. Verdicts are pure functions of the canonical
/// fingerprints, so memoization can never change an answer.
enum class Verdict : uint8_t { kInconclusive = 0, kFalse = 1, kTrue = 2 };

Verdict ToVerdict(const std::optional<bool>& fast) {
  if (!fast.has_value()) return Verdict::kInconclusive;
  return *fast ? Verdict::kTrue : Verdict::kFalse;
}

std::optional<bool> FromVerdict(Verdict v) {
  if (v == Verdict::kInconclusive) return std::nullopt;
  return v == Verdict::kTrue;
}

class VerdictMemo {
 public:
  std::optional<Verdict> Lookup(uint64_t key) {
    Shard& shard = shards_[ShardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return std::nullopt;
    return static_cast<Verdict>(it->second);
  }

  void Store(uint64_t key, Verdict v) {
    Shard& shard = shards_[ShardOf(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    // Wholesale clear on a full shard, like the DecisionCache: entries are
    // single bytes, recency tracking would cost more than re-propagating.
    if (shard.map.size() >= kShardCapacity) shard.map.clear();
    shard.map.emplace(key, static_cast<uint8_t>(v));
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
    }
  }

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, uint8_t> map;
  };
  static constexpr int kShards = 8;
  static constexpr size_t kShardCapacity = size_t{1} << 14;
  static size_t ShardOf(uint64_t key) { return (key >> 60) & (kShards - 1); }

  Shard shards_[kShards];
};

VerdictMemo& Memo() {
  static VerdictMemo* memo = new VerdictMemo();
  return *memo;
}

}  // namespace

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

Counters Snapshot() {
  Counters c;
  c.sat = g_sat.load(std::memory_order_relaxed);
  c.unsat = g_unsat.load(std::memory_order_relaxed);
  c.implied = g_implied.load(std::memory_order_relaxed);
  c.not_implied = g_not_implied.load(std::memory_order_relaxed);
  c.fallback = g_fallback.load(std::memory_order_relaxed);
  return c;
}

std::optional<bool> TrySatisfiable(const std::vector<LinearConstraint>& cs) {
  IntervalDomain dom = IntervalDomain::Propagate(cs);
  if (dom.definitely_empty()) return false;
  // The box is nonempty. If every atom holds on the whole box, any box
  // point is a model; if some atom fails on the whole box, no solution can
  // exist (solutions lie inside the box and would have to satisfy it).
  bool all_proved = true;
  for (const LinearConstraint& c : cs) {
    if (dom.ProvesAtom(c)) continue;
    all_proved = false;
    if (dom.RefutesAtom(c)) return false;
  }
  if (all_proved) return true;
  return std::nullopt;
}

std::optional<bool> TryImpliesAtom(const std::vector<LinearConstraint>& cs,
                                   const LinearConstraint& atom) {
  IntervalDomain dom = IntervalDomain::Propagate(cs);
  if (dom.definitely_empty()) return true;  // UNSAT implies anything
  if (dom.ProvesAtom(atom)) return true;
  // Disproof needs the box to contain only solutions: then a box point
  // violating the atom is a counterexample model.
  if (dom.ProvesAll(cs) && dom.ViolatedSomewhere(atom)) return false;
  return std::nullopt;
}

void ClearMemo() { Memo().Clear(); }

bool IsSatisfiable(const std::vector<LinearConstraint>& cs) {
  if (enabled()) {
    // Structural screens first: the ground case (no linear atoms — the
    // bulk of EmitHead's satisfiability traffic on ground workloads) and
    // one-atom systems are cheaper to answer directly than to fingerprint
    // and look up anywhere.
    if (cs.empty()) {
      Count(&g_sat);
      return true;
    }
    std::optional<bool> fast;
    if (cs.size() == 1) {
      fast = TrySatisfiable(cs);
    } else {
      uint64_t key = fp::Mix(kMemoSatSalt, fp::FingerprintOf(cs));
      if (std::optional<Verdict> hit = Memo().Lookup(key)) {
        fast = FromVerdict(*hit);
      } else {
        fast = TrySatisfiable(cs);
        Memo().Store(key, ToVerdict(fast));
      }
    }
    if (fast.has_value()) {
      Count(*fast ? &g_sat : &g_unsat);
      return *fast;
    }
    Count(&g_fallback);
  }
  return fm::IsSatisfiable(cs);
}

bool ImpliesAtom(const std::vector<LinearConstraint>& cs,
                 const LinearConstraint& atom) {
  if (enabled()) {
    std::optional<bool> fast;
    if (atom.IsTriviallyTrue()) {
      fast = true;  // Valid atom: implied by anything (matches exact).
    } else if (cs.size() <= 1) {
      fast = TryImpliesAtom(cs, atom);
    } else {
      uint64_t key = fp::Mix(
          fp::Mix(kMemoImpliesAtomSalt, fp::FingerprintOf(cs)),
          fp::FingerprintOf(atom));
      if (std::optional<Verdict> hit = Memo().Lookup(key)) {
        fast = FromVerdict(*hit);
      } else {
        fast = TryImpliesAtom(cs, atom);
        Memo().Store(key, ToVerdict(fast));
      }
    }
    if (fast.has_value()) {
      Count(*fast ? &g_implied : &g_not_implied);
      return *fast;
    }
    Count(&g_fallback);
  }
  return fm::ImpliesAtom(cs, atom);
}

namespace {

/// The uncounted body of TryImplies. Mirrors implication.cc's
/// ImpliesUncached obligation by obligation; every conclusive return
/// matches the exact answer (false returns are gated on `a_exact`, which
/// certifies a's satisfiability — the branch the exact checker would take).
std::optional<bool> TryImpliesImpl(const Conjunction& a,
                                   const Conjunction& b) {
  if (a.known_unsat()) return true;
  std::vector<LinearConstraint> a_atoms = a.LinearWithEqualities();
  IntervalDomain dom = IntervalDomain::Propagate(a_atoms);
  if (dom.definitely_empty()) return true;  // a is UNSAT: vacuously implies
  const bool a_exact = dom.ProvesAll(a_atoms);
  if (b.known_unsat()) {
    // Implies(a, false) == !IsSatisfiable(a).
    if (a_exact) return false;
    return std::nullopt;
  }
  // Symbol bindings of b are entailed only syntactically (linear atoms
  // cannot bind symbols), so a missing binding is conclusive once a is
  // known satisfiable.
  for (const auto& [root, symbol] : b.SymbolBindings()) {
    auto bound = a.GetSymbol(root);
    if (!bound.has_value() || *bound != symbol) {
      if (a_exact) return false;
      return std::nullopt;
    }
  }
  for (const auto& [member, root] : b.EqualityPairs()) {
    if (b.GetSymbol(root).has_value()) {
      // Symbol-bound classes compare syntactically, exactly as the exact
      // checker does.
      if (a.Find(member) == a.Find(root)) continue;
      auto sa = a.GetSymbol(member);
      auto sb = a.GetSymbol(root);
      if (sa.has_value() && sb.has_value() && *sa == *sb) continue;
      if (a_exact) return false;
      return std::nullopt;
    }
    if (a.Find(member) == a.Find(root)) continue;
    LinearConstraint eq(LinearExpr::Var(member) - LinearExpr::Var(root),
                        CmpOp::kEq);
    if (dom.ProvesAtom(eq)) continue;
    if (a_exact && dom.ViolatedSomewhere(eq)) return false;
    return std::nullopt;
  }
  for (const LinearConstraint& atom : b.linear()) {
    if (dom.ProvesAtom(atom)) continue;
    if (a_exact && dom.ViolatedSomewhere(atom)) return false;
    return std::nullopt;
  }
  return true;
}

}  // namespace

std::optional<bool> TryImplies(const Conjunction& a, const Conjunction& b) {
  if (!enabled()) return std::nullopt;
  // Structural screens before any fingerprinting: an UNSAT left side
  // implies anything, and a right side with no obligations at all (no
  // bindings, equalities, or linear atoms — the ground-fact case) is
  // implied by anything.
  std::optional<bool> fast;
  bool symbol_gap = false;
  for (const auto& [root, symbol] : b.SymbolBindings()) {
    auto bound = a.GetSymbol(root);
    if (!bound.has_value() || *bound != symbol) {
      symbol_gap = true;
      break;
    }
  }
  if (a.known_unsat() ||
      (!b.known_unsat() && b.SymbolBindings().empty() &&
       b.EqualityPairs().empty() && b.linear().empty())) {
    fast = true;
  } else if (symbol_gap) {
    // b demands a symbol binding a does not carry. Symbols are entailed
    // only syntactically, so the implication can hold only vacuously: the
    // verdict is exactly !IsSatisfiable(a) — a per-object cached bool that
    // set-implication callers (ImpliesDisjunction) have always already
    // computed before probing pairs. This settles the dominant pair
    // traffic of that mode (candidate vs stored fact differing in a
    // symbol) without propagating a single bound.
    fast = !a.IsSatisfiable();
  } else {
    uint64_t key = fp::Mix(fp::Mix(kMemoImpliesSalt, fp::FingerprintOf(a)),
                           fp::FingerprintOf(b));
    if (std::optional<Verdict> hit = Memo().Lookup(key)) {
      fast = FromVerdict(*hit);
    } else {
      fast = TryImpliesImpl(a, b);
      Memo().Store(key, ToVerdict(fast));
    }
  }
  if (fast.has_value()) {
    Count(*fast ? &g_implied : &g_not_implied);
  } else {
    Count(&g_fallback);
  }
  return fast;
}

}  // namespace prepass
}  // namespace cqlopt
