#include "constraint/fourier_motzkin.h"

#include <algorithm>
#include <limits>
#include <set>

#include "constraint/decision_cache.h"
#include "constraint/fingerprint.h"

namespace cqlopt {
namespace fm {
namespace {

// Domain-separation salts: the same operand fingerprints under different
// decisions must produce different cache keys.
constexpr uint64_t kSatisfiableSalt = 0x5a7d9c31e4b80f6dull;
constexpr uint64_t kImpliesAtomSalt = 0x3c6ef372fe94f82aull;

/// Deduplicates structurally identical atoms and drops trivially-true ones.
/// Returns false (leaving `*constraints` holding a false atom) if a
/// trivially-false ground atom is present.
bool Tidy(std::vector<LinearConstraint>* constraints) {
  std::vector<LinearConstraint> out;
  out.reserve(constraints->size());
  for (const LinearConstraint& c : *constraints) {
    if (c.IsTriviallyTrue()) continue;
    if (c.IsTriviallyFalse()) {
      constraints->assign(1, c);
      return false;
    }
    out.push_back(c);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  *constraints = std::move(out);
  return true;
}

/// Uses one equality containing `v` to substitute `v` out of every other
/// constraint. Returns true if such an equality existed.
bool GaussEliminate(std::vector<LinearConstraint>* constraints, VarId v) {
  for (size_t i = 0; i < constraints->size(); ++i) {
    const LinearConstraint& eq = (*constraints)[i];
    if (eq.op() != CmpOp::kEq) continue;
    Rational coeff = eq.expr().CoefficientOf(v);
    if (coeff.is_zero()) continue;
    // v = -(expr - coeff*v) / coeff
    LinearExpr rest = eq.expr();
    rest.Add(v, -coeff);
    LinearExpr replacement = (-rest).Scale(coeff.Reciprocal());
    std::vector<LinearConstraint> out;
    out.reserve(constraints->size() - 1);
    for (size_t j = 0; j < constraints->size(); ++j) {
      if (j == i) continue;
      out.push_back((*constraints)[j].Substitute(v, replacement));
    }
    *constraints = std::move(out);
    return true;
  }
  return false;
}

/// One Fourier–Motzkin step: eliminates `v` from a conjunction of
/// inequalities (any equalities mentioning v must have been removed first).
void FourierMotzkinStep(std::vector<LinearConstraint>* constraints, VarId v) {
  std::vector<LinearConstraint> lower;  // coefficient of v negative: v >= ...
  std::vector<LinearConstraint> upper;  // coefficient of v positive: v <= ...
  std::vector<LinearConstraint> rest;
  for (LinearConstraint& c : *constraints) {
    int sign = c.expr().CoefficientOf(v).sign();
    if (sign == 0) {
      rest.push_back(std::move(c));
    } else if (sign > 0) {
      upper.push_back(std::move(c));
    } else {
      lower.push_back(std::move(c));
    }
  }
  for (const LinearConstraint& up : upper) {
    Rational a = up.expr().CoefficientOf(v);  // a > 0
    LinearExpr up_rest = up.expr();
    up_rest.Add(v, -a);
    for (const LinearConstraint& lo : lower) {
      Rational b = -lo.expr().CoefficientOf(v);  // b > 0
      LinearExpr lo_rest = lo.expr();
      lo_rest.Add(v, b);
      // up: a*v + up_rest op1 0  =>  v op1 -up_rest/a
      // lo: lo_rest - b*v op2 0  =>  lo_rest/b op2 v
      // combine: lo_rest/b + up_rest/a op 0, scaled by a*b > 0.
      LinearExpr combined = lo_rest.Scale(a) + up_rest.Scale(b);
      CmpOp op = (up.op() == CmpOp::kLt || lo.op() == CmpOp::kLt) ? CmpOp::kLt
                                                                  : CmpOp::kLe;
      LinearConstraint c(std::move(combined), op);
      if (!c.IsTriviallyTrue()) rest.push_back(std::move(c));
    }
  }
  *constraints = std::move(rest);
}

/// Chooses the next variable to eliminate: the one minimizing the number of
/// constraints produced (classic greedy heuristic to limit FM blowup).
VarId PickVariable(const std::vector<LinearConstraint>& constraints,
                   const std::set<VarId>& eliminate) {
  VarId best = kNoVar;
  long best_cost = std::numeric_limits<long>::max();
  for (VarId v : eliminate) {
    long pos = 0;
    long neg = 0;
    bool has_eq = false;
    bool occurs = false;
    for (const LinearConstraint& c : constraints) {
      int sign = c.expr().CoefficientOf(v).sign();
      if (sign == 0) continue;
      occurs = true;
      if (c.op() == CmpOp::kEq) {
        has_eq = true;
        break;
      }
      if (sign > 0) {
        ++pos;
      } else {
        ++neg;
      }
    }
    if (!occurs) return v;  // Free elimination.
    long cost = has_eq ? 0 : pos * neg - pos - neg;
    if (cost < best_cost) {
      best_cost = cost;
      best = v;
    }
  }
  return best;
}

std::vector<LinearConstraint> EliminateImpl(
    std::vector<LinearConstraint> constraints, std::set<VarId> eliminate) {
  if (!Tidy(&constraints)) return constraints;
  while (!eliminate.empty()) {
    VarId v = PickVariable(constraints, eliminate);
    eliminate.erase(v);
    bool occurs = false;
    for (const LinearConstraint& c : constraints) {
      if (!c.expr().CoefficientOf(v).is_zero()) {
        occurs = true;
        break;
      }
    }
    if (!occurs) continue;
    if (!GaussEliminate(&constraints, v)) {
      FourierMotzkinStep(&constraints, v);
    }
    if (!Tidy(&constraints)) return constraints;
  }
  return constraints;
}

std::set<VarId> AllVars(const std::vector<LinearConstraint>& constraints) {
  std::set<VarId> vars;
  for (const LinearConstraint& c : constraints) {
    for (VarId v : c.Vars()) vars.insert(v);
  }
  return vars;
}

/// The uncached decision procedure (the pre-cache IsSatisfiable body).
bool IsSatisfiableUncached(const std::vector<LinearConstraint>& constraints) {
  std::vector<LinearConstraint> result =
      EliminateImpl(constraints, AllVars(constraints));
  for (const LinearConstraint& c : result) {
    if (c.IsTriviallyFalse()) return false;
  }
  return true;
}

}  // namespace

bool IsSatisfiable(const std::vector<LinearConstraint>& constraints) {
  DecisionCache& cache = DecisionCache::Instance();
  if (!cache.enabled()) return IsSatisfiableUncached(constraints);
  uint64_t key = fp::Mix(kSatisfiableSalt, fp::FingerprintOf(constraints));
  if (std::optional<bool> hit = cache.Lookup(key)) return *hit;
  bool value = IsSatisfiableUncached(constraints);
  cache.Store(key, value);
  return value;
}

std::vector<LinearConstraint> Eliminate(
    std::vector<LinearConstraint> constraints,
    const std::vector<VarId>& eliminate) {
  return EliminateImpl(std::move(constraints),
                       std::set<VarId>(eliminate.begin(), eliminate.end()));
}

bool ImpliesAtom(const std::vector<LinearConstraint>& constraints,
                 const LinearConstraint& atom) {
  // Memoized at this level too (on top of the per-negation IsSatisfiable
  // caching): a hit skips the Negations() expansion and the vector copies.
  DecisionCache& cache = DecisionCache::Instance();
  const bool use_cache = cache.enabled();
  uint64_t key = 0;
  if (use_cache) {
    key = fp::Mix(fp::Mix(kImpliesAtomSalt, fp::FingerprintOf(constraints)),
                  fp::FingerprintOf(atom));
    if (std::optional<bool> hit = cache.Lookup(key)) return *hit;
  }
  bool value = true;
  for (const LinearConstraint& piece : atom.Negations()) {
    std::vector<LinearConstraint> test = constraints;
    test.push_back(piece);
    if (IsSatisfiable(test)) {
      value = false;
      break;
    }
  }
  if (use_cache) cache.Store(key, value);
  return value;
}

std::vector<LinearConstraint> RemoveRedundant(
    std::vector<LinearConstraint> constraints) {
  if (!Tidy(&constraints)) return constraints;
  // Simplification runs per derivation (Conjunction::Simplify in EmitHead)
  // over large pre-simplification conjunctions whose content repeats across
  // derivations, so these decisions stay on the memoized exact procedures:
  // probing the interval prepass per atom here costs O(atoms^2) rational
  // propagation per Simplify and is mostly inconclusive (redundancy needs
  // the rarely-provable "not implied" direction), while a repeated exact
  // decision is one cache hit. The prepass instead guards the callers'
  // entry points (Conjunction::IsSatisfiable, Implies).
  if (!IsSatisfiable(constraints)) {
    // Canonical "false": 0 < 0 ... represented as constant 0 with kLt is
    // trivially false only if constant is >= 0; use 1 <= 0.
    return {LinearConstraint(LinearExpr::Constant(Rational(1)), CmpOp::kLe)};
  }
  // Merge opposite inequalities into equalities (x <= 5 & x >= 5 becomes
  // x = 5), giving ground facts a canonical single-atom form.
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (constraints[i].op() != CmpOp::kLe) continue;
    LinearConstraint negated(-constraints[i].expr(), CmpOp::kLe);
    for (size_t j = i + 1; j < constraints.size(); ++j) {
      if (constraints[j] == negated) {
        constraints[i] = LinearConstraint(constraints[i].expr(), CmpOp::kEq);
        constraints.erase(constraints.begin() + static_cast<long>(j));
        break;
      }
    }
  }
  // Greedy: try dropping each atom; keep it only if not implied by the rest.
  for (size_t i = 0; i < constraints.size();) {
    std::vector<LinearConstraint> rest;
    rest.reserve(constraints.size() - 1);
    for (size_t j = 0; j < constraints.size(); ++j) {
      if (j != i) rest.push_back(constraints[j]);
    }
    if (ImpliesAtom(rest, constraints[i])) {
      constraints = std::move(rest);
    } else {
      ++i;
    }
  }
  std::sort(constraints.begin(), constraints.end());
  return constraints;
}

}  // namespace fm
}  // namespace cqlopt
