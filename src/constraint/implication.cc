#include "constraint/implication.h"

#include "constraint/decision_cache.h"
#include "constraint/fingerprint.h"
#include "constraint/fourier_motzkin.h"
#include "constraint/interval.h"

namespace cqlopt {
namespace {

// Salt separating pairwise-implication keys from the fm:: decision keys.
constexpr uint64_t kImpliesSalt = 0x9b1a6e5c2d83f074ull;

/// True iff `a` entails the variable equality u = v, either through its
/// union–find or through its linear store.
bool EntailsEquality(const Conjunction& a,
                     const std::vector<LinearConstraint>& a_atoms, VarId u,
                     VarId v) {
  if (a.Find(u) == a.Find(v)) return true;
  LinearExpr diff = LinearExpr::Var(u) - LinearExpr::Var(v);
  return fm::ImpliesAtom(a_atoms, LinearConstraint(diff, CmpOp::kEq));
}

/// True iff any disjunct contains a symbolic atom (binding or equality whose
/// class is symbol-bound).
bool HasSymbolicAtoms(const Conjunction& c) {
  return !c.SymbolBindings().empty();
}

/// Recursive case split deciding unsatisfiability of
///   base ∧ ¬disjuncts[idx] ∧ ... ∧ ¬disjuncts.back().
/// Each ¬d expands into one branch per negation piece of each atom of d;
/// the conjunction is unsatisfiable iff *every* branch is.
bool RefuteAll(std::vector<LinearConstraint> base,
               const std::vector<std::vector<LinearConstraint>>& disjuncts,
               size_t idx) {
  if (!prepass::IsSatisfiable(base)) return true;
  if (idx == disjuncts.size()) return false;
  for (const LinearConstraint& atom : disjuncts[idx]) {
    for (const LinearConstraint& piece : atom.Negations()) {
      std::vector<LinearConstraint> branch = base;
      branch.push_back(piece);
      if (!RefuteAll(std::move(branch), disjuncts, idx + 1)) return false;
    }
  }
  // Every branch was refuted. This covers the empty disjunct too: a
  // disjunct with no atoms is `true`, ¬true contributes no branches, and
  // base ∧ false is vacuously unsatisfiable — the disjunct covers all of
  // base (tests/test_implication.cc pins this case).
  return true;
}

/// The uncached body of Implies() below.
bool ImpliesUncached(const Conjunction& a, const Conjunction& b) {
  if (!a.IsSatisfiable()) return true;
  if (b.known_unsat()) return false;
  std::vector<LinearConstraint> a_atoms = a.LinearWithEqualities();
  // Symbol bindings of b must be entailed syntactically.
  for (const auto& [root, symbol] : b.SymbolBindings()) {
    auto bound = a.GetSymbol(root);
    if (!bound.has_value() || *bound != symbol) return false;
  }
  // Variable equalities of b.
  for (const auto& [member, root] : b.EqualityPairs()) {
    // If the class is symbol-bound in b, entailment must be via symbols.
    if (b.GetSymbol(root).has_value()) {
      auto sa = a.GetSymbol(member);
      auto sb = a.GetSymbol(root);
      if (a.Find(member) == a.Find(root)) continue;
      if (sa.has_value() && sb.has_value() && *sa == *sb) continue;
      return false;
    }
    if (!EntailsEquality(a, a_atoms, member, root)) return false;
  }
  // Linear atoms of b. These stay on the memoized exact procedure: this
  // body only runs after the pair-level interval prepass (TryImplies in
  // Implies) was inconclusive, which already checked each of these atoms
  // against a's propagated box — re-propagating per atom here would be
  // pure overhead.
  for (const LinearConstraint& atom : b.linear()) {
    if (!fm::ImpliesAtom(a_atoms, atom)) return false;
  }
  return true;
}

}  // namespace

bool Implies(const Conjunction& a, const Conjunction& b) {
  // Approximate tier first: a conclusive interval-propagation answer equals
  // the exact decision and skips both the cache probe and the FM fallback.
  if (std::optional<bool> fast = prepass::TryImplies(a, b)) return *fast;
  // Memoized on the conjunction fingerprints: the decision depends only on
  // the canonical stores the fingerprint covers. Subsumption probes the
  // same (new fact, stored fact) constraint pairs across iterations and
  // strategies, so this is the hottest key family of the DecisionCache.
  DecisionCache& cache = DecisionCache::Instance();
  const bool use_cache = cache.enabled();
  uint64_t key = 0;
  if (use_cache) {
    key = fp::Mix(fp::Mix(kImpliesSalt, fp::FingerprintOf(a)),
                  fp::FingerprintOf(b));
    if (std::optional<bool> hit = cache.Lookup(key)) return *hit;
  }
  bool value = ImpliesUncached(a, b);
  if (use_cache) cache.Store(key, value);
  return value;
}

bool ImpliesDisjunction(const Conjunction& a,
                        const std::vector<Conjunction>& disjuncts) {
  if (!a.IsSatisfiable()) return true;
  std::vector<const Conjunction*> live;
  for (const Conjunction& d : disjuncts) {
    if (d.IsSatisfiable()) live.push_back(&d);
  }
  if (live.empty()) return false;
  // Fast path / fallback for symbolic content: per-disjunct implication.
  for (const Conjunction* d : live) {
    if (Implies(a, *d)) return true;
  }
  for (const Conjunction* d : live) {
    if (HasSymbolicAtoms(*d)) return false;  // Conservative (see header).
  }
  if (!a.SymbolBindings().empty()) {
    // Sound to ignore a's symbolic atoms: they only restrict a further.
    // Fall through and decide on the linear parts (may be conservative in
    // principle, but symbols cannot satisfy linear atoms anyway).
  }
  std::vector<std::vector<LinearConstraint>> negatable;
  negatable.reserve(live.size());
  for (const Conjunction* d : live) {
    negatable.push_back(d->LinearWithEqualities());
  }
  return RefuteAll(a.LinearWithEqualities(), negatable, 0);
}

bool Equivalent(const Conjunction& a, const Conjunction& b) {
  return Implies(a, b) && Implies(b, a);
}

}  // namespace cqlopt
