#ifndef CQLOPT_CONSTRAINT_LINEAR_EXPR_H_
#define CQLOPT_CONSTRAINT_LINEAR_EXPR_H_

#include <map>
#include <string>
#include <vector>

#include "constraint/variable.h"
#include "util/rational.h"

namespace cqlopt {

/// A linear expression `a1*X1 + ... + an*Xn + c` with exact rational
/// coefficients (Definition 2.1 allows exactly this form on either side of a
/// comparison operator).
///
/// Stored as an ordered map VarId -> coefficient (zero coefficients are never
/// stored) plus a constant, so expressions have a canonical representation
/// and compare structurally.
class LinearExpr {
 public:
  LinearExpr() = default;
  explicit LinearExpr(Rational constant) : constant_(std::move(constant)) {}

  /// The expression `1*v`.
  static LinearExpr Var(VarId v);
  /// The expression `c`.
  static LinearExpr Constant(Rational c) { return LinearExpr(std::move(c)); }

  const std::map<VarId, Rational>& coefficients() const { return coeffs_; }
  const Rational& constant() const { return constant_; }

  /// Coefficient of `v` (zero if absent).
  Rational CoefficientOf(VarId v) const;

  bool is_constant() const { return coeffs_.empty(); }

  /// Adds `coeff * v`; erases the entry if the result is zero.
  void Add(VarId v, const Rational& coeff);
  void AddConstant(const Rational& c) { constant_ += c; }

  LinearExpr operator+(const LinearExpr& other) const;
  LinearExpr operator-(const LinearExpr& other) const;
  LinearExpr operator-() const;
  /// Scales every coefficient and the constant by `factor`.
  LinearExpr Scale(const Rational& factor) const;

  /// Replaces `v` by `replacement` (used by Gaussian elimination of
  /// equalities and by substitution during rule instantiation).
  LinearExpr Substitute(VarId v, const LinearExpr& replacement) const;

  /// Renames variables via `mapping`; ids absent from the map are unchanged.
  LinearExpr Rename(const std::map<VarId, VarId>& mapping) const;

  /// Sorted list of variables with nonzero coefficients.
  std::vector<VarId> Vars() const;

  bool operator==(const LinearExpr& other) const {
    return constant_ == other.constant_ && coeffs_ == other.coeffs_;
  }
  bool operator!=(const LinearExpr& other) const { return !(*this == other); }

  /// E.g. "2*$1 - $3 + 5".
  std::string ToString() const;

 private:
  std::map<VarId, Rational> coeffs_;
  Rational constant_;
};

}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_LINEAR_EXPR_H_
