#include "constraint/conjunction.h"

#include <algorithm>

#include "constraint/fourier_motzkin.h"
#include "constraint/interval.h"

namespace cqlopt {

Conjunction Conjunction::False() {
  Conjunction c;
  c.unsat_ = true;
  return c;
}

VarId Conjunction::Find(VarId v) const {
  auto it = parent_.find(v);
  while (it != parent_.end() && it->second != v) {
    v = it->second;
    it = parent_.find(v);
  }
  return v;
}

VarId Conjunction::FindMutable(VarId v) {
  VarId root = Find(v);
  // Path compression.
  while (true) {
    auto it = parent_.find(v);
    if (it == parent_.end() || it->second == v) break;
    VarId next = it->second;
    it->second = root;
    v = next;
  }
  return root;
}

bool Conjunction::RootInLinear(VarId r) const {
  for (const LinearConstraint& c : linear_) {
    if (!c.expr().CoefficientOf(r).is_zero()) return true;
  }
  return false;
}

void Conjunction::TidyLinear() {
  std::vector<LinearConstraint> out;
  out.reserve(linear_.size());
  for (LinearConstraint& c : linear_) {
    if (c.IsTriviallyTrue()) continue;
    if (c.IsTriviallyFalse()) {
      unsat_ = true;
      continue;
    }
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  linear_ = std::move(out);
}

Status Conjunction::AddLinear(const LinearConstraint& atom) {
  sat_cache_.reset();
  // Rewrite variables to class roots.
  std::map<VarId, VarId> to_root;
  for (VarId v : atom.Vars()) {
    VarId r = FindMutable(v);
    if (symbols_.count(r) > 0) {
      return Status::TypeError("linear constraint over symbol-bound variable " +
                               VarName(v));
    }
    if (r != v) to_root[v] = r;
  }
  LinearConstraint rooted = to_root.empty() ? atom : atom.Rename(to_root);
  if (rooted.IsTriviallyTrue()) return Status::OK();
  if (rooted.IsTriviallyFalse()) {
    unsat_ = true;
    return Status::OK();
  }
  linear_.push_back(std::move(rooted));
  TidyLinear();
  return Status::OK();
}

Status Conjunction::AddEquality(VarId a, VarId b) {
  sat_cache_.reset();
  VarId ra = FindMutable(a);
  VarId rb = FindMutable(b);
  if (ra == rb) return Status::OK();
  // Deterministic root choice keeps canonical forms stable.
  VarId new_root = std::min(ra, rb);
  VarId old_root = std::max(ra, rb);

  auto sym_new = symbols_.find(new_root);
  auto sym_old = symbols_.find(old_root);
  bool new_has_sym = sym_new != symbols_.end();
  bool old_has_sym = sym_old != symbols_.end();
  if (new_has_sym && old_has_sym) {
    if (sym_new->second != sym_old->second) unsat_ = true;
  } else if (new_has_sym && RootInLinear(old_root)) {
    return Status::TypeError("equating symbol-bound " + VarName(new_root) +
                             " with numeric " + VarName(old_root));
  } else if (old_has_sym && RootInLinear(new_root)) {
    return Status::TypeError("equating symbol-bound " + VarName(old_root) +
                             " with numeric " + VarName(new_root));
  }
  if (old_has_sym) {
    symbols_[new_root] = sym_old->second;
    symbols_.erase(old_root);
  }
  parent_[old_root] = new_root;
  parent_.emplace(new_root, new_root);
  parent_.emplace(a, parent_.count(a) ? parent_[a] : new_root);
  parent_.emplace(b, parent_.count(b) ? parent_[b] : new_root);
  // Rewrite linear atoms mentioning the old root.
  if (RootInLinear(old_root)) {
    std::map<VarId, VarId> remap = {{old_root, new_root}};
    for (LinearConstraint& c : linear_) c = c.Rename(remap);
    TidyLinear();
  }
  return Status::OK();
}

Status Conjunction::BindSymbol(VarId v, SymbolId symbol) {
  sat_cache_.reset();
  VarId r = FindMutable(v);
  parent_.emplace(v, r);
  auto it = symbols_.find(r);
  if (it != symbols_.end()) {
    if (it->second != symbol) unsat_ = true;
    return Status::OK();
  }
  if (RootInLinear(r)) {
    return Status::TypeError("binding symbol to numeric variable " +
                             VarName(v));
  }
  symbols_[r] = symbol;
  return Status::OK();
}

Status Conjunction::AddConjunction(const Conjunction& other) {
  if (other.unsat_) {
    unsat_ = true;
    sat_cache_.reset();
    return Status::OK();
  }
  for (const auto& [member, root] : other.EqualityPairs()) {
    CQLOPT_RETURN_IF_ERROR(AddEquality(member, root));
  }
  for (const auto& [root, symbol] : other.SymbolBindings()) {
    CQLOPT_RETURN_IF_ERROR(BindSymbol(root, symbol));
  }
  for (const LinearConstraint& atom : other.linear_) {
    CQLOPT_RETURN_IF_ERROR(AddLinear(atom));
  }
  return Status::OK();
}

bool Conjunction::IsSatisfiable() const {
  if (unsat_) return false;
  if (!sat_cache_.has_value()) sat_cache_ = prepass::IsSatisfiable(linear_);
  return *sat_cache_;
}

std::vector<VarId> Conjunction::Vars() const {
  std::vector<VarId> out;
  for (const auto& [v, p] : parent_) out.push_back(v);
  for (const LinearConstraint& c : linear_) {
    for (VarId v : c.Vars()) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::optional<SymbolId> Conjunction::GetSymbol(VarId v) const {
  auto it = symbols_.find(Find(v));
  if (it == symbols_.end()) return std::nullopt;
  return it->second;
}

std::optional<Rational> Conjunction::GetNumericValue(VarId v) const {
  if (unsat_) return std::nullopt;
  VarId r = Find(v);
  if (symbols_.count(r) > 0) return std::nullopt;
  // Project the linear store onto {r} and read off the bounds.
  std::vector<VarId> eliminate;
  std::vector<LinearConstraint> atoms = linear_;
  {
    std::vector<VarId> vars;
    for (const LinearConstraint& c : atoms) {
      for (VarId x : c.Vars()) vars.push_back(x);
    }
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    for (VarId x : vars) {
      if (x != r) eliminate.push_back(x);
    }
  }
  atoms = fm::Eliminate(std::move(atoms), eliminate);
  std::optional<Rational> lower;
  std::optional<Rational> upper;
  bool lower_strict = false;
  bool upper_strict = false;
  for (const LinearConstraint& c : atoms) {
    Rational a = c.expr().CoefficientOf(r);
    if (a.is_zero()) {
      if (c.IsTriviallyFalse()) return std::nullopt;
      continue;
    }
    Rational bound = -(c.expr().constant()) / a;
    if (c.op() == CmpOp::kEq) return bound;
    bool is_upper = a.sign() > 0;  // a*r + c0 op 0 with a>0: r op bound.
    bool strict = c.op() == CmpOp::kLt;
    if (is_upper) {
      if (!upper || bound < *upper) {
        upper = bound;
        upper_strict = strict;
      } else if (bound == *upper) {
        upper_strict = upper_strict || strict;
      }
    } else {
      if (!lower || bound > *lower) {
        lower = bound;
        lower_strict = strict;
      } else if (bound == *lower) {
        lower_strict = lower_strict || strict;
      }
    }
  }
  if (lower && upper && *lower == *upper && !lower_strict && !upper_strict) {
    return *lower;
  }
  return std::nullopt;
}

std::optional<Rational> Conjunction::QuickNumericValue(VarId v) const {
  if (unsat_) return std::nullopt;
  VarId r = Find(v);
  for (const LinearConstraint& atom : linear_) {
    if (atom.op() != CmpOp::kEq) continue;
    const auto& coeffs = atom.expr().coefficients();
    if (coeffs.size() != 1 || coeffs.begin()->first != r) continue;
    return -(atom.expr().constant()) / coeffs.begin()->second;
  }
  return std::nullopt;
}

bool Conjunction::IsGroundOver(const std::vector<VarId>& vars) const {
  for (VarId v : vars) {
    if (GetSymbol(v).has_value()) continue;
    if (GetNumericValue(v).has_value()) continue;
    return false;
  }
  return true;
}

std::vector<std::pair<VarId, VarId>> Conjunction::EqualityPairs() const {
  std::vector<std::pair<VarId, VarId>> out;
  for (const auto& [v, p] : parent_) {
    VarId r = Find(v);
    if (r != v) out.emplace_back(v, r);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<VarId, SymbolId>> Conjunction::SymbolBindings() const {
  std::vector<std::pair<VarId, SymbolId>> out(symbols_.begin(), symbols_.end());
  return out;
}

std::vector<LinearConstraint> Conjunction::LinearWithEqualities() const {
  std::vector<LinearConstraint> out = linear_;
  for (const auto& [member, root] : EqualityPairs()) {
    LinearExpr e = LinearExpr::Var(member) - LinearExpr::Var(root);
    out.emplace_back(std::move(e), CmpOp::kEq);
  }
  return out;
}

Result<Conjunction> Conjunction::Project(const std::vector<VarId>& keep) const {
  Conjunction out;
  if (unsat_) return Conjunction::False();
  std::vector<VarId> keep_sorted = keep;
  std::sort(keep_sorted.begin(), keep_sorted.end());
  auto kept = [&keep_sorted](VarId v) {
    return std::binary_search(keep_sorted.begin(), keep_sorted.end(), v);
  };

  // Group variables into classes and pick, per class, the smallest kept
  // member as representative (falling back to the root).
  std::map<VarId, std::vector<VarId>> classes;  // root -> members
  for (VarId v : Vars()) classes[Find(v)].push_back(v);
  std::map<VarId, VarId> rep;  // root -> representative
  for (auto& [root, members] : classes) {
    VarId chosen = root;
    for (VarId m : members) {
      if (kept(m)) {
        chosen = m;
        break;  // members sorted ascending; first kept is smallest.
      }
    }
    rep[root] = chosen;
  }

  // Equalities and symbol bindings among kept members.
  for (auto& [root, members] : classes) {
    VarId r = rep[root];
    if (kept(r)) {
      for (VarId m : members) {
        if (m != r && kept(m)) {
          CQLOPT_RETURN_IF_ERROR(out.AddEquality(m, r));
        }
      }
      auto sym = symbols_.find(root);
      if (sym != symbols_.end()) {
        CQLOPT_RETURN_IF_ERROR(out.BindSymbol(r, sym->second));
      }
    }
  }

  // Linear part: re-root atoms at representatives, then eliminate the
  // representatives that are not kept.
  std::map<VarId, VarId> remap;
  for (const auto& [root, r] : rep) {
    if (root != r) remap[root] = r;
  }
  std::vector<LinearConstraint> atoms;
  atoms.reserve(linear_.size());
  for (const LinearConstraint& c : linear_) {
    atoms.push_back(remap.empty() ? c : c.Rename(remap));
  }
  std::vector<VarId> eliminate;
  for (const LinearConstraint& c : atoms) {
    for (VarId v : c.Vars()) {
      if (!kept(v)) eliminate.push_back(v);
    }
  }
  std::sort(eliminate.begin(), eliminate.end());
  eliminate.erase(std::unique(eliminate.begin(), eliminate.end()),
                  eliminate.end());
  atoms = fm::Eliminate(std::move(atoms), eliminate);
  for (const LinearConstraint& c : atoms) {
    CQLOPT_RETURN_IF_ERROR(out.AddLinear(c));
  }
  return out;
}

Conjunction Conjunction::Rename(const std::map<VarId, VarId>& mapping) const {
  Conjunction out;
  if (unsat_) return Conjunction::False();
  auto mapped = [&mapping](VarId v) {
    auto it = mapping.find(v);
    return it == mapping.end() ? v : it->second;
  };
  Status st;
  for (const auto& [member, root] : EqualityPairs()) {
    st = out.AddEquality(mapped(member), mapped(root));
    if (!st.ok()) return Conjunction::False();
  }
  for (const auto& [root, symbol] : SymbolBindings()) {
    st = out.BindSymbol(mapped(root), symbol);
    if (!st.ok()) return Conjunction::False();
  }
  for (const LinearConstraint& atom : linear_) {
    st = out.AddLinear(atom.Rename(mapping));
    if (!st.ok()) return Conjunction::False();
  }
  return out;
}

void Conjunction::Simplify() {
  if (unsat_) return;
  sat_cache_.reset();
  linear_ = fm::RemoveRedundant(std::move(linear_));
  for (const LinearConstraint& c : linear_) {
    if (c.IsTriviallyFalse()) {
      unsat_ = true;
      return;
    }
  }
}

std::string Conjunction::ToString() const {
  if (unsat_) return "false";
  // Canonical form: rewrite everything to the smallest member per class.
  std::map<VarId, std::vector<VarId>> classes;
  for (VarId v : Vars()) classes[Find(v)].push_back(v);
  std::map<VarId, VarId> to_min;
  for (auto& [root, members] : classes) {
    VarId min_member = members.front();
    if (root != min_member) to_min[root] = min_member;
  }
  std::vector<std::string> pieces;
  for (auto& [root, members] : classes) {
    VarId min_member = members.front();
    for (size_t i = 1; i < members.size(); ++i) {
      pieces.push_back(VarName(members[i]) + " = " + VarName(min_member));
    }
    auto sym = symbols_.find(root);
    if (sym != symbols_.end()) {
      pieces.push_back(VarName(min_member) + " = @" +
                       std::to_string(sym->second));
    }
  }
  std::vector<LinearConstraint> atoms;
  atoms.reserve(linear_.size());
  for (const LinearConstraint& c : linear_) {
    atoms.push_back(to_min.empty() ? c : c.Rename(to_min));
  }
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  for (const LinearConstraint& c : atoms) {
    pieces.push_back(c.ToPrettyString());
  }
  if (pieces.empty()) return "true";
  std::sort(pieces.begin(), pieces.end());
  std::string out = pieces[0];
  for (size_t i = 1; i < pieces.size(); ++i) out += " & " + pieces[i];
  return out;
}

}  // namespace cqlopt
