#include "constraint/constraint_set.h"

#include <algorithm>

#include "constraint/implication.h"

namespace cqlopt {

ConstraintSet ConstraintSet::True() {
  ConstraintSet set;
  set.disjuncts_.push_back(Conjunction::True());
  return set;
}

ConstraintSet ConstraintSet::Of(Conjunction disjunct) {
  ConstraintSet set;
  if (disjunct.IsSatisfiable()) set.disjuncts_.push_back(std::move(disjunct));
  return set;
}

bool ConstraintSet::IsSatisfiable() const {
  for (const Conjunction& d : disjuncts_) {
    if (d.IsSatisfiable()) return true;
  }
  return false;
}

bool ConstraintSet::IsTriviallyTrue() const {
  for (const Conjunction& d : disjuncts_) {
    if (d.ToString() == "true") return true;
  }
  return false;
}

bool ConstraintSet::AddDisjunct(const Conjunction& disjunct) {
  // The satisfiability / implication decisions below resolve through the
  // two-tier procedure (interval prepass, then exact FM — DESIGN.md §11)
  // via Conjunction::IsSatisfiable, Implies, and ImpliesDisjunction.
  if (!disjunct.IsSatisfiable()) return false;
  if (ImpliesDisjunction(disjunct, disjuncts_)) return false;
  // Drop existing disjuncts the new one subsumes.
  std::vector<Conjunction> kept;
  kept.reserve(disjuncts_.size() + 1);
  for (Conjunction& d : disjuncts_) {
    if (!cqlopt::Implies(d, disjunct)) kept.push_back(std::move(d));
  }
  kept.push_back(disjunct);
  disjuncts_ = std::move(kept);
  return true;
}

bool ConstraintSet::UnionWith(const ConstraintSet& other) {
  bool changed = false;
  for (const Conjunction& d : other.disjuncts_) {
    changed = AddDisjunct(d) || changed;
  }
  return changed;
}

Result<ConstraintSet> ConstraintSet::And(const ConstraintSet& a,
                                         const ConstraintSet& b) {
  ConstraintSet out;
  for (const Conjunction& da : a.disjuncts_) {
    for (const Conjunction& db : b.disjuncts_) {
      Conjunction product = da;
      CQLOPT_RETURN_IF_ERROR(product.AddConjunction(db));
      if (product.IsSatisfiable()) out.AddDisjunct(product);
    }
  }
  return out;
}

Result<ConstraintSet> ConstraintSet::Project(
    const std::vector<VarId>& keep) const {
  ConstraintSet out;
  for (const Conjunction& d : disjuncts_) {
    CQLOPT_ASSIGN_OR_RETURN(Conjunction projected, d.Project(keep));
    out.AddDisjunct(projected);
  }
  return out;
}

ConstraintSet ConstraintSet::Rename(
    const std::map<VarId, VarId>& mapping) const {
  ConstraintSet out;
  for (const Conjunction& d : disjuncts_) {
    out.AddDisjunct(d.Rename(mapping));
  }
  return out;
}

bool ConstraintSet::Implies(const ConstraintSet& other) const {
  for (const Conjunction& d : disjuncts_) {
    if (!ImpliesDisjunction(d, other.disjuncts_)) return false;
  }
  return true;
}

void ConstraintSet::Simplify() {
  std::vector<Conjunction> simplified;
  simplified.reserve(disjuncts_.size());
  for (Conjunction& d : disjuncts_) {
    if (!d.IsSatisfiable()) continue;
    d.Simplify();
    simplified.push_back(std::move(d));
  }
  disjuncts_.clear();
  // Re-add one by one so redundant disjuncts get eliminated. Adding in
  // order of decreasing generality is not required for correctness;
  // AddDisjunct prunes in both directions.
  for (Conjunction& d : simplified) AddDisjunct(d);
}

std::string ConstraintSet::ToString() const {
  if (disjuncts_.empty()) return "false";
  std::vector<std::string> parts;
  parts.reserve(disjuncts_.size());
  for (const Conjunction& d : disjuncts_) {
    parts.push_back("(" + d.ToString() + ")");
  }
  std::sort(parts.begin(), parts.end());
  std::string out = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) out += " | " + parts[i];
  return out;
}

}  // namespace cqlopt
