#ifndef CQLOPT_CONSTRAINT_INTERVAL_H_
#define CQLOPT_CONSTRAINT_INTERVAL_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "constraint/linear_constraint.h"

namespace cqlopt {

class Conjunction;

/// An interval over the rationals with open/closed endpoints and infinite
/// ends — the per-variable domain of the approximate decision tier
/// (DESIGN.md §11). A default-constructed interval is the full line
/// (-inf, +inf); Tighten* only ever shrinks it.
class Interval {
 public:
  Interval() = default;

  bool lower_infinite() const { return lo_inf_; }
  bool upper_infinite() const { return hi_inf_; }
  /// Valid only when the corresponding end is finite.
  const Rational& lower() const { return lo_; }
  const Rational& upper() const { return hi_; }
  /// A strict end excludes its value (open endpoint).
  bool lower_strict() const { return lo_strict_; }
  bool upper_strict() const { return hi_strict_; }

  /// Conjoins `x >= value` (`x > value` when strict). Returns true iff the
  /// bound actually tightened (a strictness upgrade at the same value
  /// counts). The interval may become empty; callers check IsEmpty().
  bool TightenLower(const Rational& value, bool strict);
  /// Conjoins `x <= value` (`x < value` when strict).
  bool TightenUpper(const Rational& value, bool strict);

  /// True iff no rational satisfies both bounds: crossed bounds, or equal
  /// bounds with either end open.
  bool IsEmpty() const;

  /// The single admissible value when the interval is a closed point;
  /// nullopt otherwise.
  std::optional<Rational> Point() const;

  /// True iff `value` satisfies both bounds.
  bool Contains(const Rational& value) const;

  /// True iff some rational lies in both intervals (the meet is nonempty).
  bool Intersects(const Interval& other) const;

  /// E.g. "[2, 5)", "(-inf, 3]", "(-inf, +inf)".
  std::string ToString() const;

 private:
  bool lo_inf_ = true;
  bool hi_inf_ = true;
  bool lo_strict_ = false;
  bool hi_strict_ = false;
  Rational lo_;
  Rational hi_;
};

/// One end of the achieved value range of a linear expression over a box.
/// `open` means the value is the exact inf/sup but is not attained by any
/// box point (some contributing endpoint is strict).
struct RangeEnd {
  bool infinite = true;
  Rational value;  // valid when !infinite
  bool open = false;
};

/// Achieved values of a linear expression over a nonempty box: a dense
/// interval from `lo` to `hi` (the image of a convex set under a continuous
/// map), each end possibly infinite or unattained.
struct ExprRange {
  RangeEnd lo;
  RangeEnd hi;
};

/// Per-variable interval domains derived from a conjunction of linear
/// constraints by round-capped bound propagation. The box is a sound
/// over-approximation of the solution set: every solution lies inside it,
/// so an empty box proves UNSAT, and an atom that holds at every box point
/// is implied. Completeness is never claimed — a nonempty box proves
/// nothing by itself (callers use ProvesAll to recognize the case where
/// every box point is in fact a solution).
class IntervalDomain {
 public:
  /// Fixed round cap: divergent tightenings (x <= y - 1 & y <= x - 1 walks
  /// both bounds down forever) must terminate inconclusively, not loop.
  /// Chains like `a = 5, b = 7, c = a + b + 30` resolve in one round per
  /// dependency level, so 8 covers the join depths the evaluator produces.
  static constexpr int kMaxRounds = 8;

  /// Propagates bounds from each constraint into each of its variables,
  /// iterating to a fixpoint or the round cap.
  static IntervalDomain Propagate(const std::vector<LinearConstraint>& cs);

  /// True when propagation emptied some variable's interval or hit a
  /// ground-false constraint — a definite UNSAT.
  bool definitely_empty() const { return empty_; }

  /// The domain of `v` (the full line if never constrained).
  const Interval& Of(VarId v) const;

  /// Attainment-aware interval evaluation of `expr` over the box.
  ExprRange RangeOf(const LinearExpr& expr) const;

  /// `atom` holds at EVERY point of the box. With a nonempty box this is a
  /// sound implication proof for any constraint set the box over-covers.
  bool ProvesAtom(const LinearConstraint& atom) const;
  /// `atom` fails at EVERY point of the box: since all solutions lie in the
  /// box, conjoining `atom` is definitely UNSAT.
  bool RefutesAtom(const LinearConstraint& atom) const;
  /// `atom` fails at SOME point of the box. Only meaningful as a disproof
  /// when every box point is known to be a solution (ProvesAll).
  bool ViolatedSomewhere(const LinearConstraint& atom) const;
  /// Every atom of `cs` holds on the whole box. Combined with a nonempty
  /// box this certifies satisfiability: any box point is a model, and the
  /// box coincides with the solution set for disproof purposes.
  bool ProvesAll(const std::vector<LinearConstraint>& cs) const;

 private:
  /// Achieved range of `expr` minus its `skip` term over the box (the
  /// "rest" used to bound `skip` from a constraint). skip == kNoVar means
  /// the whole expression.
  ExprRange RestRange(const LinearExpr& expr, VarId skip) const;

  bool empty_ = false;
  std::map<VarId, Interval> intervals_;
};

/// The approximate-first decision tier (DESIGN.md §11): interval bound
/// propagation answers the easy satisfiability / implication queries and
/// falls through to exact Fourier–Motzkin (with its DecisionCache) on the
/// rest. Every conclusive answer equals the exact decision — the prepass is
/// sound both ways by construction and the differential layer
/// (prepass_equiv, test_interval's randomized sweep) pins it.
namespace prepass {

/// Monotonic process-wide counters, split by conclusive verdict kind plus
/// the inconclusive fallbacks to exact FM. Snapshot-diffed into
/// EvalStats / InferenceResult the same way the DecisionCache counters are.
struct Counters {
  long sat = 0;          // conclusive "satisfiable"
  long unsat = 0;        // conclusive "unsatisfiable"
  long implied = 0;      // conclusive "implies"
  long not_implied = 0;  // conclusive "does not imply"
  long fallback = 0;     // inconclusive -> exact FM decided

  long conclusive() const { return sat + unsat + implied + not_implied; }
};

/// When disabled, the wrappers below go straight to exact FM without
/// probing or counting — the `prepass = off` arm of every differential
/// harness and the EvalOptions::prepass toggle.
bool enabled();
void set_enabled(bool on);

Counters Snapshot();

/// Approximate tier only — pure probes with no fallback and no counter
/// updates (the unit/randomized tests call these directly). nullopt means
/// inconclusive; any non-null answer equals the exact FM decision.
std::optional<bool> TrySatisfiable(const std::vector<LinearConstraint>& cs);
std::optional<bool> TryImpliesAtom(const std::vector<LinearConstraint>& cs,
                                   const LinearConstraint& atom);

/// Two-tier decisions: the interval prepass first — a conclusive answer
/// returns immediately and never touches the DecisionCache (no lookup, no
/// fill) — then exact cached FM. These are the entry points the evaluator's
/// call sites use (Conjunction::IsSatisfiable, implication.cc). Probe
/// verdicts (including inconclusiveness) are memoized in a prepass-private
/// fingerprint-keyed table so repeated probes skip the rational
/// propagation; the memo never holds anything but recomputable pure
/// verdicts, so it cannot change an answer.
bool IsSatisfiable(const std::vector<LinearConstraint>& cs);
bool ImpliesAtom(const std::vector<LinearConstraint>& cs,
                 const LinearConstraint& atom);

/// Empties the prepass verdict memo (cold-start benchmarking, alongside
/// DecisionCache::Instance().Clear()).
void ClearMemo();

/// Conjunction-level prepass for Implies(a, b): one domain is propagated
/// from a's atoms (with equalities materialized) and every obligation of b
/// — symbol bindings, variable equalities, linear atoms — is tested against
/// it. Conclusive answers (and inconclusive fallbacks) are counted here,
/// since Implies() has no wrapping prepass call. nullopt sends the caller
/// to the cached exact path.
std::optional<bool> TryImplies(const Conjunction& a, const Conjunction& b);

/// RAII guard disabling the prepass in a scope (differential arms, the
/// EvalOptions::prepass = false runs).
class PrepassDisabler {
 public:
  PrepassDisabler() : was_enabled_(enabled()) { set_enabled(false); }
  ~PrepassDisabler() { set_enabled(was_enabled_); }
  PrepassDisabler(const PrepassDisabler&) = delete;
  PrepassDisabler& operator=(const PrepassDisabler&) = delete;

 private:
  bool was_enabled_;
};

}  // namespace prepass
}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_INTERVAL_H_
