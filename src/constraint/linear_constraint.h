#ifndef CQLOPT_CONSTRAINT_LINEAR_CONSTRAINT_H_
#define CQLOPT_CONSTRAINT_LINEAR_CONSTRAINT_H_

#include <string>
#include <vector>

#include "constraint/linear_expr.h"

namespace cqlopt {

/// Comparison operator of a normalized atomic constraint `expr op 0`.
///
/// The surface syntax allows <, >, <=, >=, = (Definition 2.1); parsing and
/// construction normalize > and >= away by negating the expression, so only
/// three operators remain.
enum class CmpOp {
  kLe,  // expr <= 0
  kLt,  // expr < 0
  kEq,  // expr == 0
};

const char* CmpOpName(CmpOp op);

/// An atomic linear arithmetic constraint in normalized form `expr op 0`.
class LinearConstraint {
 public:
  LinearConstraint() : op_(CmpOp::kEq) {}
  LinearConstraint(LinearExpr expr, CmpOp op);

  /// Builds `lhs op rhs` where `op` may be any of the five surface operators
  /// encoded as: "<=", "<", ">=", ">", "=".
  static LinearConstraint Make(const LinearExpr& lhs, const std::string& op,
                               const LinearExpr& rhs);

  const LinearExpr& expr() const { return expr_; }
  CmpOp op() const { return op_; }

  /// True if the constraint mentions no variables.
  bool is_ground() const { return expr_.is_constant(); }

  /// For ground constraints only: evaluates the comparison.
  bool GroundValue() const;

  /// True if trivially satisfied for all assignments (e.g. `0 <= 0`,
  /// `-1 < 0`). Ground-false constraints return false here *and* false from
  /// IsTriviallyFalse's complement; use both tests.
  bool IsTriviallyTrue() const { return is_ground() && GroundValue(); }
  bool IsTriviallyFalse() const { return is_ground() && !GroundValue(); }

  LinearConstraint Substitute(VarId v, const LinearExpr& replacement) const;
  LinearConstraint Rename(const std::map<VarId, VarId>& mapping) const;

  std::vector<VarId> Vars() const { return expr_.Vars(); }

  /// Negations of this constraint, as a disjunction of atomic constraints:
  ///  ¬(e <= 0) = (-e < 0); ¬(e < 0) = (-e <= 0);
  ///  ¬(e == 0) = (e < 0) ∨ (-e < 0).
  std::vector<LinearConstraint> Negations() const;

  /// Structural equality after canonicalization (see constructor).
  bool operator==(const LinearConstraint& other) const {
    return op_ == other.op_ && expr_ == other.expr_;
  }
  bool operator!=(const LinearConstraint& other) const {
    return !(*this == other);
  }
  /// Arbitrary total order, for canonical sorting inside conjunctions.
  bool operator<(const LinearConstraint& other) const;

  /// E.g. "$1 + $2 - 6 <= 0".
  std::string ToString() const;
  /// Friendlier rendering, e.g. "$1 + $2 <= 6".
  std::string ToPrettyString() const;

 private:
  /// Scales the expression so that integer coefficients have gcd 1 and the
  /// leading coefficient of an equality is positive. Gives a canonical
  /// representative per half-space / hyperplane (up to op).
  void Canonicalize();

  LinearExpr expr_;
  CmpOp op_;
};

}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_LINEAR_CONSTRAINT_H_
