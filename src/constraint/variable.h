#ifndef CQLOPT_CONSTRAINT_VARIABLE_H_
#define CQLOPT_CONSTRAINT_VARIABLE_H_

#include <string>
#include <vector>

namespace cqlopt {

/// Identifier of a constraint variable.
///
/// The constraint layer does not interpret variable identities; callers
/// choose the id space. Two conventions are used above this layer:
///  - *argument-position form* (the paper's `$i` notation): a constraint on
///    the arguments of an arity-n predicate uses VarIds 1..n;
///  - *rule form*: each rule's variables are interned per-rule (see
///    ast/rule.h) and mapped into fresh ids during evaluation.
using VarId = int;

/// Sentinel for "no variable".
inline constexpr VarId kNoVar = -1;

/// Allocates fresh, never-reused variable ids, starting above a floor so
/// fresh ids never collide with argument-position ids.
class VarAllocator {
 public:
  explicit VarAllocator(VarId floor = 1024) : next_(floor) {}

  VarId Fresh() { return next_++; }

  /// Allocates `n` consecutive fresh ids and returns the first.
  VarId FreshBlock(int n) {
    VarId first = next_;
    next_ += n;
    return first;
  }

 private:
  VarId next_;
};

/// Renders a variable id for diagnostics: argument positions as `$i`,
/// other ids as `v<i>`.
std::string VarName(VarId v);

/// Sorted, deduplicated union of two sorted VarId vectors.
std::vector<VarId> VarUnion(const std::vector<VarId>& a,
                            const std::vector<VarId>& b);

}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_VARIABLE_H_
