#ifndef CQLOPT_CONSTRAINT_IMPLICATION_H_
#define CQLOPT_CONSTRAINT_IMPLICATION_H_

#include <vector>

#include "constraint/conjunction.h"

namespace cqlopt {

/// Implication checking between constraint sets (Definition 2.3's ⊐
/// relation), the primitive behind subsumption of constraint facts,
/// redundant-disjunct elimination, and the fixpoint tests of procedures
/// Gen_predicate_constraints and Gen_QRP_constraints.
///
/// For purely linear constraints the checks are exact (via Fourier–Motzkin,
/// per the paper's reference [13]). Symbolic atoms (X = madison) carry no
/// arithmetic theory; for them entailment is decided syntactically, which is
/// exact for the fragment the language can express (there are no symbol
/// disequalities). When a *disjunction* on the right-hand side contains
/// symbolic atoms, the check degrades to per-disjunct implication — sound
/// (never claims implication that does not hold) but not complete.

/// True iff every solution of `a` is a solution of `b`.
bool Implies(const Conjunction& a, const Conjunction& b);

/// True iff every solution of `a` satisfies some disjunct.
bool ImpliesDisjunction(const Conjunction& a,
                        const std::vector<Conjunction>& disjuncts);

/// True iff `a` and `b` have the same solutions.
bool Equivalent(const Conjunction& a, const Conjunction& b);

}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_IMPLICATION_H_
