#ifndef CQLOPT_CONSTRAINT_FINGERPRINT_H_
#define CQLOPT_CONSTRAINT_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "constraint/conjunction.h"
#include "constraint/linear_constraint.h"

namespace cqlopt {
namespace fp {

/// Canonical 64-bit fingerprints of constraint objects, the cache keys of
/// the process-wide DecisionCache (constraint/decision_cache.h).
///
/// Requirements the memoization relies on:
///  - deterministic: the fingerprint is a pure function of the object's
///    canonical content (atoms are already canonicalized by
///    LinearConstraint's constructor, union-find roots are the smallest
///    class member, stores are kept sorted);
///  - order-insensitive for constraint *vectors*: conjunction semantics do
///    not depend on atom order, and call sites (e.g. fm::ImpliesAtom's
///    negation branches, subsumption probes) assemble the same multiset of
///    atoms in different orders;
///  - well distributed: a collision silently reuses another decision's
///    answer, so the per-field mixing below must spread structurally close
///    inputs (same atoms, one coefficient off) across the key space.
///    With 64-bit keys and caches bounded at ~2^19 entries, collisions are
///    astronomically unlikely; the cache-equivalence test locks the
///    behaviour in.

/// Non-commutative combiner (order of `v`s matters).
inline uint64_t Mix(uint64_t h, uint64_t v) {
  // splitmix64 finalizer over the running state.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

/// Fingerprint of one canonicalized atom `expr op 0`.
uint64_t FingerprintOf(const LinearConstraint& atom);

/// Order-insensitive fingerprint of a conjunction given as an atom vector
/// (the representation fm:: decides over).
uint64_t FingerprintOf(const std::vector<LinearConstraint>& atoms);

/// Fingerprint of a Conjunction: covers the union-find equalities, symbol
/// bindings, linear store, and the known-unsat flag — everything the
/// implication checker consults.
uint64_t FingerprintOf(const Conjunction& conjunction);

}  // namespace fp
}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_FINGERPRINT_H_
