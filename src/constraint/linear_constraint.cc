#include "constraint/linear_constraint.h"

namespace cqlopt {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kEq:
      return "=";
  }
  return "?";
}

LinearConstraint::LinearConstraint(LinearExpr expr, CmpOp op)
    : expr_(std::move(expr)), op_(op) {
  Canonicalize();
}

LinearConstraint LinearConstraint::Make(const LinearExpr& lhs,
                                        const std::string& op,
                                        const LinearExpr& rhs) {
  if (op == "<=") return LinearConstraint(lhs - rhs, CmpOp::kLe);
  if (op == "<") return LinearConstraint(lhs - rhs, CmpOp::kLt);
  if (op == ">=") return LinearConstraint(rhs - lhs, CmpOp::kLe);
  if (op == ">") return LinearConstraint(rhs - lhs, CmpOp::kLt);
  return LinearConstraint(lhs - rhs, CmpOp::kEq);
}

void LinearConstraint::Canonicalize() {
  if (expr_.coefficients().empty()) return;
  // Scale so all coefficients and the constant become integers with gcd 1.
  BigInt den_lcm(1);
  for (const auto& [v, c] : expr_.coefficients()) {
    BigInt g = BigInt::Gcd(den_lcm, c.denominator());
    den_lcm = den_lcm / g * c.denominator();
  }
  {
    BigInt g = BigInt::Gcd(den_lcm, expr_.constant().denominator());
    den_lcm = den_lcm / g * expr_.constant().denominator();
  }
  LinearExpr scaled = expr_.Scale(Rational(den_lcm, BigInt(1)));
  BigInt num_gcd(0);
  for (const auto& [v, c] : scaled.coefficients()) {
    num_gcd = BigInt::Gcd(num_gcd, c.numerator());
  }
  num_gcd = BigInt::Gcd(num_gcd, scaled.constant().numerator());
  if (!num_gcd.is_zero() && num_gcd != BigInt(1)) {
    scaled = scaled.Scale(Rational(BigInt(1), num_gcd));
  }
  // For equalities, pick the orientation with a positive leading coefficient.
  if (op_ == CmpOp::kEq) {
    const auto& coeffs = scaled.coefficients();
    if (!coeffs.empty() && coeffs.begin()->second.is_negative()) {
      scaled = -scaled;
    }
  }
  expr_ = std::move(scaled);
}

bool LinearConstraint::GroundValue() const {
  int sign = expr_.constant().sign();
  switch (op_) {
    case CmpOp::kLe:
      return sign <= 0;
    case CmpOp::kLt:
      return sign < 0;
    case CmpOp::kEq:
      return sign == 0;
  }
  return false;
}

LinearConstraint LinearConstraint::Substitute(
    VarId v, const LinearExpr& replacement) const {
  return LinearConstraint(expr_.Substitute(v, replacement), op_);
}

LinearConstraint LinearConstraint::Rename(
    const std::map<VarId, VarId>& mapping) const {
  return LinearConstraint(expr_.Rename(mapping), op_);
}

std::vector<LinearConstraint> LinearConstraint::Negations() const {
  switch (op_) {
    case CmpOp::kLe:
      return {LinearConstraint(-expr_, CmpOp::kLt)};
    case CmpOp::kLt:
      return {LinearConstraint(-expr_, CmpOp::kLe)};
    case CmpOp::kEq:
      return {LinearConstraint(expr_, CmpOp::kLt),
              LinearConstraint(-expr_, CmpOp::kLt)};
  }
  return {};
}

bool LinearConstraint::operator<(const LinearConstraint& other) const {
  if (op_ != other.op_) return op_ < other.op_;
  const auto& a = expr_.coefficients();
  const auto& b = other.expr_.coefficients();
  if (a.size() != b.size()) return a.size() < b.size();
  auto ita = a.begin();
  auto itb = b.begin();
  for (; ita != a.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return ita->first < itb->first;
    int cmp = ita->second.Compare(itb->second);
    if (cmp != 0) return cmp < 0;
  }
  return expr_.constant() < other.expr_.constant();
}

std::string LinearConstraint::ToString() const {
  return expr_.ToString() + " " + CmpOpName(op_) + " 0";
}

std::string LinearConstraint::ToPrettyString() const {
  // Move the constant to the right-hand side: expr' op -constant. When every
  // variable coefficient is negative, flip the whole inequality so e.g.
  // `-X < 0` prints as `X > 0`.
  LinearExpr lhs = expr_;
  bool flip = op_ != CmpOp::kEq && !lhs.coefficients().empty();
  for (const auto& [v, c] : lhs.coefficients()) {
    if (!c.is_negative()) flip = false;
  }
  const char* op_name = CmpOpName(op_);
  if (flip) {
    lhs = -lhs;
    op_name = op_ == CmpOp::kLe ? ">=" : ">";
  }
  Rational rhs = -lhs.constant();
  lhs.AddConstant(rhs);  // Zero out the constant term.
  return lhs.ToString() + " " + op_name + " " + rhs.ToString();
}

}  // namespace cqlopt
