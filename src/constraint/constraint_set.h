#ifndef CQLOPT_CONSTRAINT_CONSTRAINT_SET_H_
#define CQLOPT_CONSTRAINT_CONSTRAINT_SET_H_

#include <string>
#include <vector>

#include "constraint/conjunction.h"

namespace cqlopt {

/// A constraint set: a disjunction of conjunctions of constraints
/// (Definition 2.3). This is the representation of predicate constraints and
/// QRP constraints throughout Sections 3–7; `false` is the empty disjunction
/// and `true` the single empty conjunction.
class ConstraintSet {
 public:
  /// The empty disjunction: `false`.
  ConstraintSet() = default;

  static ConstraintSet False() { return ConstraintSet(); }
  static ConstraintSet True();
  static ConstraintSet Of(Conjunction disjunct);

  const std::vector<Conjunction>& disjuncts() const { return disjuncts_; }
  bool is_false() const { return disjuncts_.empty(); }
  bool IsSatisfiable() const;

  /// True iff some disjunct is the trivial `true` conjunction (then the set
  /// is equivalent to `true`).
  bool IsTriviallyTrue() const;

  /// Adds a disjunct if it is satisfiable and not already implied by the
  /// set; then drops previously present disjuncts that the new one implies.
  /// (The paper: "Before adding disjuncts to the approximate QRP
  /// constraint, we can eliminate redundant disjuncts.")
  /// Returns true if the set changed.
  bool AddDisjunct(const Conjunction& disjunct);

  /// Disjunction: adds every disjunct of `other`. Returns true if changed.
  bool UnionWith(const ConstraintSet& other);

  /// Conjunction of two sets, distributed to DNF; unsatisfiable products
  /// are dropped (Proposition 2.2's `&` after conversion to DNF).
  static Result<ConstraintSet> And(const ConstraintSet& a,
                                   const ConstraintSet& b);

  /// Projects every disjunct onto `keep` (Definition 2.8's Π, lifted).
  Result<ConstraintSet> Project(const std::vector<VarId>& keep) const;

  /// Renames every disjunct.
  ConstraintSet Rename(const std::map<VarId, VarId>& mapping) const;

  /// True iff every disjunct of *this implies `other`'s disjunction.
  /// This is the paper's C1 ⊐ C2 (Definition 2.3).
  bool Implies(const ConstraintSet& other) const;

  /// Semantic equivalence (mutual implication).
  bool EquivalentTo(const ConstraintSet& other) const {
    return Implies(other) && other.Implies(*this);
  }

  /// Simplifies each disjunct and drops redundant ones.
  void Simplify();

  /// "false", or " | "-joined disjunct strings, each parenthesized.
  std::string ToString() const;

 private:
  std::vector<Conjunction> disjuncts_;
};

}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_CONSTRAINT_SET_H_
