#include "constraint/variable.h"

#include <algorithm>

namespace cqlopt {

std::string VarName(VarId v) {
  if (v >= 1 && v < 1024) return "$" + std::to_string(v);
  return "v" + std::to_string(v);
}

std::vector<VarId> VarUnion(const std::vector<VarId>& a,
                            const std::vector<VarId>& b) {
  std::vector<VarId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace cqlopt
