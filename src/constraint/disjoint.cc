#include "constraint/disjoint.h"

namespace cqlopt {

Result<ConstraintSet> MakeDisjoint(const ConstraintSet& set) {
  for (const Conjunction& d : set.disjuncts()) {
    if (!d.SymbolBindings().empty()) {
      return Status::Unimplemented(
          "MakeDisjoint over symbolic atoms: symbol equality has no "
          "negation in the constraint language");
    }
  }
  // result holds pairwise-disjoint conjunctions. For each new disjunct d we
  // subtract every member r of result: d \ r expands to the disjoint pieces
  //   d ∧ ¬t1, d ∧ t1 ∧ ¬t2, ..., d ∧ t1 ∧ ... ∧ t(k-1) ∧ ¬tk
  // over r's atoms t1..tk, each ¬ti itself splitting into its negation
  // pieces (two for equalities). Pieces of the same subtraction are disjoint
  // by construction, and all are disjoint from r.
  std::vector<Conjunction> result;
  for (const Conjunction& d : set.disjuncts()) {
    if (!d.IsSatisfiable()) continue;
    std::vector<Conjunction> pieces = {d};
    for (const Conjunction& r : result) {
      std::vector<LinearConstraint> atoms = r.LinearWithEqualities();
      std::vector<Conjunction> next;
      for (const Conjunction& piece : pieces) {
        Conjunction prefix = piece;  // piece ∧ t1 ∧ ... ∧ t(i-1)
        for (size_t i = 0; i < atoms.size(); ++i) {
          for (const LinearConstraint& neg : atoms[i].Negations()) {
            Conjunction split = prefix;
            CQLOPT_RETURN_IF_ERROR(split.AddLinear(neg));
            if (split.IsSatisfiable()) next.push_back(std::move(split));
          }
          CQLOPT_RETURN_IF_ERROR(prefix.AddLinear(atoms[i]));
          if (!prefix.IsSatisfiable()) break;
        }
        // The residue prefix == piece ∧ r is intentionally dropped: it is
        // already covered by r.
      }
      pieces = std::move(next);
      if (pieces.empty()) break;
    }
    for (Conjunction& piece : pieces) {
      piece.Simplify();
      result.push_back(std::move(piece));
    }
  }
  ConstraintSet out;
  for (Conjunction& c : result) {
    // Do not use AddDisjunct's subsumption pruning here: the pieces are
    // disjoint, so no piece implies another unless empty.
    if (c.IsSatisfiable()) out.AddDisjunct(c);
  }
  return out;
}

}  // namespace cqlopt
