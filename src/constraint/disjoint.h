#ifndef CQLOPT_CONSTRAINT_DISJOINT_H_
#define CQLOPT_CONSTRAINT_DISJOINT_H_

#include "constraint/constraint_set.h"
#include "util/status.h"

namespace cqlopt {

/// Rewrites `set` into an equivalent constraint set in which no two
/// disjuncts have a satisfiable intersection (Section 4.6's first remedy for
/// the multiple-derivations problem, per the paper's reference [13]).
///
/// When the propagated QRP constraint has pairwise-disjoint disjuncts,
/// Theorem 4.4's third clause applies: the rewritten program makes a
/// *subset* of the original program's derivations instead of potentially
/// duplicating them. The price is a possibly exponential increase in the
/// number of disjuncts (and hence rewritten rules), which
/// bench_disjunct_tradeoff measures.
///
/// Only purely linear disjuncts are supported; symbolic atoms have no
/// expressible negation in the constraint language, so their presence yields
/// kUnimplemented.
Result<ConstraintSet> MakeDisjoint(const ConstraintSet& set);

}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_DISJOINT_H_
