#ifndef CQLOPT_CONSTRAINT_DECISION_CACHE_H_
#define CQLOPT_CONSTRAINT_DECISION_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

namespace cqlopt {

/// Process-wide memo table for boolean constraint decisions — the answers
/// of fm::IsSatisfiable, fm::ImpliesAtom, and Implies(Conjunction,
/// Conjunction) keyed by the fingerprints of their inputs
/// (constraint/fingerprint.h).
///
/// Why process-wide rather than per-evaluation: the same conjunctions recur
/// across rule applications, across fixpoint iterations, across the
/// subsumption checks of reconciliation, and across the Gen_*_constraints
/// transform fixpoints — and the decision procedures are pure, so an answer
/// computed anywhere is valid everywhere. Campagna et al. and Greco et al.
/// both identify exactly this redundancy as the dominant cost of bottom-up
/// CLP evaluation.
///
/// Concurrency: the table is sharded by key; each shard is guarded by its
/// own mutex, so the parallel stratified workers (eval/seminaive.cc) share
/// hits without serializing on one lock. Counters are relaxed atomics.
///
/// Bounding: each shard holds at most kMaxEntriesPerShard entries; an
/// insert into a full shard clears that shard first (wholesale eviction —
/// entries are single bytes keyed by uint64, so tracking recency would cost
/// more than recomputing the evicted decisions). Evicted entry counts are
/// reported so benches can see thrash.
class DecisionCache {
 public:
  static constexpr int kShardCount = 16;
  static constexpr size_t kMaxEntriesPerShard = 1u << 15;

  /// Monotonic counter snapshot (entries is a point-in-time gauge).
  struct Counters {
    long hits = 0;
    long misses = 0;
    long evictions = 0;
    long entries = 0;
  };

  static DecisionCache& Instance();

  /// When disabled, Lookup always misses (without counting) and Store is a
  /// no-op — every decision is recomputed. Used by the cache-equivalence
  /// tests and the bench ablation arms.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  std::optional<bool> Lookup(uint64_t key);
  void Store(uint64_t key, bool value);

  /// Entries a shard may hold before Store evicts it wholesale. Defaults to
  /// kMaxEntriesPerShard; tests override it (capacity 1 turns every insert
  /// into an eviction, the worst-case thrash the cache-equivalence property
  /// pins byte-identical results under).
  size_t capacity_per_shard() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  void set_capacity_per_shard_for_testing(size_t n) {
    capacity_.store(n == 0 ? kMaxEntriesPerShard : n,
                    std::memory_order_relaxed);
  }

  Counters Snapshot() const;

  /// Drops all entries (counters keep accumulating). Tests only.
  void Clear();

 private:
  DecisionCache() = default;

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, bool> map;
  };

  static size_t ShardOf(uint64_t key) {
    // The fingerprints are already well mixed; fold the high bits so shard
    // choice is independent of the map's own bucket choice (low bits).
    return static_cast<size_t>((key >> 48) ^ (key >> 32)) %
           static_cast<size_t>(kShardCount);
  }

  Shard shards_[kShardCount];
  std::atomic<size_t> capacity_{kMaxEntriesPerShard};
  std::atomic<long> hits_{0};
  std::atomic<long> misses_{0};
  std::atomic<long> evictions_{0};
  std::atomic<bool> enabled_{true};
};

/// RAII guard disabling the decision cache in a scope (tests, ablations).
class DecisionCacheDisabler {
 public:
  DecisionCacheDisabler()
      : was_enabled_(DecisionCache::Instance().enabled()) {
    DecisionCache::Instance().set_enabled(false);
  }
  ~DecisionCacheDisabler() {
    DecisionCache::Instance().set_enabled(was_enabled_);
  }
  DecisionCacheDisabler(const DecisionCacheDisabler&) = delete;
  DecisionCacheDisabler& operator=(const DecisionCacheDisabler&) = delete;

 private:
  bool was_enabled_;
};

/// RAII guard pinning the per-shard capacity in a scope (tests). Clears the
/// cache on entry and exit so no run observes entries stored under the
/// other capacity regime.
class DecisionCacheCapacityOverride {
 public:
  explicit DecisionCacheCapacityOverride(size_t capacity) {
    DecisionCache::Instance().Clear();
    DecisionCache::Instance().set_capacity_per_shard_for_testing(capacity);
  }
  ~DecisionCacheCapacityOverride() {
    DecisionCache::Instance().set_capacity_per_shard_for_testing(0);
    DecisionCache::Instance().Clear();
  }
  DecisionCacheCapacityOverride(const DecisionCacheCapacityOverride&) = delete;
  DecisionCacheCapacityOverride& operator=(
      const DecisionCacheCapacityOverride&) = delete;
};

}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_DECISION_CACHE_H_
