#include "constraint/fingerprint.h"

namespace cqlopt {
namespace fp {
namespace {

// Domain-separation seeds so an atom, a vector, and a conjunction built
// from the same pieces never share a fingerprint.
constexpr uint64_t kAtomSeed = 0x8e5d3c1fb0a95247ull;
constexpr uint64_t kVectorSeed = 0xc2b2ae3d27d4eb4full;
constexpr uint64_t kConjunctionSeed = 0x165667b19e3779f9ull;
constexpr uint64_t kUnsatMark = 0x27220a95fe791d59ull;

uint64_t MixRational(uint64_t h, const Rational& r) {
  return Mix(h, static_cast<uint64_t>(r.Hash()));
}

}  // namespace

uint64_t FingerprintOf(const LinearConstraint& atom) {
  uint64_t h = Mix(kAtomSeed, static_cast<uint64_t>(atom.op()));
  // coefficients() is an ordered map, so iteration order is canonical.
  for (const auto& [var, coeff] : atom.expr().coefficients()) {
    h = Mix(h, static_cast<uint64_t>(static_cast<int64_t>(var)));
    h = MixRational(h, coeff);
  }
  return MixRational(h, atom.expr().constant());
}

uint64_t FingerprintOf(const std::vector<LinearConstraint>& atoms) {
  // Commutative combine (sum of spread per-atom fingerprints): the same
  // multiset of atoms fingerprints identically in any order.
  uint64_t h = Mix(kVectorSeed, static_cast<uint64_t>(atoms.size()));
  for (const LinearConstraint& atom : atoms) {
    h += Mix(0, FingerprintOf(atom));
  }
  return h;
}

uint64_t FingerprintOf(const Conjunction& conjunction) {
  if (conjunction.known_unsat()) return kUnsatMark;
  uint64_t h = kConjunctionSeed;
  // All three stores are sorted canonically, so ordered mixing is
  // deterministic (and stronger than a commutative combine).
  for (const auto& [member, root] : conjunction.EqualityPairs()) {
    h = Mix(h, static_cast<uint64_t>(static_cast<int64_t>(member)));
    h = Mix(h, static_cast<uint64_t>(static_cast<int64_t>(root)));
  }
  for (const auto& [root, symbol] : conjunction.SymbolBindings()) {
    h = Mix(h, static_cast<uint64_t>(static_cast<int64_t>(root)));
    h = Mix(h, static_cast<uint64_t>(static_cast<int64_t>(symbol)) ^
                   0xdeadbeefcafef00dull);
  }
  for (const LinearConstraint& atom : conjunction.linear()) {
    h = Mix(h, FingerprintOf(atom));
  }
  return h;
}

}  // namespace fp
}  // namespace cqlopt
