#ifndef CQLOPT_CONSTRAINT_FOURIER_MOTZKIN_H_
#define CQLOPT_CONSTRAINT_FOURIER_MOTZKIN_H_

#include <vector>

#include "constraint/linear_constraint.h"

namespace cqlopt {
namespace fm {

/// Exact quantifier elimination and satisfiability for conjunctions of
/// linear arithmetic constraints over the rationals/reals, via
/// Fourier–Motzkin elimination (the paper's reference [8], Lassez & Maher).
///
/// The paper's correctness proofs (Theorems 4.2, 4.5, 4.7) all hinge on
/// "projection of linear arithmetic constraint sets can be done exactly";
/// this module is that primitive.

/// Decides satisfiability of the conjunction. Equalities are first removed
/// by Gaussian substitution; remaining variables are eliminated by FM; the
/// resulting variable-free constraints are evaluated.
bool IsSatisfiable(const std::vector<LinearConstraint>& constraints);

/// Projects the conjunction onto the complement of `eliminate`: the result
/// mentions none of the eliminated variables and has exactly the solutions
/// of `exists eliminate. constraints` (over the reals). The result may
/// contain a trivially-false ground constraint when the input is
/// unsatisfiable.
std::vector<LinearConstraint> Eliminate(
    std::vector<LinearConstraint> constraints,
    const std::vector<VarId>& eliminate);

/// Removes constraints implied by the remaining ones (including trivially
/// true atoms). If the conjunction is unsatisfiable, returns a single
/// trivially-false constraint. Result is sorted canonically.
std::vector<LinearConstraint> RemoveRedundant(
    std::vector<LinearConstraint> constraints);

/// True iff `constraints` (conjoined) imply `atom`. Exact.
bool ImpliesAtom(const std::vector<LinearConstraint>& constraints,
                 const LinearConstraint& atom);

}  // namespace fm
}  // namespace cqlopt

#endif  // CQLOPT_CONSTRAINT_FOURIER_MOTZKIN_H_
