#include "constraint/linear_expr.h"

namespace cqlopt {

LinearExpr LinearExpr::Var(VarId v) {
  LinearExpr expr;
  expr.Add(v, Rational(1));
  return expr;
}

Rational LinearExpr::CoefficientOf(VarId v) const {
  auto it = coeffs_.find(v);
  return it == coeffs_.end() ? Rational(0) : it->second;
}

void LinearExpr::Add(VarId v, const Rational& coeff) {
  if (coeff.is_zero()) return;
  auto [it, inserted] = coeffs_.emplace(v, coeff);
  if (!inserted) {
    it->second += coeff;
    if (it->second.is_zero()) coeffs_.erase(it);
  }
}

LinearExpr LinearExpr::operator+(const LinearExpr& other) const {
  LinearExpr out = *this;
  for (const auto& [v, c] : other.coeffs_) out.Add(v, c);
  out.constant_ += other.constant_;
  return out;
}

LinearExpr LinearExpr::operator-(const LinearExpr& other) const {
  LinearExpr out = *this;
  for (const auto& [v, c] : other.coeffs_) out.Add(v, -c);
  out.constant_ -= other.constant_;
  return out;
}

LinearExpr LinearExpr::operator-() const {
  LinearExpr out;
  for (const auto& [v, c] : coeffs_) out.coeffs_.emplace(v, -c);
  out.constant_ = -constant_;
  return out;
}

LinearExpr LinearExpr::Scale(const Rational& factor) const {
  LinearExpr out;
  if (factor.is_zero()) return out;
  for (const auto& [v, c] : coeffs_) out.coeffs_.emplace(v, c * factor);
  out.constant_ = constant_ * factor;
  return out;
}

LinearExpr LinearExpr::Substitute(VarId v, const LinearExpr& replacement) const {
  auto it = coeffs_.find(v);
  if (it == coeffs_.end()) return *this;
  Rational coeff = it->second;
  LinearExpr out = *this;
  out.coeffs_.erase(v);
  return out + replacement.Scale(coeff);
}

LinearExpr LinearExpr::Rename(const std::map<VarId, VarId>& mapping) const {
  LinearExpr out;
  out.constant_ = constant_;
  for (const auto& [v, c] : coeffs_) {
    auto it = mapping.find(v);
    out.Add(it == mapping.end() ? v : it->second, c);
  }
  return out;
}

std::vector<VarId> LinearExpr::Vars() const {
  std::vector<VarId> out;
  out.reserve(coeffs_.size());
  for (const auto& [v, c] : coeffs_) out.push_back(v);
  return out;
}

std::string LinearExpr::ToString() const {
  std::string out;
  for (const auto& [v, c] : coeffs_) {
    if (out.empty()) {
      if (c == Rational(1)) {
        out += VarName(v);
      } else if (c == Rational(-1)) {
        out += "-" + VarName(v);
      } else {
        out += c.ToString() + "*" + VarName(v);
      }
    } else {
      if (c.is_negative()) {
        Rational abs = c.Abs();
        out += " - ";
        if (abs != Rational(1)) out += abs.ToString() + "*";
      } else {
        out += " + ";
        if (c != Rational(1)) out += c.ToString() + "*";
      }
      out += VarName(v);
    }
  }
  if (out.empty()) return constant_.ToString();
  if (!constant_.is_zero()) {
    if (constant_.is_negative()) {
      out += " - " + constant_.Abs().ToString();
    } else {
      out += " + " + constant_.ToString();
    }
  }
  return out;
}

}  // namespace cqlopt
