#ifndef CQLOPT_SERVICE_PROTOCOL_H_
#define CQLOPT_SERVICE_PROTOCOL_H_

#include <string>
#include <vector>

#include "service/query_service.h"
#include "service/scheduler.h"

namespace cqlopt {

/// The cqld line protocol. One request per line; every response is one or
/// more lines terminated by a bare `END` line, so clients can stream
/// without framing. Successful responses start with `OK`, failures with
/// `ERR <CODE> <message>` (the Status code name); the connection survives
/// errors. Requests:
///
///   PREPARE <steps> <query>     memoize the rewrite pipeline
///   QUERY <steps> <query>       serve a query; answers follow, one per line
///   QUERY <steps> <query> ASOF <epoch>
///                               epoch-consistent read: fails with a typed
///                               ERR UNAVAILABLE until this node's head has
///                               reached <epoch> (replication lag — retry)
///   INGEST <facts>              commit `.`-terminated facts as a new epoch
///   INGEST TTL <ms> <facts>     commit facts that expire once the logical
///                               clock passes now + <ms>
///   RETRACT <facts>             delete stored base facts (DESIGN.md §14);
///                               naming absent facts is counted, not an error
///   TICK <delta_ms>             advance the logical clock, expiring due
///                               TTL facts; bare TICK reads the clock
///   PRIORITY <class>            set this connection's scheduling class
///                               (interactive | normal | batch)
///   STATS                       one `key=value` line per service counter
///   REPLICATE <base> <idx> [<max>]
///                               pull one replication cut (DESIGN.md §15):
///                               `R <crc8> <hex>` record lines, or — on a
///                               coordinate mismatch — a full snapshot as
///                               `D <ms> <hex>` deadline lines plus one
///                               `S <hex>` statements line
///   HEALTH                      role / epoch / clock / quarantine /
///                               replication lag, one line
///   PROMOTE [<wal-dir>]         fail this node over to primary, first
///                               replaying the dead primary's surviving WAL
///                               when a directory is given
///   SHUTDOWN                    acknowledge and stop the server
///
/// On a follower, INGEST / RETRACT / TICK <delta> are refused with
/// `ERR FAILED_PRECONDITION` (reads, HEALTH, and bare TICK stay open); a
/// quarantined (diverged) node refuses QUERY with `ERR DATA_LOSS` rather
/// than serve possibly-wrong answers.
///
/// Under overload the server refuses work instead of stalling: a request
/// past the admission bound is answered `ERR RESOURCE_EXHAUSTED ...` +
/// `END` without being executed (service/scheduler.h).
///
/// `<steps>` is the comma-separated rewrite spec with no spaces
/// (`pred,qrp,mg`), or `-` for the identity pipeline; `<query>` is CQL
/// surface syntax (`?- cheaporshort(msn, sea, T, C).`). Example exchange:
///
///   > QUERY pred,qrp,mg ?- cheaporshort(msn, sea, T, C).
///   < OK path=cold epoch=0 answers=2 fixpoint=1
///   < cheaporshort(msn, sea, 240, 209)
///   < cheaporshort(msn, sea, 235, 219)
///   < END
enum class ProtocolAction {
  kContinue,
  kShutdown,
};

/// Side channel from one handled line back to the transport driving it —
/// facts for the scheduler's fair-share charge, and PRIORITY changes for
/// the connection to apply. The stdio loop ignores it.
struct LineOutcome {
  /// Facts stored by the evaluation this line triggered (QUERY), accepted
  /// into the new epoch (INGEST), or removed from it (RETRACT / TICK
  /// expiry — shrink work is charged like growth); 0 otherwise.
  long derived_facts = 0;
  /// True when the line was a successful PRIORITY verb; `priority` then
  /// holds the class the connection should switch to.
  bool priority_changed = false;
  PriorityClass priority = PriorityClass::kNormal;
};

/// Handles one request line against `service`, appending the response lines
/// (including the trailing `END`) to `out`. Pure request/response logic —
/// no I/O — so the protocol is unit-testable without sockets; the server
/// and the stdio loop both drive it. `outcome`, when non-null, reports
/// transport-relevant side effects of the line.
ProtocolAction HandleLine(QueryService& service, const std::string& line,
                          std::vector<std::string>* out,
                          LineOutcome* outcome = nullptr);

}  // namespace cqlopt

#endif  // CQLOPT_SERVICE_PROTOCOL_H_
