#ifndef CQLOPT_SERVICE_QUERY_SERVICE_H_
#define CQLOPT_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/equivalence.h"
#include "eval/loader.h"
#include "eval/seminaive.h"
#include "service/prepared.h"
#include "service/wal.h"
#include "transform/pipeline.h"

namespace cqlopt {

/// Configuration of a QueryService.
struct ServiceOptions {
  /// Evaluation defaults for every served query. `strategy` is forced to
  /// kStratified for cold evaluations (the serving engine); resumes use
  /// the delta loop regardless (seminaive.h ResumeEvaluate).
  EvalOptions eval;
  /// Rewrite options shared by every prepared pipeline.
  PipelineOptions pipeline;
  /// Bound on distinct prepared programs kept resident.
  size_t prepared_capacity = 64;
  /// Directory of the write-ahead log (service/wal.h). Empty (the default)
  /// disables durability. When set, every ingest batch is appended and
  /// fsynced *before* its epoch becomes visible, and Recover() replays the
  /// log on startup.
  std::string wal_dir;
  /// Auto-compaction threshold: after a commit leaves wal.log larger than
  /// this many bytes, the EDB is snapshotted and the log reset. 0 (the
  /// default) means compact only on explicit Compact() calls.
  long wal_compact_bytes = 0;
};

/// A node's replication role (DESIGN.md §15). Primaries accept writes and
/// ship their WAL; followers apply the shipped stream and serve reads only.
enum class NodeRole {
  kPrimary,
  kFollower,
};

const char* NodeRoleName(NodeRole role);

/// One cut of the primary's replication feed, the unit a follower pulls
/// with `REPLICATE <base_epoch> <index>` (QueryService::FetchReplication).
///
/// The feed's coordinate system is (base_epoch, index): `base_epoch` is the
/// epoch of the generation-starting snapshot — 0 for a virgin log — and
/// `index` counts records committed since it. Compaction starts a new
/// generation, so a follower holding pre-compaction coordinates gets a
/// snapshot renegotiation instead of records: install `snap`, then resume
/// pulling from (base_epoch, next_index).
struct ReplicationBatch {
  /// The primary's current feed identity.
  int64_t base_epoch = 0;
  /// Coordinate to pull next (index past the shipped records, or the feed
  /// position the renegotiation snapshot corresponds to).
  uint64_t next_index = 0;
  /// Feed length at the cut; next_index == feed_size means the batch (or
  /// snapshot) brings the follower level with this cut, so the state CRC is
  /// comparable after applying it.
  uint64_t feed_size = 0;
  /// Raw WAL payload bytes (exactly what Append logged), commit order.
  std::vector<std::string> records;
  /// True when the requested coordinates were unserveable (identity mismatch
  /// or out-of-range index): `snap` holds the primary's full state instead.
  bool snapshot = false;
  WalSnapshot snap;
  /// Head epoch and logical clock at the cut.
  int64_t primary_epoch = 0;
  int64_t primary_clock_ms = 0;
  /// CRC-32 (wal.h WalCrc32) of the primary's RenderStateText at the cut —
  /// the per-epoch integrity digest a caught-up follower must reproduce.
  uint32_t state_crc = 0;
};

/// What the HEALTH verb reports: the node's own role/epoch/clock, plus
/// replication-side fields a registered augmenter (the Replicator) fills.
struct HealthInfo {
  NodeRole role = NodeRole::kPrimary;
  int64_t epoch = 0;
  int64_t clock_ms = 0;
  bool quarantined = false;
  std::string quarantine_reason;
  /// Follower only (set by the Replicator augmenter): feed records fetched
  /// but not yet known-applied relative to the last primary cut, and the
  /// primary epoch of that cut. -1 when no replication is attached.
  long lag_records = -1;
  int64_t primary_epoch = -1;
  long records_applied = 0;
  long snapshots_installed = 0;
};

/// Which serving path answered a query.
enum class ServePath {
  /// Pipeline prepared and program evaluated from scratch this call.
  kCold,
  /// Pipeline came from the prepared cache; evaluation ran from scratch
  /// (first evaluation of this prepared program, or its base was capped).
  kPreparedEval,
  /// Answers served straight from the entry's materialized evaluation —
  /// the database epoch did not change since it was computed.
  kEpochHit,
  /// Materialized evaluation resumed with the EDB deltas of the epochs
  /// committed since it was computed (incremental ingestion).
  kResumed,
};

const char* ServePathName(ServePath path);

/// Outcome of one served query.
struct QueryOutcome {
  /// Rendered answer facts (query constraints conjoined, unsat dropped).
  std::vector<std::string> answers;
  /// Epoch of the snapshot the answer was computed against.
  int64_t epoch = 0;
  ServePath path = ServePath::kCold;
  uint64_t fingerprint = 0;
  /// Whether the rewrite pipeline was served from the prepared cache.
  bool prepared_hit = false;
  /// Whether the evaluation reached its fixpoint (capped evaluations still
  /// serve their partial answers, flagged here).
  bool reached_fixpoint = false;
  /// Fixpoint iterations run by this call (0 for kEpochHit).
  int iterations_run = 0;
  /// Facts stored by this call's evaluation (0 for kEpochHit; the resumed
  /// path counts only the facts the resume itself inserted). The scheduler
  /// charges this to the client's fair-share account.
  long facts_stored = 0;
};

/// Outcome of one committed ingest batch.
struct IngestOutcome {
  /// Facts accepted into the new epoch's EDB (structural duplicates of
  /// already-stored facts are dropped, like a from-scratch load).
  int accepted = 0;
  int duplicates = 0;
  /// The epoch the commit produced. Unchanged if the whole batch was
  /// duplicates (no epoch is burned on a no-op commit).
  int64_t epoch = 0;
};

/// Outcome of one committed retraction batch.
struct RetractOutcome {
  /// Base facts removed from the new epoch's EDB.
  int removed = 0;
  /// Batch entries that named no stored base fact (never inserted, already
  /// retracted or expired, or repeated within the batch) — counted, never
  /// an error, so retraction is idempotent.
  int missing = 0;
  /// The epoch the commit produced. Unchanged if nothing was removed (a
  /// no-op retraction burns no epoch).
  int64_t epoch = 0;
};

/// Outcome of one logical-clock advance (DESIGN.md §14: the service clock
/// only moves via TICK / AdvanceClock, so window expiry is deterministic
/// and replayable).
struct TickOutcome {
  /// Clock after the advance.
  int64_t now_ms = 0;
  /// TTL'd facts whose deadline elapsed and were retracted by this tick.
  int expired = 0;
  /// Head epoch after the tick (bumped only when something expired).
  int64_t epoch = 0;
};

/// What Recover() found and rebuilt (all zero when the WAL is disabled).
struct RecoverOutcome {
  /// Head epoch after replay.
  int64_t epoch = 0;
  /// WAL records replayed (after the snapshot, if any).
  int batches_replayed = 0;
  bool snapshot_loaded = false;
  /// Epoch the loaded snapshot captured (0 when none).
  int64_t snapshot_epoch = 0;
  /// Torn/corrupt tail bytes truncated from the log (0 on a clean log).
  long truncated_bytes = 0;
  /// Truncation warning for the operator's log; empty when clean.
  std::string warning;
};

/// Scheduler counters, merged into ServiceStats snapshots by an attached
/// Scheduler (service/scheduler.h) via QueryService::SetStatsAugmenter.
/// All zero when the service runs without one (stdio / embedded use).
struct SchedulerStats {
  bool attached = false;
  int workers = 0;
  long queue_limit = 0;  // configured admission-queue bound
  long queued = 0;       // tasks waiting right now
  long in_flight = 0;    // tasks executing right now
  long admitted = 0;
  long shed = 0;       // refused outright: queue full, no preemptable victim
  long preempted = 0;  // evicted from the queue by a higher priority class
  long completed = 0;
  /// Priority classes, scheduler.h PriorityClass order: interactive,
  /// normal, batch.
  static constexpr int kClasses = 3;
  struct PerClass {
    long submitted = 0;
    long shed = 0;  // refusals + preemptions charged to this class
    long completed = 0;
    /// Fair-share cost charged (1 per dequeue + derived facts, in units of
    /// scheduler.h kFactsPerCostUnit).
    long cost = 0;
    double wait_ms = 0;  // total submit -> dequeue time
    double run_ms = 0;   // total dequeue -> completion time
  } priority[kClasses];
};

/// Service counters (monotone; snapshot via Stats()).
struct ServiceStats {
  long queries = 0;
  long ingests = 0;
  long prepared_hits = 0;
  long prepared_misses = 0;
  long cold_evals = 0;
  long epoch_hits = 0;
  long resumes = 0;
  /// Fixpoint iterations spent in resumed evaluations (the incremental
  /// work; compare against cold_eval iterations to see the saving).
  long resumed_iterations = 0;
  /// Queries aborted by a governance limit (deadline / budget / cancel) —
  /// they returned a typed error without touching the served state.
  long governed_aborts = 0;
  int64_t epoch = 0;
  size_t prepared_entries = 0;
  // WAL counters (zero when durability is off).
  bool wal_enabled = false;
  long wal_appends = 0;
  long wal_bytes = 0;  // current wal.log size
  long wal_compactions = 0;
  /// Auto-compactions that failed after their triggering commit was
  /// already durable and visible (the ingest still succeeded; the log
  /// simply was not reset and stays replayable).
  long wal_compaction_failures = 0;
  long wal_replayed_batches = 0;
  // Retraction / streaming-window counters (DESIGN.md §14).
  long retracts = 0;          // committed retraction batches (incl. expiry)
  long retracted_facts = 0;   // base facts removed by them
  long retract_missing = 0;   // batch entries that named no stored base fact
  long ttl_ingests = 0;       // committed INGEST TTL batches
  long ticks = 0;             // clock advances (with or without expiry)
  long expired_facts = 0;     // facts retracted by deadline sweeps
  int64_t clock_ms = 0;       // current logical clock
  size_t ttl_pending = 0;     // deadlines not yet elapsed
  /// Materialization catch-ups that applied at least one retraction delta
  /// (subset of `resumes`).
  long retract_resumes = 0;
  // Replication counters (DESIGN.md §15; zero when nothing replicates).
  long replication_fetches = 0;    // REPLICATE cuts served
  long replication_records = 0;    // feed records shipped
  long replication_snapshots = 0;  // renegotiation snapshots shipped
  long replicated_applies = 0;     // shipped records applied on this node
  /// Admission/scheduling counters of the attached scheduler, if any.
  SchedulerStats scheduler;
};

/// The embeddable query service the `cqld` server wraps: a resident CQL
/// program plus a mutable extensional database, served to concurrent
/// sessions with three layers of reuse (DESIGN.md §8):
///
///  1. *Prepared programs.* ApplyPipeline outcomes are memoized in a
///     PreparedCache keyed by PipelineFingerprint(program, query, steps) —
///     repeated queries skip the fold/unfold and magic rewrites.
///  2. *Snapshot epochs.* The EDB lives in immutable epoch snapshots
///     published via shared_ptr; a reader evaluates against the snapshot
///     it captured while a writer commits the next epoch, so no query ever
///     observes a half-ingested batch.
///  3. *Incremental ingestion.* Each prepared entry materializes its
///     latest evaluation, epoch-tagged. A query at the same epoch is
///     answered from the materialization outright; after ingests, the
///     materialized fixpoint is resumed with the accumulated EDB deltas
///     (ResumeEvaluate) instead of recomputed.
///
/// Thread-safety: all public methods may be called concurrently. Lock
/// order is entry mutex > symbols mutex (never the reverse); the head
/// epoch pointer has its own lock and is only held for pointer swaps.
/// Sessions hitting the *same* prepared entry serialize on its
/// materialization; distinct entries evaluate in parallel.
class QueryService {
 public:
  /// Builds a service from program text (inline `?- ...` statements are
  /// allowed and ignored) and optional EDB text in the loader syntax.
  static Result<std::unique_ptr<QueryService>> FromText(
      const std::string& program_text, const std::string& edb_text,
      ServiceOptions options = {});

  /// Builds a service from parsed parts — the bench/test entry point for
  /// generated workloads. `edb` becomes epoch 0.
  static Result<std::unique_ptr<QueryService>> FromParts(
      Program program, Database edb, ServiceOptions options = {});

  /// Memoizes the rewrite pipeline for (query_text, steps_spec) without
  /// evaluating. Returns the fingerprint; `was_cached` (optional) reports
  /// whether it was already resident.
  Result<uint64_t> Prepare(const std::string& query_text,
                           const std::string& steps_spec,
                           bool* was_cached = nullptr);

  /// Serves a query: prepare (or reuse), pick the cheapest evaluation path
  /// against the current epoch, extract and render the answers.
  ///
  /// `min_epoch` >= 0 is the `QUERY ... ASOF <epoch>` consistency token: the
  /// head must have reached at least that epoch, or the call fails with a
  /// typed UNAVAILABLE error (the replication-lag signal a client retries
  /// on). Serving happens at the head — the token is read-your-writes, not
  /// time travel; historical snapshots are not retained.
  Result<QueryOutcome> Execute(const std::string& query_text,
                               const std::string& steps_spec,
                               int64_t min_epoch = -1);

  /// Parses facts in the loader syntax and commits them as a new epoch.
  /// Readers holding older snapshots are unaffected. With a WAL configured,
  /// the batch text is appended and fsynced before the epoch is published —
  /// an error means the epoch did NOT become visible (though the record may
  /// sit in the log if the fault hit between fsync and commit; recovery
  /// then surfaces it, which is the durable-write contract).
  Result<IngestOutcome> Ingest(const std::string& facts_text);

  /// Commits pre-built facts as a new epoch (bench/test entry point). With
  /// a WAL configured the batch is first rendered to loader syntax and
  /// re-parsed, and the *re-parsed* facts are committed — this keeps the
  /// recovery invariant "committed state == parse(logged text)" exact, so
  /// replay reproduces the epochs byte for byte.
  Result<IngestOutcome> IngestFacts(const std::vector<Fact>& batch);

  /// Like Ingest, but every accepted fact expires `ttl_ms` (> 0) logical
  /// milliseconds from now: when AdvanceClock moves the clock past
  /// now + ttl_ms the fact is retracted exactly as by Retract. Duplicates
  /// of already-stored facts are dropped as usual and do NOT refresh any
  /// existing deadline (re-ingesting a fact never extends its life — the
  /// first deadline wins; documented sliding-window semantics).
  Result<IngestOutcome> IngestTtl(const std::string& facts_text,
                                  int64_t ttl_ms);
  Result<IngestOutcome> IngestTtlFacts(const std::vector<Fact>& batch,
                                       int64_t ttl_ms);

  /// Parses facts in the loader syntax and retracts them from the EDB as a
  /// new epoch. Facts that are stored are removed; entries matching nothing
  /// count as `missing` (idempotent deletes). Readers holding older
  /// snapshots are unaffected; materialized evaluations catch up with an
  /// incremental RetractEvaluate on their next query. WAL semantics mirror
  /// Ingest (record kind 0x02, durable before visible).
  Result<RetractOutcome> Retract(const std::string& facts_text);

  /// Retracts pre-built facts (bench/test entry point); the same
  /// render-and-reparse dance as IngestFacts keeps replay exact.
  Result<RetractOutcome> RetractFacts(const std::vector<Fact>& batch);

  /// Advances the logical clock by `delta_ms` (>= 0; 0 reads the clock
  /// without logging) and retracts every TTL'd fact whose deadline
  /// elapsed. The sweep is one retraction epoch (kind 0x03 in the WAL,
  /// carrying the new clock); a tick that expires nothing logs a clock
  /// record (kind 0x05) and burns no epoch.
  Result<TickOutcome> AdvanceClock(int64_t delta_ms);

  /// Current logical clock (advanced only by AdvanceClock / recovery).
  int64_t now_ms() const;

  /// Replays the WAL directory into this freshly constructed service:
  /// loads the compaction snapshot (if present) as the base EDB at its
  /// epoch, then re-commits every intact log record in order, reproducing
  /// the pre-crash epoch sequence; a torn tail is truncated and reported
  /// via `out->warning`. Call once, before serving traffic (it is not
  /// synchronized against concurrent ingests); extra calls are no-ops that
  /// re-report the recovered epoch. No-op when the WAL is disabled.
  Status Recover(RecoverOutcome* out = nullptr);

  /// Compacts the WAL: snapshots the current EDB (atomic replace), then
  /// resets the log — bounded recovery time regardless of ingest history.
  /// Also runs automatically when ServiceOptions::wal_compact_bytes is set;
  /// an auto-compaction failure never fails the triggering ingest (its
  /// epoch is already durable) — it is counted in
  /// ServiceStats::wal_compaction_failures and retried on the next commit
  /// past the threshold.
  Status Compact();

  /// Renders the head state as `epoch=<id>` and `clock_ms=<n>` lines, every
  /// EDB fact in loader syntax (wal.h RenderDatabaseText), and one
  /// `# ttl <deadline_ms> <statement>` line per pending deadline — the
  /// oracle the crash-recovery and retract-vs-scratch properties compare.
  /// Two services with the same committed history render identically even
  /// when their raw symbol ids differ (recovery re-interns names in replay
  /// order).
  std::string RenderStateText() const;

  int64_t epoch() const;
  ServiceStats Stats() const;
  const Program& program() const { return program_; }

  // ---- Replication (DESIGN.md §15) -------------------------------------

  /// Serves one replication cut to a follower positioned at (base_epoch,
  /// index): up to `max_records` feed records, or — when the coordinates
  /// don't match this node's feed generation (compaction happened, or the
  /// follower is bootstrapping with base_epoch = -1) — a full state snapshot
  /// plus the coordinates to resume from. Requires a WAL (replication IS
  /// WAL shipping); honours the "replica/fetch" drop failpoint with a typed
  /// UNAVAILABLE error. Everything in the batch, state CRC included, is cut
  /// atomically under the commit lock.
  Status FetchReplication(int64_t base_epoch, uint64_t index,
                          size_t max_records, ReplicationBatch* out);

  /// Applies one shipped WAL payload through the normal commit paths — the
  /// follower side of WAL shipping. Unlike Recover's replay, the commit IS
  /// logged to this node's own WAL, so per-node crash recovery (and chained
  /// replication off this node's feed) keeps working.
  Status ApplyReplicated(const std::string& payload);

  /// Installs a replication snapshot as this node's entire state — epoch,
  /// clock, pending TTL deadlines, EDB — discarding what it had (the
  /// bootstrap / renegotiation path; the caller only installs snapshots at
  /// or ahead of its own epoch). Persisted to this node's own WAL
  /// (WriteSnapshot + Reset) when one is configured, so a follower restart
  /// recovers to the installed state without the primary.
  Status InstallSnapshot(const WalSnapshot& snapshot);

  NodeRole role() const;
  void SetRole(NodeRole role);

  /// Marks this node diverged: every subsequent Execute fails with a typed
  /// DATA_LOSS error carrying `reason` until the process is rebuilt from a
  /// fresh snapshot. Never serves wrong answers silently.
  void Quarantine(const std::string& reason);
  bool quarantined() const;

  /// Fills role/epoch/clock/quarantine and invokes the registered health
  /// augmenter (the Replicator's lag report) — the HEALTH verb's source.
  HealthInfo Health() const;
  void SetHealthAugmenter(std::function<void(HealthInfo*)> augmenter);

  /// Operator failover: flips this node to primary. On a primary it is an
  /// idempotent no-op; on a follower the registered promote handler (the
  /// Replicator's stop-pulling + final-catch-up-from-the-dead-primary's-WAL
  /// path) runs first and its failure aborts the promotion. `arg` is the
  /// handler's argument (the dead primary's WAL directory, possibly empty).
  /// Refused with FAILED_PRECONDITION on a quarantined node.
  Status Promote(const std::string& arg);
  void SetPromoteHandler(std::function<Status(const std::string&)> handler);

  /// Registers a hook that Stats() invokes on every snapshot (after the
  /// service counters are filled) — how an attached Scheduler injects its
  /// SchedulerStats without the service depending on the scheduler. Pass
  /// nullptr to detach. The hook must not call back into this service.
  void SetStatsAugmenter(std::function<void(ServiceStats*)> augmenter);

 private:
  /// Append-only chain of committed batches, newest first: walking `prev`
  /// from the head snapshot's node yields the deltas needed to resume a
  /// materialization from any older epoch. Nodes are immutable.
  struct EpochDelta {
    int64_t id = 0;
    /// True for a retraction epoch (Retract / expiry sweep): `facts` were
    /// removed from the EDB, not added, and catch-up applies them via
    /// RetractEvaluate instead of ResumeEvaluate.
    bool retract = false;
    std::vector<Fact> facts;
    std::shared_ptr<const EpochDelta> prev;
  };

  /// One catch-up step for a stale materialization: consecutive same-kind
  /// epochs merged into a single Resume/RetractEvaluate call.
  struct DeltaBatch {
    bool retract = false;
    std::vector<Fact> facts;
  };

  /// An immutable published EDB snapshot.
  struct EpochSnapshot {
    int64_t id = 0;
    Database edb;
    std::shared_ptr<const EpochDelta> deltas;
  };

  QueryService(Program program, Database edb, ServiceOptions options);

  std::shared_ptr<const EpochSnapshot> Head() const;

  /// Parses + fingerprints + prepares (cache-first). Sets `prepared_hit`.
  Result<std::shared_ptr<PreparedEntry>> PrepareEntry(
      const std::string& query_text, const std::string& steps_spec,
      bool* prepared_hit);

  /// Deltas of epochs (from, to], oldest first, consecutive same-kind
  /// epochs merged; false if the chain no longer reaches `from` (e.g. the
  /// materialization predates the snapshot a recovery rebased the chain on)
  /// — resume then falls back to a cold evaluation.
  bool CollectDeltas(const EpochSnapshot& head, int64_t from,
                     std::vector<DeltaBatch>* out) const;

  /// Counts a governed abort (deadline / budget / cancellation) in the
  /// stats and passes the error through — Execute's failure funnel.
  Status NoteEvalError(const Status& status);

  /// The shared commit path of Ingest/IngestFacts/IngestTtl/replay: dedups
  /// `batch` against the head EDB, WAL-appends the batch record (unless
  /// replaying or the batch was a no-op), and publishes the next epoch.
  /// `statements` is the loader-syntax text logged (and replayed) for the
  /// batch. When `ttl_ms` > 0 every accepted fact gets a deadline at
  /// now + ttl_ms and the record is logged as kInsertTtl. Hosts the
  /// crash-before/after-commit failpoints.
  Result<IngestOutcome> CommitBatch(const std::vector<Fact>& batch,
                                    const std::string& statements,
                                    int64_t ttl_ms);

  /// The shared retraction commit path of Retract/RetractFacts and the
  /// expiry sweep: matches `batch` against the head EDB, WAL-appends the
  /// retract record, and publishes a spliced EDB as the next epoch.
  Result<RetractOutcome> CommitRetract(const std::vector<Fact>& batch,
                                       const std::string& statements);

  /// Moves the clock to `target_now_ms` (monotone; no-op when not ahead)
  /// and commits the elapsed deadlines as one expiry epoch — the body of
  /// AdvanceClock, also used by replay (which re-derives the sweep from the
  /// reconstructed deadline table instead of trusting the logged text).
  Result<TickOutcome> AdvanceClockTo(int64_t target_now_ms);

  /// Applies one decoded WAL record through the normal commit paths —
  /// Recover's replay switch, shared with ApplyReplicated.
  Status ReplayRecord(const WalRecord& record);

  /// RenderStateText's body; head_mutex_ must be held (takes symbols_mutex_
  /// inside — lock order head > symbols). FetchReplication digests state
  /// with this so the CRC and the feed cut are atomic.
  std::string RenderStateTextLocked() const;

  /// Appends one committed record's payload bytes to the in-memory
  /// replication feed. head_mutex_ must be held; called from every commit
  /// path (replay included — re-encoding a decoded record reproduces its
  /// bytes exactly, so recovery rebuilds the same feed).
  void FeedAppendLocked(std::string payload);

  Program program_;
  const ServiceOptions options_;

  /// Guards the shared SymbolTable: parsing (queries, ingest batches) and
  /// pipeline preparation intern names; answer rendering reads them.
  mutable std::mutex symbols_mutex_;

  mutable std::mutex head_mutex_;  // guards head_ swap + writer commits
  std::shared_ptr<const EpochSnapshot> head_;

  /// Logical clock in milliseconds; advanced only by AdvanceClock (TICK)
  /// and recovery — never by the wall clock, so expiry is deterministic.
  /// Guarded by head_mutex_ (it moves in lockstep with expiry commits).
  int64_t now_ms_ = 0;
  /// Pending TTL deadlines: absolute expiry time -> the fact to retract.
  /// Ordered (and, within one deadline, insertion-ordered) so sweeps and
  /// snapshots are deterministic. An entry whose fact was meanwhile
  /// retracted by hand is stale and skipped harmlessly at sweep time.
  /// Guarded by head_mutex_.
  std::multimap<int64_t, Fact> deadlines_;

  /// In-memory replication feed: the exact WAL payload bytes of every
  /// record committed since the feed's base snapshot, commit order.
  /// `feed_base_epoch_` is the epoch of the generation-starting snapshot (0
  /// for a virgin log) — the stable "log identity" REPLICATE coordinates
  /// are relative to, reconstructible across restarts because Recover
  /// derives it from the compaction snapshot. Compact() clears the feed and
  /// starts a new generation. Guarded by head_mutex_; only maintained when
  /// a WAL is configured (replication is WAL shipping).
  std::vector<std::string> feed_;
  int64_t feed_base_epoch_ = 0;

  /// Replication role + divergence quarantine, guarded by head_mutex_ (they
  /// gate commits and reads the same way the head does).
  NodeRole role_ = NodeRole::kPrimary;
  bool quarantined_ = false;
  std::string quarantine_reason_;

  /// Durability (null when ServiceOptions::wal_dir is empty). Appends
  /// happen under head_mutex_ — the WAL and the epoch chain advance in
  /// lockstep. Lock order when both are needed: head_mutex_ >
  /// symbols_mutex_ (Compact renders the EDB under both).
  std::unique_ptr<Wal> wal_;
  /// True while Recover() re-commits logged batches (suppresses re-logging
  /// them), and set once it finishes (makes later calls no-ops).
  bool replaying_ = false;
  bool recovered_ = false;

  PreparedCache prepared_;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  std::function<void(ServiceStats*)> stats_augmenter_;  // guarded by stats_mutex_
  /// Replication hooks, same pattern as the stats augmenter: the health
  /// augmenter injects the Replicator's lag into Health() snapshots; the
  /// promote handler runs the Replicator's failover path inside Promote().
  /// Both guarded by stats_mutex_ (cold paths; no reason for another lock).
  std::function<void(HealthInfo*)> health_augmenter_;
  std::function<Status(const std::string&)> promote_handler_;
};

}  // namespace cqlopt

#endif  // CQLOPT_SERVICE_QUERY_SERVICE_H_
