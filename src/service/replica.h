#ifndef CQLOPT_SERVICE_REPLICA_H_
#define CQLOPT_SERVICE_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "service/client.h"
#include "service/query_service.h"
#include "util/status.h"

namespace cqlopt {

/// Where a follower pulls its replication cuts from (DESIGN.md §15). The
/// two implementations see identical semantics — a batch of exact WAL
/// payload bytes plus the primary's state CRC at the cut — so the chaos
/// harness can drive the whole catch-up/divergence/failover state machine
/// in-process while cqld ships the same batches over TCP.
class ReplicationSource {
 public:
  virtual ~ReplicationSource() = default;

  /// Fills `out` with the cut at (base_epoch, index); see
  /// QueryService::FetchReplication for the coordinate contract. A torn or
  /// undeliverable batch is UNAVAILABLE — the puller backs off and refetches;
  /// nothing is ever partially surfaced.
  virtual Status Fetch(int64_t base_epoch, uint64_t index, size_t max_records,
                       ReplicationBatch* out) = 0;
};

/// In-process source: pulls straight from a primary QueryService. This is
/// the deterministic path the replica_vs_primary property drives — the
/// "replica/torn-record" failpoint models a record mangled in flight, which
/// the wire layer would catch by CRC; here it surfaces as the same
/// UNAVAILABLE reject-and-refetch.
class LocalReplicationSource : public ReplicationSource {
 public:
  explicit LocalReplicationSource(QueryService* primary) : primary_(primary) {}
  Status Fetch(int64_t base_epoch, uint64_t index, size_t max_records,
               ReplicationBatch* out) override;

 private:
  QueryService* primary_;
};

/// Remote source: drives `REPLICATE` over a LineClient and re-verifies every
/// record's wire CRC before handing the batch up — a mismatch (torn record,
/// injected via "replica/torn-record" as a byte flip) rejects the whole
/// batch as UNAVAILABLE so the puller refetches. Connection loss and
/// timeouts surface the same way; the Replicator's backoff owns retry.
class RemoteReplicationSource : public ReplicationSource {
 public:
  /// `client` may be null; the source (re)connects lazily via `reconnect`.
  RemoteReplicationSource(
      std::unique_ptr<LineClient> client,
      std::function<Result<std::unique_ptr<LineClient>>()> reconnect,
      int io_timeout_ms);

  Status Fetch(int64_t base_epoch, uint64_t index, size_t max_records,
               ReplicationBatch* out) override;

 private:
  std::unique_ptr<LineClient> client_;
  std::function<Result<std::unique_ptr<LineClient>>()> reconnect_;
  int io_timeout_ms_;
};

/// How a Replicator paces itself. All timings collapse to 0 in tests that
/// drive Step() directly.
struct ReplicatorOptions {
  size_t max_records = 64;        // per-fetch batch bound
  int idle_poll_ms = 50;          // sleep when fully caught up
  int backoff_initial_ms = 50;    // first retry after a failed fetch/apply
  int backoff_max_ms = 2000;      // exponential backoff ceiling
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;  // deterministic jitter PRNG
};

/// A Replicator's observable progress, snapshotted under its lock.
struct ReplicatorProgress {
  int64_t base_epoch = -1;   // generation currently being consumed
  uint64_t next_index = 0;   // next feed record to pull
  int64_t primary_epoch = -1;  // primary head at the last good fetch
  long lag_records = -1;     // primary feed_size - next_index (-1: no fetch yet)
  long fetches = 0;
  long fetch_failures = 0;
  long records_applied = 0;
  long snapshots_installed = 0;
  long divergence_checks = 0;  // CRC comparisons actually performed
  bool quarantined = false;
  std::string quarantine_reason;
};

/// Pulls a primary's replication feed into a follower QueryService:
/// bootstrap via snapshot, tail via exact WAL records, per-cut state-CRC
/// divergence checks, and operator failover (DESIGN.md §15).
///
/// Single consumer: Step() — one fetch + apply round — is driven either
/// directly (deterministic tests) or by the background thread Start()
/// spawns, which retries failures under jittered exponential backoff.
/// Divergence quarantines the follower permanently (no further pulls, reads
/// refused with DATA_LOSS); crashes injected at the apply failpoints leave
/// ordinary retryable errors, because every applied record is already in
/// the follower's own WAL.
class Replicator {
 public:
  Replicator(QueryService* follower, std::unique_ptr<ReplicationSource> source,
             ReplicatorOptions options = ReplicatorOptions());
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Marks `follower` a follower and registers this replicator as its
  /// HEALTH augmenter and PROMOTE handler. Call once before serving.
  void AttachHooks();

  /// One fetch + apply round. Returns the number of records applied (0 =
  /// caught up; a snapshot install counts as 0 records but does work).
  /// Fetch failures and injected crashes return their error; divergence
  /// returns DATA_LOSS after quarantining the follower.
  Result<int> Step();

  /// Spawns the pull loop. Idempotent.
  void Start();

  /// Stops the pull loop and joins it. Idempotent; called by ~Replicator.
  void Stop();

  /// Fails the follower over to primary: stops pulling, then — when
  /// `dead_primary_wal_dir` is non-empty — drains the dead primary's
  /// surviving WAL through ApplyReplicated so every acknowledged write
  /// survives. The feed coordinates pick out the exact unconsumed suffix
  /// (the log's records are its final feed generation), and a generation
  /// mismatch rebases onto the dead primary's snapshot first, so the
  /// promoted state is byte-identical to the dead primary's final durable
  /// state — epoch, clock, and TTL deadlines included. The caller
  /// (QueryService::Promote) flips the role on success.
  Status Promote(const std::string& dead_primary_wal_dir);

  ReplicatorProgress Progress() const;

 private:
  void RunLoop();

  QueryService* follower_;
  std::unique_ptr<ReplicationSource> source_;
  ReplicatorOptions options_;

  mutable std::mutex mutex_;          // guards progress_
  ReplicatorProgress progress_;

  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::mutex thread_mutex_;           // guards Start/Stop races on thread_
};

}  // namespace cqlopt

#endif  // CQLOPT_SERVICE_REPLICA_H_
