#include "service/scheduler.h"

#include <algorithm>

#include "util/failpoint.h"

namespace cqlopt {

namespace {

/// Stride scale: a dequeue advances a class's virtual time by
/// kStrideScale / weight, so relative progress is weight-proportional and
/// integer arithmetic keeps the schedule deterministic.
constexpr long kStrideScale = 1 << 20;

SchedulerOptions Sanitize(SchedulerOptions options) {
  options.workers = std::max(1, options.workers);
  options.queue_depth = std::max(1, options.queue_depth);
  for (long& w : options.weights) w = std::max<long>(1, w);
  return options;
}

double ToMs(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

const char* PriorityClassName(PriorityClass priority) {
  switch (priority) {
    case PriorityClass::kInteractive:
      return "interactive";
    case PriorityClass::kNormal:
      return "normal";
    case PriorityClass::kBatch:
      return "batch";
  }
  return "normal";
}

bool ParsePriorityClass(const std::string& name, PriorityClass* out) {
  if (name == "interactive") {
    *out = PriorityClass::kInteractive;
  } else if (name == "normal") {
    *out = PriorityClass::kNormal;
  } else if (name == "batch") {
    *out = PriorityClass::kBatch;
  } else {
    return false;
  }
  return true;
}

Scheduler::Scheduler(SchedulerOptions options) : options_(Sanitize(options)) {
  for (int c = 0; c < kPriorityClasses; ++c) {
    strides_[c] = kStrideScale / options_.weights[c];
  }
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Scheduler::~Scheduler() {
  Attach(nullptr);
  Stop();
}

bool Scheduler::TrySubmit(Task task) {
  const int c = static_cast<int>(task.priority);
  std::function<void()> victim_shed;
  std::function<void()> refused_shed;
  bool admitted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++per_class_[c].submitted;
    size_t waiting = 0;
    for (const auto& queue : queues_) waiting += queue.size();
    if (stopping_) {
      ++shed_;
      ++per_class_[c].shed;
      refused_shed = std::move(task.shed);
    } else if (waiting < static_cast<size_t>(options_.queue_depth)) {
      admitted = true;
    } else {
      // Queue full: preempt the *newest* queued task of the lowest class
      // strictly below the submission — newest first so a class's FIFO
      // order is preserved for whatever survives.
      for (int victim = kPriorityClasses - 1; victim > c; --victim) {
        if (queues_[victim].empty()) continue;
        ++preempted_;
        ++per_class_[victim].shed;
        victim_shed = std::move(queues_[victim].back().task.shed);
        queues_[victim].pop_back();
        admitted = true;
        break;
      }
      if (!admitted) {
        ++shed_;
        ++per_class_[c].shed;
        refused_shed = std::move(task.shed);
      }
    }
    if (admitted) {
      queues_[c].push_back({std::move(task), std::chrono::steady_clock::now()});
      // A class waking from empty joins at the global pass: idle time banks
      // no credit, so a burst after a quiet period cannot starve the rest.
      if (queues_[c].size() == 1) vt_[c] = std::max(vt_[c], pass_);
      ++admitted_;
      cv_.notify_one();
    }
  }
  // Shed callbacks run outside the lock (they typically post a response).
  if (victim_shed) victim_shed();
  if (refused_shed) refused_shed();
  return admitted;
}

void Scheduler::Charge(PriorityClass priority, long facts) {
  if (facts <= 0) return;
  const int c = static_cast<int>(priority);
  const long units = (facts + kFactsPerCostUnit - 1) / kFactsPerCostUnit;
  std::lock_guard<std::mutex> lock(mu_);
  per_class_[c].cost += units;
  vt_[c] += units * strides_[c];
}

void Scheduler::Attach(QueryService* service) {
  if (attached_service_ != nullptr && attached_service_ != service) {
    attached_service_->SetStatsAugmenter(nullptr);
  }
  attached_service_ = service;
  if (service != nullptr) {
    service->SetStatsAugmenter(
        [this](ServiceStats* stats) { stats->scheduler = Snapshot(); });
  }
}

SchedulerStats Scheduler::Snapshot() const {
  SchedulerStats stats;
  stats.attached = true;
  stats.workers = options_.workers;
  stats.queue_limit = options_.queue_depth;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& queue : queues_) {
    stats.queued += static_cast<long>(queue.size());
  }
  stats.in_flight = in_flight_;
  stats.admitted = admitted_;
  stats.shed = shed_;
  stats.preempted = preempted_;
  stats.completed = completed_;
  for (int c = 0; c < kPriorityClasses; ++c) {
    stats.priority[c] = per_class_[c];
  }
  return stats;
}

void Scheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

int Scheduler::PickClass() const {
  int best = -1;
  for (int c = 0; c < kPriorityClasses; ++c) {
    if (queues_[c].empty()) continue;
    if (best < 0 || vt_[c] < vt_[best]) best = c;  // tie: higher priority
  }
  return best;
}

void Scheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stopping_ || PickClass() >= 0; });
    // Freeze point: while "scheduler/worker-hold" is armed, spin *before*
    // dequeuing so tests can fill the admission queue and observe
    // deterministic shed/preemption decisions.
    {
      lock.unlock();
      bool held = false;
      while (failpoint::ShouldFail(failpoint::kSchedulerWorkerHold)) {
        held = true;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      lock.lock();
      if (held) continue;  // re-evaluate the queues after thawing
    }
    const int c = PickClass();
    if (c < 0) {
      // Spurious wake or another worker drained the queues. Stop only once
      // empty: already-admitted tasks always run (drain semantics).
      if (stopping_) return;
      continue;
    }
    Queued item = std::move(queues_[c].front());
    queues_[c].pop_front();
    pass_ = vt_[c];  // virtual start of the task now running
    vt_[c] += strides_[c];
    ++per_class_[c].cost;
    ++in_flight_;
    const auto dequeued = std::chrono::steady_clock::now();
    per_class_[c].wait_ms += ToMs(dequeued - item.enqueued);
    lock.unlock();
    if (item.task.run) item.task.run();
    const auto finished = std::chrono::steady_clock::now();
    lock.lock();
    per_class_[c].run_ms += ToMs(finished - dequeued);
    --in_flight_;
    ++completed_;
    ++per_class_[c].completed;
  }
}

}  // namespace cqlopt
