#include "service/replica.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "service/wal.h"
#include "util/failpoint.h"

namespace cqlopt {

namespace {

/// Extracts the value of `key=` from a space-separated header line; false
/// when the key is absent.
bool HeaderField(const std::string& line, const std::string& key,
                 std::string* out) {
  std::string needle = key + "=";
  size_t pos;
  if (line.rfind(needle, 0) == 0) {
    pos = 0;
  } else {
    pos = line.find(" " + needle);
    if (pos == std::string::npos) return false;
    ++pos;
  }
  size_t start = pos + needle.size();
  size_t end = line.find(' ', start);
  *out = line.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
  return true;
}

bool HeaderInt(const std::string& line, const std::string& key, int64_t* out) {
  std::string word;
  if (!HeaderField(line, key, &word) || word.empty()) return false;
  char* end = nullptr;
  long long value = std::strtoll(word.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = value;
  return true;
}

bool HeaderCrc(const std::string& line, const std::string& key,
               uint32_t* out) {
  std::string word;
  if (!HeaderField(line, key, &word) || word.empty()) return false;
  char* end = nullptr;
  unsigned long value = std::strtoul(word.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<uint32_t>(value);
  return true;
}

/// Maps a server `ERR <CODE> <msg>` line back to a typed Status. Codes we
/// don't specifically recognize become UNAVAILABLE — from the puller's
/// seat, an unserveable fetch is an unserveable fetch.
Status MapServerError(const std::string& line) {
  std::string body = line.rfind("ERR ", 0) == 0 ? line.substr(4) : line;
  if (body.rfind("DATA_LOSS", 0) == 0) return Status::DataLoss(body);
  if (body.rfind("FAILED_PRECONDITION", 0) == 0) {
    return Status::FailedPrecondition(body);
  }
  return Status::Unavailable("primary: " + body);
}

std::string CrcHex(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

}  // namespace

Status LocalReplicationSource::Fetch(int64_t base_epoch, uint64_t index,
                                     size_t max_records,
                                     ReplicationBatch* out) {
  CQLOPT_RETURN_IF_ERROR(
      primary_->FetchReplication(base_epoch, index, max_records, out));
  // In-process there is no wire CRC to fail, so the torn-record fault
  // surfaces directly as the reject the CRC check would have produced.
  if (!out->records.empty() &&
      failpoint::ShouldFail(failpoint::kReplicaTornRecord)) {
    return Status::Unavailable(
        "injected torn replication record: batch rejected, refetching");
  }
  return Status::OK();
}

RemoteReplicationSource::RemoteReplicationSource(
    std::unique_ptr<LineClient> client,
    std::function<Result<std::unique_ptr<LineClient>>()> reconnect,
    int io_timeout_ms)
    : client_(std::move(client)),
      reconnect_(std::move(reconnect)),
      io_timeout_ms_(io_timeout_ms) {}

Status RemoteReplicationSource::Fetch(int64_t base_epoch, uint64_t index,
                                      size_t max_records,
                                      ReplicationBatch* out) {
  if (client_ == nullptr) {
    if (!reconnect_) return Status::Unavailable("no connection to primary");
    Result<std::unique_ptr<LineClient>> conn = reconnect_();
    if (!conn.ok()) return conn.status();
    client_ = std::move(*conn);
  }
  std::string request = "REPLICATE " + std::to_string(base_epoch) + " " +
                        std::to_string(index) + " " +
                        std::to_string(max_records);
  LineClient::Response response;
  Status exchanged = client_->Exchange(request, io_timeout_ms_, &response);
  if (!exchanged.ok()) {
    // Connection state is unknown after a failed exchange — reconnect next
    // round rather than read someone else's leftovers.
    client_.reset();
    return exchanged;
  }
  if (response.lines.empty()) {
    client_.reset();
    return Status::Unavailable("empty REPLICATE response");
  }
  if (response.is_error) return MapServerError(response.lines[0]);

  const std::string& header = response.lines[0];
  int64_t base = 0;
  int64_t next = 0;
  int64_t feed = 0;
  int64_t epoch = 0;
  int64_t clock_ms = 0;
  uint32_t crc = 0;
  if (header.rfind("OK ", 0) != 0 || !HeaderInt(header, "base", &base) ||
      !HeaderInt(header, "next", &next) || next < 0 ||
      !HeaderInt(header, "feed", &feed) || feed < 0 ||
      !HeaderInt(header, "epoch", &epoch) ||
      !HeaderInt(header, "clock_ms", &clock_ms) ||
      !HeaderCrc(header, "crc", &crc)) {
    return Status::Unavailable("malformed REPLICATE header: " + header);
  }
  out->base_epoch = base;
  out->next_index = static_cast<uint64_t>(next);
  out->feed_size = static_cast<uint64_t>(feed);
  out->primary_epoch = epoch;
  out->primary_clock_ms = clock_ms;
  out->state_crc = crc;
  out->records.clear();
  out->snapshot = false;
  out->snap = WalSnapshot();

  int64_t snapshot_flag = 0;
  if (HeaderInt(header, "snapshot", &snapshot_flag) && snapshot_flag == 1) {
    out->snapshot = true;
    int64_t snap_epoch = 0;
    int64_t snap_clock = 0;
    if (!HeaderInt(header, "snap_epoch", &snap_epoch) ||
        !HeaderInt(header, "snap_clock_ms", &snap_clock)) {
      return Status::Unavailable("malformed snapshot header: " + header);
    }
    out->snap.epoch = snap_epoch;
    out->snap.now_ms = snap_clock;
    bool saw_statements = false;
    for (size_t i = 1; i < response.lines.size(); ++i) {
      const std::string& line = response.lines[i];
      if (line.rfind("D ", 0) == 0) {
        size_t space = line.find(' ', 2);
        if (space == std::string::npos) {
          return Status::Unavailable("malformed deadline line: " + line);
        }
        char* end = nullptr;
        long long ms = std::strtoll(line.c_str() + 2, &end, 10);
        std::string statement;
        if (end == nullptr || *end != ' ' ||
            !HexDecode(line.substr(space + 1), &statement)) {
          return Status::Unavailable("malformed deadline line: " + line);
        }
        out->snap.deadlines.emplace_back(ms, std::move(statement));
      } else if (line.rfind("S ", 0) == 0) {
        if (!HexDecode(line.substr(2), &out->snap.statements)) {
          return Status::Unavailable("malformed statements line");
        }
        saw_statements = true;
      } else {
        return Status::Unavailable("unexpected snapshot line: " + line);
      }
    }
    if (!saw_statements) {
      return Status::Unavailable("snapshot response missing statements line");
    }
    return Status::OK();
  }

  int64_t expected = 0;
  if (!HeaderInt(header, "records", &expected) || expected < 0) {
    return Status::Unavailable("malformed REPLICATE header: " + header);
  }
  for (size_t i = 1; i < response.lines.size(); ++i) {
    const std::string& line = response.lines[i];
    size_t space = line.find(' ', 2);
    if (line.rfind("R ", 0) != 0 || space == std::string::npos) {
      return Status::Unavailable("unexpected record line: " + line);
    }
    char* end = nullptr;
    unsigned long wire_crc = std::strtoul(line.c_str() + 2, &end, 16);
    std::string payload;
    if (end == nullptr || *end != ' ' ||
        !HexDecode(line.substr(space + 1), &payload)) {
      return Status::Unavailable("malformed record line: " + line);
    }
    // The torn-record fault strikes the wire: flip one payload byte before
    // the CRC check, which must catch it.
    if (failpoint::ShouldFail(failpoint::kReplicaTornRecord) &&
        !payload.empty()) {
      payload[payload.size() / 2] ^= 0x40;
    }
    uint32_t actual = WalCrc32(payload);
    if (actual != static_cast<uint32_t>(wire_crc)) {
      return Status::Unavailable(
          "torn replication record (wire CRC " + CrcHex(wire_crc) +
          " != payload CRC " + CrcHex(actual) + "): batch rejected");
    }
    out->records.push_back(std::move(payload));
  }
  if (out->records.size() != static_cast<size_t>(expected)) {
    return Status::Unavailable("record count mismatch: header said " +
                               std::to_string(expected) + ", got " +
                               std::to_string(out->records.size()));
  }
  return Status::OK();
}

Replicator::Replicator(QueryService* follower,
                       std::unique_ptr<ReplicationSource> source,
                       ReplicatorOptions options)
    : follower_(follower),
      source_(std::move(source)),
      options_(options) {
  // Bootstrap coordinates: base_epoch -1 never matches a feed identity, so
  // the first fetch renegotiates a snapshot (or, for a virgin primary at
  // base 0... base -1 still mismatches and snapshots — a no-op install).
  progress_.base_epoch = -1;
  progress_.next_index = 0;
}

Replicator::~Replicator() {
  Stop();
  // Detach our hooks; the service may outlive us.
  follower_->SetHealthAugmenter(nullptr);
  follower_->SetPromoteHandler(nullptr);
}

void Replicator::AttachHooks() {
  follower_->SetRole(NodeRole::kFollower);
  follower_->SetHealthAugmenter([this](HealthInfo* health) {
    ReplicatorProgress progress = Progress();
    health->lag_records = progress.lag_records;
    health->primary_epoch = progress.primary_epoch;
    health->records_applied = progress.records_applied;
    health->snapshots_installed = progress.snapshots_installed;
  });
  follower_->SetPromoteHandler(
      [this](const std::string& arg) { return Promote(arg); });
}

Result<int> Replicator::Step() {
  int64_t base_epoch;
  uint64_t next_index;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (progress_.quarantined) {
      return Status::DataLoss("follower quarantined: " +
                              progress_.quarantine_reason);
    }
    base_epoch = progress_.base_epoch;
    next_index = progress_.next_index;
  }

  ReplicationBatch batch;
  Status fetched =
      source_->Fetch(base_epoch, next_index, options_.max_records, &batch);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++progress_.fetches;
    if (!fetched.ok()) ++progress_.fetch_failures;
  }
  if (!fetched.ok()) return fetched;

  int applied = 0;
  if (batch.snapshot) {
    if (failpoint::ShouldFail(failpoint::kReplicaCrashBeforeApply)) {
      return Status::Internal(
          "injected follower crash before snapshot install");
    }
    // Never move backwards: a renegotiation snapshot at or behind our own
    // epoch (possible when the primary compacted but we already hold newer
    // state, e.g. right after a bootstrap race) still resets coordinates
    // but must not roll our state back... it cannot be behind if we only
    // ever applied the primary's own commits, so treat it as install.
    CQLOPT_RETURN_IF_ERROR(follower_->InstallSnapshot(batch.snap));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      progress_.base_epoch = batch.base_epoch;
      progress_.next_index = batch.next_index;
      ++progress_.snapshots_installed;
    }
    if (failpoint::ShouldFail(failpoint::kReplicaCrashAfterApply)) {
      return Status::Internal(
          "injected follower crash after snapshot install");
    }
  } else {
    if (!batch.records.empty() &&
        failpoint::ShouldFail(failpoint::kReplicaCrashBeforeApply)) {
      return Status::Internal("injected follower crash before apply");
    }
    for (const std::string& record : batch.records) {
      if (applied > 0 &&
          failpoint::ShouldFail(failpoint::kReplicaCrashMidApply)) {
        return Status::Internal(
            "injected follower crash mid-batch (" + std::to_string(applied) +
            " of " + std::to_string(batch.records.size()) +
            " records committed)");
      }
      CQLOPT_RETURN_IF_ERROR(follower_->ApplyReplicated(record));
      ++applied;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        progress_.next_index = next_index + static_cast<uint64_t>(applied);
        ++progress_.records_applied;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      progress_.base_epoch = batch.base_epoch;
    }
    if (applied > 0 &&
        failpoint::ShouldFail(failpoint::kReplicaCrashAfterApply)) {
      return Status::Internal("injected follower crash after apply");
    }
  }

  uint64_t consumed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    progress_.primary_epoch = batch.primary_epoch;
    consumed = progress_.next_index;
    progress_.lag_records =
        batch.feed_size >= consumed
            ? static_cast<long>(batch.feed_size - consumed)
            : 0;
  }

  // Divergence check: comparable only when we are exactly level with the
  // cut — the CRC was taken at feed_size, and ticks move state without
  // burning an epoch, so epoch equality alone would compare different cuts.
  if (consumed == batch.feed_size &&
      (batch.snapshot ||
       batch.base_epoch == base_epoch)) {
    int64_t follower_epoch = follower_->epoch();
    uint32_t follower_crc = WalCrc32(follower_->RenderStateText());
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++progress_.divergence_checks;
    }
    if (follower_epoch != batch.primary_epoch ||
        follower_crc != batch.state_crc) {
      std::string reason =
          "replica diverged from primary at feed (" +
          std::to_string(batch.base_epoch) + ", " +
          std::to_string(batch.feed_size) + "): follower epoch " +
          std::to_string(follower_epoch) + " crc " + CrcHex(follower_crc) +
          " vs primary epoch " + std::to_string(batch.primary_epoch) +
          " crc " + CrcHex(batch.state_crc);
      follower_->Quarantine(reason);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        progress_.quarantined = true;
        progress_.quarantine_reason = reason;
      }
      return Status::DataLoss(reason);
    }
  }
  return applied;
}

void Replicator::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { RunLoop(); });
}

void Replicator::Stop() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

void Replicator::RunLoop() {
  uint64_t rng = options_.jitter_seed | 1;
  int backoff_ms = options_.backoff_initial_ms;
  auto sleep_ms = [this](int total) {
    // Sleep in small slices so Stop() is prompt.
    while (total > 0 && !stop_.load(std::memory_order_relaxed)) {
      int slice = total < 10 ? total : 10;
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      total -= slice;
    }
  };
  while (!stop_.load(std::memory_order_relaxed)) {
    Result<int> stepped = Step();
    if (!stepped.ok()) {
      if (stepped.status().code() == StatusCode::kDataLoss) return;
      // Jittered exponential backoff (deterministic xorshift64* — chaos
      // schedules replay identically under a fixed seed).
      rng ^= rng >> 12;
      rng ^= rng << 25;
      rng ^= rng >> 27;
      int jitter_span = backoff_ms / 2 + 1;
      int delay =
          backoff_ms / 2 + static_cast<int>((rng * 0x2545f4914f6cdd1dull) %
                                            static_cast<uint64_t>(jitter_span));
      sleep_ms(delay);
      backoff_ms = backoff_ms * 2;
      if (backoff_ms > options_.backoff_max_ms) {
        backoff_ms = options_.backoff_max_ms;
      }
      continue;
    }
    backoff_ms = options_.backoff_initial_ms;
    if (*stepped == 0) sleep_ms(options_.idle_poll_ms);
  }
}

Status Replicator::Promote(const std::string& dead_primary_wal_dir) {
  // Stop pulling first — after promotion this node IS the primary and the
  // old feed is dead history. Called either directly or as the service's
  // promote handler (QueryService::Promote flips the role afterwards).
  //
  // Stop() must not run from the pull thread itself (self-join); the
  // handler is only invoked from protocol/scheduler threads.
  Stop();
  if (dead_primary_wal_dir.empty()) return Status::OK();

  // Final catch-up: drain whatever the dead primary's WAL durably holds.
  // The log's records ARE its final feed generation (Compact resets the log
  // when it writes the snapshot), so the follower's feed coordinates say
  // exactly which prefix it already applied. Re-applying that prefix would
  // corrupt TTL state — an insert-ttl record whose facts have since expired
  // would resurrect them with deadlines recomputed from the *current*
  // clock, past every sweep already logged — so only the unseen suffix is
  // replayed. When the generations don't line up (the primary compacted
  // past this follower's last fetch, or a restarted follower lost its
  // coordinates), rebase onto the dead primary's snapshot and replay the
  // whole generation on top: exactly the recovery algorithm, so the result
  // is byte-identical to the dead primary's final durable state either way.
  CQLOPT_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal,
                          Wal::Open(dead_primary_wal_dir));
  bool found = false;
  WalSnapshot snapshot;
  CQLOPT_RETURN_IF_ERROR(wal->ReadSnapshot(&found, &snapshot));
  CQLOPT_ASSIGN_OR_RETURN(WalReadOutcome read, wal->ReadAll());
  int64_t base;
  uint64_t next;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    base = progress_.base_epoch;
    next = progress_.next_index;
  }
  const int64_t generation = found ? snapshot.epoch : 0;
  size_t skip = 0;
  if (base == generation) {
    skip = next < read.payloads.size() ? static_cast<size_t>(next)
                                       : read.payloads.size();
  } else if (found) {
    CQLOPT_RETURN_IF_ERROR(follower_->InstallSnapshot(snapshot));
    std::lock_guard<std::mutex> lock(mutex_);
    ++progress_.snapshots_installed;
  }
  // else: a virgin follower of a never-compacted primary — the generation
  // starts at the shared base EDB, which is what a follower that has never
  // fetched is still holding; replay everything.
  for (size_t i = skip; i < read.payloads.size(); ++i) {
    CQLOPT_RETURN_IF_ERROR(follower_->ApplyReplicated(read.payloads[i]));
    std::lock_guard<std::mutex> lock(mutex_);
    ++progress_.records_applied;
  }
  return Status::OK();
}

ReplicatorProgress Replicator::Progress() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return progress_;
}

}  // namespace cqlopt
