#include "service/protocol.h"

#include <cstdio>

namespace cqlopt {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

/// Splits "<word> <rest>"; rest is empty if the line is a bare word.
void SplitWord(const std::string& line, std::string* word, std::string* rest) {
  size_t space = line.find(' ');
  if (space == std::string::npos) {
    *word = line;
    rest->clear();
    return;
  }
  *word = line.substr(0, space);
  *rest = Trim(line.substr(space + 1));
}

void EmitError(const Status& status, std::vector<std::string>* out) {
  // Protocol responses are line-framed; a multi-line message would be
  // indistinguishable from payload, so newlines are flattened.
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  out->push_back(std::string("ERR ") + StatusCodeName(status.code()) + " " +
                 message);
}

std::string Hex(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// Parses a whole base-10 signed integer; false on junk, sign-only, or
/// trailing characters (protocol arguments are exact, not prefixes).
bool ParseInt64(const std::string& word, int64_t* value) {
  if (word.empty()) return false;
  size_t i = word[0] == '-' ? 1 : 0;
  if (i == word.size()) return false;
  int64_t parsed = 0;
  for (; i < word.size(); ++i) {
    if (word[i] < '0' || word[i] > '9') return false;
    parsed = parsed * 10 + (word[i] - '0');
  }
  *value = word[0] == '-' ? -parsed : parsed;
  return true;
}

}  // namespace

namespace {

std::string FormatMs(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms);
  return buf;
}

void EmitSchedulerStats(const SchedulerStats& sched,
                        std::vector<std::string>* out) {
  out->push_back("sched_workers=" + std::to_string(sched.workers));
  out->push_back("sched_queue_limit=" + std::to_string(sched.queue_limit));
  out->push_back("sched_queued=" + std::to_string(sched.queued));
  out->push_back("sched_in_flight=" + std::to_string(sched.in_flight));
  out->push_back("sched_admitted=" + std::to_string(sched.admitted));
  out->push_back("sched_shed=" + std::to_string(sched.shed));
  out->push_back("sched_preempted=" + std::to_string(sched.preempted));
  out->push_back("sched_completed=" + std::to_string(sched.completed));
  for (int c = 0; c < SchedulerStats::kClasses; ++c) {
    const std::string prefix =
        std::string("sched_") +
        PriorityClassName(static_cast<PriorityClass>(c)) + "_";
    const SchedulerStats::PerClass& pc = sched.priority[c];
    out->push_back(prefix + "submitted=" + std::to_string(pc.submitted));
    out->push_back(prefix + "shed=" + std::to_string(pc.shed));
    out->push_back(prefix + "completed=" + std::to_string(pc.completed));
    out->push_back(prefix + "cost=" + std::to_string(pc.cost));
    out->push_back(prefix + "wait_ms=" + FormatMs(pc.wait_ms));
    out->push_back(prefix + "run_ms=" + FormatMs(pc.run_ms));
  }
}

std::string Hex8(uint32_t value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", value);
  return buf;
}

/// Client-originated mutations are refused on a follower at the protocol
/// boundary; the Replicator applies the shipped stream through direct
/// service calls, so replication itself is never gated. True when the line
/// was refused (response already emitted).
bool RejectFollowerWrite(QueryService& service, const std::string& verb,
                         std::vector<std::string>* out) {
  if (service.role() != NodeRole::kFollower) return false;
  EmitError(
      Status::FailedPrecondition(
          verb +
          " refused: this node is a read-only follower — send writes to "
          "the primary, or PROMOTE this node"),
      out);
  out->push_back("END");
  return true;
}

}  // namespace

ProtocolAction HandleLine(QueryService& service, const std::string& line,
                          std::vector<std::string>* out,
                          LineOutcome* outcome) {
  LineOutcome scratch;
  if (outcome == nullptr) outcome = &scratch;
  std::string command;
  std::string rest;
  SplitWord(Trim(line), &command, &rest);
  if (command.empty()) {
    // Blank lines are keep-alives: acknowledge without doing work.
    out->push_back("OK");
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "PREPARE" || command == "QUERY") {
    std::string steps;
    std::string query;
    SplitWord(rest, &steps, &query);
    if (steps == "-") steps.clear();
    if (query.empty()) {
      EmitError(Status::InvalidArgument(command +
                                        " needs a steps spec ('-' for "
                                        "identity) and a query"),
                out);
      out->push_back("END");
      return ProtocolAction::kContinue;
    }
    // `QUERY <steps> <query> ASOF <epoch>` — epoch-consistent follower
    // read: the suffix is only stripped when its argument is a clean
    // non-negative integer, so query text containing the word ASOF is
    // never misparsed.
    int64_t min_epoch = -1;
    if (command == "QUERY") {
      size_t pos = query.rfind(" ASOF ");
      if (pos != std::string::npos) {
        int64_t parsed = -1;
        if (ParseInt64(Trim(query.substr(pos + 6)), &parsed) && parsed >= 0) {
          min_epoch = parsed;
          query = Trim(query.substr(0, pos));
        }
      }
    }
    if (command == "PREPARE") {
      bool cached = false;
      Result<uint64_t> fingerprint = service.Prepare(query, steps, &cached);
      if (!fingerprint.ok()) {
        EmitError(fingerprint.status(), out);
      } else {
        out->push_back("OK fingerprint=" + Hex(*fingerprint) +
                       " cached=" + (cached ? "1" : "0"));
      }
    } else {
      Result<QueryOutcome> result = service.Execute(query, steps, min_epoch);
      if (!result.ok()) {
        EmitError(result.status(), out);
      } else {
        outcome->derived_facts = result->facts_stored;
        out->push_back(std::string("OK path=") + ServePathName(result->path) +
                       " epoch=" + std::to_string(result->epoch) +
                       " answers=" + std::to_string(result->answers.size()) +
                       " fixpoint=" + (result->reached_fixpoint ? "1" : "0"));
        for (const std::string& answer : result->answers) {
          out->push_back(answer);
        }
      }
    }
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "INGEST") {
    if (RejectFollowerWrite(service, command, out)) {
      return ProtocolAction::kContinue;
    }
    // `INGEST TTL <ms> <facts>` commits facts that expire once the logical
    // clock (TICK) passes now + ms; bare `INGEST <facts>` is permanent.
    int64_t ttl_ms = 0;
    if (rest.compare(0, 4, "TTL ") == 0) {
      std::string ttl_word;
      std::string facts;
      SplitWord(Trim(rest.substr(4)), &ttl_word, &facts);
      if (!ParseInt64(ttl_word, &ttl_ms) || ttl_ms <= 0 || facts.empty()) {
        EmitError(Status::InvalidArgument(
                      "INGEST TTL needs a positive millisecond count and "
                      "`.`-terminated facts"),
                  out);
        out->push_back("END");
        return ProtocolAction::kContinue;
      }
      rest = facts;
    }
    if (rest.empty()) {
      EmitError(Status::InvalidArgument("INGEST needs `.`-terminated facts"),
                out);
      out->push_back("END");
      return ProtocolAction::kContinue;
    }
    Result<IngestOutcome> result =
        ttl_ms > 0 ? service.IngestTtl(rest, ttl_ms) : service.Ingest(rest);
    if (!result.ok()) {
      EmitError(result.status(), out);
    } else {
      outcome->derived_facts = result->accepted;
      out->push_back("OK accepted=" + std::to_string(result->accepted) +
                     " duplicates=" + std::to_string(result->duplicates) +
                     " epoch=" + std::to_string(result->epoch));
    }
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "RETRACT") {
    if (RejectFollowerWrite(service, command, out)) {
      return ProtocolAction::kContinue;
    }
    if (rest.empty()) {
      EmitError(Status::InvalidArgument("RETRACT needs `.`-terminated facts"),
                out);
      out->push_back("END");
      return ProtocolAction::kContinue;
    }
    Result<RetractOutcome> result = service.Retract(rest);
    if (!result.ok()) {
      EmitError(result.status(), out);
    } else {
      // Retraction work is charged like derivation: the removed facts are
      // what downstream maintenance must repair.
      outcome->derived_facts = result->removed;
      out->push_back("OK removed=" + std::to_string(result->removed) +
                     " missing=" + std::to_string(result->missing) +
                     " epoch=" + std::to_string(result->epoch));
    }
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "TICK") {
    int64_t delta_ms = 0;
    if (!rest.empty() && (!ParseInt64(rest, &delta_ms) || delta_ms < 0)) {
      EmitError(Status::InvalidArgument(
                    "TICK needs a non-negative millisecond delta (bare TICK "
                    "reads the clock)"),
                out);
      out->push_back("END");
      return ProtocolAction::kContinue;
    }
    // A bare TICK (or TICK 0) reads the clock — allowed anywhere; only an
    // actual advance is a write.
    if (delta_ms > 0 && RejectFollowerWrite(service, command, out)) {
      return ProtocolAction::kContinue;
    }
    Result<TickOutcome> result = service.AdvanceClock(delta_ms);
    if (!result.ok()) {
      EmitError(result.status(), out);
    } else {
      outcome->derived_facts = result->expired;
      out->push_back("OK now_ms=" + std::to_string(result->now_ms) +
                     " expired=" + std::to_string(result->expired) +
                     " epoch=" + std::to_string(result->epoch));
    }
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "PRIORITY") {
    PriorityClass priority;
    if (!ParsePriorityClass(rest, &priority)) {
      EmitError(Status::InvalidArgument(
                    "PRIORITY needs one of interactive, normal, batch"),
                out);
      out->push_back("END");
      return ProtocolAction::kContinue;
    }
    outcome->priority_changed = true;
    outcome->priority = priority;
    out->push_back(std::string("OK priority=") + PriorityClassName(priority));
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "REPLICATE") {
    // REPLICATE <base_epoch> <index> [<max_records>] — one pull of the
    // primary's feed. Records ship hex-encoded with a per-record CRC so a
    // torn wire record is detected and refetched, never applied.
    std::string base_word;
    std::string tail;
    SplitWord(rest, &base_word, &tail);
    std::string index_word;
    std::string max_word;
    SplitWord(tail, &index_word, &max_word);
    int64_t base_epoch = 0;
    int64_t index = 0;
    int64_t max_records = 64;
    if (!ParseInt64(base_word, &base_epoch) ||
        !ParseInt64(index_word, &index) || index < 0 ||
        (!max_word.empty() &&
         (!ParseInt64(max_word, &max_records) || max_records <= 0))) {
      EmitError(Status::InvalidArgument(
                    "REPLICATE needs <base_epoch> <index> [<max_records>] "
                    "(bootstrap with base_epoch -1, index 0)"),
                out);
      out->push_back("END");
      return ProtocolAction::kContinue;
    }
    ReplicationBatch batch;
    Status fetched = service.FetchReplication(
        base_epoch, static_cast<uint64_t>(index),
        static_cast<size_t>(max_records), &batch);
    if (!fetched.ok()) {
      EmitError(fetched, out);
      out->push_back("END");
      return ProtocolAction::kContinue;
    }
    std::string header =
        "OK base=" + std::to_string(batch.base_epoch) +
        " next=" + std::to_string(batch.next_index) +
        " feed=" + std::to_string(batch.feed_size) +
        " epoch=" + std::to_string(batch.primary_epoch) +
        " clock_ms=" + std::to_string(batch.primary_clock_ms) +
        " crc=" + Hex8(batch.state_crc);
    if (batch.snapshot) {
      header += " snapshot=1 snap_epoch=" + std::to_string(batch.snap.epoch) +
                " snap_clock_ms=" + std::to_string(batch.snap.now_ms) +
                " deadlines=" + std::to_string(batch.snap.deadlines.size());
      out->push_back(std::move(header));
      for (const auto& [deadline_ms, statement] : batch.snap.deadlines) {
        out->push_back("D " + std::to_string(deadline_ms) + " " +
                       HexEncode(statement));
      }
      out->push_back("S " + HexEncode(batch.snap.statements));
    } else {
      header += " records=" + std::to_string(batch.records.size());
      out->push_back(std::move(header));
      for (const std::string& record : batch.records) {
        out->push_back("R " + Hex8(WalCrc32(record)) + " " +
                       HexEncode(record));
      }
    }
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "HEALTH") {
    HealthInfo health = service.Health();
    out->push_back(std::string("OK role=") + NodeRoleName(health.role) +
                   " epoch=" + std::to_string(health.epoch) +
                   " clock_ms=" + std::to_string(health.clock_ms) +
                   " quarantined=" + (health.quarantined ? "1" : "0") +
                   " lag=" + std::to_string(health.lag_records) +
                   " primary_epoch=" + std::to_string(health.primary_epoch) +
                   " applied=" + std::to_string(health.records_applied) +
                   " snapshots=" +
                   std::to_string(health.snapshots_installed));
    if (health.quarantined) {
      std::string reason = health.quarantine_reason;
      for (char& c : reason) {
        if (c == '\n' || c == '\r') c = ' ';
      }
      out->push_back("quarantine_reason=" + reason);
    }
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "PROMOTE") {
    // PROMOTE [<dead-primary-wal-dir>] — operator failover. With a WAL
    // directory argument the registered handler replays the dead primary's
    // surviving records first, so no acknowledged write is lost.
    Status promoted = service.Promote(rest);
    if (!promoted.ok()) {
      EmitError(promoted, out);
    } else {
      out->push_back("OK role=primary epoch=" +
                     std::to_string(service.epoch()));
    }
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "STATS") {
    ServiceStats stats = service.Stats();
    out->push_back("OK");
    out->push_back("queries=" + std::to_string(stats.queries));
    out->push_back("ingests=" + std::to_string(stats.ingests));
    out->push_back("prepared_hits=" + std::to_string(stats.prepared_hits));
    out->push_back("prepared_misses=" + std::to_string(stats.prepared_misses));
    out->push_back("cold_evals=" + std::to_string(stats.cold_evals));
    out->push_back("epoch_hits=" + std::to_string(stats.epoch_hits));
    out->push_back("resumes=" + std::to_string(stats.resumes));
    out->push_back("resumed_iterations=" +
                   std::to_string(stats.resumed_iterations));
    out->push_back("governed_aborts=" + std::to_string(stats.governed_aborts));
    out->push_back("retracts=" + std::to_string(stats.retracts));
    out->push_back("retracted_facts=" + std::to_string(stats.retracted_facts));
    out->push_back("retract_missing=" + std::to_string(stats.retract_missing));
    out->push_back("retract_resumes=" + std::to_string(stats.retract_resumes));
    out->push_back("ttl_ingests=" + std::to_string(stats.ttl_ingests));
    out->push_back("ttl_pending=" + std::to_string(stats.ttl_pending));
    out->push_back("ticks=" + std::to_string(stats.ticks));
    out->push_back("expired_facts=" + std::to_string(stats.expired_facts));
    out->push_back("clock_ms=" + std::to_string(stats.clock_ms));
    out->push_back("replication_fetches=" +
                   std::to_string(stats.replication_fetches));
    out->push_back("replication_records=" +
                   std::to_string(stats.replication_records));
    out->push_back("replication_snapshots=" +
                   std::to_string(stats.replication_snapshots));
    out->push_back("replicated_applies=" +
                   std::to_string(stats.replicated_applies));
    out->push_back("epoch=" + std::to_string(stats.epoch));
    out->push_back("prepared_entries=" +
                   std::to_string(stats.prepared_entries));
    if (stats.scheduler.attached) EmitSchedulerStats(stats.scheduler, out);
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "SHUTDOWN") {
    out->push_back("OK bye");
    out->push_back("END");
    return ProtocolAction::kShutdown;
  }

  EmitError(Status::InvalidArgument("unknown command '" + command +
                                    "' (expected PREPARE, QUERY, INGEST, "
                                    "RETRACT, TICK, PRIORITY, STATS, "
                                    "REPLICATE, HEALTH, PROMOTE, or "
                                    "SHUTDOWN)"),
            out);
  out->push_back("END");
  return ProtocolAction::kContinue;
}

}  // namespace cqlopt
