#include "service/protocol.h"

#include <cstdio>

namespace cqlopt {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

/// Splits "<word> <rest>"; rest is empty if the line is a bare word.
void SplitWord(const std::string& line, std::string* word, std::string* rest) {
  size_t space = line.find(' ');
  if (space == std::string::npos) {
    *word = line;
    rest->clear();
    return;
  }
  *word = line.substr(0, space);
  *rest = Trim(line.substr(space + 1));
}

void EmitError(const Status& status, std::vector<std::string>* out) {
  // Protocol responses are line-framed; a multi-line message would be
  // indistinguishable from payload, so newlines are flattened.
  std::string message = status.message();
  for (char& c : message) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  out->push_back(std::string("ERR ") + StatusCodeName(status.code()) + " " +
                 message);
}

std::string Hex(uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

ProtocolAction HandleLine(QueryService& service, const std::string& line,
                          std::vector<std::string>* out) {
  std::string command;
  std::string rest;
  SplitWord(Trim(line), &command, &rest);
  if (command.empty()) {
    // Blank lines are keep-alives: acknowledge without doing work.
    out->push_back("OK");
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "PREPARE" || command == "QUERY") {
    std::string steps;
    std::string query;
    SplitWord(rest, &steps, &query);
    if (steps == "-") steps.clear();
    if (query.empty()) {
      EmitError(Status::InvalidArgument(command +
                                        " needs a steps spec ('-' for "
                                        "identity) and a query"),
                out);
      out->push_back("END");
      return ProtocolAction::kContinue;
    }
    if (command == "PREPARE") {
      bool cached = false;
      Result<uint64_t> fingerprint = service.Prepare(query, steps, &cached);
      if (!fingerprint.ok()) {
        EmitError(fingerprint.status(), out);
      } else {
        out->push_back("OK fingerprint=" + Hex(*fingerprint) +
                       " cached=" + (cached ? "1" : "0"));
      }
    } else {
      Result<QueryOutcome> outcome = service.Execute(query, steps);
      if (!outcome.ok()) {
        EmitError(outcome.status(), out);
      } else {
        out->push_back(std::string("OK path=") + ServePathName(outcome->path) +
                       " epoch=" + std::to_string(outcome->epoch) +
                       " answers=" + std::to_string(outcome->answers.size()) +
                       " fixpoint=" + (outcome->reached_fixpoint ? "1" : "0"));
        for (const std::string& answer : outcome->answers) {
          out->push_back(answer);
        }
      }
    }
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "INGEST") {
    if (rest.empty()) {
      EmitError(Status::InvalidArgument("INGEST needs `.`-terminated facts"),
                out);
      out->push_back("END");
      return ProtocolAction::kContinue;
    }
    Result<IngestOutcome> outcome = service.Ingest(rest);
    if (!outcome.ok()) {
      EmitError(outcome.status(), out);
    } else {
      out->push_back("OK accepted=" + std::to_string(outcome->accepted) +
                     " duplicates=" + std::to_string(outcome->duplicates) +
                     " epoch=" + std::to_string(outcome->epoch));
    }
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "STATS") {
    ServiceStats stats = service.Stats();
    out->push_back("OK");
    out->push_back("queries=" + std::to_string(stats.queries));
    out->push_back("ingests=" + std::to_string(stats.ingests));
    out->push_back("prepared_hits=" + std::to_string(stats.prepared_hits));
    out->push_back("prepared_misses=" + std::to_string(stats.prepared_misses));
    out->push_back("cold_evals=" + std::to_string(stats.cold_evals));
    out->push_back("epoch_hits=" + std::to_string(stats.epoch_hits));
    out->push_back("resumes=" + std::to_string(stats.resumes));
    out->push_back("resumed_iterations=" +
                   std::to_string(stats.resumed_iterations));
    out->push_back("epoch=" + std::to_string(stats.epoch));
    out->push_back("prepared_entries=" +
                   std::to_string(stats.prepared_entries));
    out->push_back("END");
    return ProtocolAction::kContinue;
  }

  if (command == "SHUTDOWN") {
    out->push_back("OK bye");
    out->push_back("END");
    return ProtocolAction::kShutdown;
  }

  EmitError(Status::InvalidArgument(
                "unknown command '" + command +
                "' (expected PREPARE, QUERY, INGEST, STATS, or SHUTDOWN)"),
            out);
  out->push_back("END");
  return ProtocolAction::kContinue;
}

}  // namespace cqlopt
