#ifndef CQLOPT_SERVICE_SCHEDULER_H_
#define CQLOPT_SERVICE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/query_service.h"

namespace cqlopt {

/// Per-client priority classes. A connection starts at kNormal and moves
/// with the PRIORITY protocol verb; the scheduler's stride accounting gives
/// each class CPU in proportion to its weight when classes compete, while
/// an uncontended class may use every worker.
enum class PriorityClass {
  kInteractive = 0,
  kNormal = 1,
  kBatch = 2,
};

inline constexpr int kPriorityClasses = 3;
static_assert(kPriorityClasses == SchedulerStats::kClasses,
              "ServiceStats mirrors one counter block per priority class");

/// "interactive" / "normal" / "batch" — protocol and flag spellings.
const char* PriorityClassName(PriorityClass priority);
/// Inverse of PriorityClassName; false on unknown names.
bool ParsePriorityClass(const std::string& name, PriorityClass* out);

/// Derived facts per unit of fair-share cost: a completed task is charged
/// 1 + facts_stored / kFactsPerCostUnit stride steps, so a query that
/// materializes a huge fixpoint pushes its class's virtual time further
/// into the future than a cheap epoch hit does.
inline constexpr long kFactsPerCostUnit = 64;

struct SchedulerOptions {
  /// Worker threads executing admitted tasks. Reads multiplex freely over
  /// snapshot epochs; ingests serialize inside the service's single-writer
  /// commit path, so more workers than writers is the useful shape.
  int workers = 4;
  /// Bound on tasks waiting for a worker (in-flight tasks are not counted).
  /// Submissions past the bound are shed unless a lower-priority victim can
  /// be preempted out of the queue.
  int queue_depth = 64;
  /// Stride weights per PriorityClass (interactive, normal, batch). Higher
  /// weight = proportionally more dequeues under contention.
  long weights[kPriorityClasses] = {8, 4, 1};
};

/// Bounded-admission fair-share scheduler: the serving half of the
/// governance layer (DESIGN.md §13). Workers pull from per-class FIFO
/// queues under stride scheduling — each class keeps a virtual time that
/// advances by (scale / weight) per dequeue plus a post-completion charge
/// proportional to the derived facts the task stored; the nonempty class
/// with the smallest virtual time runs next, ties to the higher priority.
///
/// Admission control never blocks the caller: TrySubmit either enqueues,
/// preempts the newest queued task of a strictly lower class (its shed
/// callback fires), or refuses (the submitted task's shed callback fires).
/// Everything is counted; an attached QueryService exposes the counters
/// through ServiceStats::scheduler.
///
/// The "scheduler/worker-hold" failpoint freezes workers *before* they
/// dequeue, so tests can fill the queue and observe deterministic shed and
/// preemption decisions.
class Scheduler {
 public:
  struct Task {
    PriorityClass priority = PriorityClass::kNormal;
    /// Executed on a worker thread once dequeued.
    std::function<void()> run;
    /// Executed (on the submitter, synchronously) if the task is refused or
    /// later preempted out of the queue — typically posts the typed
    /// RESOURCE_EXHAUSTED response. May be empty.
    std::function<void()> shed;
  };

  explicit Scheduler(SchedulerOptions options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admission control; never blocks. True if the task was enqueued (it
  /// will run unless preempted later); false if it was shed — its `shed`
  /// callback has already run by the time TrySubmit returns.
  bool TrySubmit(Task task);

  /// Charges `facts` derived facts to `priority`'s fair-share account
  /// (called by the server after a task completes with its outcome).
  void Charge(PriorityClass priority, long facts);

  /// Registers this scheduler's counters with `service`'s Stats() via
  /// SetStatsAugmenter. Detached automatically on destruction (the
  /// scheduler must not outlive the service). Pass nullptr to detach.
  void Attach(QueryService* service);

  /// Snapshot of the counters (also what Attach injects into ServiceStats).
  SchedulerStats Snapshot() const;

  /// Stops accepting work (further TrySubmit calls shed), drains the queue
  /// — every already-admitted task still runs — and joins the workers.
  /// Idempotent; also called by the destructor.
  void Stop();

 private:
  struct Queued {
    Task task;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  /// Picks the nonempty class with minimum virtual time (tie: higher
  /// priority, i.e. lower index); -1 if all queues are empty. Caller holds
  /// mu_.
  int PickClass() const;

  const SchedulerOptions options_;
  long strides_[kPriorityClasses];  // scale / weight, precomputed

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::deque<Queued> queues_[kPriorityClasses];
  /// Stride virtual times. A class going empty -> nonempty is brought
  /// forward to the global pass (the virtual start of the last dequeue) so
  /// an idle class cannot bank arbitrarily old credit.
  long vt_[kPriorityClasses] = {0, 0, 0};
  long pass_ = 0;

  // Counters (guarded by mu_), mirrored into SchedulerStats.
  long in_flight_ = 0;
  long admitted_ = 0;
  long shed_ = 0;
  long preempted_ = 0;
  long completed_ = 0;
  SchedulerStats::PerClass per_class_[kPriorityClasses];

  std::vector<std::thread> workers_;
  QueryService* attached_service_ = nullptr;
};

}  // namespace cqlopt

#endif  // CQLOPT_SERVICE_SCHEDULER_H_
