#include "service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <istream>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "util/failpoint.h"

namespace cqlopt {

bool WriteFull(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    size_t want = data.size() - sent;
    // Fault injection: clamp the transfer to one byte so tests drive the
    // short-write continuation path deterministically.
    if (failpoint::ShouldFail(failpoint::kServerShortWrite)) want = 1;
    ssize_t n = ::send(fd, data.data() + sent, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer cannot make progress
    sent += static_cast<size_t>(n);
  }
  return true;
}

namespace {

/// Reads lines from `fd` and answers each until SHUTDOWN, a read error, or
/// the peer closing. Returns true if this connection requested shutdown.
bool ServeConnection(QueryService& service, int fd) {
  std::string buffer;
  char chunk[4096];
  bool shutdown_requested = false;
  while (!shutdown_requested) {
    size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    std::vector<std::string> response;
    if (HandleLine(service, line, &response) == ProtocolAction::kShutdown) {
      shutdown_requested = true;
    }
    std::string payload;
    for (const std::string& out_line : response) {
      payload += out_line;
      payload += '\n';
    }
    if (!WriteFull(fd, payload)) break;
  }
  ::close(fd);
  return shutdown_requested;
}

}  // namespace

Status ServeUnixSocket(QueryService& service, const std::string& socket_path) {
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: '" +
                                   socket_path + "'");
  }
  int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(socket_path.c_str());  // stale socket from a previous run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd);
    return Status::Internal("bind " + socket_path + ": " +
                            std::strerror(errno));
  }
  if (::listen(listen_fd, 16) < 0) {
    ::close(listen_fd);
    ::unlink(socket_path.c_str());
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }

  std::atomic<bool> stopping{false};
  std::mutex threads_mutex;
  std::vector<std::thread> threads;
  while (!stopping.load()) {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (or failed); drain and return
    }
    std::lock_guard<std::mutex> lock(threads_mutex);
    threads.emplace_back([&service, &stopping, listen_fd, fd] {
      if (ServeConnection(service, fd)) {
        stopping.store(true);
        // Unblock accept() so the server loop observes the stop flag.
        ::shutdown(listen_fd, SHUT_RDWR);
      }
    });
  }
  {
    std::lock_guard<std::mutex> lock(threads_mutex);
    for (std::thread& t : threads) t.join();
  }
  ::close(listen_fd);
  ::unlink(socket_path.c_str());
  return Status::OK();
}

Status ServeStreams(QueryService& service, std::istream& in,
                    std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> response;
    ProtocolAction action = HandleLine(service, line, &response);
    for (const std::string& out_line : response) {
      out << out_line << '\n';
    }
    out.flush();
    if (action == ProtocolAction::kShutdown) break;
  }
  return Status::OK();
}

}  // namespace cqlopt
