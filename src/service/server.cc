#include "service/server.h"

#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <time.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/failpoint.h"

namespace cqlopt {

bool WriteFull(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    size_t want = data.size() - sent;
    // Fault injection: clamp the transfer to one byte so tests drive the
    // short-write continuation path deterministically.
    if (failpoint::ShouldFail(failpoint::kServerShortWrite)) want = 1;
    ssize_t n = ::send(fd, data.data() + sent, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // peer cannot make progress
    sent += static_cast<size_t>(n);
  }
  return true;
}

namespace {

/// A request line past the admission bound is refused with this payload —
/// typed, immediate, and never enqueued (DESIGN.md §13 backpressure).
std::string ShedPayload(int queue_limit) {
  return "ERR RESOURCE_EXHAUSTED admission queue full (queue_limit=" +
         std::to_string(queue_limit) + "): request shed, retry later\nEND\n";
}

std::string RenderResponse(const std::vector<std::string>& lines) {
  std::string payload;
  for (const std::string& line : lines) {
    payload += line;
    payload += '\n';
  }
  return payload;
}

/// First word of a trimmed request line — the event loop peeks at it to
/// route connection/server-level verbs inline instead of scheduling them.
std::string PeekVerb(const std::string& line) {
  size_t begin = line.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = line.find_first_of(" \t\r\n", begin);
  return line.substr(begin, end == std::string::npos ? end : end - begin);
}

/// Lines with no newline past this size indicate a broken or hostile peer;
/// the connection is dropped rather than buffering without bound.
constexpr size_t kMaxLineBytes = 1 << 20;

constexpr uint64_t kUnixListenerTag = 0;
constexpr uint64_t kTcpListenerTag = 1;
constexpr uint64_t kEventFdTag = 2;
constexpr uint64_t kDrainFdTag = 3;
constexpr uint64_t kFirstConnId = 16;

int64_t MonotonicMs() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

struct Listener {
  int fd = -1;
  std::string unix_path;  // unlinked on teardown when nonempty
};

Status ListenUnix(const std::string& socket_path, int backlog,
                  Listener* out) {
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    return Status::InvalidArgument("socket path empty or too long: '" +
                                   socket_path + "'");
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(socket_path.c_str());  // stale socket from a previous run
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("bind " + socket_path + ": " +
                            std::strerror(errno));
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    ::unlink(socket_path.c_str());
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  out->fd = fd;
  out->unix_path = socket_path;
  return Status::OK();
}

Status ListenTcp(int port, int backlog, Listener* out, int* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("bind tcp port " + std::to_string(port) + ": " +
                            std::strerror(errno));
  }
  if (::listen(fd, backlog) < 0) {
    ::close(fd);
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    ::close(fd);
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  out->fd = fd;
  *bound_port = ntohs(addr.sin_port);
  return Status::OK();
}

/// The epoll event loop: single accept/frame/flush thread in front of the
/// Scheduler's worker pool. Workers hand finished responses back through a
/// mutexed completion queue + eventfd; the loop reassembles them in
/// per-connection sequence order so pipelined clients always read replies
/// in request order, however the pool interleaves execution.
class EventLoop {
 public:
  EventLoop(QueryService& service, const ServerOptions& options)
      : service_(service), options_(options), scheduler_(options.scheduler) {}

  ~EventLoop() {
    // Stop the workers before the eventfd they signal goes away.
    scheduler_.Stop();
    for (auto& [id, conn] : conns_) ::close(conn.fd);
    if (event_fd_ >= 0) ::close(event_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    for (Listener* l : {&unix_listener_, &tcp_listener_}) {
      if (l->fd >= 0) ::close(l->fd);
      if (!l->unix_path.empty()) ::unlink(l->unix_path.c_str());
    }
  }

  Status Run() {
    if (options_.socket_path.empty() && options_.tcp_port < 0) {
      return Status::InvalidArgument(
          "ServeLoop needs a unix socket path or a TCP port");
    }
    ServerEndpoints endpoints;
    if (!options_.socket_path.empty()) {
      CQLOPT_RETURN_IF_ERROR(ListenUnix(
          options_.socket_path, options_.listen_backlog, &unix_listener_));
      endpoints.socket_path = options_.socket_path;
    }
    if (options_.tcp_port >= 0) {
      CQLOPT_RETURN_IF_ERROR(ListenTcp(options_.tcp_port,
                                       options_.listen_backlog, &tcp_listener_,
                                       &endpoints.tcp_port));
    }
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::Internal(std::string("epoll_create1: ") +
                              std::strerror(errno));
    }
    event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (event_fd_ < 0) {
      return Status::Internal(std::string("eventfd: ") +
                              std::strerror(errno));
    }
    CQLOPT_RETURN_IF_ERROR(Watch(event_fd_, kEventFdTag, EPOLLIN));
    if (unix_listener_.fd >= 0) {
      CQLOPT_RETURN_IF_ERROR(
          Watch(unix_listener_.fd, kUnixListenerTag, EPOLLIN));
    }
    if (tcp_listener_.fd >= 0) {
      CQLOPT_RETURN_IF_ERROR(Watch(tcp_listener_.fd, kTcpListenerTag, EPOLLIN));
    }
    if (options_.drain_fd >= 0) {
      CQLOPT_RETURN_IF_ERROR(Watch(options_.drain_fd, kDrainFdTag, EPOLLIN));
    }
    scheduler_.Attach(&service_);
    if (options_.on_ready) options_.on_ready(endpoints);

    epoll_event events[64];
    while (running_) {
      int timeout = -1;
      if (draining_ && drain_deadline_ms_ >= 0) {
        int64_t left = drain_deadline_ms_ - MonotonicMs();
        if (left <= 0) {
          // Deadline spent: connections still owed bytes are dropped.
          break;
        }
        timeout = left > 1 << 30 ? 1 << 30 : static_cast<int>(left);
      }
      int n = ::epoll_wait(epoll_fd_, events, 64, timeout);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(std::string("epoll_wait: ") +
                                std::strerror(errno));
      }
      for (int i = 0; i < n && running_; ++i) {
        uint64_t tag = events[i].data.u64;
        uint32_t mask = events[i].events;
        if (tag == kUnixListenerTag) {
          AcceptAll(unix_listener_.fd);
        } else if (tag == kTcpListenerTag) {
          AcceptAll(tcp_listener_.fd);
        } else if (tag == kDrainFdTag) {
          BeginDrain();
        } else if (tag == kEventFdTag) {
          DrainCompletions();
        } else {
          auto it = conns_.find(tag);
          if (it == conns_.end()) continue;  // closed earlier in this batch
          if (mask & (EPOLLERR | EPOLLHUP)) {
            CloseConn(it->second);
            continue;
          }
          if (mask & EPOLLIN) {
            if (!ReadConn(it->second)) continue;  // connection closed
          }
          if (mask & EPOLLOUT) TryWrite(it->second);
        }
      }
      // A drain is complete once every connection has flushed everything it
      // is owed — responses still in workers show as next_seq > flush_seq,
      // so idle-but-open clients cannot hold the exit hostage.
      if (draining_ && running_ && ConnsIdle()) break;
    }
    return Status::OK();
  }

 private:
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    PriorityClass priority = PriorityClass::kNormal;
    std::string in;           // bytes read, not yet framed into lines
    std::string out;          // response bytes awaiting the socket
    uint64_t next_seq = 0;    // sequence assigned to the next request line
    uint64_t flush_seq = 0;   // next sequence to append to `out`
    int64_t shutdown_seq = -1;  // sequence of a handled SHUTDOWN, if any
    /// Completed responses whose turn has not come yet (a later request may
    /// finish — or be shed — before an earlier one leaves a worker).
    std::map<uint64_t, std::string> ready;
    bool want_write = false;  // EPOLLOUT armed
  };

  struct Completion {
    uint64_t conn_id = 0;
    uint64_t seq = 0;
    std::string payload;
    bool priority_changed = false;
    PriorityClass priority = PriorityClass::kNormal;
  };

  Status Watch(int fd, uint64_t tag, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      return Status::Internal(std::string("epoll_ctl: ") +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  void AcceptAll(int listen_fd) {
    for (;;) {
      int fd = ::accept4(listen_fd, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN (drained), or transient accept failure
      }
      uint64_t id = next_conn_id_++;
      Conn& conn = conns_[id];
      conn.id = id;
      conn.fd = fd;
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = id;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
        ::close(fd);
        conns_.erase(id);
      }
    }
  }

  /// Reads everything available; frames and dispatches complete lines.
  /// False if the connection was closed. Dispatching can close the
  /// connection (write error mid-flush), so the map is re-consulted by id
  /// between lines instead of trusting the reference.
  bool ReadConn(Conn& conn) {
    const uint64_t id = conn.id;
    char chunk[4096];
    bool eof = false;
    for (;;) {
      ssize_t n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        conn.in.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(conn);
      return false;
    }
    for (;;) {
      auto it = conns_.find(id);
      if (it == conns_.end()) return false;  // closed while dispatching
      size_t newline = it->second.in.find('\n');
      if (newline == std::string::npos) break;
      std::string line = it->second.in.substr(0, newline);
      it->second.in.erase(0, newline + 1);
      DispatchLine(it->second, line);
    }
    auto it = conns_.find(id);
    if (it == conns_.end()) return false;
    if (it->second.in.size() > kMaxLineBytes || eof) {
      // A peer that closed (or streams an unbounded line) is done sending;
      // in-flight responses for it are dropped on completion.
      CloseConn(it->second);
      return false;
    }
    return true;
  }

  /// Routes one request line: connection/server-level verbs (PRIORITY,
  /// SHUTDOWN, keep-alive blanks) run inline on the loop thread — they are
  /// cheap, must not be reordered behind queued work of *other*
  /// connections, and must never be shed — everything else goes through
  /// scheduler admission under the connection's priority class.
  void DispatchLine(Conn& conn, const std::string& line) {
    uint64_t seq = conn.next_seq++;
    std::string verb = PeekVerb(line);
    if (verb.empty() || verb == "PRIORITY" || verb == "SHUTDOWN") {
      std::vector<std::string> lines;
      LineOutcome outcome;
      ProtocolAction action = HandleLine(service_, line, &lines, &outcome);
      if (outcome.priority_changed) conn.priority = outcome.priority;
      Deliver(conn, seq, RenderResponse(lines),
              action == ProtocolAction::kShutdown);
      return;
    }
    if (draining_) {
      // Work admitted before the drain began still completes; new work is
      // refused so the drain is bounded by what is already in flight.
      Deliver(conn, seq,
              "ERR UNAVAILABLE server draining: request refused\nEND\n",
              /*shutdown=*/false);
      return;
    }
    uint64_t conn_id = conn.id;
    PriorityClass priority = conn.priority;
    Scheduler::Task task;
    task.priority = priority;
    task.run = [this, conn_id, seq, line, priority] {
      std::vector<std::string> lines;
      LineOutcome outcome;
      HandleLine(service_, line, &lines, &outcome);
      scheduler_.Charge(priority, outcome.derived_facts);
      PostCompletion(conn_id, seq, RenderResponse(lines));
    };
    task.shed = [this, conn_id, seq] {
      PostCompletion(conn_id, seq,
                     ShedPayload(options_.scheduler.queue_depth));
    };
    scheduler_.TrySubmit(std::move(task));
  }

  /// Worker-side handoff: queue the finished response and tick the eventfd
  /// so the loop thread wakes to flush it. Also runs on the loop thread
  /// itself for synchronous sheds — the eventfd round-trip keeps one code
  /// path for both.
  void PostCompletion(uint64_t conn_id, uint64_t seq, std::string payload,
                      bool priority_changed = false,
                      PriorityClass priority = PriorityClass::kNormal) {
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      completions_.push_back(
          {conn_id, seq, std::move(payload), priority_changed, priority});
    }
    uint64_t one = 1;
    // A full eventfd counter is unreachable in practice; a failed tick is
    // recovered by the next completion's write.
    ssize_t ignored = ::write(event_fd_, &one, sizeof(one));
    (void)ignored;
  }

  void DrainCompletions() {
    uint64_t counter;
    while (::read(event_fd_, &counter, sizeof(counter)) > 0) {
    }
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completions_mutex_);
      batch.swap(completions_);
    }
    for (Completion& done : batch) {
      auto it = conns_.find(done.conn_id);
      if (it == conns_.end()) continue;  // connection died while in flight
      if (done.priority_changed) it->second.priority = done.priority;
      Deliver(it->second, done.seq, std::move(done.payload),
              /*shutdown=*/false);
    }
  }

  /// Slots a completed response into the connection's reorder buffer and
  /// flushes the contiguous prefix, so replies leave in request order.
  void Deliver(Conn& conn, uint64_t seq, std::string payload, bool shutdown) {
    if (shutdown) conn.shutdown_seq = static_cast<int64_t>(seq);
    conn.ready[seq] = std::move(payload);
    while (true) {
      auto it = conn.ready.find(conn.flush_seq);
      if (it == conn.ready.end()) break;
      conn.out += it->second;
      conn.ready.erase(it);
      if (conn.shutdown_seq >= 0 &&
          conn.flush_seq == static_cast<uint64_t>(conn.shutdown_seq)) {
        // The SHUTDOWN acknowledgment is in the buffer: stop once it (and
        // everything before it) reaches the socket.
        stop_conn_id_ = conn.id;
      }
      ++conn.flush_seq;
    }
    TryWrite(conn);
  }

  void TryWrite(Conn& conn) {
    while (!conn.out.empty()) {
      size_t want = conn.out.size();
      if (failpoint::ShouldFail(failpoint::kServerShortWrite)) want = 1;
      ssize_t n = ::send(conn.fd, conn.out.data(), want, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out.erase(0, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        SetWantWrite(conn, true);
        return;
      }
      CloseConn(conn);
      return;
    }
    SetWantWrite(conn, false);
    if (stop_conn_id_ == conn.id) running_ = false;
  }

  /// Starts the graceful drain (idempotent): eat the self-pipe bytes, stop
  /// accepting by closing the listeners outright, and arm the deadline.
  void BeginDrain() {
    char buf[64];
    while (::read(options_.drain_fd, buf, sizeof(buf)) > 0) {
    }
    if (draining_) return;
    draining_ = true;
    for (Listener* l : {&unix_listener_, &tcp_listener_}) {
      if (l->fd < 0) continue;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, l->fd, nullptr);
      ::close(l->fd);
      l->fd = -1;
      if (!l->unix_path.empty()) {
        ::unlink(l->unix_path.c_str());
        l->unix_path.clear();
      }
    }
    drain_deadline_ms_ = options_.drain_timeout_ms > 0
                             ? MonotonicMs() + options_.drain_timeout_ms
                             : -1;
  }

  /// True when no connection is owed anything: no request dispatched but
  /// not yet delivered, no response waiting its turn, no bytes unflushed.
  bool ConnsIdle() const {
    for (const auto& [id, conn] : conns_) {
      if (conn.next_seq != conn.flush_seq || !conn.ready.empty() ||
          !conn.out.empty()) {
        return false;
      }
    }
    return true;
  }

  void SetWantWrite(Conn& conn, bool want) {
    if (conn.want_write == want) return;
    conn.want_write = want;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0);
    ev.data.u64 = conn.id;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void CloseConn(Conn& conn) {
    // A dying connection that carried SHUTDOWN still stops the server (the
    // acknowledgment just has nowhere to go).
    if (conn.shutdown_seq >= 0 || stop_conn_id_ == conn.id) running_ = false;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conns_.erase(conn.id);
  }

  QueryService& service_;
  const ServerOptions& options_;
  Scheduler scheduler_;
  Listener unix_listener_;
  Listener tcp_listener_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  uint64_t next_conn_id_ = kFirstConnId;
  std::unordered_map<uint64_t, Conn> conns_;
  std::mutex completions_mutex_;
  std::vector<Completion> completions_;
  bool running_ = true;
  /// Connection whose drained output buffer ends the serve loop (set when
  /// a SHUTDOWN acknowledgment is queued on it).
  uint64_t stop_conn_id_ = 0;
  /// Graceful drain in progress (ServerOptions::drain_fd fired): listeners
  /// are gone, new request lines are refused, the loop exits once
  /// ConnsIdle() or the deadline passes.
  bool draining_ = false;
  int64_t drain_deadline_ms_ = -1;
};

}  // namespace

Status ServeLoop(QueryService& service, const ServerOptions& options) {
  EventLoop loop(service, options);
  return loop.Run();
}

Status ServeUnixSocket(QueryService& service, const std::string& socket_path) {
  ServerOptions options;
  options.socket_path = socket_path;
  return ServeLoop(service, options);
}

Status ServeStreams(QueryService& service, std::istream& in,
                    std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    std::vector<std::string> response;
    ProtocolAction action = HandleLine(service, line, &response);
    for (const std::string& out_line : response) {
      out << out_line << '\n';
    }
    out.flush();
    if (action == ProtocolAction::kShutdown) break;
  }
  return Status::OK();
}

}  // namespace cqlopt
