#include "service/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ast/arg_map.h"
#include "ast/printer.h"
#include "ast/rule.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

// Both headers are 8 bytes so record parsing starts at the same offset.
constexpr char kLogMagic[8] = {'C', 'Q', 'L', 'W', 'A', 'L', '1', '\n'};
constexpr char kSnapMagic[8] = {'C', 'Q', 'L', 'S', 'N', 'A', 'P', '1'};
constexpr char kSnapMagic2[8] = {'C', 'Q', 'L', 'S', 'N', 'A', 'P', '2'};
constexpr size_t kMagicSize = sizeof(kLogMagic);

// Batch-kind bytes (WalRecord::Kind). Statement text always starts with a
// printable byte (a predicate name, '%' comment, or whitespace), so the
// C0 control range below is reserved for kind bytes: any payload whose
// first byte falls in [0x01, 0x08] is a kinded record, everything else is a
// legacy bare-text insert. 0x01 stays unassigned (too easy to confuse with
// an off-by-one); future kinds take 0x06..0x08.
constexpr char kKindRetract = 0x02;
constexpr char kKindExpire = 0x03;
constexpr char kKindInsertTtl = 0x04;
constexpr char kKindTick = 0x05;

bool IsKindByte(char c) { return c >= 0x01 && c <= 0x08; }
constexpr size_t kRecordHeader = 8;  // u32 len + u32 crc32, little-endian
// A record longer than this is certainly a corrupt length field, not data.
constexpr uint32_t kMaxRecordBytes = 1u << 30;

/// CRC-32 (IEEE 802.3, reflected), the checksum gzip/zlib use.
uint32_t Crc32(const char* data, size_t size) {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
    return entries;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ static_cast<unsigned char>(data[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

/// write(2) looping on EINTR and short writes.
Status WriteBytes(int fd, const char* data, size_t size, const char* what) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = ::write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno(what);
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ReadWholeFile(int fd, const char* what) {
  std::string out;
  char chunk[1 << 16];
  off_t offset = 0;
  while (true) {
    ssize_t n = ::pread(fd, chunk, sizeof(chunk), offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno(what);
    }
    if (n == 0) return out;
    out.append(chunk, static_cast<size_t>(n));
    offset += n;
  }
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir " + dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc < 0) return Errno("fsync dir " + dir);
  return Status::OK();
}

}  // namespace

uint32_t WalCrc32(const std::string& data) {
  return Crc32(data.data(), data.size());
}

std::string HexEncode(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

bool HexDecode(const std::string& hex, std::string* out) {
  if (hex.size() % 2 != 0) return false;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  out->clear();
  out->reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out->push_back(static_cast<char>((hi << 4) | lo));
  }
  return true;
}

std::string RenderFactStatement(const Fact& fact, const SymbolTable& symbols) {
  // Rebuild the fact as the body-free rule the loader parses facts from:
  // fresh rule variables W1..Wk (ids above the 1..arity position range —
  // see rule.h), constraints converted position→variable via PTOL.
  Rule rule;
  std::vector<VarId> args;
  args.reserve(static_cast<size_t>(fact.arity));
  for (int i = 1; i <= fact.arity; ++i) {
    VarId var = 1024 + i;
    args.push_back(var);
    rule.var_names[var] = "W" + std::to_string(i);
  }
  rule.head = Literal(fact.pred, std::move(args));
  rule.constraints = PtolConjunction(rule.head, fact.constraint);
  return RenderRule(rule, symbols);
}

std::string RenderDatabaseText(const Database& db,
                               const SymbolTable& symbols) {
  std::string out;
  for (const auto& [pred, rel] : db.relations()) {
    for (size_t i = 0; i < rel.size(); ++i) {
      out += RenderFactStatement(rel.fact(i), symbols);
      out += '\n';
    }
  }
  return out;
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string out;
  switch (record.kind) {
    case WalRecord::Kind::kInsert:
      // Legacy bare-text encoding: a pre-§14 reader replays it unchanged,
      // and an insert-only log stays byte-identical to one a pre-§14 writer
      // would produce.
      return record.statements;
    case WalRecord::Kind::kRetract:
      out.push_back(kKindRetract);
      out += record.statements;
      return out;
    case WalRecord::Kind::kExpire:
      out.push_back(kKindExpire);
      PutU64(static_cast<uint64_t>(record.now_ms), &out);
      out += record.statements;
      return out;
    case WalRecord::Kind::kInsertTtl:
      out.push_back(kKindInsertTtl);
      PutU64(static_cast<uint64_t>(record.now_ms), &out);
      PutU64(static_cast<uint64_t>(record.ttl_ms), &out);
      out += record.statements;
      return out;
    case WalRecord::Kind::kTick:
      out.push_back(kKindTick);
      PutU64(static_cast<uint64_t>(record.now_ms), &out);
      return out;
  }
  return out;  // unreachable
}

Result<WalRecord> DecodeWalRecord(const std::string& payload) {
  WalRecord record;
  if (payload.empty() || !IsKindByte(payload[0])) {
    record.kind = WalRecord::Kind::kInsert;
    record.statements = payload;
    return record;
  }
  auto need = [&payload](size_t fixed, const char* kind) -> Status {
    if (payload.size() >= fixed) return Status::OK();
    return Status::InvalidArgument(
        std::string("WAL ") + kind + " record is " +
        std::to_string(payload.size()) + " byte(s), shorter than its " +
        std::to_string(fixed) + "-byte fixed header");
  };
  switch (payload[0]) {
    case kKindRetract:
      record.kind = WalRecord::Kind::kRetract;
      record.statements = payload.substr(1);
      return record;
    case kKindExpire:
      CQLOPT_RETURN_IF_ERROR(need(1 + 8, "expire"));
      record.kind = WalRecord::Kind::kExpire;
      record.now_ms = static_cast<int64_t>(GetU64(payload.data() + 1));
      record.statements = payload.substr(1 + 8);
      return record;
    case kKindInsertTtl:
      CQLOPT_RETURN_IF_ERROR(need(1 + 16, "insert-ttl"));
      record.kind = WalRecord::Kind::kInsertTtl;
      record.now_ms = static_cast<int64_t>(GetU64(payload.data() + 1));
      record.ttl_ms = static_cast<int64_t>(GetU64(payload.data() + 9));
      record.statements = payload.substr(1 + 16);
      return record;
    case kKindTick:
      CQLOPT_RETURN_IF_ERROR(need(1 + 8, "tick"));
      record.kind = WalRecord::Kind::kTick;
      record.now_ms = static_cast<int64_t>(GetU64(payload.data() + 1));
      return record;
    default:
      return Status::InvalidArgument(
          "WAL record carries unknown batch-kind byte 0x" +
          [](unsigned v) {
            const char* hex = "0123456789abcdef";
            return std::string{hex[(v >> 4) & 0xF], hex[v & 0xF]};
          }(static_cast<unsigned char>(payload[0])) +
          " (known: insert text, retract 0x02, expire 0x03, insert-ttl "
          "0x04, tick 0x05) — written by a newer cqld?");
  }
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir) {
  if (dir.empty()) return Status::InvalidArgument("WAL directory is empty");
  if (::mkdir(dir.c_str(), 0755) < 0 && errno != EEXIST) {
    return Errno("mkdir " + dir);
  }
  std::string path = dir + "/wal.log";
  int fd = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT, 0644);
  if (fd < 0) return Errno("open " + path);
  struct stat st;
  if (::fstat(fd, &st) < 0) {
    ::close(fd);
    return Errno("fstat " + path);
  }
  if (st.st_size < static_cast<off_t>(kMagicSize)) {
    // 1-7 bytes means a crash mid-way through writing the initial header;
    // no record can exist yet, so restart the file as empty instead of
    // bricking every future Open with a bad-magic error.
    if (st.st_size > 0 && ::ftruncate(fd, 0) < 0) {
      ::close(fd);
      return Errno("ftruncate " + path);
    }
    Status wrote = WriteBytes(fd, kLogMagic, kMagicSize, "write WAL header");
    if (!wrote.ok() || ::fsync(fd) < 0) {
      ::close(fd);
      return wrote.ok() ? Errno("fsync " + path) : wrote;
    }
    st.st_size = static_cast<off_t>(kMagicSize);
  } else {
    char magic[kMagicSize];
    ssize_t n = ::pread(fd, magic, kMagicSize, 0);
    if (n != static_cast<ssize_t>(kMagicSize) ||
        std::memcmp(magic, kLogMagic, kMagicSize) != 0) {
      ::close(fd);
      return Status::Internal(path + " is not a CQLWAL1 log");
    }
  }
  return std::unique_ptr<Wal>(new Wal(dir, fd, static_cast<long>(st.st_size)));
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Wal::log_path() const { return dir_ + "/wal.log"; }
std::string Wal::snapshot_path() const { return dir_ + "/snapshot.cql"; }

Status Wal::Append(const std::string& payload) {
  if (!failed_.ok()) {
    return Status::Internal(
        "WAL rejects appends after an earlier failure (recover first): " +
        failed_.message());
  }
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("WAL record too large: " +
                                   std::to_string(payload.size()) + " bytes");
  }
  std::string record;
  record.reserve(kRecordHeader + payload.size());
  PutU32(static_cast<uint32_t>(payload.size()), &record);
  PutU32(Crc32(payload.data(), payload.size()), &record);
  record += payload;
  const long pre_offset = log_bytes_;

  if (failpoint::ShouldFail(failpoint::kWalShortWrite)) {
    // Simulated crash mid-append: a prefix of the record reaches the file,
    // then the process "dies" — the torn bytes must stay for recovery to
    // drop, so no rollback here, but the handle is dead: an append after a
    // torn record would be acknowledged yet lost (ReadAll stops at the
    // first corrupt record).
    size_t torn = record.size() / 2;
    if (torn == 0) torn = 1;
    Status wrote = WriteBytes(fd_, record.data(), torn, "torn WAL append");
    log_bytes_ += static_cast<long>(torn);
    failed_ = wrote.ok()
                  ? Status::Internal(
                        "injected torn write: " + std::to_string(torn) +
                        " of " + std::to_string(record.size()) +
                        " record bytes reached the log (failpoint " +
                        failpoint::kWalShortWrite + ")")
                  : wrote;
    return failed_;
  }
  Status wrote = WriteBytes(fd_, record.data(), record.size(), "WAL append");
  if (!wrote.ok()) return FailAppend(pre_offset, std::move(wrote));
  log_bytes_ += static_cast<long>(record.size());
  if (failpoint::ShouldFail(failpoint::kWalFsync)) {
    // Simulated crash between write and fsync: the intact-but-undurable
    // record stays (recovery may legitimately surface it), the handle dies.
    failed_ = Status::Internal(
        std::string("injected fsync failure after WAL append (failpoint ") +
        failpoint::kWalFsync + ")");
    return failed_;
  }
  if (::fsync(fd_) < 0) {
    return FailAppend(pre_offset, Errno("fsync " + log_path()));
  }
  return Status::OK();
}

Status Wal::FailAppend(long pre_offset, Status cause) {
  // A real mid-append failure left an unknown prefix of the record in the
  // file. Acknowledged commits must never land after torn bytes (ReadAll
  // truncates at the first corrupt record, silently discarding them), so
  // roll back to the pre-append offset; if that fails too, poison the
  // handle and reject every further append.
  if (::ftruncate(fd_, static_cast<off_t>(pre_offset)) == 0 &&
      ::fsync(fd_) == 0) {
    log_bytes_ = pre_offset;
    return cause;
  }
  failed_ = Status::Internal(cause.message() + "; rollback to offset " +
                             std::to_string(pre_offset) +
                             " failed: " + std::strerror(errno));
  return failed_;
}

Result<WalReadOutcome> Wal::ReadAll() {
  CQLOPT_ASSIGN_OR_RETURN(std::string contents,
                          ReadWholeFile(fd_, "read WAL"));
  if (contents.size() < kMagicSize ||
      std::memcmp(contents.data(), kLogMagic, kMagicSize) != 0) {
    return Status::Internal(log_path() + " is not a CQLWAL1 log");
  }
  WalReadOutcome out;
  size_t offset = kMagicSize;
  std::string problem;
  while (offset < contents.size()) {
    if (contents.size() - offset < kRecordHeader) {
      problem = "torn record header";
      break;
    }
    uint32_t len = GetU32(contents.data() + offset);
    uint32_t crc = GetU32(contents.data() + offset + 4);
    if (len > kMaxRecordBytes) {
      problem = "corrupt record length " + std::to_string(len);
      break;
    }
    if (contents.size() - offset - kRecordHeader < len) {
      problem = "torn record payload (" +
                std::to_string(contents.size() - offset - kRecordHeader) +
                " of " + std::to_string(len) + " bytes)";
      break;
    }
    const char* payload = contents.data() + offset + kRecordHeader;
    if (Crc32(payload, len) != crc) {
      problem = "checksum mismatch";
      break;
    }
    if (len > 0 && IsKindByte(payload[0]) && payload[0] != kKindRetract &&
        payload[0] != kKindExpire && payload[0] != kKindInsertTtl &&
        payload[0] != kKindTick) {
      // Checksum-valid but unintelligible: a committed batch this build
      // cannot replay (a newer writer's kind, most likely). Truncating it
      // like a torn tail would silently drop an acknowledged batch and
      // every record after it — refuse to recover instead.
      return Status::InvalidArgument(
          "WAL " + log_path() + ": record at offset " +
          std::to_string(offset) + " carries unknown batch-kind byte 0x" +
          [](unsigned v) {
            const char* hex = "0123456789abcdef";
            return std::string{hex[(v >> 4) & 0xF], hex[v & 0xF]};
          }(static_cast<unsigned char>(payload[0])) +
          " (known: insert text, retract 0x02, expire 0x03, insert-ttl "
          "0x04, tick 0x05); refusing to drop a committed record — recover "
          "with a build that understands it");
    }
    out.payloads.emplace_back(payload, len);
    offset += kRecordHeader + len;
  }
  if (offset < contents.size()) {
    // Torn/corrupt tail — the signature of a crash mid-append. Dropping it
    // is safe: the batch was never committed (commits wait for fsync).
    out.truncated_bytes = static_cast<long>(contents.size() - offset);
    out.warning = "WAL " + log_path() + ": dropped " +
                  std::to_string(out.truncated_bytes) +
                  " trailing byte(s) at offset " + std::to_string(offset) +
                  " (" + problem + "); recovered " +
                  std::to_string(out.payloads.size()) + " intact record(s)";
    if (::ftruncate(fd_, static_cast<off_t>(offset)) < 0) {
      failed_ = Errno("ftruncate " + log_path());
      return failed_;
    }
    if (::fsync(fd_) < 0) {
      failed_ = Errno("fsync " + log_path());
      return failed_;
    }
    log_bytes_ = static_cast<long>(offset);
  }
  // Every record is intact and any torn tail is gone — the log is
  // consistent again, so appending may resume.
  failed_ = Status::OK();
  return out;
}

Status Wal::WriteSnapshot(const WalSnapshot& snapshot) {
  // CQLSNAP2 payload: u64 epoch, u64 now_ms, u32 deadline count, then per
  // deadline u64 deadline_ms + u32 length + statement bytes, then the EDB
  // statements.
  std::string payload;
  payload.reserve(20 + snapshot.statements.size());
  PutU64(static_cast<uint64_t>(snapshot.epoch), &payload);
  PutU64(static_cast<uint64_t>(snapshot.now_ms), &payload);
  PutU32(static_cast<uint32_t>(snapshot.deadlines.size()), &payload);
  for (const auto& [deadline_ms, statement] : snapshot.deadlines) {
    PutU64(static_cast<uint64_t>(deadline_ms), &payload);
    PutU32(static_cast<uint32_t>(statement.size()), &payload);
    payload += statement;
  }
  payload += snapshot.statements;
  std::string file;
  file.reserve(kMagicSize + kRecordHeader + payload.size());
  file.append(kSnapMagic2, kMagicSize);
  PutU32(static_cast<uint32_t>(payload.size()), &file);
  PutU32(Crc32(payload.data(), payload.size()), &file);
  file += payload;

  // Classic atomic replace: temp file, fsync, rename, fsync directory. A
  // crash at any point leaves either the old snapshot or the new one.
  std::string tmp = dir_ + "/snapshot.tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open " + tmp);
  Status wrote = WriteBytes(fd, file.data(), file.size(), "write snapshot");
  if (wrote.ok() && ::fsync(fd) < 0) wrote = Errno("fsync " + tmp);
  ::close(fd);
  CQLOPT_RETURN_IF_ERROR(wrote);
  if (::rename(tmp.c_str(), snapshot_path().c_str()) < 0) {
    return Errno("rename " + tmp);
  }
  return FsyncDir(dir_);
}

Status Wal::ReadSnapshot(bool* found, WalSnapshot* snapshot) {
  *found = false;
  int fd = ::open(snapshot_path().c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::OK();
    return Errno("open " + snapshot_path());
  }
  Result<std::string> contents = ReadWholeFile(fd, "read snapshot");
  ::close(fd);
  CQLOPT_RETURN_IF_ERROR(contents.status());
  const std::string& data = *contents;
  // A damaged snapshot is not recoverable by truncation: the WAL records it
  // compacted away are gone, so surface it loudly instead of serving a
  // silently incomplete database.
  bool v2 = false;
  if (data.size() >= kMagicSize &&
      std::memcmp(data.data(), kSnapMagic2, kMagicSize) == 0) {
    v2 = true;
  } else if (data.size() < kMagicSize + kRecordHeader ||
             std::memcmp(data.data(), kSnapMagic, kMagicSize) != 0) {
    return Status::Internal(snapshot_path() +
                            " is not a CQLSNAP1/CQLSNAP2 snapshot");
  }
  if (data.size() < kMagicSize + kRecordHeader) {
    return Status::Internal(snapshot_path() + " is truncated or overlong");
  }
  uint32_t len = GetU32(data.data() + kMagicSize);
  uint32_t crc = GetU32(data.data() + kMagicSize + 4);
  const size_t min_len = v2 ? 20 : 8;
  if (len < min_len || data.size() - kMagicSize - kRecordHeader != len) {
    return Status::Internal(snapshot_path() + " is truncated or overlong");
  }
  const char* payload = data.data() + kMagicSize + kRecordHeader;
  if (Crc32(payload, len) != crc) {
    return Status::Internal(snapshot_path() + " fails its checksum");
  }
  *snapshot = WalSnapshot{};
  snapshot->epoch = static_cast<int64_t>(GetU64(payload));
  size_t pos = 8;
  if (v2) {
    snapshot->now_ms = static_cast<int64_t>(GetU64(payload + pos));
    pos += 8;
    uint32_t count = GetU32(payload + pos);
    pos += 4;
    snapshot->deadlines.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (len - pos < 12) {
        return Status::Internal(snapshot_path() +
                                " deadline table is truncated");
      }
      int64_t deadline_ms = static_cast<int64_t>(GetU64(payload + pos));
      uint32_t stmt_len = GetU32(payload + pos + 8);
      pos += 12;
      if (len - pos < stmt_len) {
        return Status::Internal(snapshot_path() +
                                " deadline table is truncated");
      }
      snapshot->deadlines.emplace_back(deadline_ms,
                                       std::string(payload + pos, stmt_len));
      pos += stmt_len;
    }
  }
  snapshot->statements.assign(payload + pos, len - pos);
  *found = true;
  return Status::OK();
}

Status Wal::Reset() {
  if (::ftruncate(fd_, static_cast<off_t>(kMagicSize)) < 0) {
    return Errno("ftruncate " + log_path());
  }
  if (::fsync(fd_) < 0) return Errno("fsync " + log_path());
  log_bytes_ = static_cast<long>(kMagicSize);
  failed_ = Status::OK();  // an empty log is trivially consistent
  return Status::OK();
}

}  // namespace cqlopt
