#ifndef CQLOPT_SERVICE_SERVER_H_
#define CQLOPT_SERVICE_SERVER_H_

#include <iosfwd>
#include <string>

#include "service/protocol.h"

namespace cqlopt {

/// Writes all of `data` to socket `fd`, looping on short writes and EINTR —
/// a partial transfer is normal backpressure, not a protocol error. Uses
/// send(2) with MSG_NOSIGNAL so a peer that disconnected mid-response
/// surfaces as EPIPE here instead of a process-killing SIGPIPE. Returns
/// false on a real write error. The "server/short-write" failpoint
/// (util/failpoint.h) forces 1-byte transfers to exercise the loop.
bool WriteFull(int fd, const std::string& data);

/// Serves the line protocol (service/protocol.h) over a unix-domain socket
/// at `socket_path`, one thread per accepted connection. Removes a stale
/// socket file before binding and unlinks it on return. Blocks until a
/// client sends SHUTDOWN (any connection shuts the whole server down — cqld
/// is a single-tenant daemon) and all connection threads have drained.
Status ServeUnixSocket(QueryService& service, const std::string& socket_path);

/// Serves the line protocol over an istream/ostream pair — `cqld --stdio`
/// and the protocol tests. Returns after SHUTDOWN or end of input.
Status ServeStreams(QueryService& service, std::istream& in,
                    std::ostream& out);

}  // namespace cqlopt

#endif  // CQLOPT_SERVICE_SERVER_H_
