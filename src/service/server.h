#ifndef CQLOPT_SERVICE_SERVER_H_
#define CQLOPT_SERVICE_SERVER_H_

#include <functional>
#include <iosfwd>
#include <string>

#include "service/protocol.h"
#include "service/scheduler.h"

namespace cqlopt {

/// Writes all of `data` to socket `fd`, looping on short writes and EINTR —
/// a partial transfer is normal backpressure, not a protocol error. Uses
/// send(2) with MSG_NOSIGNAL so a peer that disconnected mid-response
/// surfaces as EPIPE here instead of a process-killing SIGPIPE. Returns
/// false on a real write error. The "server/short-write" failpoint
/// (util/failpoint.h) forces 1-byte transfers to exercise the loop.
bool WriteFull(int fd, const std::string& data);

/// The endpoints a ServeLoop actually bound, reported through
/// ServerOptions::on_ready — `tcp_port` resolves an ephemeral request
/// (tcp_port = 0) to the kernel-assigned port.
struct ServerEndpoints {
  std::string socket_path;  // empty when no unix listener
  int tcp_port = -1;        // -1 when no TCP listener
};

struct ServerOptions {
  /// Unix-domain listener path; empty disables. A stale socket file from a
  /// previous run is removed before binding, and the file is unlinked on
  /// return.
  std::string socket_path;
  /// TCP listener port (all interfaces); -1 disables, 0 binds an ephemeral
  /// port (reported via on_ready).
  int tcp_port = -1;
  /// listen(2) backlog for both listeners.
  int listen_backlog = 64;
  /// Worker pool + admission control (service/scheduler.h).
  SchedulerOptions scheduler;
  /// Invoked once from the serving thread after every listener is bound
  /// and before the first accept — how tests and cqld learn the ephemeral
  /// TCP port. May be empty.
  std::function<void(const ServerEndpoints&)> on_ready;
  /// Graceful-drain trigger: when >= 0, the loop watches this fd and a
  /// readable event (one byte on a signal self-pipe — cqld's SIGTERM /
  /// SIGINT handlers write it) starts a drain. The listeners close
  /// immediately (no new connections), requests already admitted or in
  /// flight finish and flush, new request lines on surviving connections
  /// are refused with `ERR UNAVAILABLE server draining`, and once every
  /// connection's responses have reached its socket — or
  /// `drain_timeout_ms` elapses, whichever is first — ServeLoop returns OK.
  /// The WAL needs no extra flush here: every commit fsynced before it was
  /// acknowledged. The fd is borrowed, not owned.
  int drain_fd = -1;
  /// Upper bound on the drain, in milliseconds (connections still owed
  /// bytes after it are dropped). <= 0 means drain without a deadline.
  int drain_timeout_ms = 5000;
};

/// Serves the line protocol over a non-blocking epoll event loop: one
/// thread accepts connections and frames lines, a Scheduler worker pool
/// executes them (reads concurrent over snapshot epochs, ingests
/// serialized by the service's single-writer commit path), and responses
/// flush back in per-connection request order however the workers
/// interleave. Requests past the admission bound are shed with a typed
/// `ERR RESOURCE_EXHAUSTED` response instead of stalling the accept loop
/// (DESIGN.md §13). Blocks until a client sends SHUTDOWN (any connection
/// stops the whole server — cqld is a single-tenant daemon); admitted work
/// drains before return.
Status ServeLoop(QueryService& service, const ServerOptions& options);

/// ServeLoop over a unix socket with default scheduling options — the
/// legacy single-listener entry point, kept for callers that predate
/// ServerOptions.
Status ServeUnixSocket(QueryService& service, const std::string& socket_path);

/// Serves the line protocol over an istream/ostream pair — `cqld --stdio`
/// and the protocol tests. Single-threaded, no scheduler: lines execute
/// inline in arrival order. Returns after SHUTDOWN or end of input.
Status ServeStreams(QueryService& service, std::istream& in,
                    std::ostream& out);

}  // namespace cqlopt

#endif  // CQLOPT_SERVICE_SERVER_H_
