#ifndef CQLOPT_SERVICE_CLIENT_H_
#define CQLOPT_SERVICE_CLIENT_H_

#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace cqlopt {

/// A line-protocol client connection with real deadlines: every connect,
/// write, and read is bounded by a caller-supplied timeout, surfaced as a
/// typed DEADLINE_EXCEEDED error — distinct from a server `ERR` response
/// (which is a successful exchange whose payload says no) and from a lost
/// connection (UNAVAILABLE, retryable against another endpoint). cqlc and
/// the Replicator's remote source are both built on this; the pre-§15 cqlc
/// blocked forever on an unreachable or hung host.
///
/// The socket stays non-blocking for its whole life; progress is driven by
/// poll(2) against an absolute deadline, so a peer that sends half a
/// response and stalls still trips the timeout.
class LineClient {
 public:
  /// One parsed response: every line through (excluding) the terminating
  /// `END`. `is_error` mirrors the protocol's `ERR ` prefix on any line.
  struct Response {
    std::vector<std::string> lines;
    bool is_error = false;
  };

  /// Connects to a unix-domain socket path. `connect_timeout_ms` <= 0 waits
  /// forever (not recommended); a refused/absent socket is UNAVAILABLE.
  static Result<std::unique_ptr<LineClient>> ConnectUnix(
      const std::string& path, int connect_timeout_ms);

  /// Connects over TCP, trying each resolved address until one accepts
  /// within the deadline. Resolution failure is INVALID_ARGUMENT; nobody
  /// accepting is UNAVAILABLE; running out of time is DEADLINE_EXCEEDED.
  static Result<std::unique_ptr<LineClient>> ConnectTcp(
      const std::string& host, const std::string& port,
      int connect_timeout_ms);

  ~LineClient();
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Writes `line` + '\n' fully within the deadline.
  Status SendLine(const std::string& line, int timeout_ms);

  /// Reads one response through its `END` line. The deadline covers the
  /// whole response, not each chunk.
  Status ReadResponse(int timeout_ms, Response* out);

  /// SendLine + ReadResponse with one deadline each.
  Status Exchange(const std::string& line, int timeout_ms, Response* out);

  int fd() const { return fd_; }

 private:
  explicit LineClient(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buffer_;  // bytes read past the last consumed line
};

}  // namespace cqlopt

#endif  // CQLOPT_SERVICE_CLIENT_H_
