#ifndef CQLOPT_SERVICE_WAL_H_
#define CQLOPT_SERVICE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/database.h"
#include "util/status.h"

namespace cqlopt {

/// Renders `fact` as one loader-syntax statement (eval/loader.h), i.e. a
/// body-free rule whose constraints are the fact's positional constraints
/// converted to variables: `p(W1, W2) :- W1 = madison, W2 <= 3.`. Unlike
/// Fact::ToString (whose `$i` / `;` forms do not parse), the output is
/// accepted by LoadDatabaseText and re-parses to the same fact — the WAL
/// and snapshot files are made of exactly these statements.
std::string RenderFactStatement(const Fact& fact, const SymbolTable& symbols);

/// Renders every fact of `db` as one statement per line, relations in
/// PredId order and facts in insertion order — the deterministic snapshot
/// body Compact() writes.
std::string RenderDatabaseText(const Database& db, const SymbolTable& symbols);

/// What Wal::ReadAll found in the log.
struct WalReadOutcome {
  /// The payload of every intact record, append order.
  std::vector<std::string> payloads;
  /// Bytes of torn/corrupt tail dropped from the log file (0 on a clean
  /// shutdown). The file was truncated back to the last intact record.
  long truncated_bytes = 0;
  /// Human-readable description of the truncation; empty when clean.
  std::string warning;
};

/// The write-ahead log backing a QueryService's durability (DESIGN.md §10).
///
/// One directory holds two files:
///  - `wal.log`: an 8-byte magic header followed by length-prefixed records
///    `[u32 len][u32 crc32][payload]` (little-endian), one per committed
///    ingest batch, payload being the batch's `.cql` statements. Append()
///    fsyncs before returning — a batch is never visible to readers unless
///    it is durable first.
///  - `snapshot.cql`: the compacted EDB at some epoch, one checksummed
///    record `[u32 len][u32 crc32][u64 epoch][statements]` after its own
///    magic. Written to a temp file, fsynced, then atomically renamed, so
///    a crash mid-compaction leaves the previous snapshot intact.
///
/// Recovery (QueryService::Recover) loads the snapshot if present, then
/// replays the intact prefix of wal.log; a torn or corrupt tail record —
/// the signature of a crash mid-append — is truncated with a warning, never
/// treated as data.
///
/// Fault injection: Append() honours the "wal/short-write" (record cut off
/// mid-write) and "wal/fsync" (write completes, fsync fails) failpoints;
/// the crash-before/after-commit points live in the service commit path.
class Wal {
 public:
  /// Opens (creating if needed) the log in `dir`; creates `dir` itself if
  /// missing. Validates the magic header of an existing log.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one checksummed record and fsyncs the log. A real write or
  /// fsync failure (ENOSPC, EIO, ...) rolls the log back to the pre-append
  /// offset, so torn bytes can never precede later acknowledged records;
  /// if even the rollback fails, the handle is poisoned and every further
  /// Append is rejected until ReadAll()/Reset() restores a consistent log.
  /// Injected failures simulate a crash instead: the torn/undurable record
  /// stays on disk for recovery to judge, and the handle is poisoned.
  Status Append(const std::string& payload);

  /// Reads every intact record and truncates any torn/corrupt tail in
  /// place. Safe to call repeatedly.
  Result<WalReadOutcome> ReadAll();

  /// Atomically replaces the snapshot file with `statements` tagged by the
  /// epoch it captures.
  Status WriteSnapshot(int64_t epoch, const std::string& statements);

  /// Loads the snapshot. `*found` is false (and the rest untouched) when no
  /// snapshot exists; a corrupt snapshot is an error — unlike a torn log
  /// tail it cannot be safely dropped, because the log it compacted away is
  /// gone.
  Status ReadSnapshot(bool* found, int64_t* epoch, std::string* statements);

  /// Empties the log back to its magic header (after a successful
  /// compaction made the records redundant) and fsyncs.
  Status Reset();

  /// Current log file size in bytes (header included) — the compaction
  /// trigger.
  long log_bytes() const { return log_bytes_; }

  const std::string& dir() const { return dir_; }
  std::string log_path() const;
  std::string snapshot_path() const;

 private:
  Wal(std::string dir, int fd, long log_bytes)
      : dir_(std::move(dir)), fd_(fd), log_bytes_(log_bytes) {}

  /// Rolls the log back to `pre_offset` after a real append failure and
  /// returns `cause`; poisons the handle when the rollback itself fails.
  Status FailAppend(long pre_offset, Status cause);

  std::string dir_;
  int fd_ = -1;  // wal.log, O_RDWR, positioned at EOF for appends
  long log_bytes_ = 0;
  /// Non-OK once the log may hold torn bytes this handle cannot remove
  /// (failed rollback, or an injected crash). Append refuses while set;
  /// a successful ReadAll()/Reset() — which re-establish a consistent
  /// log — clears it.
  Status failed_;
};

}  // namespace cqlopt

#endif  // CQLOPT_SERVICE_WAL_H_
