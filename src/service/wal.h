#ifndef CQLOPT_SERVICE_WAL_H_
#define CQLOPT_SERVICE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/database.h"
#include "util/status.h"

namespace cqlopt {

/// Renders `fact` as one loader-syntax statement (eval/loader.h), i.e. a
/// body-free rule whose constraints are the fact's positional constraints
/// converted to variables: `p(W1, W2) :- W1 = madison, W2 <= 3.`. Unlike
/// Fact::ToString (whose `$i` / `;` forms do not parse), the output is
/// accepted by LoadDatabaseText and re-parses to the same fact — the WAL
/// and snapshot files are made of exactly these statements.
std::string RenderFactStatement(const Fact& fact, const SymbolTable& symbols);

/// Renders every fact of `db` as one statement per line, relations in
/// PredId order and facts in insertion order — the deterministic snapshot
/// body Compact() writes.
std::string RenderDatabaseText(const Database& db, const SymbolTable& symbols);

/// The IEEE CRC-32 the WAL checksums records with, exposed so replication
/// can reuse the exact same polynomial for wire-record checksums and
/// per-epoch state digests (a follower's state CRC is comparable to the
/// primary's only because both sides hash identical bytes identically).
uint32_t WalCrc32(const std::string& data);

/// Lowercase hex of arbitrary bytes — how binary WAL payloads ride the
/// line-framed text protocol (REPLICATE responses).
std::string HexEncode(const std::string& bytes);

/// Inverse of HexEncode; false on odd length or a non-hex character.
bool HexDecode(const std::string& hex, std::string* out);

/// One decoded WAL record — the unit QueryService commits and replays.
///
/// On disk a record payload is either bare statement text (the pre-§14
/// insert-only format; its first byte is printable, so it can never clash
/// with a kind byte) or a batch-kind byte from the control range 0x01..0x08
/// followed by kind-specific fields. Writers only emit the kind byte when
/// they must (plain inserts keep the legacy encoding), so logs written by a
/// service that never retracts are byte-identical to pre-§14 logs.
struct WalRecord {
  enum class Kind {
    kInsert,     // legacy bare text: `statements`
    kRetract,    // 0x02 + statements
    kExpire,     // 0x03 + u64 now_ms + statements (TTL sweep deletions)
    kInsertTtl,  // 0x04 + u64 now_ms + u64 ttl_ms + statements
    kTick,       // 0x05 + u64 now_ms (clock advance with no expiry)
  };
  Kind kind = Kind::kInsert;
  /// Logical clock at commit (kExpire / kInsertTtl / kTick).
  int64_t now_ms = 0;
  /// Time-to-live of the batch's facts (kInsertTtl).
  int64_t ttl_ms = 0;
  /// Loader-syntax statements: the facts inserted, retracted, or expired.
  std::string statements;
};

/// Serializes `record` to the payload bytes Append() stores. kInsert
/// records encode as their bare statement text.
std::string EncodeWalRecord(const WalRecord& record);

/// Parses a payload produced by EncodeWalRecord (or by a pre-§14 writer).
/// An unknown batch-kind byte or a field truncated short of its fixed
/// header is an InvalidArgument naming the kind — NOT data to truncate:
/// the record passed its checksum, so the bytes are exactly what a (newer
/// or corrupted-at-write) writer committed, and dropping the batch would
/// silently fork the recovered state from the acknowledged one.
Result<WalRecord> DecodeWalRecord(const std::string& payload);

/// Everything a snapshot captures: the compacted EDB plus the streaming
/// state that must survive a restart — the logical clock and the not yet
/// expired TTL deadlines (deadline_ms + the fact's rendered statement).
/// Written as CQLSNAP2; ReadSnapshot also accepts pre-§14 CQLSNAP1 files
/// (clock 0, no deadlines).
struct WalSnapshot {
  int64_t epoch = 0;
  int64_t now_ms = 0;
  std::vector<std::pair<int64_t, std::string>> deadlines;
  std::string statements;
};

/// What Wal::ReadAll found in the log.
struct WalReadOutcome {
  /// The payload of every intact record, append order.
  std::vector<std::string> payloads;
  /// Bytes of torn/corrupt tail dropped from the log file (0 on a clean
  /// shutdown). The file was truncated back to the last intact record.
  long truncated_bytes = 0;
  /// Human-readable description of the truncation; empty when clean.
  std::string warning;
};

/// The write-ahead log backing a QueryService's durability (DESIGN.md §10).
///
/// One directory holds two files:
///  - `wal.log`: an 8-byte magic header followed by length-prefixed records
///    `[u32 len][u32 crc32][payload]` (little-endian), one per committed
///    ingest batch, payload being the batch's `.cql` statements. Append()
///    fsyncs before returning — a batch is never visible to readers unless
///    it is durable first.
///  - `snapshot.cql`: the compacted EDB at some epoch, one checksummed
///    record `[u32 len][u32 crc32][u64 epoch][statements]` after its own
///    magic. Written to a temp file, fsynced, then atomically renamed, so
///    a crash mid-compaction leaves the previous snapshot intact.
///
/// Recovery (QueryService::Recover) loads the snapshot if present, then
/// replays the intact prefix of wal.log; a torn or corrupt tail record —
/// the signature of a crash mid-append — is truncated with a warning, never
/// treated as data.
///
/// Fault injection: Append() honours the "wal/short-write" (record cut off
/// mid-write) and "wal/fsync" (write completes, fsync fails) failpoints;
/// the crash-before/after-commit points live in the service commit path.
class Wal {
 public:
  /// Opens (creating if needed) the log in `dir`; creates `dir` itself if
  /// missing. Validates the magic header of an existing log.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one checksummed record and fsyncs the log. A real write or
  /// fsync failure (ENOSPC, EIO, ...) rolls the log back to the pre-append
  /// offset, so torn bytes can never precede later acknowledged records;
  /// if even the rollback fails, the handle is poisoned and every further
  /// Append is rejected until ReadAll()/Reset() restores a consistent log.
  /// Injected failures simulate a crash instead: the torn/undurable record
  /// stays on disk for recovery to judge, and the handle is poisoned.
  Status Append(const std::string& payload);

  /// Reads every intact record and truncates any torn/corrupt tail in
  /// place. Safe to call repeatedly. A checksum-valid record carrying an
  /// unknown batch-kind byte fails with an InvalidArgument naming the byte
  /// and its file offset — such a record was durably committed (likely by a
  /// newer cqld), so unlike a torn tail it must never be dropped.
  Result<WalReadOutcome> ReadAll();

  /// Atomically replaces the snapshot file with `snapshot` (CQLSNAP2).
  Status WriteSnapshot(const WalSnapshot& snapshot);

  /// Loads the snapshot. `*found` is false (and `*snapshot` untouched) when
  /// no snapshot exists; a corrupt snapshot is an error — unlike a torn log
  /// tail it cannot be safely dropped, because the log it compacted away is
  /// gone. Reads both CQLSNAP2 and pre-§14 CQLSNAP1 files.
  Status ReadSnapshot(bool* found, WalSnapshot* snapshot);

  /// Empties the log back to its magic header (after a successful
  /// compaction made the records redundant) and fsyncs.
  Status Reset();

  /// Current log file size in bytes (header included) — the compaction
  /// trigger.
  long log_bytes() const { return log_bytes_; }

  const std::string& dir() const { return dir_; }
  std::string log_path() const;
  std::string snapshot_path() const;

 private:
  Wal(std::string dir, int fd, long log_bytes)
      : dir_(std::move(dir)), fd_(fd), log_bytes_(log_bytes) {}

  /// Rolls the log back to `pre_offset` after a real append failure and
  /// returns `cause`; poisons the handle when the rollback itself fails.
  Status FailAppend(long pre_offset, Status cause);

  std::string dir_;
  int fd_ = -1;  // wal.log, O_RDWR, positioned at EOF for appends
  long log_bytes_ = 0;
  /// Non-OK once the log may hold torn bytes this handle cannot remove
  /// (failed rollback, or an injected crash). Append refuses while set;
  /// a successful ReadAll()/Reset() — which re-establish a consistent
  /// log — clears it.
  Status failed_;
};

}  // namespace cqlopt

#endif  // CQLOPT_SERVICE_WAL_H_
