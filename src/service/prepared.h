#ifndef CQLOPT_SERVICE_PREPARED_H_
#define CQLOPT_SERVICE_PREPARED_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "eval/seminaive.h"
#include "transform/pipeline.h"

namespace cqlopt {

/// One prepared program: the memoized outcome of ApplyPipeline for a
/// (program, query, step sequence) key, plus the latest materialized
/// evaluation of the rewritten program against some database epoch.
///
/// Concurrency: the pipeline fields (`prepared`, `fingerprint`,
/// `canonical`) are immutable after construction. The materialized
/// evaluation is epoch-tagged, swapped under `mutex`, and always handed out
/// as `shared_ptr<const EvalResult>` — a reader that grabbed an older
/// materialization keeps it alive and untouched while another session
/// resumes past it (the same immutability discipline as the service's
/// epoch snapshots).
struct PreparedEntry {
  uint64_t fingerprint = 0;
  /// The exact canonical text the fingerprint digests; hits verify it so a
  /// 64-bit collision degrades to a miss instead of serving the wrong
  /// program (the Relation-index lesson: exact keys where a mixup would
  /// corrupt results).
  std::string canonical;
  PipelineResult prepared;

  /// Guards the three materialization fields below.
  std::mutex mutex;
  /// Last evaluation of `prepared.program`, or null if never evaluated.
  /// The pointee is always created non-const (the const lives only in this
  /// pointer type): when `use_count() == 1` under `mutex`, the resume path
  /// const-casts and consumes it in place of deep-copying the database.
  std::shared_ptr<const EvalResult> eval;
  /// Epoch of the database `eval` was computed against (-1 = none).
  int64_t eval_epoch = -1;
};

/// The prepared-program cache: canonical-fingerprint keyed, bounded, with
/// least-recently-used wholesale eviction of single entries. Entries are
/// shared_ptrs so an evicted entry stays valid for sessions still holding
/// it. All methods are thread-safe.
class PreparedCache {
 public:
  explicit PreparedCache(size_t capacity = 64) : capacity_(capacity) {}

  /// Looks up `fingerprint`, verifying the canonical text on a hit.
  /// Returns null on miss (or on a fingerprint collision, which then takes
  /// the insert path and replaces the colliding entry).
  std::shared_ptr<PreparedEntry> Find(uint64_t fingerprint,
                                      const std::string& canonical);

  /// Inserts a freshly prepared entry, evicting the least-recently-used
  /// entry when full. If a concurrent session inserted the same key first,
  /// that session's entry wins and is returned (pipeline outputs for equal
  /// keys are interchangeable).
  std::shared_ptr<PreparedEntry> Insert(std::shared_ptr<PreparedEntry> entry);

  struct Counters {
    long hits = 0;
    long misses = 0;
    long evictions = 0;
    size_t entries = 0;
  };
  Counters Snapshot() const;

 private:
  struct Slot {
    std::shared_ptr<PreparedEntry> entry;
    uint64_t last_used = 0;
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, Slot> entries_;
  uint64_t tick_ = 0;
  long hits_ = 0;
  long misses_ = 0;
  long evictions_ = 0;
};

}  // namespace cqlopt

#endif  // CQLOPT_SERVICE_PREPARED_H_
