#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "ast/parser.h"

namespace cqlopt {

const char* ServePathName(ServePath path) {
  switch (path) {
    case ServePath::kCold:
      return "cold";
    case ServePath::kPreparedEval:
      return "prepared";
    case ServePath::kEpochHit:
      return "epoch-hit";
    case ServePath::kResumed:
      return "resumed";
  }
  return "?";
}

QueryService::QueryService(Program program, Database edb,
                           ServiceOptions options)
    : program_(std::move(program)),
      options_(options),
      prepared_(options.prepared_capacity) {
  auto deltas = std::make_shared<EpochDelta>();
  deltas->id = 0;
  auto head = std::make_shared<EpochSnapshot>();
  head->id = 0;
  head->edb = std::move(edb);
  head->edb.set_epoch(0);
  head->deltas = std::move(deltas);
  head_ = std::move(head);
}

Result<std::unique_ptr<QueryService>> QueryService::FromText(
    const std::string& program_text, const std::string& edb_text,
    ServiceOptions options) {
  CQLOPT_ASSIGN_OR_RETURN(ParseResult parsed, ParseProgram(program_text));
  Database edb;
  if (!edb_text.empty()) {
    CQLOPT_ASSIGN_OR_RETURN(
        int loaded,
        LoadDatabaseText(edb_text, parsed.program.symbols, &edb));
    (void)loaded;
  }
  return FromParts(std::move(parsed.program), std::move(edb), options);
}

Result<std::unique_ptr<QueryService>> QueryService::FromParts(
    Program program, Database edb, ServiceOptions options) {
  if (options.eval.max_iterations < 0 || options.eval.threads < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::eval has negative max_iterations or threads");
  }
  // Traces are never served and rendering them would read the symbol table
  // from inside the (unlocked) evaluation.
  options.eval.record_trace = false;
  return std::unique_ptr<QueryService>(new QueryService(
      std::move(program), std::move(edb), std::move(options)));
}

std::shared_ptr<const QueryService::EpochSnapshot> QueryService::Head() const {
  std::lock_guard<std::mutex> lock(head_mutex_);
  return head_;
}

int64_t QueryService::epoch() const { return Head()->id; }

Result<std::shared_ptr<PreparedEntry>> QueryService::PrepareEntry(
    const std::string& query_text, const std::string& steps_spec,
    bool* prepared_hit) {
  CQLOPT_ASSIGN_OR_RETURN(std::vector<RewriteStep> steps,
                          ParseSteps(steps_spec));
  Query query;
  uint64_t fingerprint = 0;
  std::string canonical;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(query, ParseQueryText(query_text, &program_));
    fingerprint = PipelineFingerprint(program_, query, steps, &canonical);
  }
  if (auto entry = prepared_.Find(fingerprint, canonical)) {
    *prepared_hit = true;
    return entry;
  }
  *prepared_hit = false;
  auto entry = std::make_shared<PreparedEntry>();
  entry->fingerprint = fingerprint;
  entry->canonical = std::move(canonical);
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(
        entry->prepared,
        ApplyPipeline(program_, query, steps, options_.pipeline));
  }
  return prepared_.Insert(std::move(entry));
}

Result<uint64_t> QueryService::Prepare(const std::string& query_text,
                                       const std::string& steps_spec,
                                       bool* was_cached) {
  bool hit = false;
  CQLOPT_ASSIGN_OR_RETURN(std::shared_ptr<PreparedEntry> entry,
                          PrepareEntry(query_text, steps_spec, &hit));
  if (was_cached != nullptr) *was_cached = hit;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++(hit ? stats_.prepared_hits : stats_.prepared_misses);
  }
  return entry->fingerprint;
}

bool QueryService::CollectDeltas(const EpochSnapshot& head, int64_t from,
                                 std::vector<Fact>* out) const {
  const EpochDelta* node = head.deltas.get();
  std::vector<const EpochDelta*> newer;
  while (node != nullptr && node->id > from) {
    newer.push_back(node);
    node = node->prev.get();
  }
  if (node == nullptr || node->id != from) return false;
  // Chain is newest-first; replay batches oldest-first (commit order).
  for (auto it = newer.rbegin(); it != newer.rend(); ++it) {
    out->insert(out->end(), (*it)->facts.begin(), (*it)->facts.end());
  }
  return true;
}

Result<QueryOutcome> QueryService::Execute(const std::string& query_text,
                                           const std::string& steps_spec) {
  bool prepared_hit = false;
  CQLOPT_ASSIGN_OR_RETURN(std::shared_ptr<PreparedEntry> entry,
                          PrepareEntry(query_text, steps_spec, &prepared_hit));
  std::shared_ptr<const EpochSnapshot> head = Head();

  QueryOutcome outcome;
  outcome.epoch = head->id;
  outcome.fingerprint = entry->fingerprint;
  outcome.prepared_hit = prepared_hit;

  std::shared_ptr<const EvalResult> eval;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->eval != nullptr && entry->eval_epoch == head->id) {
      outcome.path = ServePath::kEpochHit;
      eval = entry->eval;
    } else {
      std::vector<Fact> delta;
      bool can_resume = entry->eval != nullptr &&
                        entry->eval->stats.reached_fixpoint &&
                        entry->eval_epoch >= 0 &&
                        entry->eval_epoch < head->id &&
                        CollectDeltas(*head, entry->eval_epoch, &delta);
      if (can_resume) {
        int base_iterations = entry->eval->stats.iterations;
        // Readers copy `entry->eval` only under this mutex, so a use count
        // of 1 proves nobody else holds the materialization and the resume
        // can consume it in place of deep-copying the whole database. (The
        // pointee is never created const — see the make_shared below — so
        // shedding the const qualifier is sound.)
        EvalResult base =
            entry->eval.use_count() == 1
                ? std::move(*std::const_pointer_cast<EvalResult>(entry->eval))
                : EvalResult(*entry->eval);
        entry->eval = nullptr;
        CQLOPT_ASSIGN_OR_RETURN(
            EvalResult resumed,
            ResumeEvaluate(entry->prepared.program, std::move(base), delta,
                           options_.eval));
        resumed.db.set_epoch(head->id);
        outcome.path = ServePath::kResumed;
        outcome.iterations_run = resumed.stats.iterations - base_iterations;
        eval = std::make_shared<EvalResult>(std::move(resumed));
      } else {
        EvalOptions opts = options_.eval;
        opts.strategy = EvalStrategy::kStratified;
        CQLOPT_ASSIGN_OR_RETURN(
            EvalResult cold,
            Evaluate(entry->prepared.program, head->edb, opts));
        cold.db.set_epoch(head->id);
        outcome.path =
            prepared_hit ? ServePath::kPreparedEval : ServePath::kCold;
        outcome.iterations_run = cold.stats.iterations;
        eval = std::make_shared<EvalResult>(std::move(cold));
      }
      entry->eval = eval;
      entry->eval_epoch = head->id;
    }
  }

  outcome.reached_fixpoint = eval->stats.reached_fixpoint;
  CQLOPT_ASSIGN_OR_RETURN(std::vector<Fact> answers,
                          QueryAnswers(*eval, entry->prepared.query));
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    outcome.answers.reserve(answers.size());
    for (const Fact& fact : answers) {
      outcome.answers.push_back(fact.ToString(*program_.symbols));
    }
  }
  std::sort(outcome.answers.begin(), outcome.answers.end());

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    ++(prepared_hit ? stats_.prepared_hits : stats_.prepared_misses);
    switch (outcome.path) {
      case ServePath::kCold:
      case ServePath::kPreparedEval:
        ++stats_.cold_evals;
        break;
      case ServePath::kEpochHit:
        ++stats_.epoch_hits;
        break;
      case ServePath::kResumed:
        ++stats_.resumes;
        stats_.resumed_iterations += outcome.iterations_run;
        break;
    }
  }
  return outcome;
}

Result<IngestOutcome> QueryService::Ingest(const std::string& facts_text) {
  Database staged;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(
        int loaded, LoadDatabaseText(facts_text, program_.symbols, &staged));
    (void)loaded;
  }
  std::vector<Fact> batch;
  for (const auto& [pred, rel] : staged.relations()) {
    for (const Relation::Entry& entry : rel.entries()) {
      batch.push_back(entry.fact);
    }
  }
  return IngestFacts(batch);
}

Result<IngestOutcome> QueryService::IngestFacts(
    const std::vector<Fact>& batch) {
  IngestOutcome out;
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    Database next = head_->edb;  // deep copy; readers keep the old snapshot
    std::vector<Fact> accepted;
    for (const Fact& fact : batch) {
      if (next.AddFact(fact) == InsertOutcome::kInserted) {
        accepted.push_back(fact);
      } else {
        ++out.duplicates;
      }
    }
    out.accepted = static_cast<int>(accepted.size());
    if (accepted.empty()) {
      out.epoch = head_->id;  // no-op commit burns no epoch
      return out;
    }
    auto deltas = std::make_shared<EpochDelta>();
    deltas->id = head_->id + 1;
    deltas->facts = std::move(accepted);
    deltas->prev = head_->deltas;
    auto head = std::make_shared<EpochSnapshot>();
    head->id = deltas->id;
    head->edb = std::move(next);
    head->edb.set_epoch(head->id);
    head->deltas = std::move(deltas);
    head_ = std::move(head);
    out.epoch = head_->id;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.ingests;
    stats_.epoch = out.epoch;
  }
  return out;
}

ServiceStats QueryService::Stats() const {
  ServiceStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.epoch = epoch();
  PreparedCache::Counters cache = prepared_.Snapshot();
  snapshot.prepared_entries = cache.entries;
  return snapshot;
}

}  // namespace cqlopt
