#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "ast/parser.h"
#include "eval/retract.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

/// Flattens a staged Database into commit order: relations by PredId,
/// facts in insertion order — deterministic, so a WAL replay that parses
/// the same text re-commits the same sequence.
std::vector<Fact> FactsOf(const Database& staged) {
  std::vector<Fact> batch;
  for (const auto& [pred, rel] : staged.relations()) {
    for (size_t i = 0; i < rel.size(); ++i) {
      batch.push_back(rel.fact(i));
    }
  }
  return batch;
}

bool IsGovernedAbort(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kResourceExhausted;
}

}  // namespace

const char* NodeRoleName(NodeRole role) {
  switch (role) {
    case NodeRole::kPrimary:
      return "primary";
    case NodeRole::kFollower:
      return "follower";
  }
  return "?";
}

const char* ServePathName(ServePath path) {
  switch (path) {
    case ServePath::kCold:
      return "cold";
    case ServePath::kPreparedEval:
      return "prepared";
    case ServePath::kEpochHit:
      return "epoch-hit";
    case ServePath::kResumed:
      return "resumed";
  }
  return "?";
}

QueryService::QueryService(Program program, Database edb,
                           ServiceOptions options)
    : program_(std::move(program)),
      options_(options),
      prepared_(options.prepared_capacity) {
  auto deltas = std::make_shared<EpochDelta>();
  deltas->id = 0;
  auto head = std::make_shared<EpochSnapshot>();
  head->id = 0;
  head->edb = std::move(edb);
  head->edb.set_epoch(0);
  head->deltas = std::move(deltas);
  head_ = std::move(head);
}

Result<std::unique_ptr<QueryService>> QueryService::FromText(
    const std::string& program_text, const std::string& edb_text,
    ServiceOptions options) {
  CQLOPT_ASSIGN_OR_RETURN(ParseResult parsed, ParseProgram(program_text));
  Database edb;
  if (!edb_text.empty()) {
    CQLOPT_ASSIGN_OR_RETURN(
        int loaded,
        LoadDatabaseText(edb_text, parsed.program.symbols, &edb));
    (void)loaded;
  }
  return FromParts(std::move(parsed.program), std::move(edb), options);
}

Result<std::unique_ptr<QueryService>> QueryService::FromParts(
    Program program, Database edb, ServiceOptions options) {
  if (options.eval.max_iterations < 0 || options.eval.threads < 0 ||
      options.eval.deadline_ms < 0 || options.eval.max_derived_facts < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::eval has a negative max_iterations, threads, "
        "deadline_ms, or max_derived_facts");
  }
  // Traces are never served and rendering them would read the symbol table
  // from inside the (unlocked) evaluation. Abort stats can't be handed to
  // concurrent queries through one shared pointer either.
  options.eval.record_trace = false;
  options.eval.abort_stats = nullptr;
  std::unique_ptr<Wal> wal;
  if (!options.wal_dir.empty()) {
    CQLOPT_ASSIGN_OR_RETURN(wal, Wal::Open(options.wal_dir));
  }
  auto service = std::unique_ptr<QueryService>(new QueryService(
      std::move(program), std::move(edb), std::move(options)));
  service->wal_ = std::move(wal);
  return service;
}

std::shared_ptr<const QueryService::EpochSnapshot> QueryService::Head() const {
  std::lock_guard<std::mutex> lock(head_mutex_);
  return head_;
}

int64_t QueryService::epoch() const { return Head()->id; }

Result<std::shared_ptr<PreparedEntry>> QueryService::PrepareEntry(
    const std::string& query_text, const std::string& steps_spec,
    bool* prepared_hit) {
  CQLOPT_ASSIGN_OR_RETURN(std::vector<RewriteStep> steps,
                          ParseSteps(steps_spec));
  Query query;
  uint64_t fingerprint = 0;
  std::string canonical;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(query, ParseQueryText(query_text, &program_));
    fingerprint = PipelineFingerprint(program_, query, steps, &canonical);
  }
  if (auto entry = prepared_.Find(fingerprint, canonical)) {
    *prepared_hit = true;
    return entry;
  }
  *prepared_hit = false;
  auto entry = std::make_shared<PreparedEntry>();
  entry->fingerprint = fingerprint;
  entry->canonical = std::move(canonical);
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(
        entry->prepared,
        ApplyPipeline(program_, query, steps, options_.pipeline));
  }
  return prepared_.Insert(std::move(entry));
}

Result<uint64_t> QueryService::Prepare(const std::string& query_text,
                                       const std::string& steps_spec,
                                       bool* was_cached) {
  bool hit = false;
  CQLOPT_ASSIGN_OR_RETURN(std::shared_ptr<PreparedEntry> entry,
                          PrepareEntry(query_text, steps_spec, &hit));
  if (was_cached != nullptr) *was_cached = hit;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++(hit ? stats_.prepared_hits : stats_.prepared_misses);
  }
  return entry->fingerprint;
}

Status QueryService::NoteEvalError(const Status& status) {
  if (IsGovernedAbort(status.code())) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.governed_aborts;
  }
  return status;
}

bool QueryService::CollectDeltas(const EpochSnapshot& head, int64_t from,
                                 std::vector<DeltaBatch>* out) const {
  const EpochDelta* node = head.deltas.get();
  std::vector<const EpochDelta*> newer;
  while (node != nullptr && node->id > from) {
    newer.push_back(node);
    node = node->prev.get();
  }
  if (node == nullptr || node->id != from) return false;
  // Chain is newest-first; replay batches oldest-first (commit order),
  // merging runs of same-kind epochs into one catch-up step — one
  // ResumeEvaluate covers any number of insert epochs, one RetractEvaluate
  // any number of retraction epochs.
  for (auto it = newer.rbegin(); it != newer.rend(); ++it) {
    if (out->empty() || out->back().retract != (*it)->retract) {
      out->push_back(DeltaBatch{(*it)->retract, {}});
    }
    out->back().facts.insert(out->back().facts.end(), (*it)->facts.begin(),
                             (*it)->facts.end());
  }
  return true;
}

Result<QueryOutcome> QueryService::Execute(const std::string& query_text,
                                           const std::string& steps_spec,
                                           int64_t min_epoch) {
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    if (quarantined_) {
      return Status::DataLoss("node quarantined after divergence: " +
                              quarantine_reason_);
    }
    if (min_epoch >= 0 && head_->id < min_epoch) {
      // The ASOF consistency token: the caller read/ingested at min_epoch on
      // the primary and this node has not replicated that far yet. Typed so
      // clients retry with backoff instead of reading stale state.
      return Status::Unavailable(
          "ASOF epoch " + std::to_string(min_epoch) +
          " not reached yet (head at " + std::to_string(head_->id) +
          "); replication lag — retry");
    }
  }
  bool prepared_hit = false;
  CQLOPT_ASSIGN_OR_RETURN(std::shared_ptr<PreparedEntry> entry,
                          PrepareEntry(query_text, steps_spec, &prepared_hit));
  std::shared_ptr<const EpochSnapshot> head = Head();

  QueryOutcome outcome;
  outcome.epoch = head->id;
  outcome.fingerprint = entry->fingerprint;
  outcome.prepared_hit = prepared_hit;

  std::shared_ptr<const EvalResult> eval;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->eval != nullptr && entry->eval_epoch == head->id) {
      outcome.path = ServePath::kEpochHit;
      eval = entry->eval;
    } else {
      // Cold evaluations and RetractEvaluate's purity check both run the
      // serving engine's stratified strategy.
      EvalOptions opts = options_.eval;
      opts.strategy = EvalStrategy::kStratified;
      std::vector<DeltaBatch> batches;
      bool can_resume = entry->eval != nullptr &&
                        entry->eval->stats.reached_fixpoint &&
                        entry->eval_epoch >= 0 &&
                        entry->eval_epoch < head->id &&
                        CollectDeltas(*head, entry->eval_epoch, &batches);
      bool resumed_ok = false;
      bool any_retract = false;
      if (can_resume) {
        int base_iterations = entry->eval->stats.iterations;
        long base_inserted = entry->eval->stats.inserted;
        // Readers copy `entry->eval` only under this mutex, so a use count
        // of 1 proves nobody else holds the materialization and the resume
        // can consume it in place of deep-copying the whole database. (The
        // pointee is never created const — see the make_shared below — so
        // shedding the const qualifier is sound.)
        EvalResult base =
            entry->eval.use_count() == 1
                ? std::move(*std::const_pointer_cast<EvalResult>(entry->eval))
                : EvalResult(*entry->eval);
        entry->eval = nullptr;
        // On error the materialization stays cleared: the next query for
        // this entry simply goes cold — a deadline/budget abort never
        // poisons the entry or the service. Each committed epoch is applied
        // with its own kind: insert runs resume the delta fixpoint,
        // retraction runs repair it (eval/retract.h); a capped
        // mid-chain result cannot feed the next step, so that falls back
        // to a cold evaluation.
        bool chain_ok = true;
        for (size_t b = 0; b < batches.size(); ++b) {
          if (b > 0 && !base.stats.reached_fixpoint) {
            chain_ok = false;  // capped mid-chain: go cold instead
            break;
          }
          any_retract = any_retract || batches[b].retract;
          Result<EvalResult> stepped =
              batches[b].retract
                  ? RetractEvaluate(entry->prepared.program, std::move(base),
                                    batches[b].facts, opts)
                  : ResumeEvaluate(entry->prepared.program, std::move(base),
                                   batches[b].facts, options_.eval);
          if (!stepped.ok()) return NoteEvalError(stepped.status());
          base = std::move(*stepped);
        }
        if (chain_ok) {
          base.db.set_epoch(head->id);
          outcome.path = ServePath::kResumed;
          // Full-path retractions rebuild from scratch, so the counters can
          // end below the base's; clamp — the scheduler charges these.
          outcome.iterations_run =
              std::max(0, base.stats.iterations - base_iterations);
          outcome.facts_stored =
              std::max(long{0}, base.stats.inserted - base_inserted);
          eval = std::make_shared<EvalResult>(std::move(base));
          resumed_ok = true;
        }
      }
      if (!resumed_ok) {
        Result<EvalResult> cold_result =
            Evaluate(entry->prepared.program, head->edb, opts);
        if (!cold_result.ok()) return NoteEvalError(cold_result.status());
        EvalResult cold = std::move(*cold_result);
        cold.db.set_epoch(head->id);
        outcome.path =
            prepared_hit ? ServePath::kPreparedEval : ServePath::kCold;
        outcome.iterations_run = cold.stats.iterations;
        outcome.facts_stored = cold.stats.inserted;
        any_retract = false;
        eval = std::make_shared<EvalResult>(std::move(cold));
      }
      if (any_retract) {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.retract_resumes;
      }
      entry->eval = eval;
      entry->eval_epoch = head->id;
    }
  }

  outcome.reached_fixpoint = eval->stats.reached_fixpoint;
  CQLOPT_ASSIGN_OR_RETURN(std::vector<Fact> answers,
                          QueryAnswers(*eval, entry->prepared.query));
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    outcome.answers.reserve(answers.size());
    for (const Fact& fact : answers) {
      outcome.answers.push_back(fact.ToString(*program_.symbols));
    }
  }
  std::sort(outcome.answers.begin(), outcome.answers.end());

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    ++(prepared_hit ? stats_.prepared_hits : stats_.prepared_misses);
    switch (outcome.path) {
      case ServePath::kCold:
      case ServePath::kPreparedEval:
        ++stats_.cold_evals;
        break;
      case ServePath::kEpochHit:
        ++stats_.epoch_hits;
        break;
      case ServePath::kResumed:
        ++stats_.resumes;
        stats_.resumed_iterations += outcome.iterations_run;
        break;
    }
  }
  return outcome;
}

Result<IngestOutcome> QueryService::Ingest(const std::string& facts_text) {
  Database staged;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(
        int loaded, LoadDatabaseText(facts_text, program_.symbols, &staged));
    (void)loaded;
  }
  // The verbatim text is the WAL payload: replay parses it with the same
  // loader against the same prior state, so it re-commits these exact
  // facts.
  return CommitBatch(FactsOf(staged), facts_text, /*ttl_ms=*/0);
}

Result<IngestOutcome> QueryService::IngestTtl(const std::string& facts_text,
                                              int64_t ttl_ms) {
  if (ttl_ms <= 0) {
    return Status::InvalidArgument("TTL must be > 0 ms, got " +
                                   std::to_string(ttl_ms));
  }
  Database staged;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(
        int loaded, LoadDatabaseText(facts_text, program_.symbols, &staged));
    (void)loaded;
  }
  return CommitBatch(FactsOf(staged), facts_text, ttl_ms);
}

/// Renders `batch` to loader syntax and re-parses it, returning the
/// re-parsed facts — the facts the WAL replay will reconstruct. Committing
/// these (not the originals) keeps "committed state == parse(logged text)"
/// exact. Must be called with symbols_mutex_ held.
static Result<std::vector<Fact>> RoundTripBatchLocked(
    const std::vector<Fact>& batch, Program* program, std::string* text) {
  Database staged;
  for (const Fact& fact : batch) {
    *text += RenderFactStatement(fact, *program->symbols);
    *text += '\n';
  }
  Result<int> loaded = LoadDatabaseText(*text, program->symbols, &staged);
  if (!loaded.ok()) {
    return Status::Internal(
        "WAL-bound batch failed to round-trip through the loader: " +
        loaded.status().ToString());
  }
  return FactsOf(staged);
}

Result<IngestOutcome> QueryService::IngestFacts(
    const std::vector<Fact>& batch) {
  if (wal_ == nullptr) return CommitBatch(batch, std::string(), /*ttl_ms=*/0);
  // Durable path: render the batch to loader syntax and commit what that
  // text *parses back to* — recovery replays text, so logging anything the
  // parse doesn't reproduce exactly would fork the recovered state.
  std::string text;
  std::vector<Fact> round_tripped;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(round_tripped,
                            RoundTripBatchLocked(batch, &program_, &text));
  }
  return CommitBatch(round_tripped, text, /*ttl_ms=*/0);
}

Result<IngestOutcome> QueryService::IngestTtlFacts(
    const std::vector<Fact>& batch, int64_t ttl_ms) {
  if (ttl_ms <= 0) {
    return Status::InvalidArgument("TTL must be > 0 ms, got " +
                                   std::to_string(ttl_ms));
  }
  if (wal_ == nullptr) return CommitBatch(batch, std::string(), ttl_ms);
  std::string text;
  std::vector<Fact> round_tripped;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(round_tripped,
                            RoundTripBatchLocked(batch, &program_, &text));
  }
  return CommitBatch(round_tripped, text, ttl_ms);
}

Result<RetractOutcome> QueryService::Retract(const std::string& facts_text) {
  Database staged;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(
        int loaded, LoadDatabaseText(facts_text, program_.symbols, &staged));
    (void)loaded;
  }
  return CommitRetract(FactsOf(staged), facts_text);
}

Result<RetractOutcome> QueryService::RetractFacts(
    const std::vector<Fact>& batch) {
  if (wal_ == nullptr) return CommitRetract(batch, std::string());
  std::string text;
  std::vector<Fact> round_tripped;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(round_tripped,
                            RoundTripBatchLocked(batch, &program_, &text));
  }
  return CommitRetract(round_tripped, text);
}

Result<IngestOutcome> QueryService::CommitBatch(const std::vector<Fact>& batch,
                                                const std::string& statements,
                                                int64_t ttl_ms) {
  IngestOutcome out;
  bool compact_due = false;
  long wal_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    Database next = head_->edb;  // deep copy; readers keep the old snapshot
    std::vector<Fact> accepted;
    for (const Fact& fact : batch) {
      if (next.AddFact(fact) == InsertOutcome::kInserted) {
        accepted.push_back(fact);
      } else {
        ++out.duplicates;
      }
    }
    out.accepted = static_cast<int>(accepted.size());
    if (accepted.empty()) {
      out.epoch = head_->id;  // no-op commit burns no epoch (and no WAL I/O)
      return out;
    }
    const bool log_this = wal_ != nullptr && !replaying_;
    // Plain inserts keep the legacy bare-text payload (byte-identical to
    // pre-§14 logs); TTL'd inserts carry the clock and TTL so replay
    // re-registers the same deadlines. Computed whenever a WAL exists —
    // replay skips the disk append but still feeds the replication stream
    // (re-encoding a decoded record reproduces its bytes exactly).
    std::string payload;
    if (wal_ != nullptr) {
      payload = ttl_ms > 0
                    ? EncodeWalRecord({WalRecord::Kind::kInsertTtl, now_ms_,
                                       ttl_ms, statements})
                    : statements;
    }
    if (log_this) {
      // Durability barrier: the record must be on disk before any reader
      // can observe the new epoch. An append failure (real or injected)
      // aborts the commit — the epoch never existed.
      CQLOPT_RETURN_IF_ERROR(wal_->Append(payload));
      if (failpoint::ShouldFail(failpoint::kWalCrashBeforeCommit)) {
        return Status::Internal(
            std::string("injected crash between WAL append and epoch "
                        "commit (failpoint ") +
            failpoint::kWalCrashBeforeCommit + ")");
      }
    }
    auto deltas = std::make_shared<EpochDelta>();
    deltas->id = head_->id + 1;
    deltas->facts = accepted;
    deltas->prev = head_->deltas;
    auto head = std::make_shared<EpochSnapshot>();
    head->id = deltas->id;
    head->edb = std::move(next);
    head->edb.set_epoch(head->id);
    head->deltas = std::move(deltas);
    head_ = std::move(head);
    out.epoch = head_->id;
    if (ttl_ms > 0) {
      // Deadlines register at the epoch commit, not the WAL append: an
      // aborted commit must not leave a live deadline behind. Duplicates
      // never reach here, so re-ingesting a stored fact does NOT refresh
      // its deadline (§14: first-write-wins window semantics).
      for (const Fact& fact : accepted) {
        deadlines_.emplace(now_ms_ + ttl_ms, fact);
      }
    }
    if (wal_ != nullptr) FeedAppendLocked(std::move(payload));
    if (log_this) {
      wal_bytes = wal_->log_bytes();
      compact_due = options_.wal_compact_bytes > 0 &&
                    wal_bytes > options_.wal_compact_bytes;
      if (failpoint::ShouldFail(failpoint::kWalCrashAfterCommit)) {
        return Status::Internal(
            std::string("injected crash after epoch commit (failpoint ") +
            failpoint::kWalCrashAfterCommit + ")");
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.ingests;
    if (ttl_ms > 0) ++stats_.ttl_ingests;
    stats_.epoch = out.epoch;
    if (wal_ != nullptr && !replaying_) {
      ++stats_.wal_appends;
      stats_.wal_bytes = wal_bytes;
    }
  }
  if (compact_due) {
    // The epoch is already durable and visible; failing the ingest over a
    // compaction problem would make the caller retry a committed batch.
    // Count the failure instead — the un-reset log stays replayable.
    Status compacted = Compact();
    if (!compacted.ok()) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.wal_compaction_failures;
    }
  }
  return out;
}

namespace {

/// Marks `fact`'s row in `db` dead in `masks`, returning false when the fact
/// is not stored (or already marked). Masks are sized lazily per relation.
bool MarkDead(const Database& db, const Fact& fact,
              std::map<PredId, std::vector<uint8_t>>* masks) {
  const Relation* rel = db.Find(fact.pred);
  if (rel == nullptr) return false;
  std::optional<size_t> row = rel->RowOf(fact.Key());
  if (!row.has_value()) return false;
  std::vector<uint8_t>& mask = (*masks)[fact.pred];
  if (mask.empty()) mask.resize(rel->size(), 0);
  if (mask[*row]) return false;
  mask[*row] = 1;
  return true;
}

/// The spliced successor EDB: relations with dead rows are rebuilt without
/// them; relations spliced down to nothing are dropped outright, so the
/// result is indistinguishable from an EDB that never held those facts
/// (scratch re-evaluation compares equal, relation set included).
Database SplicedEdb(const Database& base,
                    const std::map<PredId, std::vector<uint8_t>>& masks) {
  Database next;
  for (const auto& [pred, rel] : base.relations()) {
    auto it = masks.find(pred);
    if (it == masks.end()) {
      *next.FindMutable(pred) = rel;
      continue;
    }
    Relation spliced = rel.Spliced(it->second, nullptr);
    if (spliced.size() > 0) *next.FindMutable(pred) = std::move(spliced);
  }
  return next;
}

}  // namespace

Result<RetractOutcome> QueryService::CommitRetract(
    const std::vector<Fact>& batch, const std::string& statements) {
  RetractOutcome out;
  bool compact_due = false;
  long wal_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    std::map<PredId, std::vector<uint8_t>> dead;
    std::vector<Fact> removed;
    for (const Fact& fact : batch) {
      if (MarkDead(head_->edb, fact, &dead)) {
        removed.push_back(fact);
      } else {
        ++out.missing;  // never inserted, already gone, or batch-duplicate
      }
    }
    out.removed = static_cast<int>(removed.size());
    if (removed.empty()) {
      out.epoch = head_->id;  // no-op retraction burns no epoch, no WAL I/O
      return out;
    }
    const bool log_this = wal_ != nullptr && !replaying_;
    std::string payload;
    if (wal_ != nullptr) {
      payload = EncodeWalRecord({WalRecord::Kind::kRetract, 0, 0, statements});
    }
    if (log_this) {
      CQLOPT_RETURN_IF_ERROR(wal_->Append(payload));
      if (failpoint::ShouldFail(failpoint::kWalCrashBeforeCommit)) {
        return Status::Internal(
            std::string("injected crash between WAL append and epoch "
                        "commit (failpoint ") +
            failpoint::kWalCrashBeforeCommit + ")");
      }
    }
    auto deltas = std::make_shared<EpochDelta>();
    deltas->id = head_->id + 1;
    deltas->retract = true;
    deltas->facts = std::move(removed);
    deltas->prev = head_->deltas;
    auto head = std::make_shared<EpochSnapshot>();
    head->id = deltas->id;
    head->edb = SplicedEdb(head_->edb, dead);
    head->edb.set_epoch(head->id);
    head->deltas = std::move(deltas);
    head_ = std::move(head);
    out.epoch = head_->id;
    // Pending deadlines for the removed facts are left in place: the sweep
    // skips entries whose fact is no longer stored, so they age out as
    // harmless no-ops — cheaper than a multimap scan per retraction.
    if (wal_ != nullptr) FeedAppendLocked(std::move(payload));
    if (log_this) {
      wal_bytes = wal_->log_bytes();
      compact_due = options_.wal_compact_bytes > 0 &&
                    wal_bytes > options_.wal_compact_bytes;
      if (failpoint::ShouldFail(failpoint::kWalCrashAfterCommit)) {
        return Status::Internal(
            std::string("injected crash after epoch commit (failpoint ") +
            failpoint::kWalCrashAfterCommit + ")");
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.retracts;
    stats_.retracted_facts += out.removed;
    stats_.retract_missing += out.missing;
    stats_.epoch = out.epoch;
    if (wal_ != nullptr && !replaying_) {
      ++stats_.wal_appends;
      stats_.wal_bytes = wal_bytes;
    }
  }
  if (compact_due) {
    Status compacted = Compact();
    if (!compacted.ok()) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.wal_compaction_failures;
    }
  }
  return out;
}

int64_t QueryService::now_ms() const {
  std::lock_guard<std::mutex> lock(head_mutex_);
  return now_ms_;
}

Result<TickOutcome> QueryService::AdvanceClock(int64_t delta_ms) {
  if (delta_ms < 0) {
    return Status::InvalidArgument("clock only moves forward; delta " +
                                   std::to_string(delta_ms) + "ms");
  }
  int64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    if (delta_ms == 0) {
      // Pure read: report the clock without logging a tick.
      return TickOutcome{now_ms_, 0, head_->id};
    }
    target = now_ms_ + delta_ms;
  }
  return AdvanceClockTo(target);
}

Result<TickOutcome> QueryService::AdvanceClockTo(int64_t target_now_ms) {
  TickOutcome out;
  long wal_bytes = 0;
  bool logged = false;
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    if (target_now_ms <= now_ms_) {
      return TickOutcome{now_ms_, 0, head_->id};  // clock is monotone
    }
    // Sweep every deadline that the advance crosses. Entries whose fact is
    // no longer stored (retracted, or expired by an earlier overlapping
    // deadline) are stale — dropped without effect. Replay re-derives this
    // exact sweep from the reconstructed deadline table, so the kExpire
    // record needs only the target clock for determinism; it still carries
    // the expired statements so the log is self-describing. The swept range
    // is only erased at the commit point below — an append failure must
    // leave the table (like every other piece of state) untouched.
    std::map<PredId, std::vector<uint8_t>> dead;
    std::vector<Fact> expired;
    const auto sweep_end = deadlines_.upper_bound(target_now_ms);
    for (auto it = deadlines_.begin(); it != sweep_end; ++it) {
      if (MarkDead(head_->edb, it->second, &dead)) {
        expired.push_back(it->second);
      }
    }
    out.expired = static_cast<int>(expired.size());
    const bool log_this = wal_ != nullptr && !replaying_;
    if (expired.empty()) {
      std::string payload;
      if (wal_ != nullptr) {
        payload = EncodeWalRecord(
            {WalRecord::Kind::kTick, target_now_ms, 0, std::string()});
      }
      if (log_this) {
        // The clock itself is durable state: without the tick record a
        // recovered service would run behind and re-expire nothing early,
        // but RenderStateText (and thus the crash differential) would
        // diverge on clock_ms.
        CQLOPT_RETURN_IF_ERROR(wal_->Append(payload));
        logged = true;
        wal_bytes = wal_->log_bytes();
        if (failpoint::ShouldFail(failpoint::kWalCrashBeforeCommit)) {
          return Status::Internal(
              std::string("injected crash between WAL append and epoch "
                          "commit (failpoint ") +
              failpoint::kWalCrashBeforeCommit + ")");
        }
      }
      deadlines_.erase(deadlines_.begin(), sweep_end);  // stale-only sweep
      now_ms_ = target_now_ms;
      out.now_ms = now_ms_;
      out.epoch = head_->id;
      if (wal_ != nullptr) FeedAppendLocked(std::move(payload));
      if (log_this && failpoint::ShouldFail(failpoint::kWalCrashAfterCommit)) {
        return Status::Internal(
            std::string("injected crash after epoch commit (failpoint ") +
            failpoint::kWalCrashAfterCommit + ")");
      }
    } else {
      std::string payload;
      if (wal_ != nullptr) {
        std::string statements;
        {
          // Lock order: head_mutex_ > symbols_mutex_.
          std::lock_guard<std::mutex> sym(symbols_mutex_);
          for (const Fact& fact : expired) {
            statements += RenderFactStatement(fact, *program_.symbols);
            statements += '\n';
          }
        }
        payload = EncodeWalRecord(
            {WalRecord::Kind::kExpire, target_now_ms, 0, statements});
      }
      if (log_this) {
        CQLOPT_RETURN_IF_ERROR(wal_->Append(payload));
        logged = true;
        if (failpoint::ShouldFail(failpoint::kWalCrashBeforeCommit)) {
          return Status::Internal(
              std::string("injected crash between WAL append and epoch "
                          "commit (failpoint ") +
              failpoint::kWalCrashBeforeCommit + ")");
        }
      }
      auto deltas = std::make_shared<EpochDelta>();
      deltas->id = head_->id + 1;
      deltas->retract = true;
      deltas->facts = std::move(expired);
      deltas->prev = head_->deltas;
      auto head = std::make_shared<EpochSnapshot>();
      head->id = deltas->id;
      head->edb = SplicedEdb(head_->edb, dead);
      head->edb.set_epoch(head->id);
      head->deltas = std::move(deltas);
      head_ = std::move(head);
      deadlines_.erase(deadlines_.begin(), sweep_end);
      now_ms_ = target_now_ms;
      out.now_ms = now_ms_;
      out.epoch = head_->id;
      if (wal_ != nullptr) FeedAppendLocked(std::move(payload));
      if (log_this) {
        wal_bytes = wal_->log_bytes();
        if (failpoint::ShouldFail(failpoint::kWalCrashAfterCommit)) {
          return Status::Internal(
              std::string("injected crash after epoch commit (failpoint ") +
              failpoint::kWalCrashAfterCommit + ")");
        }
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.ticks;
    stats_.expired_facts += out.expired;
    stats_.epoch = out.epoch;
    if (logged) {
      ++stats_.wal_appends;
      stats_.wal_bytes = wal_bytes;
    }
  }
  return out;
}

Status QueryService::ReplayRecord(const WalRecord& record) {
  switch (record.kind) {
    case WalRecord::Kind::kInsert:
      return Ingest(record.statements).status();
    case WalRecord::Kind::kRetract:
      return Retract(record.statements).status();
    case WalRecord::Kind::kInsertTtl:
      // Restore the commit-time clock first so the re-registered deadlines
      // land at the original now_ms + ttl_ms.
      {
        std::lock_guard<std::mutex> lock(head_mutex_);
        if (record.now_ms > now_ms_) now_ms_ = record.now_ms;
      }
      return IngestTtl(record.statements, record.ttl_ms).status();
    case WalRecord::Kind::kExpire:
    case WalRecord::Kind::kTick:
      // Both replay as a clock advance: the sweep is re-derived from the
      // reconstructed deadline table, deterministically reproducing the
      // kExpire deletions (or nothing, for a tick).
      return AdvanceClockTo(record.now_ms).status();
  }
  return Status::Internal("unhandled WAL record kind");
}

Status QueryService::Recover(RecoverOutcome* out) {
  RecoverOutcome recovered;
  if (wal_ == nullptr || recovered_) {
    recovered.epoch = epoch();
    if (out != nullptr) *out = recovered;
    return Status::OK();
  }
  // 1. The compaction snapshot, if any, replaces the constructor-provided
  //    EDB outright: it captured that EDB plus every batch compacted away,
  //    along with the streaming state (clock + pending TTL deadlines) that
  //    the compacted records would otherwise have rebuilt.
  bool snapshot_found = false;
  WalSnapshot snapshot;
  CQLOPT_RETURN_IF_ERROR(wal_->ReadSnapshot(&snapshot_found, &snapshot));
  if (snapshot_found) {
    Database edb;
    std::multimap<int64_t, Fact> deadlines;
    {
      std::lock_guard<std::mutex> lock(symbols_mutex_);
      Result<int> loaded =
          LoadDatabaseText(snapshot.statements, program_.symbols, &edb);
      if (!loaded.ok()) {
        return Status::Internal("WAL snapshot failed to load: " +
                                loaded.status().ToString());
      }
      for (const auto& [deadline_ms, statement] : snapshot.deadlines) {
        Database one;
        Result<int> fact_loaded =
            LoadDatabaseText(statement, program_.symbols, &one);
        if (!fact_loaded.ok() || one.TotalFacts() != 1) {
          return Status::Internal(
              "WAL snapshot deadline entry failed to load: " + statement);
        }
        for (const Fact& fact : FactsOf(one)) {
          deadlines.emplace(deadline_ms, fact);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(head_mutex_);
      auto deltas = std::make_shared<EpochDelta>();
      deltas->id = snapshot.epoch;  // chain bottoms out at the snapshot
      auto head = std::make_shared<EpochSnapshot>();
      head->id = snapshot.epoch;
      head->edb = std::move(edb);
      head->edb.set_epoch(snapshot.epoch);
      head->deltas = std::move(deltas);
      head_ = std::move(head);
      now_ms_ = snapshot.now_ms;
      deadlines_ = std::move(deadlines);
      // The snapshot starts a feed generation: replication coordinates are
      // stable across restarts because this base is re-derived, not counted.
      feed_.clear();
      feed_base_epoch_ = snapshot.epoch;
    }
    recovered.snapshot_loaded = true;
    recovered.snapshot_epoch = snapshot.epoch;
  }
  // 2. Replay the intact log records through the normal commit paths —
  //    identical parsing, dedup, epoch numbering, and expiry sweeps as the
  //    original run.
  CQLOPT_ASSIGN_OR_RETURN(WalReadOutcome read, wal_->ReadAll());
  recovered.truncated_bytes = read.truncated_bytes;
  recovered.warning = read.warning;
  replaying_ = true;
  for (const std::string& payload : read.payloads) {
    Result<WalRecord> record = DecodeWalRecord(payload);
    Status replayed =
        record.ok() ? ReplayRecord(*record) : record.status();
    if (!replayed.ok()) {
      replaying_ = false;
      return Status::Internal("WAL replay failed at record " +
                              std::to_string(recovered.batches_replayed) +
                              ": " + replayed.ToString());
    }
    ++recovered.batches_replayed;
  }
  replaying_ = false;
  recovered_ = true;
  recovered.epoch = epoch();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.wal_replayed_batches += recovered.batches_replayed;
    stats_.wal_bytes = wal_->log_bytes();
    stats_.epoch = recovered.epoch;
  }
  if (out != nullptr) *out = recovered;
  return Status::OK();
}

Status QueryService::Compact() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("no WAL configured; nothing to compact");
  }
  long wal_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    WalSnapshot snapshot;
    snapshot.epoch = head_->id;
    snapshot.now_ms = now_ms_;
    {
      // Lock order: head_mutex_ > symbols_mutex_ (rendering reads names).
      std::lock_guard<std::mutex> sym(symbols_mutex_);
      snapshot.statements = RenderDatabaseText(head_->edb, *program_.symbols);
      for (const auto& [deadline_ms, fact] : deadlines_) {
        snapshot.deadlines.emplace_back(
            deadline_ms, RenderFactStatement(fact, *program_.symbols));
      }
    }
    CQLOPT_RETURN_IF_ERROR(wal_->WriteSnapshot(snapshot));
    // Only after the snapshot is durably in place do the records become
    // redundant; a crash between the two leaves snapshot + stale log, and
    // replaying the stale records is harmless (they dedup to no-ops).
    CQLOPT_RETURN_IF_ERROR(wal_->Reset());
    // New feed generation: followers holding pre-compaction coordinates
    // renegotiate via snapshot on their next fetch.
    feed_.clear();
    feed_base_epoch_ = snapshot.epoch;
    // Captured here because log_bytes_ is only stable under head_mutex_
    // (concurrent commits mutate it).
    wal_bytes = wal_->log_bytes();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.wal_compactions;
    stats_.wal_bytes = wal_bytes;
  }
  return Status::OK();
}

std::string QueryService::RenderStateTextLocked() const {
  // Caller holds head_mutex_; lock order head_mutex_ > symbols_mutex_.
  std::lock_guard<std::mutex> lock(symbols_mutex_);
  std::string text = "epoch=" + std::to_string(head_->id) + "\nclock_ms=" +
                     std::to_string(now_ms_) + "\n" +
                     RenderDatabaseText(head_->edb, *program_.symbols);
  for (const auto& [deadline_ms, fact] : deadlines_) {
    text += "# ttl " + std::to_string(deadline_ms) + " " +
            RenderFactStatement(fact, *program_.symbols) + "\n";
  }
  return text;
}

std::string QueryService::RenderStateText() const {
  std::lock_guard<std::mutex> lock(head_mutex_);
  return RenderStateTextLocked();
}

void QueryService::FeedAppendLocked(std::string payload) {
  feed_.push_back(std::move(payload));
}

Status QueryService::FetchReplication(int64_t base_epoch, uint64_t index,
                                      size_t max_records,
                                      ReplicationBatch* out) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "replication requires a WAL (start the primary with --wal-dir)");
  }
  if (failpoint::ShouldFail(failpoint::kReplicaFetch)) {
    return Status::Unavailable(
        std::string("injected replication fetch drop (failpoint ") +
        failpoint::kReplicaFetch + ")");
  }
  *out = ReplicationBatch();
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    out->base_epoch = feed_base_epoch_;
    out->feed_size = feed_.size();
    out->primary_epoch = head_->id;
    out->primary_clock_ms = now_ms_;
    // The CRC and the cut are atomic: a follower whose applied prefix
    // reaches feed_size must reproduce these exact bytes.
    out->state_crc = WalCrc32(RenderStateTextLocked());
    if (base_epoch != feed_base_epoch_ || index > feed_.size()) {
      // Renegotiation: the follower's coordinates predate this generation
      // (compaction), come from another log, or are a bootstrap probe.
      // Ship the head state outright with the coordinates to resume from.
      out->snapshot = true;
      out->next_index = feed_.size();
      out->snap.epoch = head_->id;
      out->snap.now_ms = now_ms_;
      {
        std::lock_guard<std::mutex> sym(symbols_mutex_);
        out->snap.statements =
            RenderDatabaseText(head_->edb, *program_.symbols);
        for (const auto& [deadline_ms, fact] : deadlines_) {
          out->snap.deadlines.emplace_back(
              deadline_ms, RenderFactStatement(fact, *program_.symbols));
        }
      }
    } else {
      size_t end = std::min(feed_.size(), index + max_records);
      out->records.assign(feed_.begin() + index, feed_.begin() + end);
      out->next_index = end;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.replication_fetches;
    stats_.replication_records += static_cast<long>(out->records.size());
    if (out->snapshot) ++stats_.replication_snapshots;
  }
  return Status::OK();
}

Status QueryService::ApplyReplicated(const std::string& payload) {
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    if (quarantined_) {
      return Status::DataLoss("node quarantined after divergence: " +
                              quarantine_reason_);
    }
  }
  CQLOPT_ASSIGN_OR_RETURN(WalRecord record, DecodeWalRecord(payload));
  CQLOPT_RETURN_IF_ERROR(ReplayRecord(record));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.replicated_applies;
  }
  return Status::OK();
}

Status QueryService::InstallSnapshot(const WalSnapshot& snapshot) {
  Database edb;
  std::multimap<int64_t, Fact> deadlines;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    Result<int> loaded =
        LoadDatabaseText(snapshot.statements, program_.symbols, &edb);
    if (!loaded.ok()) {
      return Status::Internal("replication snapshot failed to load: " +
                              loaded.status().ToString());
    }
    for (const auto& [deadline_ms, statement] : snapshot.deadlines) {
      Database one;
      Result<int> fact_loaded =
          LoadDatabaseText(statement, program_.symbols, &one);
      if (!fact_loaded.ok() || one.TotalFacts() != 1) {
        return Status::Internal(
            "replication snapshot deadline entry failed to load: " +
            statement);
      }
      for (const Fact& fact : FactsOf(one)) {
        deadlines.emplace(deadline_ms, fact);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    auto deltas = std::make_shared<EpochDelta>();
    deltas->id = snapshot.epoch;  // chain bottoms out at the snapshot
    auto head = std::make_shared<EpochSnapshot>();
    head->id = snapshot.epoch;
    head->edb = std::move(edb);
    head->edb.set_epoch(snapshot.epoch);
    head->deltas = std::move(deltas);
    head_ = std::move(head);
    now_ms_ = snapshot.now_ms;
    deadlines_ = std::move(deadlines);
    // This node's own feed restarts at the installed snapshot, mirroring
    // what Compact() would produce — chained replication stays consistent.
    feed_.clear();
    feed_base_epoch_ = snapshot.epoch;
    if (wal_ != nullptr) {
      // Persist: a follower restart must recover to (at least) the
      // installed state from its own disk, without the primary.
      CQLOPT_RETURN_IF_ERROR(wal_->WriteSnapshot(snapshot));
      CQLOPT_RETURN_IF_ERROR(wal_->Reset());
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.epoch = snapshot.epoch;
    if (wal_ != nullptr) stats_.wal_bytes = wal_->log_bytes();
  }
  return Status::OK();
}

NodeRole QueryService::role() const {
  std::lock_guard<std::mutex> lock(head_mutex_);
  return role_;
}

void QueryService::SetRole(NodeRole role) {
  std::lock_guard<std::mutex> lock(head_mutex_);
  role_ = role;
}

void QueryService::Quarantine(const std::string& reason) {
  std::lock_guard<std::mutex> lock(head_mutex_);
  quarantined_ = true;
  quarantine_reason_ = reason;
}

bool QueryService::quarantined() const {
  std::lock_guard<std::mutex> lock(head_mutex_);
  return quarantined_;
}

HealthInfo QueryService::Health() const {
  HealthInfo info;
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    info.role = role_;
    info.epoch = head_->id;
    info.clock_ms = now_ms_;
    info.quarantined = quarantined_;
    info.quarantine_reason = quarantine_reason_;
  }
  std::function<void(HealthInfo*)> augmenter;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    augmenter = health_augmenter_;
  }
  // Invoked outside every service lock: the augmenter (a Replicator) takes
  // its own, and must not call back into this service.
  if (augmenter) augmenter(&info);
  return info;
}

void QueryService::SetHealthAugmenter(
    std::function<void(HealthInfo*)> augmenter) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  health_augmenter_ = std::move(augmenter);
}

Status QueryService::Promote(const std::string& arg) {
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    if (quarantined_) {
      return Status::FailedPrecondition(
          "refusing to promote a quarantined (diverged) follower: " +
          quarantine_reason_);
    }
    if (role_ == NodeRole::kPrimary) return Status::OK();  // idempotent
  }
  std::function<Status(const std::string&)> handler;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    handler = promote_handler_;
  }
  // The handler (the Replicator) stops pulling and runs the final
  // catch-up from the dead primary's surviving WAL — its failure aborts
  // the promotion so a half-caught-up node never starts taking writes.
  if (handler) CQLOPT_RETURN_IF_ERROR(handler(arg));
  SetRole(NodeRole::kPrimary);
  return Status::OK();
}

void QueryService::SetPromoteHandler(
    std::function<Status(const std::string&)> handler) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  promote_handler_ = std::move(handler);
}

ServiceStats QueryService::Stats() const {
  ServiceStats snapshot;
  std::function<void(ServiceStats*)> augmenter;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
    augmenter = stats_augmenter_;
  }
  snapshot.epoch = epoch();
  snapshot.wal_enabled = wal_ != nullptr;
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    snapshot.clock_ms = now_ms_;
    snapshot.ttl_pending = deadlines_.size();
  }
  PreparedCache::Counters cache = prepared_.Snapshot();
  snapshot.prepared_entries = cache.entries;
  // Invoked outside stats_mutex_: the augmenter takes its own locks (the
  // scheduler's), and must not call back into this service.
  if (augmenter) augmenter(&snapshot);
  return snapshot;
}

void QueryService::SetStatsAugmenter(
    std::function<void(ServiceStats*)> augmenter) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_augmenter_ = std::move(augmenter);
}

}  // namespace cqlopt
