#include "service/query_service.h"

#include <algorithm>
#include <utility>

#include "ast/parser.h"
#include "util/failpoint.h"

namespace cqlopt {
namespace {

/// Flattens a staged Database into commit order: relations by PredId,
/// facts in insertion order — deterministic, so a WAL replay that parses
/// the same text re-commits the same sequence.
std::vector<Fact> FactsOf(const Database& staged) {
  std::vector<Fact> batch;
  for (const auto& [pred, rel] : staged.relations()) {
    for (size_t i = 0; i < rel.size(); ++i) {
      batch.push_back(rel.fact(i));
    }
  }
  return batch;
}

bool IsGovernedAbort(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kResourceExhausted;
}

}  // namespace

const char* ServePathName(ServePath path) {
  switch (path) {
    case ServePath::kCold:
      return "cold";
    case ServePath::kPreparedEval:
      return "prepared";
    case ServePath::kEpochHit:
      return "epoch-hit";
    case ServePath::kResumed:
      return "resumed";
  }
  return "?";
}

QueryService::QueryService(Program program, Database edb,
                           ServiceOptions options)
    : program_(std::move(program)),
      options_(options),
      prepared_(options.prepared_capacity) {
  auto deltas = std::make_shared<EpochDelta>();
  deltas->id = 0;
  auto head = std::make_shared<EpochSnapshot>();
  head->id = 0;
  head->edb = std::move(edb);
  head->edb.set_epoch(0);
  head->deltas = std::move(deltas);
  head_ = std::move(head);
}

Result<std::unique_ptr<QueryService>> QueryService::FromText(
    const std::string& program_text, const std::string& edb_text,
    ServiceOptions options) {
  CQLOPT_ASSIGN_OR_RETURN(ParseResult parsed, ParseProgram(program_text));
  Database edb;
  if (!edb_text.empty()) {
    CQLOPT_ASSIGN_OR_RETURN(
        int loaded,
        LoadDatabaseText(edb_text, parsed.program.symbols, &edb));
    (void)loaded;
  }
  return FromParts(std::move(parsed.program), std::move(edb), options);
}

Result<std::unique_ptr<QueryService>> QueryService::FromParts(
    Program program, Database edb, ServiceOptions options) {
  if (options.eval.max_iterations < 0 || options.eval.threads < 0 ||
      options.eval.deadline_ms < 0 || options.eval.max_derived_facts < 0) {
    return Status::InvalidArgument(
        "ServiceOptions::eval has a negative max_iterations, threads, "
        "deadline_ms, or max_derived_facts");
  }
  // Traces are never served and rendering them would read the symbol table
  // from inside the (unlocked) evaluation. Abort stats can't be handed to
  // concurrent queries through one shared pointer either.
  options.eval.record_trace = false;
  options.eval.abort_stats = nullptr;
  std::unique_ptr<Wal> wal;
  if (!options.wal_dir.empty()) {
    CQLOPT_ASSIGN_OR_RETURN(wal, Wal::Open(options.wal_dir));
  }
  auto service = std::unique_ptr<QueryService>(new QueryService(
      std::move(program), std::move(edb), std::move(options)));
  service->wal_ = std::move(wal);
  return service;
}

std::shared_ptr<const QueryService::EpochSnapshot> QueryService::Head() const {
  std::lock_guard<std::mutex> lock(head_mutex_);
  return head_;
}

int64_t QueryService::epoch() const { return Head()->id; }

Result<std::shared_ptr<PreparedEntry>> QueryService::PrepareEntry(
    const std::string& query_text, const std::string& steps_spec,
    bool* prepared_hit) {
  CQLOPT_ASSIGN_OR_RETURN(std::vector<RewriteStep> steps,
                          ParseSteps(steps_spec));
  Query query;
  uint64_t fingerprint = 0;
  std::string canonical;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(query, ParseQueryText(query_text, &program_));
    fingerprint = PipelineFingerprint(program_, query, steps, &canonical);
  }
  if (auto entry = prepared_.Find(fingerprint, canonical)) {
    *prepared_hit = true;
    return entry;
  }
  *prepared_hit = false;
  auto entry = std::make_shared<PreparedEntry>();
  entry->fingerprint = fingerprint;
  entry->canonical = std::move(canonical);
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(
        entry->prepared,
        ApplyPipeline(program_, query, steps, options_.pipeline));
  }
  return prepared_.Insert(std::move(entry));
}

Result<uint64_t> QueryService::Prepare(const std::string& query_text,
                                       const std::string& steps_spec,
                                       bool* was_cached) {
  bool hit = false;
  CQLOPT_ASSIGN_OR_RETURN(std::shared_ptr<PreparedEntry> entry,
                          PrepareEntry(query_text, steps_spec, &hit));
  if (was_cached != nullptr) *was_cached = hit;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++(hit ? stats_.prepared_hits : stats_.prepared_misses);
  }
  return entry->fingerprint;
}

Status QueryService::NoteEvalError(const Status& status) {
  if (IsGovernedAbort(status.code())) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.governed_aborts;
  }
  return status;
}

bool QueryService::CollectDeltas(const EpochSnapshot& head, int64_t from,
                                 std::vector<Fact>* out) const {
  const EpochDelta* node = head.deltas.get();
  std::vector<const EpochDelta*> newer;
  while (node != nullptr && node->id > from) {
    newer.push_back(node);
    node = node->prev.get();
  }
  if (node == nullptr || node->id != from) return false;
  // Chain is newest-first; replay batches oldest-first (commit order).
  for (auto it = newer.rbegin(); it != newer.rend(); ++it) {
    out->insert(out->end(), (*it)->facts.begin(), (*it)->facts.end());
  }
  return true;
}

Result<QueryOutcome> QueryService::Execute(const std::string& query_text,
                                           const std::string& steps_spec) {
  bool prepared_hit = false;
  CQLOPT_ASSIGN_OR_RETURN(std::shared_ptr<PreparedEntry> entry,
                          PrepareEntry(query_text, steps_spec, &prepared_hit));
  std::shared_ptr<const EpochSnapshot> head = Head();

  QueryOutcome outcome;
  outcome.epoch = head->id;
  outcome.fingerprint = entry->fingerprint;
  outcome.prepared_hit = prepared_hit;

  std::shared_ptr<const EvalResult> eval;
  {
    std::lock_guard<std::mutex> lock(entry->mutex);
    if (entry->eval != nullptr && entry->eval_epoch == head->id) {
      outcome.path = ServePath::kEpochHit;
      eval = entry->eval;
    } else {
      std::vector<Fact> delta;
      bool can_resume = entry->eval != nullptr &&
                        entry->eval->stats.reached_fixpoint &&
                        entry->eval_epoch >= 0 &&
                        entry->eval_epoch < head->id &&
                        CollectDeltas(*head, entry->eval_epoch, &delta);
      if (can_resume) {
        int base_iterations = entry->eval->stats.iterations;
        long base_inserted = entry->eval->stats.inserted;
        // Readers copy `entry->eval` only under this mutex, so a use count
        // of 1 proves nobody else holds the materialization and the resume
        // can consume it in place of deep-copying the whole database. (The
        // pointee is never created const — see the make_shared below — so
        // shedding the const qualifier is sound.)
        EvalResult base =
            entry->eval.use_count() == 1
                ? std::move(*std::const_pointer_cast<EvalResult>(entry->eval))
                : EvalResult(*entry->eval);
        entry->eval = nullptr;
        // On error the materialization stays cleared: the next query for
        // this entry simply goes cold — a deadline/budget abort never
        // poisons the entry or the service.
        Result<EvalResult> resumed_result = ResumeEvaluate(
            entry->prepared.program, std::move(base), delta, options_.eval);
        if (!resumed_result.ok()) return NoteEvalError(resumed_result.status());
        EvalResult resumed = std::move(*resumed_result);
        resumed.db.set_epoch(head->id);
        outcome.path = ServePath::kResumed;
        outcome.iterations_run = resumed.stats.iterations - base_iterations;
        outcome.facts_stored = resumed.stats.inserted - base_inserted;
        eval = std::make_shared<EvalResult>(std::move(resumed));
      } else {
        EvalOptions opts = options_.eval;
        opts.strategy = EvalStrategy::kStratified;
        Result<EvalResult> cold_result =
            Evaluate(entry->prepared.program, head->edb, opts);
        if (!cold_result.ok()) return NoteEvalError(cold_result.status());
        EvalResult cold = std::move(*cold_result);
        cold.db.set_epoch(head->id);
        outcome.path =
            prepared_hit ? ServePath::kPreparedEval : ServePath::kCold;
        outcome.iterations_run = cold.stats.iterations;
        outcome.facts_stored = cold.stats.inserted;
        eval = std::make_shared<EvalResult>(std::move(cold));
      }
      entry->eval = eval;
      entry->eval_epoch = head->id;
    }
  }

  outcome.reached_fixpoint = eval->stats.reached_fixpoint;
  CQLOPT_ASSIGN_OR_RETURN(std::vector<Fact> answers,
                          QueryAnswers(*eval, entry->prepared.query));
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    outcome.answers.reserve(answers.size());
    for (const Fact& fact : answers) {
      outcome.answers.push_back(fact.ToString(*program_.symbols));
    }
  }
  std::sort(outcome.answers.begin(), outcome.answers.end());

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.queries;
    ++(prepared_hit ? stats_.prepared_hits : stats_.prepared_misses);
    switch (outcome.path) {
      case ServePath::kCold:
      case ServePath::kPreparedEval:
        ++stats_.cold_evals;
        break;
      case ServePath::kEpochHit:
        ++stats_.epoch_hits;
        break;
      case ServePath::kResumed:
        ++stats_.resumes;
        stats_.resumed_iterations += outcome.iterations_run;
        break;
    }
  }
  return outcome;
}

Result<IngestOutcome> QueryService::Ingest(const std::string& facts_text) {
  Database staged;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    CQLOPT_ASSIGN_OR_RETURN(
        int loaded, LoadDatabaseText(facts_text, program_.symbols, &staged));
    (void)loaded;
  }
  // The verbatim text is the WAL payload: replay parses it with the same
  // loader against the same prior state, so it re-commits these exact
  // facts.
  return CommitBatch(FactsOf(staged), facts_text);
}

Result<IngestOutcome> QueryService::IngestFacts(
    const std::vector<Fact>& batch) {
  if (wal_ == nullptr) return CommitBatch(batch, std::string());
  // Durable path: render the batch to loader syntax and commit what that
  // text *parses back to* — recovery replays text, so logging anything the
  // parse doesn't reproduce exactly would fork the recovered state.
  std::string text;
  Database staged;
  {
    std::lock_guard<std::mutex> lock(symbols_mutex_);
    for (const Fact& fact : batch) {
      text += RenderFactStatement(fact, *program_.symbols);
      text += '\n';
    }
    Result<int> loaded = LoadDatabaseText(text, program_.symbols, &staged);
    if (!loaded.ok()) {
      return Status::Internal(
          "WAL-bound batch failed to round-trip through the loader: " +
          loaded.status().ToString());
    }
  }
  return CommitBatch(FactsOf(staged), text);
}

Result<IngestOutcome> QueryService::CommitBatch(const std::vector<Fact>& batch,
                                                const std::string& payload) {
  IngestOutcome out;
  bool compact_due = false;
  long wal_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    Database next = head_->edb;  // deep copy; readers keep the old snapshot
    std::vector<Fact> accepted;
    for (const Fact& fact : batch) {
      if (next.AddFact(fact) == InsertOutcome::kInserted) {
        accepted.push_back(fact);
      } else {
        ++out.duplicates;
      }
    }
    out.accepted = static_cast<int>(accepted.size());
    if (accepted.empty()) {
      out.epoch = head_->id;  // no-op commit burns no epoch (and no WAL I/O)
      return out;
    }
    const bool log_this = wal_ != nullptr && !replaying_;
    if (log_this) {
      // Durability barrier: the record must be on disk before any reader
      // can observe the new epoch. An append failure (real or injected)
      // aborts the commit — the epoch never existed.
      CQLOPT_RETURN_IF_ERROR(wal_->Append(payload));
      if (failpoint::ShouldFail(failpoint::kWalCrashBeforeCommit)) {
        return Status::Internal(
            std::string("injected crash between WAL append and epoch "
                        "commit (failpoint ") +
            failpoint::kWalCrashBeforeCommit + ")");
      }
    }
    auto deltas = std::make_shared<EpochDelta>();
    deltas->id = head_->id + 1;
    deltas->facts = std::move(accepted);
    deltas->prev = head_->deltas;
    auto head = std::make_shared<EpochSnapshot>();
    head->id = deltas->id;
    head->edb = std::move(next);
    head->edb.set_epoch(head->id);
    head->deltas = std::move(deltas);
    head_ = std::move(head);
    out.epoch = head_->id;
    if (log_this) {
      wal_bytes = wal_->log_bytes();
      compact_due = options_.wal_compact_bytes > 0 &&
                    wal_bytes > options_.wal_compact_bytes;
      if (failpoint::ShouldFail(failpoint::kWalCrashAfterCommit)) {
        return Status::Internal(
            std::string("injected crash after epoch commit (failpoint ") +
            failpoint::kWalCrashAfterCommit + ")");
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.ingests;
    stats_.epoch = out.epoch;
    if (wal_ != nullptr && !replaying_) {
      ++stats_.wal_appends;
      stats_.wal_bytes = wal_bytes;
    }
  }
  if (compact_due) {
    // The epoch is already durable and visible; failing the ingest over a
    // compaction problem would make the caller retry a committed batch.
    // Count the failure instead — the un-reset log stays replayable.
    Status compacted = Compact();
    if (!compacted.ok()) {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.wal_compaction_failures;
    }
  }
  return out;
}

Status QueryService::Recover(RecoverOutcome* out) {
  RecoverOutcome recovered;
  if (wal_ == nullptr || recovered_) {
    recovered.epoch = epoch();
    if (out != nullptr) *out = recovered;
    return Status::OK();
  }
  // 1. The compaction snapshot, if any, replaces the constructor-provided
  //    EDB outright: it captured that EDB plus every batch compacted away.
  bool snapshot_found = false;
  int64_t snapshot_epoch = 0;
  std::string snapshot_text;
  CQLOPT_RETURN_IF_ERROR(
      wal_->ReadSnapshot(&snapshot_found, &snapshot_epoch, &snapshot_text));
  if (snapshot_found) {
    Database edb;
    {
      std::lock_guard<std::mutex> lock(symbols_mutex_);
      Result<int> loaded =
          LoadDatabaseText(snapshot_text, program_.symbols, &edb);
      if (!loaded.ok()) {
        return Status::Internal("WAL snapshot failed to load: " +
                                loaded.status().ToString());
      }
    }
    {
      std::lock_guard<std::mutex> lock(head_mutex_);
      auto deltas = std::make_shared<EpochDelta>();
      deltas->id = snapshot_epoch;  // chain bottoms out at the snapshot
      auto head = std::make_shared<EpochSnapshot>();
      head->id = snapshot_epoch;
      head->edb = std::move(edb);
      head->edb.set_epoch(snapshot_epoch);
      head->deltas = std::move(deltas);
      head_ = std::move(head);
    }
    recovered.snapshot_loaded = true;
    recovered.snapshot_epoch = snapshot_epoch;
  }
  // 2. Replay the intact log records through the normal commit path —
  //    identical parsing, dedup, and epoch numbering as the original run.
  CQLOPT_ASSIGN_OR_RETURN(WalReadOutcome read, wal_->ReadAll());
  recovered.truncated_bytes = read.truncated_bytes;
  recovered.warning = read.warning;
  replaying_ = true;
  for (const std::string& payload : read.payloads) {
    Result<IngestOutcome> replayed = Ingest(payload);
    if (!replayed.ok()) {
      replaying_ = false;
      return Status::Internal("WAL replay failed at record " +
                              std::to_string(recovered.batches_replayed) +
                              ": " + replayed.status().ToString());
    }
    ++recovered.batches_replayed;
  }
  replaying_ = false;
  recovered_ = true;
  recovered.epoch = epoch();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.wal_replayed_batches += recovered.batches_replayed;
    stats_.wal_bytes = wal_->log_bytes();
    stats_.epoch = recovered.epoch;
  }
  if (out != nullptr) *out = recovered;
  return Status::OK();
}

Status QueryService::Compact() {
  if (wal_ == nullptr) {
    return Status::InvalidArgument("no WAL configured; nothing to compact");
  }
  long wal_bytes = 0;
  {
    std::lock_guard<std::mutex> lock(head_mutex_);
    std::string text;
    {
      // Lock order: head_mutex_ > symbols_mutex_ (rendering reads names).
      std::lock_guard<std::mutex> sym(symbols_mutex_);
      text = RenderDatabaseText(head_->edb, *program_.symbols);
    }
    CQLOPT_RETURN_IF_ERROR(wal_->WriteSnapshot(head_->id, text));
    // Only after the snapshot is durably in place do the records become
    // redundant; a crash between the two leaves snapshot + stale log, and
    // replaying the stale records is harmless (they dedup to no-ops).
    CQLOPT_RETURN_IF_ERROR(wal_->Reset());
    // Captured here because log_bytes_ is only stable under head_mutex_
    // (concurrent commits mutate it).
    wal_bytes = wal_->log_bytes();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.wal_compactions;
    stats_.wal_bytes = wal_bytes;
  }
  return Status::OK();
}

std::string QueryService::RenderStateText() const {
  std::shared_ptr<const EpochSnapshot> head = Head();
  std::lock_guard<std::mutex> lock(symbols_mutex_);
  return "epoch=" + std::to_string(head->id) + "\n" +
         RenderDatabaseText(head->edb, *program_.symbols);
}

ServiceStats QueryService::Stats() const {
  ServiceStats snapshot;
  std::function<void(ServiceStats*)> augmenter;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
    augmenter = stats_augmenter_;
  }
  snapshot.epoch = epoch();
  snapshot.wal_enabled = wal_ != nullptr;
  PreparedCache::Counters cache = prepared_.Snapshot();
  snapshot.prepared_entries = cache.entries;
  // Invoked outside stats_mutex_: the augmenter takes its own locks (the
  // scheduler's), and must not call back into this service.
  if (augmenter) augmenter(&snapshot);
  return snapshot;
}

void QueryService::SetStatsAugmenter(
    std::function<void(ServiceStats*)> augmenter) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_augmenter_ = std::move(augmenter);
}

}  // namespace cqlopt
