#include "service/prepared.h"

namespace cqlopt {

std::shared_ptr<PreparedEntry> PreparedCache::Find(
    uint64_t fingerprint, const std::string& canonical) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end() || it->second.entry->canonical != canonical) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  it->second.last_used = ++tick_;
  return it->second.entry;
}

std::shared_ptr<PreparedEntry> PreparedCache::Insert(
    std::shared_ptr<PreparedEntry> entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(entry->fingerprint);
  if (it != entries_.end()) {
    if (it->second.entry->canonical == entry->canonical) {
      // Lost a prepare race: keep the established entry (its
      // materialization may already be warm).
      it->second.last_used = ++tick_;
      return it->second.entry;
    }
    // Fingerprint collision: the newer key takes the slot.
    it->second = Slot{std::move(entry), ++tick_};
    return it->second.entry;
  }
  if (entries_.size() >= capacity_ && capacity_ > 0) {
    auto victim = entries_.begin();
    for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
      if (cand->second.last_used < victim->second.last_used) victim = cand;
    }
    entries_.erase(victim);
    ++evictions_;
  }
  uint64_t fingerprint = entry->fingerprint;
  auto [slot, inserted] =
      entries_.emplace(fingerprint, Slot{std::move(entry), ++tick_});
  (void)inserted;
  return slot->second.entry;
}

PreparedCache::Counters PreparedCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters c;
  c.hits = hits_;
  c.misses = misses_;
  c.evictions = evictions_;
  c.entries = entries_.size();
  return c;
}

}  // namespace cqlopt
