#include "service/client.h"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <time.h>
#include <unistd.h>

#include <cstdint>
#include <utility>

namespace cqlopt {

namespace {

int64_t NowMs() {
  timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

/// Absolute deadline for a relative timeout; <= 0 means "no deadline".
int64_t DeadlineFor(int timeout_ms) {
  if (timeout_ms <= 0) return -1;
  return NowMs() + timeout_ms;
}

/// poll() timeout argument for a deadline: -1 = infinite, 0 = expired.
int PollBudget(int64_t deadline_ms) {
  if (deadline_ms < 0) return -1;
  int64_t left = deadline_ms - NowMs();
  if (left <= 0) return 0;
  if (left > 1 << 30) left = 1 << 30;
  return static_cast<int>(left);
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                            ::strerror(errno));
  }
  return Status::OK();
}

/// Finishes a non-blocking connect on `fd` within the deadline: poll for
/// writability, then read SO_ERROR for the real verdict. Consumes `fd` on
/// failure.
Status AwaitConnect(int fd, int64_t deadline_ms, const std::string& peer) {
  pollfd pfd{fd, POLLOUT, 0};
  for (;;) {
    int rc = ::poll(&pfd, 1, PollBudget(deadline_ms));
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) {
      int saved = errno;
      ::close(fd);
      return Status::Internal(std::string("poll: ") + ::strerror(saved));
    }
    if (rc == 0) {
      ::close(fd);
      return Status::DeadlineExceeded("connect to " + peer +
                                      " timed out (client-side deadline)");
    }
    break;
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) err = errno;
  if (err != 0) {
    ::close(fd);
    return Status::Unavailable("connect to " + peer + ": " +
                               ::strerror(err));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<LineClient>> LineClient::ConnectUnix(
    const std::string& path, int connect_timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + path);
  }
  ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + ::strerror(errno));
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    ::close(fd);
    return nb;
  }
  int64_t deadline = DeadlineFor(connect_timeout_ms);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno == EINPROGRESS || errno == EAGAIN) {
      CQLOPT_RETURN_IF_ERROR(AwaitConnect(fd, deadline, path));
    } else {
      int saved = errno;
      ::close(fd);
      return Status::Unavailable("connect to " + path + ": " +
                                 ::strerror(saved));
    }
  }
  return std::unique_ptr<LineClient>(new LineClient(fd));
}

Result<std::unique_ptr<LineClient>> LineClient::ConnectTcp(
    const std::string& host, const std::string& port,
    int connect_timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0) {
    return Status::InvalidArgument("resolve " + host + ":" + port + ": " +
                                   ::gai_strerror(rc));
  }
  int64_t deadline = DeadlineFor(connect_timeout_ms);
  Status last = Status::Unavailable("no addresses for " + host + ":" + port);
  for (addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(std::string("socket: ") + ::strerror(errno));
      continue;
    }
    Status nb = SetNonBlocking(fd);
    if (!nb.ok()) {
      ::close(fd);
      last = nb;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) < 0 &&
        errno != EINPROGRESS && errno != EAGAIN) {
      last = Status::Unavailable("connect to " + host + ":" + port + ": " +
                                 ::strerror(errno));
      ::close(fd);
      continue;
    }
    Status done = AwaitConnect(fd, deadline, host + ":" + port);
    if (done.ok()) {
      ::freeaddrinfo(results);
      return std::unique_ptr<LineClient>(new LineClient(fd));
    }
    last = done;
    // A spent deadline dooms every remaining address too.
    if (done.code() == StatusCode::kDeadlineExceeded) break;
  }
  ::freeaddrinfo(results);
  return last;
}

LineClient::~LineClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status LineClient::SendLine(const std::string& line, int timeout_ms) {
  std::string data = line + "\n";
  int64_t deadline = DeadlineFor(timeout_ms);
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      int rc = ::poll(&pfd, 1, PollBudget(deadline));
      if (rc < 0 && errno == EINTR) continue;
      if (rc < 0) {
        return Status::Internal(std::string("poll: ") + ::strerror(errno));
      }
      if (rc == 0) {
        return Status::DeadlineExceeded(
            "write timed out (client-side deadline)");
      }
      continue;
    }
    return Status::Unavailable(std::string("write: ") +
                               (n < 0 ? ::strerror(errno) : "short write"));
  }
  return Status::OK();
}

Status LineClient::ReadResponse(int timeout_ms, Response* out) {
  out->lines.clear();
  out->is_error = false;
  int64_t deadline = DeadlineFor(timeout_ms);
  for (;;) {
    // Drain complete lines already buffered before touching the socket.
    size_t nl;
    while ((nl = buffer_.find('\n')) != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line == "END") return Status::OK();
      if (line.rfind("ERR ", 0) == 0) out->is_error = true;
      out->lines.push_back(std::move(line));
    }
    pollfd pfd{fd_, POLLIN, 0};
    int rc = ::poll(&pfd, 1, PollBudget(deadline));
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0) {
      return Status::Internal(std::string("poll: ") + ::strerror(errno));
    }
    if (rc == 0) {
      return Status::DeadlineExceeded(
          "read timed out waiting for response (client-side deadline)");
    }
    char chunk[4096];
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (n < 0) {
      return Status::Unavailable(std::string("read: ") + ::strerror(errno));
    }
    if (n == 0) {
      return Status::Unavailable("connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Status LineClient::Exchange(const std::string& line, int timeout_ms,
                            Response* out) {
  CQLOPT_RETURN_IF_ERROR(SendLine(line, timeout_ms));
  return ReadResponse(timeout_ms, out);
}

}  // namespace cqlopt
