#ifndef CQLOPT_CORE_WORKLOAD_H_
#define CQLOPT_CORE_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "eval/database.h"

namespace cqlopt {

/// Synthetic EDB generators used by the benchmark harnesses (the paper's
/// examples come with tiny hand EDBs; these scale them so the fact-count
/// comparisons of Sections 4 and 7 show their shape). All generators are
/// deterministic in `seed`.

/// Parameters of a random flight network for the Example 1.1/4.3 workload:
/// `singleleg(src, dst, time, cost)` tuples over `airports` symbolic
/// airports. Times are uniform in [time_min, time_max] and costs in
/// [cost_min, cost_max] — spreading well past the query's selections
/// (time <= 240, cost <= 150) so constraint pushing has facts to prune.
struct FlightNetworkSpec {
  int airports = 16;
  int legs = 48;
  int time_min = 30;
  int time_max = 600;
  int cost_min = 20;
  int cost_max = 400;
  uint64_t seed = 42;
  /// When true (default), legs only go from lower- to higher-numbered
  /// airports. A cyclic network makes the recursive flight rule derive
  /// paths of unbounded length (each lap adds time and cost, so every lap
  /// is a new fact) — the evaluation would only stop at the iteration cap.
  bool acyclic = true;
};

/// Appends a random flight network to `db`.
Status AddFlightNetwork(SymbolTable* symbols, const FlightNetworkSpec& spec,
                        Database* db);

/// Appends `count` random tuples of a binary relation `pred` over the
/// integer domain [0, domain): the b1/b2/p EDBs of Examples 4.1, 4.2, 7.1,
/// and 7.2.
Status AddBinaryRelation(SymbolTable* symbols, const std::string& pred,
                         int count, int domain, uint64_t seed, Database* db);

/// Appends `count` random tuples of a unary relation over [0, domain).
Status AddUnaryRelation(SymbolTable* symbols, const std::string& pred,
                        int count, int domain, uint64_t seed, Database* db);

/// Appends an `edge(u, v)`-style layered graph useful for transitive
/// closure workloads: `layers` layers of `width` numeric nodes, every node
/// connected to `fanout` nodes of the next layer. Node ids are numeric.
Status AddLayeredGraph(SymbolTable* symbols, const std::string& pred,
                       int layers, int width, int fanout, uint64_t seed,
                       Database* db);

}  // namespace cqlopt

#endif  // CQLOPT_CORE_WORKLOAD_H_
