#include "core/optimizer.h"

#include "ast/parser.h"

namespace cqlopt {

Result<Optimizer> Optimizer::FromText(const std::string& program_text) {
  CQLOPT_ASSIGN_OR_RETURN(ParseResult parsed, ParseProgram(program_text));
  Optimizer opt(std::move(parsed.program));
  opt.queries_ = std::move(parsed.queries);
  return opt;
}

Result<Query> Optimizer::ParseQuery(const std::string& query_text) {
  return ParseQueryText(query_text, &program_);
}

Result<PipelineResult> Optimizer::Rewrite(const Query& query,
                                          const std::string& steps,
                                          const PipelineOptions& options) const {
  CQLOPT_ASSIGN_OR_RETURN(std::vector<RewriteStep> parsed, ParseSteps(steps));
  return ApplyPipeline(program_, query, parsed, options);
}

Result<ConstraintRewriteResult> Optimizer::RewriteForPredicate(
    PredId query_pred, const ConstraintRewriteOptions& options) const {
  return ConstraintRewrite(program_, query_pred, options);
}

Result<GmtResult> Optimizer::Gmt(const Query& query) const {
  return GmtTransform(program_, query);
}

Result<EvalResult> Optimizer::Run(const Program& program, const Database& edb,
                                  const EvalOptions& options) const {
  return Evaluate(program, edb, options);
}

}  // namespace cqlopt
