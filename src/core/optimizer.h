#ifndef CQLOPT_CORE_OPTIMIZER_H_
#define CQLOPT_CORE_OPTIMIZER_H_

#include <string>
#include <vector>

#include "core/equivalence.h"
#include "transform/gmt.h"
#include "transform/pipeline.h"

namespace cqlopt {

/// The library facade: parse a CQL program, rewrite it with a named
/// transformation sequence, and evaluate it bottom-up.
///
/// Typical use (see examples/quickstart.cc):
///
///   CQLOPT_ASSIGN_OR_RETURN(Optimizer opt, Optimizer::FromText(src));
///   CQLOPT_ASSIGN_OR_RETURN(Query q,
///       opt.ParseQuery("?- cheaporshort(madison, seattle, T, C)."));
///   CQLOPT_ASSIGN_OR_RETURN(PipelineResult rewritten,
///       opt.Rewrite(q, "pred,qrp,mg"));
///   CQLOPT_ASSIGN_OR_RETURN(EvalResult run,
///       opt.Run(rewritten.program, edb));
///   auto answers = QueryAnswers(run, rewritten.query);
class Optimizer {
 public:
  /// Parses `program_text`; inline `?- ...` statements become the default
  /// queries (retrievable via queries()).
  static Result<Optimizer> FromText(const std::string& program_text);

  const Program& program() const { return program_; }
  const std::vector<Query>& queries() const { return queries_; }
  SymbolTable* symbols() { return program_.symbols.get(); }

  /// Parses a query against this program.
  Result<Query> ParseQuery(const std::string& query_text);

  /// Applies a Section 7 transformation sequence, e.g. "pred,qrp,mg",
  /// "mg,qrp", "balbin" (see ParseSteps).
  Result<PipelineResult> Rewrite(const Query& query, const std::string& steps,
                                 const PipelineOptions& options = {}) const;

  /// Procedure Constraint_rewrite (Section 4.5) against a query predicate.
  Result<ConstraintRewriteResult> RewriteForPredicate(
      PredId query_pred, const ConstraintRewriteOptions& options = {}) const;

  /// The GMT pipeline (Section 6.2).
  Result<GmtResult> Gmt(const Query& query) const;

  /// Bottom-up evaluation of any program sharing this optimizer's symbol
  /// table.
  Result<EvalResult> Run(const Program& program, const Database& edb,
                         const EvalOptions& options = {}) const;

 private:
  explicit Optimizer(Program program) : program_(std::move(program)) {}

  Program program_;
  std::vector<Query> queries_;
};

}  // namespace cqlopt

#endif  // CQLOPT_CORE_OPTIMIZER_H_
