#ifndef CQLOPT_CORE_EQUIVALENCE_H_
#define CQLOPT_CORE_EQUIVALENCE_H_

#include <vector>

#include "ast/program.h"
#include "eval/seminaive.h"

namespace cqlopt {

/// Extracts the answers to `query` from an evaluation result: the facts of
/// the query's predicate conjoined with the query's constraints
/// (unsatisfiable combinations dropped).
Result<std::vector<Fact>> QueryAnswers(const EvalResult& result,
                                       const Query& query);

/// True iff two answer sets denote the same set of ground facts: every fact
/// of `a` is covered by the disjunction of `b`'s facts and vice versa. This
/// is how the paper's query-equivalence statements (Theorems 4.3, 6.2,
/// 7.x) are checked empirically across rewritten programs.
bool SameAnswers(const std::vector<Fact>& a, const std::vector<Fact>& b);

}  // namespace cqlopt

#endif  // CQLOPT_CORE_EQUIVALENCE_H_
