#include "core/workload.h"

#include <random>
#include <utility>

namespace cqlopt {

Status AddFlightNetwork(SymbolTable* symbols, const FlightNetworkSpec& spec,
                        Database* db) {
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<int> airport(0, spec.airports - 1);
  std::uniform_int_distribution<int> time(spec.time_min, spec.time_max);
  std::uniform_int_distribution<int> cost(spec.cost_min, spec.cost_max);
  for (int i = 0; i < spec.legs; ++i) {
    int src = airport(rng);
    int dst = airport(rng);
    if (dst == src) dst = (dst + 1) % spec.airports;
    if (spec.acyclic && src > dst) std::swap(src, dst);
    CQLOPT_RETURN_IF_ERROR(db->AddGroundFact(
        symbols, "singleleg",
        {Database::Value::Symbol("a" + std::to_string(src)),
         Database::Value::Symbol("a" + std::to_string(dst)),
         Database::Value::Number(Rational(time(rng))),
         Database::Value::Number(Rational(cost(rng)))}));
  }
  return Status::OK();
}

Status AddBinaryRelation(SymbolTable* symbols, const std::string& pred,
                         int count, int domain, uint64_t seed, Database* db) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> value(0, domain - 1);
  for (int i = 0; i < count; ++i) {
    CQLOPT_RETURN_IF_ERROR(db->AddGroundFact(
        symbols, pred,
        {Database::Value::Number(Rational(value(rng))),
         Database::Value::Number(Rational(value(rng)))}));
  }
  return Status::OK();
}

Status AddUnaryRelation(SymbolTable* symbols, const std::string& pred,
                        int count, int domain, uint64_t seed, Database* db) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> value(0, domain - 1);
  for (int i = 0; i < count; ++i) {
    CQLOPT_RETURN_IF_ERROR(db->AddGroundFact(
        symbols, pred, {Database::Value::Number(Rational(value(rng)))}));
  }
  return Status::OK();
}

Status AddLayeredGraph(SymbolTable* symbols, const std::string& pred,
                       int layers, int width, int fanout, uint64_t seed,
                       Database* db) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, width - 1);
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (int node = 0; node < width; ++node) {
      int u = layer * width + node;
      for (int k = 0; k < fanout; ++k) {
        int v = (layer + 1) * width + pick(rng);
        CQLOPT_RETURN_IF_ERROR(db->AddGroundFact(
            symbols, pred,
            {Database::Value::Number(Rational(u)),
             Database::Value::Number(Rational(v))}));
      }
    }
  }
  return Status::OK();
}

}  // namespace cqlopt
