#include "core/equivalence.h"

#include "ast/arg_map.h"
#include "constraint/implication.h"

namespace cqlopt {

Result<std::vector<Fact>> QueryAnswers(const EvalResult& result,
                                       const Query& query) {
  std::vector<Fact> answers;
  const Relation* rel = result.db.Find(query.literal.pred);
  if (rel == nullptr) return answers;
  CQLOPT_ASSIGN_OR_RETURN(Conjunction filter,
                          LtopConjunction(query.literal, query.constraints));
  for (size_t i = 0; i < rel->size(); ++i) {
    Fact answer = rel->fact(i);
    CQLOPT_RETURN_IF_ERROR(answer.constraint.AddConjunction(filter));
    if (!answer.constraint.IsSatisfiable()) continue;
    answer.constraint.Simplify();
    answers.push_back(std::move(answer));
  }
  return answers;
}

bool SameAnswers(const std::vector<Fact>& a, const std::vector<Fact>& b) {
  auto covered = [](const std::vector<Fact>& xs, const std::vector<Fact>& ys) {
    std::vector<Conjunction> ys_c;
    ys_c.reserve(ys.size());
    for (const Fact& y : ys) ys_c.push_back(y.constraint);
    for (const Fact& x : xs) {
      if (!ImpliesDisjunction(x.constraint, ys_c)) return false;
    }
    return true;
  };
  return covered(a, b) && covered(b, a);
}

}  // namespace cqlopt
