#ifndef CQLOPT_TESTING_CORPUS_H_
#define CQLOPT_TESTING_CORPUS_H_

#include <string>
#include <vector>

#include "testing/generator.h"
#include "testing/properties.h"

namespace cqlopt {
namespace testing {

/// Regression-corpus files (tests/fuzz_corpus/*.cql). Each file is a
/// complete shrunk repro in the surface syntax, self-describing through
/// `%` comment headers the lexer already skips:
///
///   % property: rewrite_equiv
///   % seed: 42
///   % bug: drop-constraint-atom        <- only for planted-bug repros
///   % note: pred,qrp changed the query's answers
///   g1: p0(X1) :- e0(X1), X1 <= 3.
///   ?- p0(V9).
///   % edb
///   e0(2).
///   e0(5).
///
/// The `% edb` separator line splits the program+query text from the
/// loader-syntax facts. `cqlfuzz --replay <file>` and test_fuzz_corpus.cc
/// both load files through this module; `% bug:` repros assert the property
/// *still fails* under the planted bug (the harness keeps catching it),
/// plain repros assert the property now passes (the bug stays fixed).
struct CorpusCase {
  FuzzCase c;
  std::string property;  // % property: header
  PlantedBug bug = PlantedBug::kNone;
  std::string note;  // % note: header, empty if absent
};

/// Renders a corpus file's full text.
std::string RenderCorpusFile(const FuzzCase& c, const std::string& property,
                             PlantedBug bug, const std::string& note);

/// Writes a corpus file; `path` is created or truncated.
Status WriteCorpusFile(const std::string& path, const FuzzCase& c,
                       const std::string& property, PlantedBug bug,
                       const std::string& note);

/// Parses a corpus file back into a replayable case.
Result<CorpusCase> LoadCorpusFile(const std::string& path);

/// The `.cql` files under `dir`, sorted by name; an error if `dir` cannot
/// be read.
Result<std::vector<std::string>> ListCorpusFiles(const std::string& dir);

}  // namespace testing
}  // namespace cqlopt

#endif  // CQLOPT_TESTING_CORPUS_H_
