#include "testing/corpus.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "ast/parser.h"
#include "eval/loader.h"

namespace cqlopt {
namespace testing {
namespace {

/// If `line` is `% <key>: <value>`, returns the value.
bool HeaderValue(const std::string& line, const std::string& key,
                 std::string* value) {
  std::string prefix = "% " + key + ":";
  if (line.rfind(prefix, 0) != 0) return false;
  size_t start = prefix.size();
  while (start < line.size() && line[start] == ' ') ++start;
  *value = line.substr(start);
  return true;
}

/// Keeps note headers one-line and free of `%`-ambiguity.
std::string FirstLine(const std::string& text) {
  size_t nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

}  // namespace

std::string RenderCorpusFile(const FuzzCase& c, const std::string& property,
                             PlantedBug bug, const std::string& note) {
  std::string out;
  out += "% property: " + property + "\n";
  out += "% seed: " + std::to_string(c.seed) + "\n";
  if (bug != PlantedBug::kNone) {
    out += std::string("% bug: ") + PlantedBugName(bug) + "\n";
  }
  if (!note.empty()) out += "% note: " + FirstLine(note) + "\n";
  out += RenderCaseProgram(c);
  out += "% edb\n";
  out += RenderCaseEdb(c);
  return out;
}

Status WriteCorpusFile(const std::string& path, const FuzzCase& c,
                       const std::string& property, PlantedBug bug,
                       const std::string& note) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return Status::InvalidArgument("cannot open corpus file for writing: " + path);
  }
  file << RenderCorpusFile(c, property, bug, note);
  file.close();
  if (!file) {
    return Status::InvalidArgument("failed writing corpus file: " + path);
  }
  return Status::OK();
}

Result<CorpusCase> LoadCorpusFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot read corpus file: " + path);
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  CorpusCase out;
  std::string seed_text, bug_text;
  std::string program_text, edb_text;
  bool in_edb = false;
  std::string line;
  std::istringstream lines(buffer.str());
  while (std::getline(lines, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line == "% edb") {
      in_edb = true;
      continue;
    }
    if (HeaderValue(line, "property", &out.property) ||
        HeaderValue(line, "seed", &seed_text) ||
        HeaderValue(line, "bug", &bug_text) ||
        HeaderValue(line, "note", &out.note)) {
      continue;
    }
    (in_edb ? edb_text : program_text) += line + "\n";
  }
  if (out.property.empty()) {
    return Status::InvalidArgument(path + ": missing `% property:` header");
  }
  if (!seed_text.empty()) {
    out.c.seed = std::strtoull(seed_text.c_str(), nullptr, 10);
  }
  if (!bug_text.empty() && !ParsePlantedBug(bug_text, &out.bug)) {
    return Status::InvalidArgument(path + ": unknown `% bug:` value " + bug_text);
  }

  CQLOPT_ASSIGN_OR_RETURN(ParseResult parsed, ParseProgram(program_text));
  if (parsed.queries.size() != 1) {
    return Status::InvalidArgument(
        path + ": corpus file must contain exactly one query, found " +
        std::to_string(parsed.queries.size()));
  }
  out.c.program = std::move(parsed.program);
  out.c.query = std::move(parsed.queries[0]);

  Database db;
  CQLOPT_RETURN_IF_ERROR(
      LoadDatabaseText(edb_text, out.c.program.symbols, &db).status());
  for (const auto& [pred, rel] : db.relations()) {
    for (size_t i = 0; i < rel.size(); ++i) {
      out.c.edb.push_back(rel.fact(i));
    }
  }
  return out;
}

Result<std::vector<std::string>> ListCorpusFiles(const std::string& dir) {
  std::error_code ec;
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".cql") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::InvalidArgument("cannot list corpus dir " + dir + ": " +
                                    ec.message());
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace testing
}  // namespace cqlopt
