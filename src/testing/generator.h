#ifndef CQLOPT_TESTING_GENERATOR_H_
#define CQLOPT_TESTING_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "ast/program.h"
#include "eval/fact.h"
#include "testing/rng.h"

namespace cqlopt {
namespace testing {

/// Knobs of the random-conjunction generator. Defaults generate the
/// termination class of Section 5 — order constraints only (`X op Y`,
/// `X op c`) — whose bounded disjunct universe keeps every fixpoint in the
/// differential harness finite.
struct ConstraintGenOptions {
  /// Variables drawn from `first_var .. first_var + num_vars - 1`.
  VarId first_var = 1;
  int num_vars = 6;
  int atoms = 2;
  /// Constants uniform in [-constant_range, constant_range].
  int constant_range = 8;
  bool allow_strict = true;  // X < c atoms
  bool allow_eq = true;      // X = c atoms
  /// When false, only order atoms (one variable vs a constant or another
  /// variable). When true, atoms may mix up to three variables with
  /// coefficients in [-2, 2] — outside Section 5's termination class, so
  /// only the program-free constraint properties use it.
  bool dense = false;
};

/// A random conjunction drawn from `options`. Deterministic in the rng
/// stream. May be unsatisfiable — callers that need satisfiable inputs
/// check and redraw.
Conjunction RandomConjunction(Rng* rng, const ConstraintGenOptions& options);

/// Knobs of the random program / query / EDB generator (ProgramGen,
/// DatabaseGen in one seed). Defaults are sized so properties evaluate in
/// milliseconds and fixpoints are reached well under the harness cap.
struct GenOptions {
  int edb_preds = 2;           // e0, e1, ...
  int derived_preds = 3;       // p0, p1, ...; the last one is the query
  int max_rules_per_pred = 2;  // the disjunction knob
  int max_body_literals = 3;
  int max_arity = 3;           // arities uniform in [1, max_arity]
  int num_vars = 6;            // per-rule variable pool X1..X6
  int max_constraint_atoms = 2;
  int recursion_pct = 35;      // chance a non-first rule is recursive
  int constraint_fact_pct = 15;  // chance of a body-free constraint fact
  int edb_facts_per_pred = 8;
  int domain = 8;              // EDB values uniform in [0, domain)
  ConstraintGenOptions constraints;
};

/// One generated differential-testing input: a program, the query against
/// it, and a ground EDB for its database predicates. `seed` is the complete
/// repro token (`cqlfuzz --seed <seed> --iters 1`).
struct FuzzCase {
  Program program;
  Query query;
  std::vector<Fact> edb;
  uint64_t seed = 0;
};

/// Generates a case from a single seed. Deterministic: same seed and
/// options give byte-identical programs, queries, and EDBs. The program is
/// always accepted by ValidateProgram (every derived predicate's first rule
/// is an exit rule) and range-restricted (head variables appear in the body
/// or in a constraint), so properties never skip on validation.
FuzzCase GenerateCase(uint64_t seed, const GenOptions& options);

/// Renders the case's program and query as parseable surface syntax — the
/// exact text the corpus files store.
std::string RenderCaseProgram(const FuzzCase& c);

/// Renders the EDB facts as loader syntax, one `fact.` per line.
std::string RenderCaseEdb(const FuzzCase& c);

/// A random RETRACT batch for the case, deterministic in (c.seed, salt):
/// a subset of the stored EDB facts, a few never-inserted facts over the
/// same predicates (values drawn both inside and far outside the EDB
/// domain), and occasional within-batch repeats — whose second occurrence
/// names an already-retracted fact. Exactly the miss shapes retraction
/// promises to count rather than reject (service/query_service.h
/// RetractOutcome). May be empty for tiny EDBs.
std::vector<Fact> GenerateRetractBatch(const FuzzCase& c, uint64_t salt);

}  // namespace testing
}  // namespace cqlopt

#endif  // CQLOPT_TESTING_GENERATOR_H_
