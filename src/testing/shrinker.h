#ifndef CQLOPT_TESTING_SHRINKER_H_
#define CQLOPT_TESTING_SHRINKER_H_

#include "testing/generator.h"
#include "testing/properties.h"

namespace cqlopt {
namespace testing {

/// Delta-debugging minimizer for failing fuzz cases. Given a (program, EDB,
/// query) triple on which `property` fails, greedily removes rules, body
/// literals, constraint atoms, EDB facts (chunk-halving, ddmin style), and
/// the query's selection, keeping a reduction only when the property still
/// *fails* — candidates ValidateProgram rejects or the property merely
/// skips are discarded, so the minimized case reproduces the original bug
/// rather than some new rejection. Runs reduction passes to a fixpoint
/// within the attempt budget. Deterministic: same input, same output.
struct ShrinkStats {
  int attempts = 0;  // property evaluations spent
  int accepted = 0;  // reductions kept
};

struct ShrinkOptions {
  /// Cap on property evaluations; shrinking stops (keeping the best case
  /// so far) when it is exhausted.
  int max_attempts = 400;
};

FuzzCase ShrinkCase(const FuzzCase& failing, const PropertyInfo& property,
                    const FuzzOptions& fuzz_options,
                    const ShrinkOptions& options = {},
                    ShrinkStats* stats = nullptr);

}  // namespace testing
}  // namespace cqlopt

#endif  // CQLOPT_TESTING_SHRINKER_H_
