#ifndef CQLOPT_TESTING_ORACLE_H_
#define CQLOPT_TESTING_ORACLE_H_

#include <map>
#include <vector>

#include "ast/program.h"
#include "eval/fact.h"

namespace cqlopt {
namespace testing {

/// A deliberately naive reference evaluator for the differential harness,
/// kept independent of the production engine (src/eval/seminaive.cc,
/// relation.cc, rule_application.cc): no semi-naive delta discipline, no
/// hash indexes, no decision cache (it is scope-disabled for the whole
/// run), no subsumption shortcuts — just the textbook naive fixpoint of
/// Section 2 with scan joins and exact rational arithmetic, re-deriving
/// everything every round and deduplicating structurally. ~60 lines of
/// obviously-correct code whose answers the optimized engine must
/// reproduce on every generated program.
///
/// It shares only the value types (Fact, Conjunction) and the PTOL/LTOP
/// conversions with the system under test; an engine bug cannot hide in
/// machinery both sides share because the oracle exercises none of the
/// engine's evaluation machinery.

struct OracleOptions {
  /// Round cap; a capped run reports reached_fixpoint == false and the
  /// differential properties skip the comparison (capped states are
  /// strategy-dependent).
  int max_rounds = 64;
};

struct OracleResult {
  /// All facts (EDB + derived) per predicate, in first-derivation order.
  std::map<PredId, std::vector<Fact>> facts;
  bool reached_fixpoint = false;
  int rounds = 0;
};

/// Runs the naive fixpoint of `program` over the EDB facts.
Result<OracleResult> OracleEvaluate(const Program& program,
                                    const std::vector<Fact>& edb,
                                    const OracleOptions& options = {});

/// The oracle-side answer extraction: facts of the query's predicate
/// conjoined with the query's constraints, unsatisfiable combinations
/// dropped (the naive mirror of core/equivalence.h QueryAnswers).
Result<std::vector<Fact>> OracleQueryAnswers(const OracleResult& result,
                                             const Query& query);

/// True iff the two per-predicate fact sets denote the same ground facts:
/// for every predicate, each side's facts are covered by the disjunction
/// of the other side's. Empty relations and absent relations coincide.
bool SameDenotation(const std::map<PredId, std::vector<Fact>>& a,
                    const std::map<PredId, std::vector<Fact>>& b);

}  // namespace testing
}  // namespace cqlopt

#endif  // CQLOPT_TESTING_ORACLE_H_
